//! Placement decisions as min-cost flow problems (§4, Figure 3).
//!
//! The dbAgent computes three assignments:
//!
//! 1. **Worker-set selection** — out of the viable machines with enough free
//!    resources, pick the N with most VectorH blocks stored locally.
//! 2. **Affinity mapping** — which R workers should store each partition's
//!    chunk files. Flow network: `s →(cap R, cost 0)→ partition →(cap 1,
//!    cost 0 if already local else 1)→ worker →(cap ⌈P·R/N⌉, cost 0)→ t`.
//! 3. **Responsibility assignment** — which single worker is responsible for
//!    each partition: the same network with `s → partition` capacity 1 and
//!    worker capacity `⌈P/N⌉`.
//!
//! Minimizing cost maximizes reuse of existing locality while the capacities
//! force an even spread — reproducing the Figure 2 re-replication pattern
//! after a node failure.

use std::collections::HashMap;

use vectorh_common::{NodeId, PartitionId, Result, VhError};

use crate::flow::MinCostFlow;

/// Input shared by the mapping/assignment solvers.
#[derive(Debug, Clone)]
pub struct PlacementInput {
    pub partitions: Vec<PartitionId>,
    pub workers: Vec<NodeId>,
    /// `local[p][w]`: does worker `w` (by position) already hold a replica
    /// of partition `p` (by position)?
    pub local: Vec<Vec<bool>>,
}

impl PlacementInput {
    fn check(&self) -> Result<()> {
        if self.workers.is_empty() {
            return Err(VhError::Yarn("no workers".into()));
        }
        if self.local.len() != self.partitions.len()
            || self.local.iter().any(|row| row.len() != self.workers.len())
        {
            return Err(VhError::Yarn("locality matrix shape mismatch".into()));
        }
        Ok(())
    }
}

/// Worker-set selection: keep the `n` viable nodes with the most local
/// bytes; `candidates` = (node, local_bytes, has_resources).
pub fn select_workers(candidates: &[(NodeId, u64, bool)], n: usize) -> Vec<NodeId> {
    let mut viable: Vec<&(NodeId, u64, bool)> =
        candidates.iter().filter(|(_, _, ok)| *ok).collect();
    // Most local data first; node id as deterministic tie-break.
    viable.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    viable.into_iter().take(n).map(|&(id, _, _)| id).collect()
}

/// Generic solver for both placement problems.
fn solve(
    input: &PlacementInput,
    per_partition: i64,
    per_worker_cap: i64,
) -> Result<HashMap<PartitionId, Vec<NodeId>>> {
    input.check()?;
    let p = input.partitions.len();
    let w = input.workers.len();
    let s = 0usize;
    let t = 1 + p + w;
    let mut g = MinCostFlow::new(t + 1);
    for pi in 0..p {
        g.add_edge(s, 1 + pi, per_partition, 0);
    }
    // Remember edge ids for readback.
    let mut pw_edges = vec![vec![usize::MAX; w]; p];
    for (pi, row) in pw_edges.iter_mut().enumerate() {
        for (wi, edge) in row.iter_mut().enumerate() {
            let cost = if input.local[pi][wi] { 0 } else { 1 };
            *edge = g.add_edge(1 + pi, 1 + p + wi, 1, cost);
        }
    }
    for wi in 0..w {
        g.add_edge(1 + p + wi, t, per_worker_cap, 0);
    }
    g.solve(s, t)?;
    let mut out: HashMap<PartitionId, Vec<NodeId>> = HashMap::new();
    for (pi, row) in pw_edges.iter().enumerate() {
        let mut nodes = Vec::new();
        for (wi, &edge) in row.iter().enumerate() {
            if g.flow_on(edge) > 0 {
                nodes.push(input.workers[wi]);
            }
        }
        out.insert(input.partitions[pi], nodes);
    }
    Ok(out)
}

/// Affinity mapping: each partition → up to R workers (as many as fit).
pub fn affinity_mapping(
    input: &PlacementInput,
    replication: usize,
) -> Result<HashMap<PartitionId, Vec<NodeId>>> {
    input.check()?;
    let p = input.partitions.len() as i64;
    let n = input.workers.len() as i64;
    let r = replication.min(input.workers.len()) as i64;
    // PCap = ⌈P·R/N⌉ replicas per worker.
    let per_worker = (p * r + n - 1) / n;
    solve(input, r, per_worker.max(1))
}

/// Responsibility assignment: each partition → exactly one worker.
pub fn responsibility_assignment(input: &PlacementInput) -> Result<HashMap<PartitionId, NodeId>> {
    input.check()?;
    let p = input.partitions.len() as i64;
    let n = input.workers.len() as i64;
    let per_worker = (p + n - 1) / n;
    let m = solve(input, 1, per_worker.max(1))?;
    m.into_iter()
        .map(|(k, v)| {
            v.into_iter()
                .next()
                .map(|w| (k, w))
                .ok_or_else(|| VhError::Yarn(format!("partition {k} unassigned")))
        })
        .collect()
}

/// Initial round-robin affinity mapping at table creation (Figure 2 top):
/// partitions split into N contiguous groups; replica k of a group lands on
/// the (home + k)-th worker.
pub fn initial_affinity(
    partitions: &[PartitionId],
    workers: &[NodeId],
    replication: usize,
) -> HashMap<PartitionId, Vec<NodeId>> {
    let n = workers.len().max(1);
    let r = replication.min(n);
    let per_node = partitions.len().div_ceil(n);
    partitions
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let home = (i / per_node.max(1)).min(n - 1);
            let nodes = (0..r).map(|k| workers[(home + k) % n]).collect();
            (p, nodes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::rng::SplitMix64;

    fn parts(n: usize) -> Vec<PartitionId> {
        (0..n as u32).map(PartitionId).collect()
    }

    fn nodes(n: usize) -> Vec<NodeId> {
        (0..n as u32).map(NodeId).collect()
    }

    #[test]
    fn select_workers_prefers_locality_and_resources() {
        let cands = vec![
            (NodeId(0), 100, true),
            (NodeId(1), 500, true),
            (NodeId(2), 900, false), // no resources: excluded
            (NodeId(3), 300, true),
        ];
        assert_eq!(select_workers(&cands, 2), vec![NodeId(1), NodeId(3)]);
        assert_eq!(select_workers(&cands, 10).len(), 3);
    }

    #[test]
    fn initial_affinity_is_round_robin() {
        // 12 partitions, 4 nodes, R=3 — the Figure 2 top layout.
        let m = initial_affinity(&parts(12), &nodes(4), 3);
        // partitions 0-2 primary on node0, replicas on node1,node2
        assert_eq!(m[&PartitionId(0)], vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(m[&PartitionId(3)], vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(m[&PartitionId(11)], vec![NodeId(3), NodeId(0), NodeId(1)]);
        // Even spread: each node stores 12*3/4 = 9 replicas.
        let mut per_node = std::collections::HashMap::new();
        for v in m.values() {
            for n in v {
                *per_node.entry(*n).or_insert(0) += 1;
            }
        }
        assert!(per_node.values().all(|&c| c == 9), "{per_node:?}");
    }

    #[test]
    fn affinity_mapping_prefers_existing_locality() {
        // 4 partitions, 2 workers, R=1. Partition i local to worker i%2.
        let input = PlacementInput {
            partitions: parts(4),
            workers: nodes(2),
            local: vec![
                vec![true, false],
                vec![false, true],
                vec![true, false],
                vec![false, true],
            ],
        };
        let m = affinity_mapping(&input, 1).unwrap();
        assert_eq!(m[&PartitionId(0)], vec![NodeId(0)]);
        assert_eq!(m[&PartitionId(1)], vec![NodeId(1)]);
        assert_eq!(m[&PartitionId(2)], vec![NodeId(0)]);
        assert_eq!(m[&PartitionId(3)], vec![NodeId(1)]);
    }

    #[test]
    fn affinity_mapping_balances_even_without_locality() {
        let input = PlacementInput {
            partitions: parts(6),
            workers: nodes(3),
            local: vec![vec![false; 3]; 6],
        };
        let m = affinity_mapping(&input, 2).unwrap();
        let mut per_node = std::collections::HashMap::new();
        for v in m.values() {
            assert_eq!(v.len(), 2);
            for n in v {
                *per_node.entry(*n).or_insert(0) += 1;
            }
        }
        // 6 partitions × R=2 / 3 nodes = 4 each.
        assert!(per_node.values().all(|&c| c == 4), "{per_node:?}");
    }

    #[test]
    fn responsibility_covers_all_partitions_evenly() {
        // Figure 2 bottom: after node4 fails, 12 partitions over 3 nodes.
        let input = PlacementInput {
            partitions: parts(12),
            workers: nodes(3),
            local: vec![vec![true; 3]; 12], // everything re-replicated local
        };
        let resp = responsibility_assignment(&input).unwrap();
        assert_eq!(resp.len(), 12);
        let mut per_node = std::collections::HashMap::new();
        for n in resp.values() {
            *per_node.entry(*n).or_insert(0) += 1;
        }
        assert!(per_node.values().all(|&c| c == 4), "{per_node:?}");
    }

    #[test]
    fn failure_scenario_minimizes_movement() {
        // Start from the Figure 2 layout (12 parts, 4 nodes, R=3), kill
        // node 3; the new mapping over 3 workers must keep every replica
        // that is already local (cost = only the re-replicated copies).
        let initial = initial_affinity(&parts(12), &nodes(4), 3);
        let survivors = nodes(3);
        let local: Vec<Vec<bool>> = (0..12)
            .map(|p| {
                survivors
                    .iter()
                    .map(|w| initial[&PartitionId(p as u32)].contains(w))
                    .collect()
            })
            .collect();
        let input = PlacementInput {
            partitions: parts(12),
            workers: survivors,
            local: local.clone(),
        };
        let m = affinity_mapping(&input, 3).unwrap();
        // Every partition now has 3 replicas across 3 nodes.
        for v in m.values() {
            assert_eq!(v.len(), 3);
        }
        // Replicas that were already local must be reused: total "moves"
        // equals the replicas that had lived on the dead node (12·3/4 = 9).
        let mut moves = 0;
        for (p, v) in &m {
            for w in v {
                let wi = w.index();
                if !local[p.index()][wi] {
                    moves += 1;
                }
            }
        }
        assert_eq!(moves, 9, "only the dead node's replicas move");
    }

    #[test]
    fn shape_mismatch_rejected() {
        let input = PlacementInput {
            partitions: parts(2),
            workers: nodes(2),
            local: vec![vec![true, false]],
        };
        assert!(affinity_mapping(&input, 1).is_err());
        let empty = PlacementInput {
            partitions: parts(1),
            workers: vec![],
            local: vec![vec![]],
        };
        assert!(affinity_mapping(&empty, 1).is_err());
    }

    #[test]
    fn random_mappings_respect_capacity_and_replication() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..20 {
            let p = 1 + rng.next_bounded(12) as usize;
            let w = 1 + rng.next_bounded(5) as usize;
            let r = 1 + rng.next_bounded(3) as usize;
            let local: Vec<Vec<bool>> = (0..p)
                .map(|_| (0..w).map(|_| rng.chance(0.3)).collect())
                .collect();
            let input = PlacementInput {
                partitions: parts(p),
                workers: nodes(w),
                local,
            };
            let m = affinity_mapping(&input, r).unwrap();
            let cap = (p * r.min(w)).div_ceil(w);
            let mut per_node: HashMap<NodeId, usize> = HashMap::new();
            for (part, v) in &m {
                assert_eq!(v.len(), r.min(w), "partition {part} replication");
                let set: std::collections::HashSet<_> = v.iter().collect();
                assert_eq!(set.len(), v.len(), "distinct nodes");
                for n in v {
                    *per_node.entry(*n).or_insert(0) += 1;
                }
            }
            assert!(
                per_node.values().all(|&c| c <= cap),
                "cap {cap}, got {per_node:?}"
            );
        }
    }
}
