//! dbAgent: VectorH's out-of-band YARN client (§4).
//!
//! VectorH server processes run *outside* YARN containers; the containers it
//! holds are dummies whose only job is to reserve resources and notice
//! preemption. Instead of one big container per node, the dbAgent holds
//! multiple *slices* per node so its footprint can grow and shrink
//! gradually. When YARN preempts slices, the dbAgent tells the session
//! master to shrink the workload manager's core/memory budget (queries use
//! fewer cores, possibly spilling) rather than restarting anything; it
//! periodically renegotiates back toward its target footprint.

use std::collections::HashMap;

use vectorh_common::{ContainerId, NodeId, Result, VhError};

use crate::rm::{AppId, Priority, ResourceManager};

/// Per-node resource budget the workload manager may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceFootprint {
    pub cores: u32,
    pub mem: u64,
}

/// One resource slice = one dummy container.
#[derive(Debug, Clone, Copy)]
struct Slice {
    container: ContainerId,
    node: NodeId,
}

/// The dbAgent.
pub struct DbAgent {
    app: AppId,
    workers: Vec<NodeId>,
    /// Resources of one slice.
    slice: ResourceFootprint,
    /// Target slices per node.
    target_slices: u32,
    /// Minimum slices per node to keep running.
    min_slices: u32,
    held: Vec<Slice>,
}

impl DbAgent {
    /// Negotiate startup resources: per worker, try to reach
    /// `target_slices` slices of `slice` resources, requiring at least
    /// `min_slices` ("it will start nevertheless as long as it gets above a
    /// configured minimum").
    pub fn start(
        rm: &ResourceManager,
        workers: Vec<NodeId>,
        priority: Priority,
        slice: ResourceFootprint,
        target_slices: u32,
        min_slices: u32,
    ) -> Result<DbAgent> {
        let app = rm.register_app(priority);
        let mut agent = DbAgent {
            app,
            workers,
            slice,
            target_slices,
            min_slices,
            held: Vec::new(),
        };
        agent.renegotiate(rm)?;
        for &w in &agent.workers {
            let have = agent.slices_on(w);
            if have < min_slices {
                // Give back what we got and fail startup.
                for s in agent.held.drain(..) {
                    let _ = rm.release_container(s.container);
                }
                return Err(VhError::Yarn(format!(
                    "node {w}: only {have} slices granted, minimum is {min_slices}"
                )));
            }
        }
        Ok(agent)
    }

    pub fn app(&self) -> AppId {
        self.app
    }

    fn slices_on(&self, node: NodeId) -> u32 {
        self.held.iter().filter(|s| s.node == node).count() as u32
    }

    /// The per-node budget the workload manager may currently use.
    pub fn footprint(&self) -> HashMap<NodeId, ResourceFootprint> {
        self.workers
            .iter()
            .map(|&w| {
                let n = self.slices_on(w);
                (
                    w,
                    ResourceFootprint {
                        cores: self.slice.cores * n,
                        mem: self.slice.mem * n as u64,
                    },
                )
            })
            .collect()
    }

    /// Total cores across the worker set (quick workload-manager input).
    pub fn total_cores(&self) -> u32 {
        self.held.len() as u32 * self.slice.cores
    }

    /// Poll dummy containers: drop preempted slices. Returns true if the
    /// footprint changed (session master should retune the scheduler).
    pub fn poll(&mut self, rm: &ResourceManager) -> bool {
        let preempted = rm.poll_preemptions(self.app);
        if preempted.is_empty() {
            return false;
        }
        self.held.retain(|s| !preempted.contains(&s.container));
        true
    }

    /// Try to grow back to the target footprint ("VectorH will periodically
    /// negotiate with YARN to go back to its target resource footprint").
    /// Returns the number of slices gained.
    pub fn renegotiate(&mut self, rm: &ResourceManager) -> Result<u32> {
        let mut gained = 0;
        for &w in &self.workers.clone() {
            while self.slices_on(w) < self.target_slices {
                match rm.request_container(self.app, w, self.slice.cores, self.slice.mem) {
                    Ok(grant) => {
                        self.held.push(Slice {
                            container: grant.id,
                            node: w,
                        });
                        gained += 1;
                    }
                    Err(_) => break, // node full; try again later
                }
            }
        }
        Ok(gained)
    }

    /// Voluntarily shrink to `slices` per node (self-regulating footprint).
    pub fn shrink_to(&mut self, rm: &ResourceManager, slices: u32) -> Result<()> {
        for &w in &self.workers.clone() {
            while self.slices_on(w) > slices.max(self.min_slices) {
                if let Some(pos) = self.held.iter().position(|s| s.node == w) {
                    let s = self.held.remove(pos);
                    rm.release_container(s.container)?;
                } else {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Is the agent still above its minimum on every worker?
    pub fn healthy(&self) -> bool {
        self.workers
            .iter()
            .all(|&w| self.slices_on(w) >= self.min_slices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rm::RmConfig;

    fn rm() -> ResourceManager {
        ResourceManager::new(
            vec![NodeId(0), NodeId(1)],
            RmConfig {
                cores_per_node: 8,
                mem_per_node: 80,
            },
        )
    }

    fn slice() -> ResourceFootprint {
        ResourceFootprint { cores: 2, mem: 20 }
    }

    #[test]
    fn starts_at_target_when_cluster_is_free() {
        let rm = rm();
        let agent = DbAgent::start(&rm, vec![NodeId(0), NodeId(1)], 5, slice(), 3, 1).unwrap();
        let fp = agent.footprint();
        assert_eq!(fp[&NodeId(0)], ResourceFootprint { cores: 6, mem: 60 });
        assert_eq!(fp[&NodeId(1)], ResourceFootprint { cores: 6, mem: 60 });
        assert_eq!(agent.total_cores(), 12);
        assert!(agent.healthy());
    }

    #[test]
    fn starts_above_minimum_on_busy_cluster() {
        let rm = rm();
        // Another app eats most of node 0.
        let other = rm.register_app(5);
        rm.request_container(other, NodeId(0), 6, 60).unwrap();
        let agent = DbAgent::start(&rm, vec![NodeId(0), NodeId(1)], 5, slice(), 3, 1).unwrap();
        let fp = agent.footprint();
        assert_eq!(fp[&NodeId(0)].cores, 2); // got 1 slice
        assert_eq!(fp[&NodeId(1)].cores, 6); // full target
    }

    #[test]
    fn fails_below_minimum() {
        let rm = rm();
        let other = rm.register_app(9);
        rm.request_container(other, NodeId(0), 8, 80).unwrap();
        // Same-priority dbAgent cannot preempt: minimum unreachable.
        assert!(DbAgent::start(&rm, vec![NodeId(0), NodeId(1)], 9, slice(), 3, 1).is_err());
        // And the failed start released anything it had grabbed on node 1.
        assert_eq!(rm.free_on(NodeId(1)), (8, 80));
    }

    #[test]
    fn preemption_shrinks_then_renegotiation_recovers() {
        let rm = rm();
        let mut agent = DbAgent::start(&rm, vec![NodeId(0), NodeId(1)], 2, slice(), 3, 1).unwrap();
        assert_eq!(agent.total_cores(), 12);
        // Higher-priority job takes half of node 0.
        let vip = rm.register_app(8);
        let vip_grant = rm.request_container(vip, NodeId(0), 4, 40).unwrap();
        assert!(agent.poll(&rm), "footprint changed");
        let fp = agent.footprint();
        assert!(fp[&NodeId(0)].cores < 6, "shrunk on node 0: {fp:?}");
        assert!(agent.healthy());
        // VIP leaves; periodic renegotiation grows back to target.
        rm.release_container(vip_grant.id).unwrap();
        let gained = agent.renegotiate(&rm).unwrap();
        assert!(gained > 0);
        assert_eq!(agent.footprint()[&NodeId(0)].cores, 6);
    }

    #[test]
    fn voluntary_shrink_releases_resources() {
        let rm = rm();
        let mut agent = DbAgent::start(&rm, vec![NodeId(0), NodeId(1)], 2, slice(), 3, 1).unwrap();
        agent.shrink_to(&rm, 1).unwrap();
        assert_eq!(agent.total_cores(), 4); // 1 slice × 2 nodes × 2 cores
        assert_eq!(rm.free_on(NodeId(0)), (6, 60));
        assert!(agent.healthy());
    }

    #[test]
    fn poll_without_preemption_reports_no_change() {
        let rm = rm();
        let mut agent = DbAgent::start(&rm, vec![NodeId(0)], 2, slice(), 1, 1).unwrap();
        assert!(!agent.poll(&rm));
    }
}
