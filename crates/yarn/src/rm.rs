//! A simulated YARN ResourceManager.
//!
//! Models what §4 needs: per-node core/memory capacities, container grants
//! against demands, priority queues (CapacityScheduler-style), and
//! preemption — "newly arriving high-priority jobs may cause running jobs to
//! be pre-empted ... first by asking their AMs to decrease resource usage
//! and after a timeout by killing their containers". Preempted container ids
//! land in a per-application event queue that the owner polls (the dummy
//! containers of VectorH "monitor once in a while ... to ping back their
//! live status").

use std::collections::HashMap;

use vectorh_common::sync::Mutex;
use vectorh_common::{ContainerId, NodeId, Result, VhError};

/// Scheduling priority (higher wins).
pub type Priority = u32;

/// Application handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub u32);

/// Per-node capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmConfig {
    pub cores_per_node: u32,
    pub mem_per_node: u64,
}

/// A granted container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerGrant {
    pub id: ContainerId,
    pub app: AppId,
    pub node: NodeId,
    pub cores: u32,
    pub mem: u64,
    pub priority: Priority,
}

#[derive(Default)]
struct Inner {
    apps: HashMap<AppId, Priority>,
    containers: HashMap<ContainerId, ContainerGrant>,
    next_app: u32,
    next_container: u32,
    /// Preempted (or lost-with-node) container ids per app, waiting to be
    /// polled.
    preempted: HashMap<AppId, Vec<ContainerId>>,
    /// NodeManagers that stopped heartbeating.
    lost: std::collections::HashSet<NodeId>,
}

/// The resource manager.
pub struct ResourceManager {
    config: RmConfig,
    nodes: Vec<NodeId>,
    inner: Mutex<Inner>,
}

impl ResourceManager {
    pub fn new(nodes: Vec<NodeId>, config: RmConfig) -> ResourceManager {
        ResourceManager {
            config,
            nodes,
            inner: Mutex::new(Inner::default()),
        }
    }

    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    pub fn config(&self) -> RmConfig {
        self.config
    }

    /// Register an application with a priority.
    pub fn register_app(&self, priority: Priority) -> AppId {
        let mut inner = self.inner.lock();
        let id = AppId(inner.next_app);
        inner.next_app += 1;
        inner.apps.insert(id, priority);
        id
    }

    fn used_on(inner: &Inner, node: NodeId) -> (u32, u64) {
        inner
            .containers
            .values()
            .filter(|c| c.node == node)
            .fold((0, 0), |(c, m), g| (c + g.cores, m + g.mem))
    }

    /// Free resources on a node.
    pub fn free_on(&self, node: NodeId) -> (u32, u64) {
        let inner = self.inner.lock();
        let (uc, um) = Self::used_on(&inner, node);
        (
            self.config.cores_per_node - uc,
            self.config.mem_per_node - um,
        )
    }

    /// Cluster node report: (node, free cores, free mem).
    pub fn cluster_report(&self) -> Vec<(NodeId, u32, u64)> {
        self.nodes
            .iter()
            .map(|&n| {
                let (c, m) = self.free_on(n);
                (n, c, m)
            })
            .collect()
    }

    /// Request a container on a specific node. Grants if capacity is free;
    /// otherwise preempts lower-priority containers on that node until the
    /// request fits (or fails if it never can).
    pub fn request_container(
        &self,
        app: AppId,
        node: NodeId,
        cores: u32,
        mem: u64,
    ) -> Result<ContainerGrant> {
        if cores > self.config.cores_per_node || mem > self.config.mem_per_node {
            return Err(VhError::Yarn("request exceeds node capacity".into()));
        }
        if !self.nodes.contains(&node) {
            return Err(VhError::Yarn(format!("unknown node {node}")));
        }
        let mut inner = self.inner.lock();
        if inner.lost.contains(&node) {
            return Err(VhError::Yarn(format!("node {node} is lost")));
        }
        let priority = *inner
            .apps
            .get(&app)
            .ok_or_else(|| VhError::Yarn("unknown app".into()))?;
        loop {
            let (uc, um) = Self::used_on(&inner, node);
            if uc + cores <= self.config.cores_per_node && um + mem <= self.config.mem_per_node {
                let id = ContainerId(inner.next_container);
                inner.next_container += 1;
                let grant = ContainerGrant {
                    id,
                    app,
                    node,
                    cores,
                    mem,
                    priority,
                };
                inner.containers.insert(id, grant.clone());
                return Ok(grant);
            }
            // Preempt the lowest-priority victim strictly below us.
            let victim = inner
                .containers
                .values()
                .filter(|c| c.node == node && c.priority < priority)
                .min_by_key(|c| (c.priority, c.id))
                .map(|c| c.id);
            match victim {
                Some(v) => {
                    let victim_grant = inner.containers.remove(&v).expect("victim exists");
                    inner.preempted.entry(victim_grant.app).or_default().push(v);
                }
                None => {
                    return Err(VhError::Yarn(format!(
                        "insufficient resources on {node} and nothing to preempt"
                    )))
                }
            }
        }
    }

    /// Release a container voluntarily.
    pub fn release_container(&self, id: ContainerId) -> Result<()> {
        let mut inner = self.inner.lock();
        inner
            .containers
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| VhError::Yarn(format!("unknown container {id}")))
    }

    /// A NodeManager stopped heartbeating: all its containers are lost and
    /// reported to their owners through the same notification queue as
    /// preemptions (the AM heartbeat is how YARN delivers both), and the
    /// node stops accepting new container requests. Returns the lost
    /// container ids.
    pub fn node_lost(&self, node: NodeId) -> Vec<ContainerId> {
        let mut inner = self.inner.lock();
        inner.lost.insert(node);
        let dead: Vec<ContainerGrant> = inner
            .containers
            .values()
            .filter(|c| c.node == node)
            .cloned()
            .collect();
        let mut ids = Vec::with_capacity(dead.len());
        for g in dead {
            inner.containers.remove(&g.id);
            inner.preempted.entry(g.app).or_default().push(g.id);
            ids.push(g.id);
        }
        ids.sort_unstable();
        ids
    }

    /// A NodeManager came back (node rejoin): it resumes heartbeating and
    /// accepts container requests again. Containers lost at death are NOT
    /// restored — the owning AM must re-request them. Errors if the node
    /// was never registered.
    pub fn node_added(&self, node: NodeId) -> Result<()> {
        if !self.nodes.contains(&node) {
            return Err(VhError::Yarn(format!("unknown node {node}")));
        }
        self.inner.lock().lost.remove(&node);
        Ok(())
    }

    /// Registered nodes still heartbeating.
    pub fn alive_nodes(&self) -> Vec<NodeId> {
        let inner = self.inner.lock();
        self.nodes
            .iter()
            .copied()
            .filter(|n| !inner.lost.contains(n))
            .collect()
    }

    /// Drain the preemption notifications for an app (dummy-container poll).
    pub fn poll_preemptions(&self, app: AppId) -> Vec<ContainerId> {
        self.inner.lock().preempted.remove(&app).unwrap_or_default()
    }

    /// Containers an app currently holds.
    pub fn containers_of(&self, app: AppId) -> Vec<ContainerGrant> {
        let inner = self.inner.lock();
        let mut v: Vec<ContainerGrant> = inner
            .containers
            .values()
            .filter(|c| c.app == app)
            .cloned()
            .collect();
        v.sort_by_key(|c| c.id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm() -> ResourceManager {
        ResourceManager::new(
            vec![NodeId(0), NodeId(1)],
            RmConfig {
                cores_per_node: 8,
                mem_per_node: 64,
            },
        )
    }

    #[test]
    fn grants_until_capacity() {
        let rm = rm();
        let app = rm.register_app(10);
        let g1 = rm.request_container(app, NodeId(0), 4, 32).unwrap();
        let _g2 = rm.request_container(app, NodeId(0), 4, 32).unwrap();
        assert!(rm.request_container(app, NodeId(0), 1, 1).is_err());
        assert_eq!(rm.free_on(NodeId(0)), (0, 0));
        assert_eq!(rm.free_on(NodeId(1)), (8, 64));
        rm.release_container(g1.id).unwrap();
        assert_eq!(rm.free_on(NodeId(0)), (4, 32));
    }

    #[test]
    fn higher_priority_preempts() {
        let rm = rm();
        let low = rm.register_app(1);
        let high = rm.register_app(5);
        let l1 = rm.request_container(low, NodeId(0), 4, 32).unwrap();
        let _l2 = rm.request_container(low, NodeId(0), 4, 32).unwrap();
        // High-priority request forces preemption of one low container.
        let h = rm.request_container(high, NodeId(0), 4, 32).unwrap();
        assert_eq!(h.cores, 4);
        let preempted = rm.poll_preemptions(low);
        assert_eq!(preempted.len(), 1);
        assert_eq!(preempted[0], l1.id);
        assert!(rm.poll_preemptions(low).is_empty(), "events drained");
    }

    #[test]
    fn equal_priority_does_not_preempt() {
        let rm = rm();
        let a = rm.register_app(3);
        let b = rm.register_app(3);
        rm.request_container(a, NodeId(0), 8, 64).unwrap();
        assert!(rm.request_container(b, NodeId(0), 1, 1).is_err());
    }

    #[test]
    fn oversized_and_unknown_requests_rejected() {
        let rm = rm();
        let app = rm.register_app(1);
        assert!(rm.request_container(app, NodeId(0), 9, 1).is_err());
        assert!(rm.request_container(app, NodeId(7), 1, 1).is_err());
        assert!(rm.request_container(AppId(99), NodeId(0), 1, 1).is_err());
        assert!(rm.release_container(ContainerId(42)).is_err());
    }

    #[test]
    fn node_loss_reports_containers_and_blocks_grants() {
        let rm = rm();
        let app = rm.register_app(2);
        let g0 = rm.request_container(app, NodeId(0), 2, 16).unwrap();
        let g1 = rm.request_container(app, NodeId(1), 2, 16).unwrap();
        let lost = rm.node_lost(NodeId(0));
        assert_eq!(lost, vec![g0.id]);
        // The loss is delivered through the AM notification queue.
        assert_eq!(rm.poll_preemptions(app), vec![g0.id]);
        // The survivor is untouched; the dead node refuses new grants.
        assert_eq!(rm.containers_of(app), vec![g1]);
        assert!(rm.request_container(app, NodeId(0), 1, 1).is_err());
        assert_eq!(rm.alive_nodes(), vec![NodeId(1)]);
        // Losing an empty node is fine and idempotent.
        assert!(rm.node_lost(NodeId(0)).is_empty());
    }

    #[test]
    fn node_added_readmits_a_lost_node() {
        let rm = rm();
        let app = rm.register_app(2);
        rm.request_container(app, NodeId(0), 2, 16).unwrap();
        rm.node_lost(NodeId(0));
        assert!(rm.request_container(app, NodeId(0), 1, 1).is_err());
        rm.node_added(NodeId(0)).unwrap();
        assert_eq!(rm.alive_nodes(), vec![NodeId(0), NodeId(1)]);
        // Lost containers stay lost; new requests are granted afresh.
        assert!(rm.containers_of(app).is_empty());
        assert!(rm.request_container(app, NodeId(0), 2, 16).is_ok());
        // Unknown nodes are rejected; re-adding a live node is a no-op.
        assert!(rm.node_added(NodeId(9)).is_err());
        assert!(rm.node_added(NodeId(0)).is_ok());
    }

    #[test]
    fn cluster_report_reflects_usage() {
        let rm = rm();
        let app = rm.register_app(1);
        rm.request_container(app, NodeId(1), 2, 16).unwrap();
        let report = rm.cluster_report();
        assert_eq!(report[0], (NodeId(0), 8, 64));
        assert_eq!(report[1], (NodeId(1), 6, 48));
        assert_eq!(rm.containers_of(app).len(), 1);
    }
}
