//! Min-cost max-flow.
//!
//! Successive shortest augmenting paths with SPFA (the graphs here are tiny
//! bipartite networks — hundreds of nodes — so asymptotics are irrelevant;
//! correctness is what the placement decisions depend on).

use vectorh_common::{Result, VhError};

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: i64,
    cost: i64,
    flow: i64,
}

/// A min-cost max-flow network builder/solver.
#[derive(Debug, Clone, Default)]
pub struct MinCostFlow {
    edges: Vec<Edge>,
    /// Adjacency: node → edge indexes (even = forward, odd = residual).
    adj: Vec<Vec<usize>>,
}

impl MinCostFlow {
    pub fn new(n_nodes: usize) -> MinCostFlow {
        MinCostFlow {
            edges: Vec::new(),
            adj: vec![Vec::new(); n_nodes],
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Add a directed edge; returns its id (use with [`MinCostFlow::flow_on`]).
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: i64) -> usize {
        let id = self.edges.len();
        self.edges.push(Edge {
            to,
            cap,
            cost,
            flow: 0,
        });
        self.adj[from].push(id);
        self.edges.push(Edge {
            to: from,
            cap: 0,
            cost: -cost,
            flow: 0,
        });
        self.adj[to].push(id + 1);
        id
    }

    /// Flow currently assigned to edge `id`.
    pub fn flow_on(&self, id: usize) -> i64 {
        self.edges[id].flow
    }

    /// Run min-cost max-flow from `s` to `t`. Returns `(max_flow, min_cost)`.
    pub fn solve(&mut self, s: usize, t: usize) -> Result<(i64, i64)> {
        if s >= self.n_nodes() || t >= self.n_nodes() || s == t {
            return Err(VhError::Yarn("bad source/sink".into()));
        }
        let n = self.n_nodes();
        let mut total_flow = 0i64;
        let mut total_cost = 0i64;
        loop {
            // SPFA shortest path by cost over residual edges.
            let mut dist = vec![i64::MAX; n];
            let mut in_queue = vec![false; n];
            let mut prev_edge = vec![usize::MAX; n];
            dist[s] = 0;
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(s);
            in_queue[s] = true;
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                for &ei in &self.adj[u] {
                    let e = &self.edges[ei];
                    if e.cap - e.flow > 0 && dist[u] != i64::MAX && dist[u] + e.cost < dist[e.to] {
                        dist[e.to] = dist[u] + e.cost;
                        prev_edge[e.to] = ei;
                        if !in_queue[e.to] {
                            queue.push_back(e.to);
                            in_queue[e.to] = true;
                        }
                    }
                }
            }
            if dist[t] == i64::MAX {
                break;
            }
            // Find bottleneck along the path.
            let mut push = i64::MAX;
            let mut v = t;
            while v != s {
                let ei = prev_edge[v];
                let e = &self.edges[ei];
                push = push.min(e.cap - e.flow);
                v = self.edges[ei ^ 1].to;
            }
            // Apply.
            let mut v = t;
            while v != s {
                let ei = prev_edge[v];
                self.edges[ei].flow += push;
                self.edges[ei ^ 1].flow -= push;
                v = self.edges[ei ^ 1].to;
            }
            total_flow += push;
            total_cost += push * dist[t];
        }
        Ok((total_flow, total_cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::rng::SplitMix64;

    #[test]
    fn simple_path() {
        let mut g = MinCostFlow::new(3);
        let e0 = g.add_edge(0, 1, 5, 1);
        let e1 = g.add_edge(1, 2, 3, 2);
        let (flow, cost) = g.solve(0, 2).unwrap();
        assert_eq!(flow, 3);
        assert_eq!(cost, 3 * 3);
        assert_eq!(g.flow_on(e0), 3);
        assert_eq!(g.flow_on(e1), 3);
    }

    #[test]
    fn prefers_cheap_path() {
        // Two parallel paths: cost 1 (cap 2) and cost 10 (cap 5); need 4.
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 4, 0);
        let cheap = g.add_edge(1, 2, 2, 1);
        let dear = g.add_edge(1, 3, 5, 10);
        g.add_edge(2, 3, 10, 0);
        // sink = 3
        let (flow, cost) = g.solve(0, 3).unwrap();
        assert_eq!(flow, 4);
        assert_eq!(g.flow_on(cheap), 2);
        assert_eq!(g.flow_on(dear), 2);
        assert_eq!(cost, 2 + 2 * 10);
    }

    #[test]
    fn disconnected_sink_zero_flow() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 5, 1);
        let (flow, cost) = g.solve(0, 2).unwrap();
        assert_eq!((flow, cost), (0, 0));
    }

    #[test]
    fn rejects_bad_endpoints() {
        let mut g = MinCostFlow::new(2);
        assert!(g.solve(0, 0).is_err());
        assert!(g.solve(0, 5).is_err());
    }

    /// Brute force: enumerate assignments of a tiny bipartite b-matching and
    /// compare optimal cost.
    #[test]
    fn matches_brute_force_on_small_bipartite() {
        let mut rng = SplitMix64::new(5);
        for _case in 0..30 {
            let n_left = 3usize;
            let n_right = 2usize;
            // cost[l][r] in 0..4; each left must be assigned exactly once;
            // each right has capacity 2.
            let costs: Vec<Vec<i64>> = (0..n_left)
                .map(|_| (0..n_right).map(|_| rng.next_bounded(4) as i64).collect())
                .collect();
            // Flow model: s=0, left=1..4, right=4..6, t=6
            let mut g = MinCostFlow::new(2 + n_left + n_right);
            let s = 0;
            let t = 1 + n_left + n_right;
            for (l, row) in costs.iter().enumerate().take(n_left) {
                g.add_edge(s, 1 + l, 1, 0);
                for (r, &cost) in row.iter().enumerate().take(n_right) {
                    g.add_edge(1 + l, 1 + n_left + r, 1, cost);
                }
            }
            for r in 0..n_right {
                g.add_edge(1 + n_left + r, t, 2, 0);
            }
            let (flow, cost) = g.solve(s, t).unwrap();
            assert_eq!(flow, n_left as i64);

            // Brute force all assignments l→r with right capacity 2.
            let mut best = i64::MAX;
            for a0 in 0..n_right {
                for a1 in 0..n_right {
                    for a2 in 0..n_right {
                        let assign = [a0, a1, a2];
                        let mut cap = vec![0; n_right];
                        for &a in &assign {
                            cap[a] += 1;
                        }
                        if cap.iter().any(|&c| c > 2) {
                            continue;
                        }
                        let c: i64 = assign.iter().enumerate().map(|(l, &r)| costs[l][r]).sum();
                        best = best.min(c);
                    }
                }
            }
            assert_eq!(cost, best, "costs {costs:?}");
        }
    }
}
