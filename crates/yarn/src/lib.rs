//! Simulated YARN and the VectorH elasticity machinery (§4).
//!
//! * [`flow`] — a min-cost max-flow solver (successive shortest paths with
//!   potentials), the engine behind the Figure 3 bipartite matching.
//! * [`placement`] — the dbAgent's three decisions as flow problems:
//!   worker-set selection, partition **affinity mapping** (which R nodes
//!   store each partition) and **responsibility assignment** (which worker
//!   owns each partition) — reproducing the Figure 2 before/after-failure
//!   layouts.
//! * [`rm`] — a YARN resource manager: per-node core/memory capacities,
//!   container grants against min/desired demands, priority queues and
//!   preemption.
//! * [`dbagent`] — VectorH's out-of-band YARN client: dummy containers in
//!   slices that can be grown/shrunk gradually, preemption notifications
//!   that re-tune the workload manager rather than killing the server.

pub mod dbagent;
pub mod flow;
pub mod placement;
pub mod rm;

pub use dbagent::{DbAgent, ResourceFootprint};
pub use flow::MinCostFlow;
pub use placement::{affinity_mapping, responsibility_assignment, select_workers, PlacementInput};
pub use rm::{ContainerGrant, Priority, ResourceManager, RmConfig};
