//! TCP fabric: real sockets under the [`Fabric`] interface.
//!
//! Topology: every listening endpoint owns one `TcpListener`; each
//! [`FrameTx`] opens its own connection to the peer, so a connection maps
//! one-to-one to a `(from, to, channel)` stream. Data flows dialer →
//! acceptor; `Credit` frames flow back on the same socket.
//!
//! **Handshake & fencing.** The first frame on a connection is `Hello`,
//! carrying the dialer's node, channel and master epoch. The acceptor
//! compares against its [`EpochSource`]: a dialer announcing an epoch older
//! than the acceptor's current one is a restarted/deposed peer and gets a
//! `Reject` (surfaced to the sender as [`VhError::StaleMaster`]) instead of
//! silently resuming mid-query.
//!
//! **Credit-based flow control (MPI-style backpressure).** The receiver
//! grants `window` credits per stream when the connection handshakes (or
//! when the channel is bound, whichever happens second); every frame the
//! consumer drains returns one credit. A sender with zero credits blocks —
//! exactly the behaviour of an MPI send once the receiver's buffers fill.
//! Credit frames also piggyback the receiver's dedup watermark, which is
//! what lets the sender trim its retransmission buffer.
//!
//! **Reliability.** A sender keeps every uncredited frame. If the
//! connection dies — a real socket error, or the injected `Disconnect` /
//! `PartialFrame` faults — it redials (subject to fencing), waits for a
//! fresh grant, and retransmits. The receiver's per-stream
//! [`DedupWindow`] drops replays of frames that did survive, crediting
//! them immediately so the window never leaks. Wire sequences are
//! contiguous per stream, so receiver memory stays bounded by the reorder
//! window (here: 0 — TCP is FIFO — plus retransmission overlap).

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use vectorh_common::channel::{self, Receiver, Sender};
use vectorh_common::fault::{FaultSite, SharedFaultHook};
use vectorh_common::sync::Mutex;
use vectorh_common::{NodeId, Result, VhError};

use crate::dedup::DedupWindow;
use crate::frame::{read_frame, write_frame, DecodeError, Frame, FrameKind};
use crate::{Endpoint, EpochSource, Fabric, FrameRx, FrameTx, RxItem, RxKind, FIRST_DATA_CHANNEL};

/// Attempts before a (possibly fault-injected) refused dial is fatal.
const DIAL_ATTEMPTS: u32 = 8;

/// Hard deadline for acquiring a credit before the sender errors out.
const CREDIT_DEADLINE: Duration = Duration::from_secs(20);

type PeerMap = Arc<Mutex<HashMap<NodeId, SocketAddr>>>;

/// A cluster of TCP endpoints. [`TcpFabric::loopback`] builds every node in
/// one process (the engine's `cluster_mode = Tcp`); [`TcpFabric::single`]
/// builds one node for multi-process deployments, with peers registered by
/// address.
pub struct TcpFabric {
    endpoints: Mutex<HashMap<NodeId, Arc<TcpEndpoint>>>,
    peers: PeerMap,
    epoch: Arc<dyn EpochSource>,
    hook: Option<SharedFaultHook>,
    next_channel: AtomicU32,
}

impl TcpFabric {
    /// One listening endpoint per node, all on 127.0.0.1, fully meshed.
    pub fn loopback(
        nodes: &[NodeId],
        epoch: Arc<dyn EpochSource>,
        hook: Option<SharedFaultHook>,
    ) -> Result<TcpFabric> {
        let fabric = TcpFabric::empty(epoch, hook);
        for &node in nodes {
            fabric.listen(node)?;
        }
        Ok(fabric)
    }

    /// One listening endpoint (this process's node); peers join via
    /// [`TcpFabric::add_peer`].
    pub fn single(
        node: NodeId,
        epoch: Arc<dyn EpochSource>,
        hook: Option<SharedFaultHook>,
    ) -> Result<TcpFabric> {
        let fabric = TcpFabric::empty(epoch, hook);
        fabric.listen(node)?;
        Ok(fabric)
    }

    fn empty(epoch: Arc<dyn EpochSource>, hook: Option<SharedFaultHook>) -> TcpFabric {
        TcpFabric {
            endpoints: Mutex::new(HashMap::new()),
            peers: Arc::new(Mutex::new(HashMap::new())),
            epoch,
            hook,
            next_channel: AtomicU32::new(FIRST_DATA_CHANNEL),
        }
    }

    fn listen(&self, node: NodeId) -> Result<()> {
        let ep = TcpEndpoint::listen(
            node,
            self.epoch.clone(),
            self.hook.clone(),
            self.peers.clone(),
        )?;
        self.peers.lock().insert(node, ep.local_addr);
        self.endpoints.lock().insert(node, Arc::new(ep));
        Ok(())
    }

    /// Register a remote peer's listening address.
    pub fn add_peer(&self, node: NodeId, addr: SocketAddr) {
        self.peers.lock().insert(node, addr);
    }

    /// The local listening address of `node`, if it listens here.
    pub fn addr_of(&self, node: NodeId) -> Option<SocketAddr> {
        self.endpoints.lock().get(&node).map(|ep| ep.local_addr)
    }

    /// A dial-only endpoint announcing `epoch` in its handshakes — how a
    /// restarted peer shows up. With a stale epoch source it is exactly the
    /// peer the acceptor must fence.
    pub fn dialer(&self, node: NodeId, epoch: Arc<dyn EpochSource>) -> Arc<dyn Endpoint> {
        Arc::new(TcpEndpoint::dial_only(
            node,
            epoch,
            self.hook.clone(),
            self.peers.clone(),
        ))
    }
}

impl Fabric for TcpFabric {
    fn endpoint(&self, node: NodeId) -> Result<Arc<dyn Endpoint>> {
        self.endpoints
            .lock()
            .get(&node)
            .cloned()
            .map(|ep| ep as Arc<dyn Endpoint>)
            .ok_or_else(|| VhError::Net(format!("tcp fabric: no endpoint for {node}")))
    }

    fn alloc_channel(&self) -> u32 {
        self.next_channel.fetch_add(1, Ordering::SeqCst)
    }

    fn mode(&self) -> &'static str {
        "tcp"
    }
}

struct InboxEntry {
    tx: Sender<RxItem>,
    window: u32,
}

/// Receiver-side state guarded by one lock so grant-on-bind and
/// grant-on-handshake cannot race each other into a zero-grant deadlock.
/// Inbox pushes and socket writes happen *outside* this lock.
#[derive(Default)]
struct EndpointState {
    inboxes: HashMap<u32, InboxEntry>,
    /// Write halves of accepted connections, keyed by the stream they carry.
    writers: HashMap<(NodeId, u32), Arc<StdMutex<TcpStream>>>,
    /// Per-stream exactly-once filters; persist across reconnects.
    dedups: HashMap<(NodeId, u32), DedupWindow>,
}

struct TcpEndpoint {
    node: NodeId,
    epoch: Arc<dyn EpochSource>,
    hook: Option<SharedFaultHook>,
    peers: PeerMap,
    state: Arc<Mutex<EndpointState>>,
    local_addr: SocketAddr,
}

impl TcpEndpoint {
    fn listen(
        node: NodeId,
        epoch: Arc<dyn EpochSource>,
        hook: Option<SharedFaultHook>,
        peers: PeerMap,
    ) -> Result<TcpEndpoint> {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| VhError::Net(format!("tcp fabric: bind failed: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| VhError::Net(format!("tcp fabric: local_addr: {e}")))?;
        let ep = TcpEndpoint {
            node,
            epoch,
            hook,
            peers,
            state: Arc::new(Mutex::new(EndpointState::default())),
            local_addr,
        };
        let state = ep.state.clone();
        let my_epoch = ep.epoch.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let state = state.clone();
                let my_epoch = my_epoch.clone();
                std::thread::spawn(move || serve_conn(node, stream, state, my_epoch));
            }
        });
        Ok(ep)
    }

    fn dial_only(
        node: NodeId,
        epoch: Arc<dyn EpochSource>,
        hook: Option<SharedFaultHook>,
        peers: PeerMap,
    ) -> TcpEndpoint {
        TcpEndpoint {
            node,
            epoch,
            hook,
            peers,
            state: Arc::new(Mutex::new(EndpointState::default())),
            local_addr: SocketAddr::from(([0, 0, 0, 0], 0)),
        }
    }
}

impl Endpoint for TcpEndpoint {
    fn node(&self) -> NodeId {
        self.node
    }

    fn bind(&self, channel: u32, window: u32) -> Result<Box<dyn FrameRx>> {
        let window = window.max(1);
        let (tx, rx) = channel::bounded(2 * window as usize);
        let grants: Vec<(NodeId, Arc<StdMutex<TcpStream>>, u64)> = {
            let mut state = self.state.lock();
            state.inboxes.insert(channel, InboxEntry { tx, window });
            // Connections that handshook before this bind never got a
            // grant for the channel; issue it now, under the same lock the
            // handshake uses, so exactly one of the two paths grants.
            state
                .writers
                .iter()
                .filter(|((_, ch), _)| *ch == channel)
                .map(|((peer, _), w)| {
                    let wm = state
                        .dedups
                        .get(&(*peer, channel))
                        .map(|d| d.watermark())
                        .unwrap_or(0);
                    (*peer, w.clone(), wm)
                })
                .collect()
        };
        for (_, writer, wm) in grants {
            let _ = send_credit(&writer, self.node, channel, window as u64, wm);
        }
        Ok(Box::new(TcpRx {
            node: self.node,
            channel,
            rx,
            state: self.state.clone(),
        }))
    }

    fn sender(&self, to: NodeId, channel: u32) -> Result<Box<dyn FrameTx>> {
        Ok(Box::new(TcpTx {
            from: self.node,
            to,
            channel,
            epoch: self.epoch.clone(),
            hook: self.hook.clone(),
            peers: self.peers.clone(),
            conn: None,
            outstanding: VecDeque::new(),
            next_unsent: 0,
            seq: 0,
            stalls: 0,
        }))
    }
}

fn send_credit(
    writer: &Arc<StdMutex<TcpStream>>,
    from: NodeId,
    channel: u32,
    amount: u64,
    watermark: u64,
) -> Result<()> {
    let frame = Frame {
        kind: FrameKind::Credit,
        from: from.0 as u8,
        channel,
        seq: amount,
        epoch: watermark,
        payload: Vec::new(),
    };
    let mut stream = writer.lock().unwrap_or_else(|e| e.into_inner());
    write_frame(&mut *stream, &frame, None)
}

/// Acceptor side of one connection: handshake, then demux Data/Fin frames
/// into the bound inbox, crediting duplicates immediately.
fn serve_conn(
    me: NodeId,
    mut stream: TcpStream,
    state: Arc<Mutex<EndpointState>>,
    epoch: Arc<dyn EpochSource>,
) {
    let hello = match read_frame(&mut stream) {
        Ok(f) if f.kind == FrameKind::Hello => f,
        _ => return,
    };
    let peer = NodeId(hello.from as u32);
    let channel = hello.channel;
    let my_epoch = epoch.current_epoch();
    if hello.epoch < my_epoch {
        // A peer announcing an older epoch restarted across an election:
        // fence it out instead of letting it resume mid-query.
        let _ = write_frame(
            &mut stream,
            &Frame::control(FrameKind::Reject, me.0 as u8, channel, 0, my_epoch),
            None,
        );
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(StdMutex::new(write_half));
    if write_frame(
        &mut *writer.lock().unwrap_or_else(|e| e.into_inner()),
        &Frame::control(FrameKind::Welcome, me.0 as u8, channel, 0, my_epoch),
        None,
    )
    .is_err()
    {
        return;
    }
    // Register the credit writer and issue the initial grant if the channel
    // is already bound (bind() covers the other ordering).
    let grant = {
        let mut st = state.lock();
        st.writers.insert((peer, channel), writer.clone());
        st.inboxes.get(&channel).map(|inbox| {
            let wm = st
                .dedups
                .get(&(peer, channel))
                .map(|d| d.watermark())
                .unwrap_or(0);
            (inbox.window as u64, wm)
        })
    };
    if let Some((window, wm)) = grant {
        let _ = send_credit(&writer, me, channel, window, wm);
    }
    // A read error means closed, torn or corrupt: the dialer redials.
    while let Ok(frame) = read_frame(&mut stream) {
        let kind = match frame.kind {
            FrameKind::Data => RxKind::Data,
            FrameKind::Fin => RxKind::Fin,
            _ => continue,
        };
        let (fresh, wm, inbox_tx) = {
            let mut st = state.lock();
            let dedup = st.dedups.entry((peer, channel)).or_default();
            let fresh = dedup.insert(frame.seq);
            let wm = dedup.watermark();
            (fresh, wm, st.inboxes.get(&channel).map(|i| i.tx.clone()))
        };
        if !fresh {
            // A retransmit of something that already made it: the frame
            // consumed a sender credit but no inbox slot, so return the
            // credit immediately or the window would leak shut.
            let _ = send_credit(&writer, me, channel, 1, wm);
            continue;
        }
        let Some(inbox_tx) = inbox_tx else { continue };
        let item = RxItem {
            from: peer,
            seq: frame.seq,
            kind,
            payload: frame.payload,
        };
        // Outside the state lock: a full inbox blocks only this connection.
        if inbox_tx.send(item).is_err() {
            break; // channel was rebound/dropped
        }
    }
    let mut st = state.lock();
    if let Some(current) = st.writers.get(&(peer, channel)) {
        if Arc::ptr_eq(current, &writer) {
            st.writers.remove(&(peer, channel));
        }
    }
}

struct TcpRx {
    node: NodeId,
    channel: u32,
    rx: Receiver<RxItem>,
    state: Arc<Mutex<EndpointState>>,
}

impl TcpRx {
    /// Every drained frame returns one credit to its sender, piggybacking
    /// the current dedup watermark so the sender can trim retransmission
    /// state.
    fn credit_back(&self, from: NodeId) {
        let writer_wm = {
            let st = self.state.lock();
            st.writers.get(&(from, self.channel)).cloned().map(|w| {
                let wm = st
                    .dedups
                    .get(&(from, self.channel))
                    .map(|d| d.watermark())
                    .unwrap_or(0);
                (w, wm)
            })
        };
        if let Some((writer, wm)) = writer_wm {
            // A dead connection loses the credit; the reconnect re-grant
            // makes the window whole again.
            let _ = send_credit(&writer, self.node, self.channel, 1, wm);
        }
    }
}

impl FrameRx for TcpRx {
    fn recv(&mut self) -> Result<Option<RxItem>> {
        match self.rx.recv() {
            Ok(item) => {
                self.credit_back(item.from);
                Ok(Some(item))
            }
            Err(_) => Ok(None),
        }
    }

    fn try_recv(&mut self) -> Result<Option<RxItem>> {
        match self.rx.try_recv() {
            Some(item) => {
                self.credit_back(item.from);
                Ok(Some(item))
            }
            None => Ok(None),
        }
    }
}

/// Dialer-side connection state shared with its reader thread.
struct ConnShared {
    state: StdMutex<ConnState>,
    cv: Condvar,
}

#[derive(Default)]
struct ConnState {
    credits: u64,
    /// Highest dedup watermark reported by the receiver.
    acked: u64,
    dead: bool,
    /// Set when the acceptor rejected us: the epoch it is fenced to.
    fenced: Option<u64>,
}

struct Conn {
    stream: TcpStream,
    shared: Arc<ConnShared>,
}

struct TcpTx {
    from: NodeId,
    to: NodeId,
    channel: u32,
    epoch: Arc<dyn EpochSource>,
    hook: Option<SharedFaultHook>,
    peers: PeerMap,
    conn: Option<Conn>,
    /// Sent-but-unacked frames, oldest first (seq order).
    outstanding: VecDeque<Frame>,
    /// Index into `outstanding` of the first frame not yet written on the
    /// *current* connection; resets to 0 on reconnect (full retransmit).
    next_unsent: usize,
    seq: u64,
    stalls: u64,
}

impl TcpTx {
    fn detail(&self) -> String {
        format!("{}->{}:c{}", self.from, self.to, self.channel)
    }

    /// Dial + handshake, honouring the `ConnRefused` fault site.
    fn connect(&mut self) -> Result<()> {
        let addr = self
            .peers
            .lock()
            .get(&self.to)
            .copied()
            .ok_or_else(|| VhError::Net(format!("tcp fabric: unknown peer {}", self.to)))?;
        let detail = self.detail();
        let mut attempt = 0;
        let mut stream = loop {
            if let Some(hook) = &self.hook {
                let action = hook.decide(FaultSite::ConnRefused, &detail, attempt);
                if action.is_error() {
                    if matches!(action, vectorh_common::fault::FaultAction::PermanentError)
                        || attempt + 1 >= DIAL_ATTEMPTS
                    {
                        return Err(VhError::Net(format!(
                            "tcp fabric: connection refused ({detail})"
                        )));
                    }
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            }
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) if attempt + 1 < DIAL_ATTEMPTS => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(10 * attempt as u64));
                    let _ = e;
                }
                Err(e) => return Err(VhError::Net(format!("tcp fabric: dial {addr}: {e}"))),
            }
        };
        stream.set_nodelay(true).ok();
        let my_epoch = self.epoch.current_epoch();
        write_frame(
            &mut stream,
            &Frame::control(
                FrameKind::Hello,
                self.from.0 as u8,
                self.channel,
                0,
                my_epoch,
            ),
            None,
        )?;
        match read_frame(&mut stream) {
            Ok(f) if f.kind == FrameKind::Welcome => {}
            Ok(f) if f.kind == FrameKind::Reject => {
                return Err(VhError::StaleMaster(format!(
                    "tcp fabric: {detail} rejected: peer is at epoch {}, we announced {my_epoch}",
                    f.epoch
                )))
            }
            Ok(f) => {
                return Err(VhError::Net(format!(
                    "tcp fabric: unexpected handshake reply {:?}",
                    f.kind
                )))
            }
            Err(e) => return Err(e.into_vh()),
        }
        let shared = Arc::new(ConnShared {
            state: StdMutex::new(ConnState::default()),
            cv: Condvar::new(),
        });
        let read_half = stream
            .try_clone()
            .map_err(|e| VhError::Net(format!("tcp fabric: clone: {e}")))?;
        let reader_shared = shared.clone();
        std::thread::spawn(move || sender_reader(read_half, reader_shared));
        self.conn = Some(Conn { stream, shared });
        self.next_unsent = 0; // everything outstanding must be retransmitted
        Ok(())
    }

    /// Trim frames the receiver has acknowledged via its watermark.
    fn trim_acked(&mut self, acked: u64) {
        while let Some(front) = self.outstanding.front() {
            if front.seq < acked {
                self.outstanding.pop_front();
                self.next_unsent = self.next_unsent.saturating_sub(1);
            } else {
                break;
            }
        }
    }

    /// Block until one credit is available on the live connection; redials
    /// on death. Returns an error on fencing or deadline.
    fn acquire_credit(&mut self) -> Result<()> {
        let deadline = Instant::now() + CREDIT_DEADLINE;
        loop {
            if self.conn.is_none() {
                self.connect()?;
            }
            let shared = self.conn.as_ref().unwrap().shared.clone();
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            let mut waited = false;
            loop {
                if let Some(epoch) = st.fenced {
                    return Err(VhError::StaleMaster(format!(
                        "tcp fabric: {} fenced at epoch {epoch}",
                        self.detail()
                    )));
                }
                if st.dead {
                    drop(st);
                    self.conn = None;
                    break;
                }
                if st.credits > 0 {
                    st.credits -= 1;
                    let acked = st.acked;
                    drop(st);
                    self.trim_acked(acked);
                    if waited {
                        self.stalls += 1;
                    }
                    return Ok(());
                }
                if Instant::now() >= deadline {
                    return Err(VhError::Net(format!(
                        "tcp fabric: {} starved of credits (receiver not draining?)",
                        self.detail()
                    )));
                }
                waited = true;
                let (guard, _) = shared
                    .cv
                    .wait_timeout(st, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }
    }

    /// Drive the stream until every buffered frame has been written on a
    /// live connection.
    fn pump(&mut self) -> Result<()> {
        while self.next_unsent < self.outstanding.len() {
            self.acquire_credit()?;
            let frame = self.outstanding[self.next_unsent].clone();
            let detail = format!("{}#{}", self.detail(), frame.seq);
            let mut truncate = None;
            if let Some(hook) = &self.hook {
                if hook.decide(FaultSite::Disconnect, &detail, 0).is_error() {
                    // The connection drops between frames: tear it down and
                    // retransmit everything unacked on a fresh one.
                    self.conn = None;
                    continue;
                }
                if hook.decide(FaultSite::PartialFrame, &detail, 0).is_error() {
                    // Half a frame reaches the wire, then the connection
                    // dies. The receiver's length/CRC check discards it.
                    truncate = Some(11 + frame.payload.len() / 2);
                }
            }
            let conn = self.conn.as_mut().unwrap();
            match write_frame(&mut conn.stream, &frame, truncate) {
                Ok(()) => self.next_unsent += 1,
                Err(_) => {
                    // Torn or failed write: the credit we consumed is
                    // restored by the re-grant after reconnect.
                    self.conn = None;
                }
            }
        }
        Ok(())
    }

    fn enqueue(&mut self, kind: FrameKind, payload: &[u8]) -> Result<()> {
        let frame = Frame {
            kind,
            from: self.from.0 as u8,
            channel: self.channel,
            seq: self.seq,
            epoch: self.epoch.current_epoch(),
            payload: payload.to_vec(),
        };
        self.seq += 1;
        self.outstanding.push_back(frame);
        self.pump()
    }
}

impl FrameTx for TcpTx {
    fn send(&mut self, payload: &[u8]) -> Result<()> {
        self.enqueue(FrameKind::Data, payload)
    }

    fn finish(&mut self) -> Result<()> {
        self.enqueue(FrameKind::Fin, &[])
    }

    fn stalls(&self) -> u64 {
        self.stalls
    }
}

/// Reader thread of a dialer connection: turns Credit/Reject frames into
/// shared-state updates.
fn sender_reader(mut stream: TcpStream, shared: Arc<ConnShared>) {
    loop {
        match read_frame(&mut stream) {
            Ok(f) if f.kind == FrameKind::Credit => {
                let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                st.credits += f.seq;
                st.acked = st.acked.max(f.epoch);
                drop(st);
                shared.cv.notify_all();
            }
            Ok(f) if f.kind == FrameKind::Reject => {
                let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                st.fenced = Some(f.epoch);
                drop(st);
                shared.cv.notify_all();
                return;
            }
            Ok(_) => continue,
            Err(DecodeError::Closed) | Err(_) => {
                let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                st.dead = true;
                drop(st);
                shared.cv.notify_all();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharedEpoch;
    use vectorh_common::fault::{FaultAction, FaultHook};

    fn two_nodes(hook: Option<SharedFaultHook>) -> (TcpFabric, Arc<SharedEpoch>) {
        let epoch = Arc::new(SharedEpoch::new(1));
        let fabric = TcpFabric::loopback(&[NodeId(0), NodeId(1)], epoch.clone(), hook).unwrap();
        (fabric, epoch)
    }

    #[test]
    fn frames_flow_and_fin_terminates() {
        let (fabric, _) = two_nodes(None);
        let ch = fabric.alloc_channel();
        let b = fabric.endpoint(NodeId(1)).unwrap();
        // Window must cover the whole burst: nothing drains until the end.
        let mut rx = b.bind(ch, 32).unwrap();
        let a = fabric.endpoint(NodeId(0)).unwrap();
        let mut tx = a.sender(NodeId(1), ch).unwrap();
        for i in 0..20u8 {
            tx.send(&[i; 3]).unwrap();
        }
        tx.finish().unwrap();
        for i in 0..20u8 {
            let item = rx.recv().unwrap().unwrap();
            assert_eq!(item.kind, RxKind::Data);
            assert_eq!(item.seq, i as u64);
            assert_eq!(item.payload, [i; 3]);
            assert_eq!(item.from, NodeId(0));
        }
        assert_eq!(rx.recv().unwrap().unwrap().kind, RxKind::Fin);
    }

    #[test]
    fn bind_after_connect_still_grants_credits() {
        let (fabric, _) = two_nodes(None);
        let ch = fabric.alloc_channel();
        let a = fabric.endpoint(NodeId(0)).unwrap();
        let b = fabric.endpoint(NodeId(1)).unwrap();
        // Sender dials and blocks for credits before the receiver binds.
        let h = std::thread::spawn(move || {
            let mut tx = a.sender(NodeId(1), ch).unwrap();
            tx.send(b"late bind").unwrap();
            tx.stalls()
        });
        std::thread::sleep(Duration::from_millis(60));
        let mut rx = b.bind(ch, 2).unwrap();
        assert_eq!(rx.recv().unwrap().unwrap().payload, b"late bind");
        assert!(
            h.join().unwrap() >= 1,
            "sender must have stalled awaiting the grant"
        );
    }

    #[test]
    fn backpressure_blocks_sender_at_zero_credits() {
        let (fabric, _) = two_nodes(None);
        let ch = fabric.alloc_channel();
        let b = fabric.endpoint(NodeId(1)).unwrap();
        let mut rx = b.bind(ch, 2).unwrap();
        let a = fabric.endpoint(NodeId(0)).unwrap();
        let sent = Arc::new(std::sync::atomic::AtomicU32::new(0));
        let sent2 = sent.clone();
        let h = std::thread::spawn(move || {
            let mut tx = a.sender(NodeId(1), ch).unwrap();
            for i in 0..10u32 {
                tx.send(&i.to_le_bytes()).unwrap();
                sent2.fetch_add(1, Ordering::SeqCst);
            }
            tx.stalls()
        });
        std::thread::sleep(Duration::from_millis(150));
        // Window is 2: without draining, the sender cannot have run ahead.
        assert!(
            sent.load(Ordering::SeqCst) <= 2,
            "sender ran past its credit window"
        );
        for i in 0..10u32 {
            assert_eq!(rx.recv().unwrap().unwrap().payload, i.to_le_bytes());
        }
        assert!(h.join().unwrap() > 0);
    }

    #[derive(Debug)]
    struct OneShot {
        site: FaultSite,
        action: FaultAction,
        fired: StdMutex<std::collections::HashSet<String>>,
        budget: usize,
    }

    impl FaultHook for OneShot {
        fn decide(&self, site: FaultSite, detail: &str, attempt: u32) -> FaultAction {
            if site != self.site || attempt != 0 {
                return FaultAction::None;
            }
            let mut fired = self.fired.lock().unwrap_or_else(|e| e.into_inner());
            if fired.len() >= self.budget || fired.contains(detail) {
                return FaultAction::None;
            }
            fired.insert(detail.to_string());
            self.action
        }
    }

    fn exactly_once_under(site: FaultSite, budget: usize) {
        let hook: SharedFaultHook = Arc::new(OneShot {
            site,
            action: FaultAction::TransientError,
            fired: StdMutex::new(Default::default()),
            budget,
        });
        let (fabric, _) = two_nodes(Some(hook));
        let ch = fabric.alloc_channel();
        let b = fabric.endpoint(NodeId(1)).unwrap();
        let mut rx = b.bind(ch, 3).unwrap();
        let a = fabric.endpoint(NodeId(0)).unwrap();
        let h = std::thread::spawn(move || {
            let mut tx = a.sender(NodeId(1), ch).unwrap();
            for i in 0..50u32 {
                tx.send(&i.to_le_bytes()).unwrap();
            }
            tx.finish().unwrap();
        });
        let mut got = Vec::new();
        loop {
            let item = rx.recv().unwrap().unwrap();
            match item.kind {
                RxKind::Data => got.push(u32::from_le_bytes(item.payload.try_into().unwrap())),
                RxKind::Fin => break,
            }
        }
        h.join().unwrap();
        assert_eq!(
            got,
            (0..50).collect::<Vec<_>>(),
            "exactly-once in-order delivery"
        );
    }

    #[test]
    fn disconnect_faults_retransmit_exactly_once() {
        exactly_once_under(FaultSite::Disconnect, 5);
    }

    #[test]
    fn partial_frame_faults_retransmit_exactly_once() {
        exactly_once_under(FaultSite::PartialFrame, 5);
    }

    #[test]
    fn conn_refused_faults_back_off_and_succeed() {
        exactly_once_under(FaultSite::ConnRefused, 2);
    }

    #[test]
    fn stale_epoch_reconnect_is_fenced() {
        let (fabric, epoch) = two_nodes(None);
        let ch = fabric.alloc_channel();
        let b = fabric.endpoint(NodeId(1)).unwrap();
        let mut rx = b.bind(ch, 4).unwrap();
        let a = fabric.endpoint(NodeId(0)).unwrap();
        let mut tx = a.sender(NodeId(1), ch).unwrap();
        tx.send(b"before election").unwrap();
        assert_eq!(rx.recv().unwrap().unwrap().payload, b"before election");

        // An election bumps the cluster epoch; a peer that restarts still
        // believing the old epoch must be rejected at the handshake.
        epoch.set(2);
        let stale = fabric.dialer(NodeId(0), Arc::new(SharedEpoch::new(1)));
        let mut stale_tx = stale.sender(NodeId(1), ch).unwrap();
        match stale_tx.send(b"zombie write") {
            Err(VhError::StaleMaster(msg)) => {
                assert!(
                    msg.contains("epoch 2"),
                    "reject names the fencing epoch: {msg}"
                )
            }
            other => panic!("stale dialer must be fenced, got {other:?}"),
        }

        // A current-epoch peer still gets through (on a fresh stream — the
        // contract is one live sender per (from, to, channel)).
        let ch2 = fabric.alloc_channel();
        let mut rx2 = b.bind(ch2, 4).unwrap();
        let fresh = fabric.dialer(NodeId(0), Arc::new(SharedEpoch::new(2)));
        let mut fresh_tx = fresh.sender(NodeId(1), ch2).unwrap();
        fresh_tx.send(b"current epoch").unwrap();
        assert_eq!(rx2.recv().unwrap().unwrap().payload, b"current epoch");
    }
}
