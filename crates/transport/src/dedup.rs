//! Watermark-based duplicate suppression with bounded memory.
//!
//! Reliable delivery over a lossy fabric means retransmission, and
//! retransmission means duplicates. The naive receiver-side fix — remember
//! every sequence number ever seen in a `HashSet` — grows without bound
//! over a long campaign. A [`DedupWindow`] instead tracks a *watermark*:
//! every sequence below it has been delivered, so only the (small,
//! reorder-bounded) set of out-of-order sequences above the watermark is
//! held. Memory is proportional to the reorder window, not the stream
//! length.

use std::collections::BTreeSet;

/// Exactly-once filter for one contiguous sequence stream (seqs start at 0).
#[derive(Debug, Default)]
pub struct DedupWindow {
    /// All seqs `< watermark` have been accepted.
    watermark: u64,
    /// Accepted seqs `>= watermark` (out-of-order arrivals).
    pending: BTreeSet<u64>,
}

impl DedupWindow {
    pub fn new() -> DedupWindow {
        DedupWindow::default()
    }

    /// Accept `seq` if it has not been seen before. Returns `true` for a
    /// fresh sequence, `false` for a duplicate.
    pub fn insert(&mut self, seq: u64) -> bool {
        if seq < self.watermark || !self.pending.insert(seq) {
            return false;
        }
        // Advance the watermark over any now-contiguous prefix, evicting it.
        while self.pending.remove(&self.watermark) {
            self.watermark += 1;
        }
        true
    }

    /// Next sequence the contiguous prefix is waiting for.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Out-of-order seqs currently held — the window's entire memory
    /// footprint beyond the watermark itself.
    pub fn residual(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_keeps_zero_residual() {
        let mut w = DedupWindow::new();
        for seq in 0..10_000 {
            assert!(w.insert(seq));
            assert_eq!(w.residual(), 0);
        }
        assert_eq!(w.watermark(), 10_000);
    }

    #[test]
    fn duplicates_rejected_before_and_after_watermark() {
        let mut w = DedupWindow::new();
        assert!(w.insert(0));
        assert!(!w.insert(0)); // below watermark
        assert!(w.insert(5)); // out of order, pending
        assert!(!w.insert(5)); // pending duplicate
        assert!(w.insert(1));
        assert_eq!(w.watermark(), 2);
    }

    #[test]
    fn reordering_bounds_memory_to_the_window() {
        let mut w = DedupWindow::new();
        let mut peak = 0;
        // Deliver in pairs swapped: 1,0,3,2,5,4,... with each also duplicated.
        for base in (0..10_000u64).step_by(2) {
            for seq in [base + 1, base, base + 1, base] {
                w.insert(seq);
                peak = peak.max(w.residual());
            }
        }
        assert_eq!(w.watermark(), 10_000);
        assert!(
            peak <= 1,
            "swap reordering must hold at most one seq, held {peak}"
        );
    }

    #[test]
    fn gap_holds_then_drains() {
        let mut w = DedupWindow::new();
        for seq in 1..100 {
            assert!(w.insert(seq));
        }
        assert_eq!(w.residual(), 99); // everything waits on seq 0
        assert!(w.insert(0));
        assert_eq!(w.residual(), 0);
        assert_eq!(w.watermark(), 100);
    }
}
