//! Transport fabric: the network layer under DXchg and the health plane.
//!
//! The paper runs exchange buffers and control traffic over MPI between
//! real nodes (§5); this crate provides the equivalent seam for the
//! reproduction. A [`Fabric`] hands out per-node [`Endpoint`]s; an endpoint
//! binds receive channels ([`FrameRx`]) and opens per-peer senders
//! ([`FrameTx`]). Two implementations share the interface:
//!
//! * [`InProcFabric`](inproc::InProcFabric) — today's homegrown bounded
//!   channels, zero-copy within the process (the paper's intra-node
//!   pointer-passing path).
//! * [`TcpFabric`](tcp::TcpFabric) — a real `std::net` TCP fabric:
//!   length-prefixed CRC-checked frames ([`frame`]), a handshake that
//!   fences stale peers by master epoch, credit-based flow control
//!   (MPI-style backpressure: the receiver grants credits sized from its
//!   buffer capacity; the sender blocks at zero), and
//!   reconnect-with-retransmission under injected `Disconnect` /
//!   `PartialFrame` / `ConnRefused` faults, deduplicated at the receiver
//!   by a watermark window ([`dedup`]).
//!
//! No external dependencies: sockets are `std::net`, everything else is
//! `vectorh-common`'s homegrown sync/channel primitives (PR 1 policy).

pub mod dedup;
pub mod frame;
pub mod inproc;
pub mod tcp;

pub use dedup::DedupWindow;
pub use frame::{crc32, Frame, FrameKind, TRANSPORT_VERSION};
pub use inproc::InProcFabric;
pub use tcp::TcpFabric;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vectorh_common::{NodeId, Result};

/// Channel reserved for failure-detector heartbeats.
pub const HEARTBEAT_CHANNEL: u32 = 0;

/// First channel id handed out by [`Fabric::alloc_channel`]; everything
/// below is reserved for control planes.
pub const FIRST_DATA_CHANNEL: u32 = 16;

/// Where the acceptor learns the current master epoch for handshake
/// fencing. The engine backs this with its elected master state; tests use
/// [`SharedEpoch`] directly.
pub trait EpochSource: Send + Sync + std::fmt::Debug {
    fn current_epoch(&self) -> u64;
}

/// Atomically-updated epoch cell: the engine bumps it on every election so
/// in-flight handshakes see the newest epoch without locking engine state.
#[derive(Debug, Default)]
pub struct SharedEpoch(AtomicU64);

impl SharedEpoch {
    pub fn new(epoch: u64) -> SharedEpoch {
        SharedEpoch(AtomicU64::new(epoch))
    }

    pub fn set(&self, epoch: u64) {
        self.0.store(epoch, Ordering::SeqCst);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

impl EpochSource for SharedEpoch {
    fn current_epoch(&self) -> u64 {
        self.get()
    }
}

/// What a bound channel yields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxKind {
    /// Application payload.
    Data,
    /// The sending peer finished this channel; with a known sender set the
    /// consumer counts these to detect end-of-stream.
    Fin,
}

/// One received message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxItem {
    /// Node that sent the frame.
    pub from: NodeId,
    /// Wire sequence (per sender and channel, contiguous from 0).
    pub seq: u64,
    pub kind: RxKind,
    pub payload: Vec<u8>,
}

/// Sending half of one `(from, to, channel)` stream.
///
/// Contract: at most one live `FrameTx` per `(from, to, channel)` triple —
/// the wire sequence space is per-stream, so concurrent senders on the same
/// triple would corrupt dedup state. Fan-in from many worker threads must
/// share one `FrameTx` (behind a mutex) or use distinct channels.
pub trait FrameTx: Send {
    /// Deliver one payload, blocking on flow control (no credits / full
    /// queue). Reliable: retransmits across injected disconnects.
    fn send(&mut self, payload: &[u8]) -> Result<()>;

    /// Signal end-of-stream on this channel.
    fn finish(&mut self) -> Result<()>;

    /// Times this sender blocked on backpressure (zero credits or a full
    /// receiver queue).
    fn stalls(&self) -> u64;
}

/// Receiving half of a bound channel (all peers fan into it).
pub trait FrameRx: Send {
    /// Block for the next message. `None` once the channel is closed and
    /// drained.
    fn recv(&mut self) -> Result<Option<RxItem>>;

    /// Non-blocking variant: `None` when nothing is queued right now.
    fn try_recv(&mut self) -> Result<Option<RxItem>>;
}

/// One node's attachment to the fabric.
pub trait Endpoint: Send + Sync {
    fn node(&self) -> NodeId;

    /// Bind `channel` for receiving with a flow-control window of `window`
    /// messages (the credit pool granted to each sending peer).
    fn bind(&self, channel: u32, window: u32) -> Result<Box<dyn FrameRx>>;

    /// Open the sending half of `(self.node, to, channel)`.
    fn sender(&self, to: NodeId, channel: u32) -> Result<Box<dyn FrameTx>>;
}

/// A cluster's worth of endpoints plus channel-id allocation.
pub trait Fabric: Send + Sync {
    fn endpoint(&self, node: NodeId) -> Result<Arc<dyn Endpoint>>;

    /// Allocate a fabric-unique data channel id (both sides of an exchange
    /// are built by the same coordinator, which passes the id to each).
    fn alloc_channel(&self) -> u32;

    /// `"inproc"` or `"tcp"`, for stats labels and logs.
    fn mode(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_epoch_updates_visibly() {
        let e = SharedEpoch::new(3);
        assert_eq!(e.current_epoch(), 3);
        e.set(9);
        assert_eq!(e.current_epoch(), 9);
    }
}
