//! Wire framing: length-prefixed frames with a version/epoch header and a
//! CRC32 trailer.
//!
//! Every message on a transport connection is one frame:
//!
//! ```text
//! [len: u32 LE]        bytes that follow, including the CRC trailer
//! [version: u16 LE]    TRANSPORT_VERSION; mismatch rejects the connection
//! [kind: u8]           FrameKind discriminant
//! [from: u8]           sending node id (cluster fan-in is small)
//! [channel: u32 LE]    logical channel the frame belongs to
//! [seq: u64 LE]        per-(sender, channel) wire sequence number
//! [epoch: u64 LE]      sender's master epoch (handshake fencing)
//! [payload: len-28 B]
//! [crc32: u32 LE]      IEEE CRC over version..payload
//! ```
//!
//! The CRC is what turns a torn write (the `PartialFrame` fault, or a real
//! half-flushed socket) into a detected error instead of silent corruption:
//! a truncated frame either fails the length read or fails the checksum.

use vectorh_common::{Result, VhError};

/// Bump when the frame layout changes; handshakes reject mismatches.
pub const TRANSPORT_VERSION: u16 = 1;

/// Header bytes after the length prefix (version..epoch).
pub const HEADER_LEN: usize = 2 + 1 + 1 + 4 + 8 + 8;

/// Largest payload a single frame may carry (guards the length prefix
/// against corruption turning into a huge allocation).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// What a frame means to the connection state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Dialer → acceptor: first frame on a connection; `epoch` carries the
    /// dialer's master epoch, payload is empty.
    Hello = 1,
    /// Acceptor → dialer: handshake accepted; `epoch` carries the
    /// acceptor's current epoch.
    Welcome = 2,
    /// Acceptor → dialer: handshake refused (stale epoch or bad version);
    /// `epoch` carries the epoch the acceptor is fenced to.
    Reject = 3,
    /// Application payload on `channel`, dedup'd by `seq`.
    Data = 4,
    /// Acceptor → dialer: flow-control grant; `seq` carries the number of
    /// credits granted for `channel`.
    Credit = 5,
    /// Sender is done with `channel`; receivers count these to detect
    /// end-of-stream across a known sender set.
    Fin = 6,
    // --- SQL front-door client protocol (vectorh-server) -----------------
    // The client protocol reuses this framing wholesale: Hello/Welcome/
    // Reject carry the handshake, and the kinds below carry requests and
    // responses. `channel` holds the request id a response answers,
    // `seq` the per-connection frame sequence.
    /// Client → server: run the SQL text in the payload.
    Query = 7,
    /// Client → server: parse/plan the SQL text and cache it; the server
    /// answers with a `Prepared` frame carrying the statement id.
    Prepare = 8,
    /// Client → server: run a previously prepared statement; `channel`
    /// carries the statement id.
    Execute = 9,
    /// Server → client: statement id for a `Prepare` (in `channel`).
    Prepared = 10,
    /// Server → client: one batch of result rows (possibly one of many).
    RowBatch = 11,
    /// Server → client: result stream complete; payload carries the row
    /// total and the failovers absorbed while the query ran.
    Done = 12,
    /// Server → client: typed error — payload is `[code u16][message]`,
    /// and for `ServerBusy` a retry-backoff hint. Never closes the
    /// connection.
    ErrorFrame = 13,
    /// Client → server: cancel the in-flight query on this session.
    Cancel = 14,
    /// Client → server: orderly session end.
    Goodbye = 15,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            1 => FrameKind::Hello,
            2 => FrameKind::Welcome,
            3 => FrameKind::Reject,
            4 => FrameKind::Data,
            5 => FrameKind::Credit,
            6 => FrameKind::Fin,
            7 => FrameKind::Query,
            8 => FrameKind::Prepare,
            9 => FrameKind::Execute,
            10 => FrameKind::Prepared,
            11 => FrameKind::RowBatch,
            12 => FrameKind::Done,
            13 => FrameKind::ErrorFrame,
            14 => FrameKind::Cancel,
            15 => FrameKind::Goodbye,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub kind: FrameKind,
    pub from: u8,
    pub channel: u32,
    pub seq: u64,
    pub epoch: u64,
    pub payload: Vec<u8>,
}

impl Frame {
    pub fn control(kind: FrameKind, from: u8, channel: u32, seq: u64, epoch: u64) -> Frame {
        Frame {
            kind,
            from,
            channel,
            seq,
            epoch,
            payload: Vec::new(),
        }
    }
}

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// IEEE CRC32 (the zlib/ethernet polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Encode a frame to its full wire form (length prefix through CRC).
pub fn encode(frame: &Frame) -> Vec<u8> {
    let body_len = HEADER_LEN + frame.payload.len();
    let mut out = Vec::with_capacity(4 + body_len + 4);
    out.extend_from_slice(&((body_len + 4) as u32).to_le_bytes());
    out.extend_from_slice(&TRANSPORT_VERSION.to_le_bytes());
    out.push(frame.kind as u8);
    out.push(frame.from);
    out.extend_from_slice(&frame.channel.to_le_bytes());
    out.extend_from_slice(&frame.seq.to_le_bytes());
    out.extend_from_slice(&frame.epoch.to_le_bytes());
    out.extend_from_slice(&frame.payload);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decode errors carry enough to distinguish "connection died" from
/// "connection is lying to us" — reconnect handles the former, the latter
/// tears the connection down.
#[derive(Debug)]
pub enum DecodeError {
    /// Clean EOF before any byte of a frame (peer closed between frames).
    Closed,
    /// EOF or I/O error mid-frame: a torn/partial frame.
    Partial(String),
    /// CRC trailer does not match the frame body.
    Crc { expect: u32, got: u32 },
    /// Version field is not ours.
    Version(u16),
    /// Unknown kind discriminant or implausible length.
    Malformed(String),
}

impl DecodeError {
    pub fn into_vh(self) -> VhError {
        VhError::Net(match self {
            DecodeError::Closed => "transport: connection closed".into(),
            DecodeError::Partial(m) => format!("transport: partial frame: {m}"),
            DecodeError::Crc { expect, got } => {
                format!("transport: crc mismatch (expect {expect:08x}, got {got:08x})")
            }
            DecodeError::Version(v) => format!("transport: version mismatch (peer sent {v})"),
            DecodeError::Malformed(m) => format!("transport: malformed frame: {m}"),
        })
    }
}

/// Read one frame from a byte stream. Blocks until a full frame arrives,
/// the stream ends, or the frame proves invalid.
pub fn read_frame<R: std::io::Read>(r: &mut R) -> std::result::Result<Frame, DecodeError> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean close (no bytes) from a torn frame (some bytes).
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Err(DecodeError::Closed),
            Ok(0) => return Err(DecodeError::Partial("eof in length prefix".into())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if filled == 0 && e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(DecodeError::Closed)
            }
            Err(e) => return Err(DecodeError::Partial(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if !(HEADER_LEN + 4..=HEADER_LEN + MAX_PAYLOAD + 4).contains(&len) {
        return Err(DecodeError::Malformed(format!("frame length {len}")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| DecodeError::Partial(e.to_string()))?;
    let crc_pos = len - 4;
    let got = u32::from_le_bytes(body[crc_pos..].try_into().unwrap());
    let expect = crc32(&body[..crc_pos]);
    if got != expect {
        return Err(DecodeError::Crc { expect, got });
    }
    let version = u16::from_le_bytes(body[0..2].try_into().unwrap());
    if version != TRANSPORT_VERSION {
        return Err(DecodeError::Version(version));
    }
    let kind = FrameKind::from_u8(body[2])
        .ok_or_else(|| DecodeError::Malformed(format!("kind {}", body[2])))?;
    Ok(Frame {
        kind,
        from: body[3],
        channel: u32::from_le_bytes(body[4..8].try_into().unwrap()),
        seq: u64::from_le_bytes(body[8..16].try_into().unwrap()),
        epoch: u64::from_le_bytes(body[16..24].try_into().unwrap()),
        payload: body[HEADER_LEN..crc_pos].to_vec(),
    })
}

/// Write a frame, optionally truncating it to simulate a torn write (the
/// `PartialFrame` fault site). Returns an error if the truncated write was
/// requested, mirroring the connection death the caller must then handle.
pub fn write_frame<W: std::io::Write>(
    w: &mut W,
    frame: &Frame,
    truncate_at: Option<usize>,
) -> Result<()> {
    let bytes = encode(frame);
    match truncate_at {
        Some(n) => {
            let n = n.min(bytes.len().saturating_sub(1)).max(1);
            w.write_all(&bytes[..n])
                .and_then(|_| w.flush())
                .map_err(|e| VhError::Net(format!("transport write: {e}")))?;
            Err(VhError::Net("transport: injected partial frame".into()))
        }
        None => w
            .write_all(&bytes)
            .and_then(|_| w.flush())
            .map_err(|e| VhError::Net(format!("transport write: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_frame(payload: Vec<u8>) -> Frame {
        Frame {
            kind: FrameKind::Data,
            from: 3,
            channel: 17,
            seq: 42,
            epoch: 7,
            payload,
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            FrameKind::Hello,
            FrameKind::Welcome,
            FrameKind::Reject,
            FrameKind::Data,
            FrameKind::Credit,
            FrameKind::Fin,
            FrameKind::Query,
            FrameKind::Prepare,
            FrameKind::Execute,
            FrameKind::Prepared,
            FrameKind::RowBatch,
            FrameKind::Done,
            FrameKind::ErrorFrame,
            FrameKind::Cancel,
            FrameKind::Goodbye,
        ] {
            let f = Frame {
                kind,
                from: 2,
                channel: 9,
                seq: 1234,
                epoch: 5,
                payload: vec![1, 2, 3],
            };
            let bytes = encode(&f);
            let mut cursor = std::io::Cursor::new(bytes);
            assert_eq!(read_frame(&mut cursor).unwrap(), f);
        }
    }

    #[test]
    fn corrupted_byte_fails_crc() {
        let mut bytes = encode(&data_frame(vec![9; 100]));
        bytes[40] ^= 0xFF;
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(DecodeError::Crc { .. })
        ));
    }

    #[test]
    fn truncated_frame_is_partial_not_silent() {
        let bytes = encode(&data_frame(vec![9; 100]));
        for cut in [1, 3, 10, bytes.len() - 1] {
            let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
            assert!(
                matches!(read_frame(&mut cursor), Err(DecodeError::Partial(_))),
                "cut at {cut} must surface as a partial frame"
            );
        }
    }

    #[test]
    fn clean_eof_is_closed() {
        let mut cursor = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut cursor), Err(DecodeError::Closed)));
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut bytes = encode(&data_frame(vec![1]));
        // Patch the version field and re-stamp the CRC so only the version
        // is wrong.
        bytes[4] = 0xEE;
        bytes[5] = 0xEE;
        let crc_pos = bytes.len() - 4;
        let crc = crc32(&bytes[4..crc_pos]);
        bytes[crc_pos..].copy_from_slice(&crc.to_le_bytes());
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(DecodeError::Version(0xEEEE))
        ));
    }

    #[test]
    fn write_frame_truncation_reports_error_and_leaves_torn_bytes() {
        let f = data_frame(vec![7; 32]);
        let mut out = Vec::new();
        assert!(write_frame(&mut out, &f, Some(10)).is_err());
        assert_eq!(out.len(), 10);
        let mut cursor = std::io::Cursor::new(out);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(DecodeError::Partial(_))
        ));
    }
}
