//! In-process fabric: the [`Fabric`] interface over homegrown bounded
//! channels.
//!
//! This is the paper's intra-node path — messages move as owned values, no
//! serialization, no sockets. Flow control is the channel's own capacity
//! (`window`), and a sender that fills it blocks exactly like a TCP sender
//! out of credits; [`FrameTx::stalls`] counts those waits so in-proc and
//! TCP runs are comparable in the stats probe.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use vectorh_common::channel::{self, Receiver, Sender};
use vectorh_common::sync::Mutex;
use vectorh_common::{NodeId, Result, VhError};

use crate::{Endpoint, Fabric, FrameRx, FrameTx, RxItem, RxKind, FIRST_DATA_CHANNEL};

type Registry = Mutex<HashMap<(NodeId, u32), Sender<RxItem>>>;

/// All endpoints share one channel registry; "nodes" are just labels.
#[derive(Default)]
pub struct InProcFabric {
    registry: Arc<Registry>,
    next_channel: AtomicU32,
}

impl InProcFabric {
    pub fn new() -> InProcFabric {
        InProcFabric {
            registry: Arc::new(Mutex::new(HashMap::new())),
            next_channel: AtomicU32::new(FIRST_DATA_CHANNEL),
        }
    }
}

impl Fabric for InProcFabric {
    fn endpoint(&self, node: NodeId) -> Result<Arc<dyn Endpoint>> {
        Ok(Arc::new(InProcEndpoint {
            node,
            registry: self.registry.clone(),
        }))
    }

    fn alloc_channel(&self) -> u32 {
        self.next_channel.fetch_add(1, Ordering::SeqCst)
    }

    fn mode(&self) -> &'static str {
        "inproc"
    }
}

struct InProcEndpoint {
    node: NodeId,
    registry: Arc<Registry>,
}

impl Endpoint for InProcEndpoint {
    fn node(&self) -> NodeId {
        self.node
    }

    fn bind(&self, channel: u32, window: u32) -> Result<Box<dyn FrameRx>> {
        let (tx, rx) = channel::bounded(window.max(1) as usize);
        // Rebinding replaces the inbox; stale senders error on next send.
        self.registry.lock().insert((self.node, channel), tx);
        Ok(Box::new(InProcRx { rx }))
    }

    fn sender(&self, to: NodeId, channel: u32) -> Result<Box<dyn FrameTx>> {
        Ok(Box::new(InProcTx {
            from: self.node,
            to,
            channel,
            registry: self.registry.clone(),
            inbox: None,
            seq: 0,
            stalls: 0,
        }))
    }
}

struct InProcRx {
    rx: Receiver<RxItem>,
}

impl FrameRx for InProcRx {
    fn recv(&mut self) -> Result<Option<RxItem>> {
        Ok(self.rx.recv().ok())
    }

    fn try_recv(&mut self) -> Result<Option<RxItem>> {
        Ok(self.rx.try_recv())
    }
}

struct InProcTx {
    from: NodeId,
    to: NodeId,
    channel: u32,
    registry: Arc<Registry>,
    inbox: Option<Sender<RxItem>>,
    seq: u64,
    stalls: u64,
}

impl InProcTx {
    fn inbox(&mut self) -> Result<&Sender<RxItem>> {
        if self.inbox.is_none() {
            let found = self.registry.lock().get(&(self.to, self.channel)).cloned();
            self.inbox = Some(found.ok_or_else(|| {
                VhError::Net(format!(
                    "inproc transport: {} channel {} is not bound",
                    self.to, self.channel
                ))
            })?);
        }
        Ok(self.inbox.as_ref().unwrap())
    }

    fn push(&mut self, kind: RxKind, payload: &[u8]) -> Result<()> {
        let item = RxItem {
            from: self.from,
            seq: self.seq,
            kind,
            payload: payload.to_vec(),
        };
        self.seq += 1;
        let (from, to, channel) = (self.from, self.to, self.channel);
        let stalled = self.inbox()?.send_tracked(item).map_err(|_| {
            VhError::Net(format!(
                "inproc transport: {from}->{to} channel {channel} receiver gone"
            ))
        })?;
        if stalled {
            self.stalls += 1;
        }
        Ok(())
    }
}

impl FrameTx for InProcTx {
    fn send(&mut self, payload: &[u8]) -> Result<()> {
        self.push(RxKind::Data, payload)
    }

    fn finish(&mut self) -> Result<()> {
        self.push(RxKind::Fin, &[])
    }

    fn stalls(&self) -> u64 {
        self.stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive_across_endpoints() {
        let fabric = InProcFabric::new();
        let ch = fabric.alloc_channel();
        let a = fabric.endpoint(NodeId(0)).unwrap();
        let b = fabric.endpoint(NodeId(1)).unwrap();
        let mut rx = b.bind(ch, 8).unwrap();
        let mut tx = a.sender(NodeId(1), ch).unwrap();
        tx.send(b"hello").unwrap();
        tx.finish().unwrap();
        let got = rx.recv().unwrap().unwrap();
        assert_eq!(got.from, NodeId(0));
        assert_eq!(got.seq, 0);
        assert_eq!(got.kind, RxKind::Data);
        assert_eq!(got.payload, b"hello");
        let fin = rx.recv().unwrap().unwrap();
        assert_eq!(fin.kind, RxKind::Fin);
        assert_eq!(fin.seq, 1);
    }

    #[test]
    fn unbound_channel_errors_and_window_backpressure_counts_stalls() {
        let fabric = InProcFabric::new();
        let ch = fabric.alloc_channel();
        let a = fabric.endpoint(NodeId(0)).unwrap();
        let mut tx = a.sender(NodeId(1), ch).unwrap();
        assert!(tx.send(b"x").is_err()); // nothing bound

        let b = fabric.endpoint(NodeId(1)).unwrap();
        let rx = b.bind(ch, 1).unwrap();
        let mut tx = a.sender(NodeId(1), ch).unwrap();
        tx.send(b"first").unwrap();
        let h = std::thread::spawn(move || {
            let mut tx = tx;
            tx.send(b"second").unwrap(); // must stall on the full window
            tx.stalls()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut rx = rx;
        assert_eq!(rx.recv().unwrap().unwrap().payload, b"first");
        assert_eq!(h.join().unwrap(), 1);
        assert_eq!(rx.recv().unwrap().unwrap().payload, b"second");
    }

    #[test]
    fn zero_window_clamps_to_one() {
        let fabric = InProcFabric::new();
        let ch = fabric.alloc_channel();
        let a = fabric.endpoint(NodeId(0)).unwrap();
        let mut rx = a.bind(ch, 0).unwrap();
        let mut tx = a.sender(NodeId(0), ch).unwrap();
        tx.send(b"fits").unwrap(); // window 0 clamps to 1; does not deadlock
        assert_eq!(rx.recv().unwrap().unwrap().payload, b"fits");
    }
}
