//! ExternalScan / ExternalDump (§7).
//!
//! "ExternalScan is an operator that is able to process binary data coming
//! from multiple network sockets (in parallel) and ExternalDump ... output
//! binary data in parallel through network sockets." The sockets here are
//! channels carrying the same PAX-serialized frames the exchange layer
//! uses; the Spark side runs as producer threads.

use std::sync::Arc;

use vectorh_common::channel::{bounded, Receiver, Sender};
use vectorh_common::{Result, Schema, VhError};
use vectorh_exec::operator::{Counters, OpProfile, Operator};
use vectorh_exec::Batch;
use vectorh_net::buffer;
use vectorh_net::NetStats;

/// Binary frame on an external socket.
pub type Frame = Vec<u8>;

/// The VectorH-side ingest operator: one socket, many possible writers.
pub struct ExternalScan {
    schema: Arc<Schema>,
    rx: Receiver<std::result::Result<Frame, VhError>>,
    counters: Counters,
}

/// Writer handle passed to the "Spark" side.
#[derive(Clone)]
pub struct SocketWriter {
    tx: Sender<std::result::Result<Frame, VhError>>,
    stats: Arc<NetStats>,
    /// Whether this writer's data crosses nodes (affinity miss).
    remote: bool,
}

impl SocketWriter {
    /// Serialize and send a batch.
    pub fn send(&self, batch: &Batch) -> Result<()> {
        let bytes = buffer::serialize(batch);
        if self.remote {
            self.stats
                .record_net_message(bytes.len() as u64, batch.len() as u64);
        } else {
            self.stats.record_intra_message(batch.len() as u64);
        }
        self.tx
            .send(Ok(bytes))
            .map_err(|_| VhError::Net("external scan closed".into()))
    }

    pub fn send_error(&self, e: VhError) {
        let _ = self.tx.send(Err(e));
    }
}

impl ExternalScan {
    /// Create a scan and a writer factory: `writer(remote)` hands out
    /// sockets; drop all writers to end the stream.
    pub fn new(schema: Arc<Schema>, stats: Arc<NetStats>) -> (ExternalScan, ExternalPort) {
        let (tx, rx) = bounded(1024);
        (
            ExternalScan {
                schema,
                rx,
                counters: Counters::default(),
            },
            ExternalPort { tx, stats },
        )
    }
}

/// Connection point for external writers.
pub struct ExternalPort {
    tx: Sender<std::result::Result<Frame, VhError>>,
    stats: Arc<NetStats>,
}

impl ExternalPort {
    pub fn connect(&self, remote: bool) -> SocketWriter {
        SocketWriter {
            tx: self.tx.clone(),
            stats: self.stats.clone(),
            remote,
        }
    }
}

impl Operator for ExternalScan {
    fn schema(&self) -> Arc<Schema> {
        self.schema.clone()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let start = std::time::Instant::now();
        let out = match self.rx.recv() {
            Err(_) => None,
            Ok(Err(e)) => return Err(e),
            Ok(Ok(frame)) => Some(buffer::deserialize(&frame, self.schema.clone())?),
        };
        self.counters.cum_time_ns += start.elapsed().as_nanos() as u64;
        self.counters.calls += 1;
        if let Some(b) = &out {
            self.counters.rows_out += b.len() as u64;
            self.counters.rows_in += b.len() as u64;
        }
        Ok(out)
    }

    fn profile(&self) -> OpProfile {
        self.counters.profile("ExternalScan")
    }

    fn children(&self) -> Vec<&dyn Operator> {
        vec![]
    }
}

/// The VectorH-side egress: drains a child operator, pushing binary frames
/// to a consumer (SparkSQL reading from VectorH).
pub struct ExternalDump {
    child: Box<dyn Operator>,
    tx: Sender<std::result::Result<Frame, VhError>>,
    stats: Arc<NetStats>,
    remote: bool,
}

impl ExternalDump {
    pub fn new(
        child: Box<dyn Operator>,
        stats: Arc<NetStats>,
        remote: bool,
    ) -> (ExternalDump, Receiver<std::result::Result<Frame, VhError>>) {
        let (tx, rx) = bounded(1024);
        (
            ExternalDump {
                child,
                tx,
                stats,
                remote,
            },
            rx,
        )
    }

    /// Drain the child to completion, returning rows exported.
    pub fn run(mut self) -> Result<u64> {
        let mut rows = 0u64;
        while let Some(batch) = self.child.next()? {
            rows += batch.len() as u64;
            let bytes = buffer::serialize(&batch);
            if self.remote {
                self.stats
                    .record_net_message(bytes.len() as u64, batch.len() as u64);
            } else {
                self.stats.record_intra_message(batch.len() as u64);
            }
            self.tx
                .send(Ok(bytes))
                .map_err(|_| VhError::Net("external consumer closed".into()))?;
        }
        Ok(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::{ColumnData, DataType};
    use vectorh_exec::operator::BatchSource;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::of(&[("x", DataType::I64), ("s", DataType::Str)]))
    }

    fn batch(from: i64, n: i64) -> Batch {
        Batch::new(
            schema(),
            vec![
                ColumnData::I64((from..from + n).collect()),
                ColumnData::Str((from..from + n).map(|i| format!("v{i}")).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn parallel_writers_feed_one_scan() {
        let stats = Arc::new(NetStats::default());
        let (mut scan, port) = ExternalScan::new(schema(), stats.clone());
        let mut handles = Vec::new();
        for w in 0..3 {
            let writer = port.connect(w != 0); // writer 0 local, others remote
            handles.push(std::thread::spawn(move || {
                for b in 0..4 {
                    writer.send(&batch((w * 100 + b * 10) as i64, 10)).unwrap();
                }
            }));
        }
        drop(port);
        for h in handles {
            h.join().unwrap();
        }
        let mut rows = 0;
        while let Some(b) = scan.next().unwrap() {
            rows += b.len();
        }
        assert_eq!(rows, 120);
        let snap = stats.snapshot();
        assert_eq!(snap.intra_messages, 4); // writer 0's frames
        assert_eq!(snap.net_messages, 8);
        assert!(snap.net_bytes > 0);
    }

    #[test]
    fn error_propagates_to_scan() {
        let stats = Arc::new(NetStats::default());
        let (mut scan, port) = ExternalScan::new(schema(), stats);
        let w = port.connect(false);
        w.send_error(VhError::Net("spark job failed".into()));
        drop(w);
        drop(port);
        assert!(scan.next().is_err());
    }

    #[test]
    fn dump_exports_all_rows() {
        let stats = Arc::new(NetStats::default());
        let src = Box::new(BatchSource::from_batch(batch(0, 100), 32));
        let (dump, rx) = ExternalDump::new(src, stats.clone(), true);
        let consumer = std::thread::spawn(move || {
            let mut frames = 0;
            let mut rows = 0;
            while let Ok(Ok(frame)) = rx.recv() {
                frames += 1;
                let b = buffer::deserialize(&frame, schema()).unwrap();
                rows += b.len();
            }
            (frames, rows)
        });
        let exported = dump.run().unwrap();
        assert_eq!(exported, 100);
        let (frames, rows) = consumer.join().unwrap();
        assert_eq!(rows, 100);
        assert!(frames >= 4);
        assert!(stats.snapshot().net_bytes > 0);
    }
}
