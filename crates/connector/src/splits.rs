//! Input splits and affinity-aware assignment (§7, Figure 6).
//!
//! Spark creates one RDD partition per input HDFS block; the VectorH RDD
//! overrides `getPreferredLocations` so Spark's scheduler processes each
//! partition near an `ExternalScan` operator. The connector defines a
//! NarrowDependency mapping parent partitions to VectorH partitions "using
//! an algorithm similar to Hopcroft-Karp's matching in bipartite graphs" —
//! implemented here as maximum bipartite matching by augmenting paths over
//! (split, operator-slot) affinity edges, with non-matching splits assigned
//! round-robin (the dot-dash arrows of Figure 6 that "incur network
//! communication").

use vectorh_common::NodeId;

/// One input split (≈ one HDFS block / one Spark RDD partition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSplit {
    pub path: String,
    /// Block replica locations — the split's preferred nodes.
    pub preferred: Vec<NodeId>,
}

/// Assignment of splits to operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `operator_of[i]` = operator index processing split `i`.
    pub operator_of: Vec<usize>,
    /// Whether the assignment respects the split's affinity.
    pub local: Vec<bool>,
}

impl Assignment {
    pub fn locality_fraction(&self) -> f64 {
        if self.local.is_empty() {
            return 1.0;
        }
        self.local.iter().filter(|l| **l).count() as f64 / self.local.len() as f64
    }
}

/// Assign splits to `operators` (one entry per ExternalScan, giving its
/// node), maximizing affinity-respecting assignments while keeping the
/// per-operator load within ⌈splits/operators⌉.
pub fn assign_splits(splits: &[InputSplit], operators: &[NodeId]) -> Assignment {
    let n = splits.len();
    let m = operators.len();
    if m == 0 {
        return Assignment {
            operator_of: vec![],
            local: vec![],
        };
    }
    let cap = n.div_ceil(m);
    // Bipartite graph: split → operator slots (operator j has `cap` slots).
    // Edge when the operator's node is in the split's preferred set.
    let mut match_of_split: Vec<Option<usize>> = vec![None; n]; // slot id
    let mut match_of_slot: Vec<Option<usize>> = vec![None; m * cap];

    fn try_assign(
        s: usize,
        splits: &[InputSplit],
        operators: &[NodeId],
        cap: usize,
        visited: &mut [bool],
        match_of_split: &mut [Option<usize>],
        match_of_slot: &mut [Option<usize>],
    ) -> bool {
        for (j, &node) in operators.iter().enumerate() {
            if !splits[s].preferred.contains(&node) {
                continue;
            }
            for k in 0..cap {
                let slot = j * cap + k;
                if visited[slot] {
                    continue;
                }
                visited[slot] = true;
                if match_of_slot[slot].is_none()
                    || try_assign(
                        match_of_slot[slot].unwrap(),
                        splits,
                        operators,
                        cap,
                        visited,
                        match_of_split,
                        match_of_slot,
                    )
                {
                    match_of_slot[slot] = Some(s);
                    match_of_split[s] = Some(slot);
                    return true;
                }
            }
        }
        false
    }

    for s in 0..n {
        let mut visited = vec![false; m * cap];
        try_assign(
            s,
            splits,
            operators,
            cap,
            &mut visited,
            &mut match_of_split,
            &mut match_of_slot,
        );
    }

    // Unmatched splits: round-robin over operators with remaining capacity.
    let mut load = vec![0usize; m];
    for slot in match_of_split.iter().take(n).flatten() {
        load[slot / cap] += 1;
    }
    let mut operator_of = vec![usize::MAX; n];
    let mut local = vec![false; n];
    for (s, slot) in match_of_split.iter().take(n).enumerate() {
        if let Some(slot) = slot {
            operator_of[s] = slot / cap;
            local[s] = true;
        }
    }
    let mut next = 0usize;
    for op in operator_of.iter_mut().take(n) {
        if *op == usize::MAX {
            // Find the least-loaded operator (ties round-robin).
            let mut best = next % m;
            for j in 0..m {
                let cand = (next + j) % m;
                if load[cand] < cap {
                    best = cand;
                    break;
                }
            }
            *op = best;
            load[best] += 1;
            next = best + 1;
        }
    }
    Assignment { operator_of, local }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::rng::SplitMix64;

    fn split(path: &str, nodes: &[u32]) -> InputSplit {
        InputSplit {
            path: path.into(),
            preferred: nodes.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    #[test]
    fn perfect_affinity_when_possible() {
        // Figure 6 shape: 5 splits, 2 operators on nodes 1 and 3; each
        // split has 2 preferred nodes (R=2).
        let splits = vec![
            split("b0", &[1, 2]),
            split("b1", &[1, 3]),
            split("b2", &[3, 0]),
            split("b3", &[1, 2]),
            split("b4", &[2, 0]), // cannot be local to operators on 1,3
        ];
        let ops = vec![NodeId(1), NodeId(3)];
        let a = assign_splits(&splits, &ops);
        assert_eq!(a.operator_of.len(), 5);
        // 4 of 5 splits can be local; b4 cannot.
        assert_eq!(a.local.iter().filter(|l| **l).count(), 4);
        assert!(!a.local[4]);
        // Load stays within ceil(5/2)=3.
        for j in 0..2 {
            assert!(a.operator_of.iter().filter(|&&o| o == j).count() <= 3);
        }
    }

    #[test]
    fn augmenting_paths_beat_greedy() {
        // Greedy (first-fit) would assign s0 to op0 and leave s1 non-local;
        // matching must reassign to make both local.
        // op0 on node 0 (cap 1), op1 on node 1 (cap 1)
        let splits = vec![
            split("s0", &[0, 1]), // flexible
            split("s1", &[0]),    // only node 0
        ];
        let ops = vec![NodeId(0), NodeId(1)];
        let a = assign_splits(&splits, &ops);
        assert!(a.local.iter().all(|l| *l), "{a:?}");
        assert_eq!(a.operator_of[1], 0, "s1 must take op0");
        assert_eq!(a.operator_of[0], 1);
    }

    #[test]
    fn all_remote_still_assigns_evenly() {
        let splits: Vec<InputSplit> = (0..6).map(|i| split(&format!("s{i}"), &[9])).collect();
        let ops = vec![NodeId(0), NodeId(1), NodeId(2)];
        let a = assign_splits(&splits, &ops);
        assert_eq!(a.locality_fraction(), 0.0);
        for j in 0..3 {
            assert_eq!(a.operator_of.iter().filter(|&&o| o == j).count(), 2);
        }
    }

    #[test]
    fn empty_inputs() {
        let a = assign_splits(&[], &[NodeId(0)]);
        assert!(a.operator_of.is_empty());
        assert_eq!(a.locality_fraction(), 1.0);
        let a = assign_splits(&[split("s", &[0])], &[]);
        assert!(a.operator_of.is_empty());
    }

    #[test]
    fn random_inputs_respect_capacity() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..20 {
            let n_ops = 1 + rng.next_bounded(4) as usize;
            let n_splits = rng.next_bounded(20) as usize;
            let ops: Vec<NodeId> = (0..n_ops as u32).map(NodeId).collect();
            let splits: Vec<InputSplit> = (0..n_splits)
                .map(|i| {
                    let prefs: Vec<u32> = (0..2).map(|_| rng.next_bounded(6) as u32).collect();
                    split(&format!("s{i}"), &prefs)
                })
                .collect();
            let a = assign_splits(&splits, &ops);
            let cap = n_splits.div_ceil(n_ops);
            for j in 0..n_ops {
                let c = a.operator_of.iter().filter(|&&o| o == j).count();
                assert!(c <= cap, "operator {j} overloaded: {c} > {cap}");
            }
            // Local flags only where affinity truly holds.
            for (s, &op) in a.operator_of.iter().enumerate() {
                if a.local[s] {
                    assert!(splits[s].preferred.contains(&ops[op]));
                }
            }
        }
    }
}
