//! vwload-style CSV parsing (§7).
//!
//! "It allows to specify custom delimiters, load only a subset of columns
//! from the input file, perform character set conversion, use custom date
//! formats, skip a number of errors, log rejected tuples to a file."
//! The options here mirror that feature list (sans charsets — inputs are
//! UTF-8).

use vectorh_common::types::date;
use vectorh_common::{ColumnData, DataType, Result, Schema, Value, VhError};

/// Loader options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    pub delimiter: char,
    /// Load only these file columns (by position), in schema order.
    /// `None` = all columns in order.
    pub column_subset: Option<Vec<usize>>,
    /// Tolerate up to this many malformed rows.
    pub max_errors: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: '|',
            column_subset: None,
            max_errors: 0,
        }
    }
}

/// Parse result: typed columns + rejected lines (line number, reason).
#[derive(Debug)]
pub struct CsvResult {
    pub columns: Vec<ColumnData>,
    pub rows: usize,
    pub rejected: Vec<(usize, String)>,
}

fn parse_field(text: &str, dtype: DataType) -> Result<Value> {
    let bad = |what: &str| VhError::InvalidArg(format!("bad {what}: '{text}'"));
    Ok(match dtype {
        DataType::I32 => Value::I32(text.trim().parse().map_err(|_| bad("int32"))?),
        DataType::I64 => Value::I64(text.trim().parse().map_err(|_| bad("int64"))?),
        DataType::F64 => Value::F64(text.trim().parse().map_err(|_| bad("float"))?),
        DataType::Date => Value::Date(date::parse(text.trim()).ok_or_else(|| bad("date"))?),
        DataType::Decimal { scale } => {
            let t = text.trim();
            if t.is_empty() || t.chars().any(|c| !matches!(c, '0'..='9' | '.' | '-')) {
                return Err(bad("decimal"));
            }
            vectorh_common::types::dec(t, scale)
        }
        DataType::Str => Value::Str(text.to_string()),
    })
}

/// Parse CSV text into columns of `schema`.
pub fn parse_csv(text: &str, schema: &Schema, opts: &CsvOptions) -> Result<CsvResult> {
    let mut columns: Vec<ColumnData> = schema
        .fields()
        .iter()
        .map(|f| ColumnData::new(f.dtype))
        .collect();
    let mut rejected = Vec::new();
    let mut rows = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(opts.delimiter).collect();
        let picked: Vec<&str> = match &opts.column_subset {
            Some(subset) => {
                let mut v = Vec::with_capacity(subset.len());
                let mut ok = true;
                for &c in subset {
                    match fields.get(c) {
                        Some(f) => v.push(*f),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    rejected.push((lineno, "missing column".into()));
                    if rejected.len() > opts.max_errors {
                        return Err(VhError::InvalidArg(format!(
                            "line {lineno}: missing column (error limit exceeded)"
                        )));
                    }
                    continue;
                }
                v
            }
            None => fields.clone(),
        };
        if picked.len() < schema.len() {
            rejected.push((
                lineno,
                format!("{} fields, need {}", picked.len(), schema.len()),
            ));
            if rejected.len() > opts.max_errors {
                return Err(VhError::InvalidArg(format!(
                    "line {lineno}: too few fields (error limit exceeded)"
                )));
            }
            continue;
        }
        // Two-phase: validate the whole row before pushing any column so a
        // bad row never leaves ragged columns behind.
        let parsed: std::result::Result<Vec<Value>, VhError> = (0..schema.len())
            .map(|c| parse_field(picked[c], schema.dtype(c)))
            .collect();
        match parsed {
            Ok(values) => {
                for (c, v) in values.iter().enumerate() {
                    columns[c].push_value(v)?;
                }
                rows += 1;
            }
            Err(e) => {
                rejected.push((lineno, e.to_string()));
                if rejected.len() > opts.max_errors {
                    return Err(VhError::InvalidArg(format!(
                        "line {lineno}: {e} (error limit exceeded)"
                    )));
                }
            }
        }
    }
    Ok(CsvResult {
        columns,
        rows,
        rejected,
    })
}

/// Render columns as CSV (for generating test inputs and ExternalDump).
pub fn to_csv(columns: &[ColumnData], schema: &Schema, delimiter: char) -> String {
    let n = columns.first().map(|c| c.len()).unwrap_or(0);
    let mut out = String::new();
    for i in 0..n {
        for (c, col) in columns.iter().enumerate() {
            if c > 0 {
                out.push(delimiter);
            }
            out.push_str(&col.value_at(i, schema.dtype(c)).to_string());
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::of(&[
            ("k", DataType::I64),
            ("price", DataType::Decimal { scale: 2 }),
            ("day", DataType::Date),
            ("name", DataType::Str),
        ])
    }

    #[test]
    fn parses_typed_rows() {
        let text = "1|10.50|1995-03-05|widget\n2|3.99|1996-01-01|gadget\n";
        let r = parse_csv(text, &schema(), &CsvOptions::default()).unwrap();
        assert_eq!(r.rows, 2);
        assert!(r.rejected.is_empty());
        assert_eq!(r.columns[0].as_i64().unwrap(), &[1, 2]);
        assert_eq!(r.columns[1].as_i64().unwrap(), &[1050, 399]);
        assert_eq!(
            r.columns[2].as_i32().unwrap()[0],
            date::parse("1995-03-05").unwrap()
        );
        assert_eq!(r.columns[3].as_str().unwrap()[1], "gadget");
    }

    #[test]
    fn custom_delimiter_and_subset() {
        let text = "x,1,99.00,1995-01-01,extra,name\n";
        let opts = CsvOptions {
            delimiter: ',',
            column_subset: Some(vec![1, 2, 3, 5]),
            max_errors: 0,
        };
        let r = parse_csv(text, &schema(), &opts).unwrap();
        assert_eq!(r.rows, 1);
        assert_eq!(r.columns[3].as_str().unwrap()[0], "name");
    }

    #[test]
    fn error_limit_honoured() {
        let text = "1|bad|1995-01-01|a\n2|2.00|1995-01-01|b\n";
        // Zero tolerance: fail.
        assert!(parse_csv(text, &schema(), &CsvOptions::default()).is_err());
        // One allowed: row logged, parse continues.
        let opts = CsvOptions {
            max_errors: 1,
            ..Default::default()
        };
        let r = parse_csv(text, &schema(), &opts).unwrap();
        assert_eq!(r.rows, 1);
        assert_eq!(r.rejected.len(), 1);
        assert_eq!(r.rejected[0].0, 0);
        // No ragged columns from the rejected row.
        assert!(r.columns.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn short_rows_rejected() {
        let text = "1|2.00\n";
        let opts = CsvOptions {
            max_errors: 5,
            ..Default::default()
        };
        let r = parse_csv(text, &schema(), &opts).unwrap();
        assert_eq!(r.rows, 0);
        assert_eq!(r.rejected.len(), 1);
    }

    #[test]
    fn roundtrip_via_to_csv() {
        let text = "7|1.25|1994-06-15|thing\n";
        let r = parse_csv(text, &schema(), &CsvOptions::default()).unwrap();
        let back = to_csv(&r.columns, &schema(), '|');
        assert_eq!(back, text);
    }
}
