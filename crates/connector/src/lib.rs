//! Spark connectivity and bulk loading (§7).
//!
//! * [`csv`] — vwload-style CSV parsing: custom delimiters, column subsets,
//!   error skipping with a rejected-row log, typed conversion.
//! * [`splits`] — input splits with block-location affinities and the
//!   Hopcroft–Karp-style assignment of Spark RDD partitions to
//!   `ExternalScan` operators (`getPreferredLocations`): maximize the number
//!   of affinity-respecting assignments so transfers stay node-local.
//! * [`external`] — the `ExternalScan` / `ExternalDump` operators: binary
//!   row streams over (simulated network) channels between the "Spark" side
//!   and VectorH operators.

pub mod csv;
pub mod external;
pub mod splits;

pub use csv::{parse_csv, CsvOptions};
pub use external::{ExternalDump, ExternalScan};
pub use splits::{assign_splits, Assignment, InputSplit};
