//! Distributed physical plans.
//!
//! The Parallel Rewriter's output: a tree of location-annotated operators
//! with *explicit* exchange nodes, mirroring Figure 5 of the paper. The
//! engine interprets this tree into per-node, per-stream operator pipelines
//! connected by the `vectorh-net` exchanges.

use vectorh_exec::aggr::AggFn;
use vectorh_exec::expr::Expr;
use vectorh_exec::sort::Dir;

use crate::logical::JoinKind;

/// How a hash join is distributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Both inputs are co-partitioned on the join keys: join matching
    /// partitions on their responsible nodes, no network (§5 "local join").
    Local,
    /// The build side is replicated (already-replicated table, or broadcast
    /// inserted below): split only locally / build a shared hash table.
    BroadcastBuild,
    /// Repartition both sides with DXchgHashSplit on the join keys.
    Repartitioned,
}

/// Aggregation placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggStrategy {
    /// Input already partitioned on (a subset of) the group keys: one
    /// complete aggregation per stream, no exchange.
    Local,
    /// Partial per stream → DXchgHashSplit(group keys) → Final.
    PartialFinal,
    /// DXchgHashSplit(group keys) → Complete (partial-aggregation rule off,
    /// or COUNT DISTINCT).
    RepartitionComplete,
    /// Global aggregate: Partial per stream → DXchgUnion → Final at master.
    GlobalPartialFinal,
    /// Global aggregate without partials: DXchgUnion → Complete.
    GlobalComplete,
}

/// A physical plan node.
#[derive(Debug, Clone)]
pub enum PhysPlan {
    /// Partition-parallel scan at the responsible nodes. `pred` is pushed
    /// into the scan for MinMax skipping.
    ScanPartitioned {
        table: String,
        cols: Vec<usize>,
        pred: Option<Expr>,
    },
    /// Scan of a replicated table, executed locally wherever it is needed.
    ScanReplicated {
        table: String,
        cols: Vec<usize>,
        pred: Option<Expr>,
    },
    Select {
        input: Box<PhysPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<PhysPlan>,
        items: Vec<(Expr, String)>,
    },
    HashJoin {
        probe: Box<PhysPlan>,
        build: Box<PhysPlan>,
        probe_keys: Vec<usize>,
        build_keys: Vec<usize>,
        kind: JoinKind,
        strategy: JoinStrategy,
    },
    /// Co-ordered merge join of co-located partitions.
    MergeJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        left_key: usize,
        right_key: usize,
    },
    Aggr {
        input: Box<PhysPlan>,
        group_by: Vec<usize>,
        aggs: Vec<AggFn>,
        strategy: AggStrategy,
    },
    /// Per-stream partial TopN → DXchgUnion → final TopN (or plain sort).
    Sort {
        input: Box<PhysPlan>,
        keys: Vec<(usize, Dir)>,
        limit: Option<usize>,
    },
    Limit {
        input: Box<PhysPlan>,
        n: usize,
    },
    /// Explicit exchanges.
    DxchgHashSplit {
        input: Box<PhysPlan>,
        keys: Vec<usize>,
    },
    DxchgUnion {
        input: Box<PhysPlan>,
    },
    DxchgBroadcast {
        input: Box<PhysPlan>,
    },
}

impl PhysPlan {
    /// EXPLAIN-style rendering (one node per line, indented).
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(0, &mut s);
        s
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            PhysPlan::ScanPartitioned { table, cols, pred } => {
                out.push_str(&format!(
                    "{pad}Scan[{table}] (partitioned) cols={cols:?}{}\n",
                    if pred.is_some() { " +minmax-pred" } else { "" }
                ));
            }
            PhysPlan::ScanReplicated { table, cols, pred } => {
                out.push_str(&format!(
                    "{pad}Scan[{table}] (replicated) cols={cols:?}{}\n",
                    if pred.is_some() { " +minmax-pred" } else { "" }
                ));
            }
            PhysPlan::Select { input, .. } => {
                out.push_str(&format!("{pad}Select\n"));
                input.explain_into(depth + 1, out);
            }
            PhysPlan::Project { input, items } => {
                let names: Vec<&str> = items.iter().map(|(_, n)| n.as_str()).collect();
                out.push_str(&format!("{pad}Project {names:?}\n"));
                input.explain_into(depth + 1, out);
            }
            PhysPlan::HashJoin {
                probe,
                build,
                strategy,
                kind,
                ..
            } => {
                out.push_str(&format!("{pad}HashJoin ({kind:?}, {strategy:?})\n"));
                probe.explain_into(depth + 1, out);
                build.explain_into(depth + 1, out);
            }
            PhysPlan::MergeJoin { left, right, .. } => {
                out.push_str(&format!("{pad}MergeJoin (co-located)\n"));
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PhysPlan::Aggr {
                input,
                group_by,
                strategy,
                ..
            } => {
                out.push_str(&format!("{pad}Aggr (by {group_by:?}, {strategy:?})\n"));
                input.explain_into(depth + 1, out);
            }
            PhysPlan::Sort { input, keys, limit } => {
                out.push_str(&format!("{pad}Sort keys={keys:?} limit={limit:?}\n"));
                input.explain_into(depth + 1, out);
            }
            PhysPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.explain_into(depth + 1, out);
            }
            PhysPlan::DxchgHashSplit { input, keys } => {
                out.push_str(&format!("{pad}DXchgHashSplit on {keys:?}\n"));
                input.explain_into(depth + 1, out);
            }
            PhysPlan::DxchgUnion { input } => {
                out.push_str(&format!("{pad}DXchgUnion\n"));
                input.explain_into(depth + 1, out);
            }
            PhysPlan::DxchgBroadcast { input } => {
                out.push_str(&format!("{pad}DXchgBroadcast\n"));
                input.explain_into(depth + 1, out);
            }
        }
    }

    /// Count exchange operators (network steps) in the plan.
    pub fn exchange_count(&self) -> usize {
        let own = matches!(
            self,
            PhysPlan::DxchgHashSplit { .. }
                | PhysPlan::DxchgUnion { .. }
                | PhysPlan::DxchgBroadcast { .. }
        ) as usize;
        own + self
            .children()
            .iter()
            .map(|c| c.exchange_count())
            .sum::<usize>()
    }

    pub fn children(&self) -> Vec<&PhysPlan> {
        match self {
            PhysPlan::ScanPartitioned { .. } | PhysPlan::ScanReplicated { .. } => vec![],
            PhysPlan::Select { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Aggr { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::Limit { input, .. }
            | PhysPlan::DxchgHashSplit { input, .. }
            | PhysPlan::DxchgUnion { input }
            | PhysPlan::DxchgBroadcast { input } => vec![input],
            PhysPlan::HashJoin { probe, build, .. } => vec![probe, build],
            PhysPlan::MergeJoin { left, right, .. } => vec![left, right],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_renders_tree() {
        let plan = PhysPlan::DxchgUnion {
            input: Box::new(PhysPlan::Select {
                input: Box::new(PhysPlan::ScanPartitioned {
                    table: "lineitem".into(),
                    cols: vec![0, 1],
                    pred: None,
                }),
                predicate: Expr::lit(vectorh_common::Value::I32(1)),
            }),
        };
        let text = plan.explain();
        assert!(text.contains("DXchgUnion"));
        assert!(text.contains("Scan[lineitem] (partitioned)"));
        assert_eq!(plan.exchange_count(), 1);
    }
}
