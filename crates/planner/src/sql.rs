//! A SQL subset parser producing logical plans.
//!
//! Covers what the examples and most analytical queries need:
//!
//! ```sql
//! SELECT expr [AS name], agg(expr), ...
//! FROM t1 [alias] [JOIN t2 [alias] ON a.x = b.y [AND ...]] ...
//! [WHERE <boolean expr>]
//! [GROUP BY col, ...]
//! [ORDER BY col|position [ASC|DESC], ...]
//! [LIMIT n]
//! ```
//!
//! Expressions: arithmetic, comparisons, `AND/OR/NOT`, `BETWEEN`, `IN`,
//! `LIKE`, decimal/date/string literals. Literals are coerced against
//! column types ('1995-03-05' becomes a date when compared to a date
//! column; numeric literals pick up a decimal column's scale), so queries
//! read naturally.

use vectorh_common::types::date;
use vectorh_common::{DataType, Result, Schema, Value, VhError};
use vectorh_exec::aggr::AggFn;
use vectorh_exec::expr::{CmpOp, Expr};
use vectorh_exec::sort::Dir;

use crate::logical::{CatalogInfo, JoinKind, LogicalPlan};

// --- tokenizer ---------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Dec(String),
    Str(String),
    Sym(char),
    // two-char symbols
    Le,
    Ge,
    Ne,
}

fn tokenize(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let b = input.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && matches!(b[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    i += 1;
                }
                out.push(Tok::Ident(input[start..i].to_lowercase()));
            }
            '0'..='9' => {
                let start = i;
                let mut dec = false;
                while i < b.len() && matches!(b[i] as char, '0'..='9' | '.') {
                    if b[i] == b'.' {
                        dec = true;
                    }
                    i += 1;
                }
                if dec {
                    out.push(Tok::Dec(input[start..i].to_string()));
                } else {
                    out.push(Tok::Int(input[start..i].parse().map_err(|_| {
                        VhError::Plan(format!("bad integer literal '{}'", &input[start..i]))
                    })?));
                }
            }
            '\'' => {
                i += 1;
                let start = i;
                while i < b.len() && b[i] != b'\'' {
                    i += 1;
                }
                if i >= b.len() {
                    return Err(VhError::Plan("unterminated string literal".into()));
                }
                out.push(Tok::Str(input[start..i].to_string()));
                i += 1;
            }
            '<' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Tok::Le);
                i += 2;
            }
            '>' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Tok::Ge);
                i += 2;
            }
            '<' if i + 1 < b.len() && b[i + 1] == b'>' => {
                out.push(Tok::Ne);
                i += 2;
            }
            '!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Tok::Ne);
                i += 2;
            }
            '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '=' | '<' | '>' => {
                out.push(Tok::Sym(c));
                i += 1;
            }
            other => return Err(VhError::Plan(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

// --- parse tree (pre-resolution) ---------------------------------------------

#[derive(Debug, Clone)]
enum Ast {
    Col(Option<String>, String),
    IntLit(i64),
    DecLit(String),
    StrLit(String),
    Star,
    Bin(String, Box<Ast>, Box<Ast>),
    Not(Box<Ast>),
    Between(Box<Ast>, Box<Ast>, Box<Ast>),
    InList(Box<Ast>, Vec<Ast>),
    Like(Box<Ast>, String, bool),
    Agg(String, bool, Box<Ast>), // fn, distinct, arg (Star for count(*))
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(VhError::Plan(format!(
                "expected '{kw}' at token {:?}",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<()> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            Err(VhError::Plan(format!(
                "expected '{c}' at token {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            t => Err(VhError::Plan(format!("expected identifier, got {t:?}"))),
        }
    }

    // expr := or_expr
    fn expr(&mut self) -> Result<Ast> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Ast> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or") {
            let r = self.and_expr()?;
            e = Ast::Bin("or".into(), Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Ast> {
        let mut e = self.not_expr()?;
        while self.eat_kw("and") {
            let r = self.not_expr()?;
            e = Ast::Bin("and".into(), Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Ast> {
        if self.eat_kw("not") {
            Ok(Ast::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Ast> {
        let e = self.add_expr()?;
        if self.eat_kw("between") {
            let lo = self.add_expr()?;
            self.expect_kw("and")?;
            let hi = self.add_expr()?;
            return Ok(Ast::Between(Box::new(e), Box::new(lo), Box::new(hi)));
        }
        if self.eat_kw("in") {
            self.expect_sym('(')?;
            let mut items = vec![self.add_expr()?];
            while self.eat_sym(',') {
                items.push(self.add_expr()?);
            }
            self.expect_sym(')')?;
            return Ok(Ast::InList(Box::new(e), items));
        }
        let negated = if self.eat_kw("not") {
            self.expect_kw("like")?;
            true
        } else if self.eat_kw("like") {
            false
        } else {
            let op = match self.peek() {
                Some(Tok::Sym('=')) => Some("="),
                Some(Tok::Sym('<')) => Some("<"),
                Some(Tok::Sym('>')) => Some(">"),
                Some(Tok::Le) => Some("<="),
                Some(Tok::Ge) => Some(">="),
                Some(Tok::Ne) => Some("<>"),
                _ => None,
            };
            if let Some(op) = op {
                self.pos += 1;
                let r = self.add_expr()?;
                return Ok(Ast::Bin(op.into(), Box::new(e), Box::new(r)));
            }
            return Ok(e);
        };
        match self.next() {
            Some(Tok::Str(p)) => Ok(Ast::Like(Box::new(e), p, negated)),
            t => Err(VhError::Plan(format!(
                "LIKE expects a string pattern, got {t:?}"
            ))),
        }
    }

    fn add_expr(&mut self) -> Result<Ast> {
        let mut e = self.mul_expr()?;
        loop {
            if self.eat_sym('+') {
                e = Ast::Bin("+".into(), Box::new(e), Box::new(self.mul_expr()?));
            } else if self.eat_sym('-') {
                e = Ast::Bin("-".into(), Box::new(e), Box::new(self.mul_expr()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Ast> {
        let mut e = self.atom()?;
        loop {
            if self.eat_sym('*') {
                e = Ast::Bin("*".into(), Box::new(e), Box::new(self.atom()?));
            } else if self.eat_sym('/') {
                e = Ast::Bin("/".into(), Box::new(e), Box::new(self.atom()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn atom(&mut self) -> Result<Ast> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Ast::IntLit(v)),
            Some(Tok::Dec(s)) => Ok(Ast::DecLit(s)),
            Some(Tok::Str(s)) => Ok(Ast::StrLit(s)),
            Some(Tok::Sym('(')) => {
                let e = self.expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Some(Tok::Sym('*')) => Ok(Ast::Star),
            Some(Tok::Sym('-')) => {
                // unary minus
                let inner = self.atom()?;
                Ok(Ast::Bin(
                    "-".into(),
                    Box::new(Ast::IntLit(0)),
                    Box::new(inner),
                ))
            }
            Some(Tok::Ident(name)) => {
                let aggs = ["sum", "count", "avg", "min", "max"];
                if aggs.contains(&name.as_str()) && self.eat_sym('(') {
                    let distinct = self.eat_kw("distinct");
                    let arg = if matches!(self.peek(), Some(Tok::Sym('*'))) {
                        self.pos += 1;
                        Ast::Star
                    } else {
                        self.expr()?
                    };
                    self.expect_sym(')')?;
                    return Ok(Ast::Agg(name, distinct, Box::new(arg)));
                }
                if self.eat_sym('.') {
                    let col = self.ident()?;
                    Ok(Ast::Col(Some(name), col))
                } else {
                    Ok(Ast::Col(None, name))
                }
            }
            t => Err(VhError::Plan(format!("unexpected token {t:?}"))),
        }
    }
}

// --- name environment & resolution -------------------------------------------

/// Maps (qualifier, column) to positions in the running plan's output.
struct Env {
    /// (alias, column name) per output position.
    cols: Vec<(String, String)>,
}

impl Env {
    fn resolve(&self, qual: &Option<String>, name: &str) -> Result<usize> {
        let hits: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (a, c))| c == name && qual.as_ref().map(|q| q == a).unwrap_or(true))
            .map(|(i, _)| i)
            .collect();
        match hits.len() {
            1 => Ok(hits[0]),
            0 => Err(VhError::Plan(format!("unknown column '{name}'"))),
            _ => Err(VhError::Plan(format!("ambiguous column '{name}'"))),
        }
    }
}

/// Coerce a literal to a column type when the other comparison side is a
/// column (dates from strings, decimal scaling of ints).
fn coerce(value: Value, target: DataType) -> Value {
    match (&value, target) {
        (Value::Str(s), DataType::Date) => date::parse(s).map(Value::Date).unwrap_or(value),
        (Value::I64(v), DataType::Decimal { scale }) => {
            Value::Decimal(v * 10i64.pow(scale as u32), scale)
        }
        (Value::Decimal(raw, s), DataType::Decimal { scale }) if *s < scale => {
            Value::Decimal(raw * 10i64.pow((scale - s) as u32), scale)
        }
        _ => value,
    }
}

fn lit_of(ast: &Ast) -> Option<Value> {
    match ast {
        Ast::IntLit(v) => Some(Value::I64(*v)),
        Ast::DecLit(s) => {
            let scale = s.split('.').nth(1).map(|f| f.len() as u8).unwrap_or(0);
            Some(vectorh_common::types::dec(s, scale))
        }
        Ast::StrLit(s) => Some(Value::Str(s.clone())),
        _ => None,
    }
}

/// Resolve a (non-aggregate) AST into an executable expression.
fn resolve_expr(ast: &Ast, env: &Env, schema: &Schema) -> Result<Expr> {
    Ok(match ast {
        Ast::Col(q, n) => Expr::Col(env.resolve(q, n)?),
        Ast::IntLit(_) | Ast::DecLit(_) | Ast::StrLit(_) => {
            Expr::Lit(lit_of(ast).expect("literal"))
        }
        Ast::Star => return Err(VhError::Plan("'*' outside count(*)".into())),
        Ast::Not(e) => Expr::Not(Box::new(resolve_expr(e, env, schema)?)),
        Ast::Between(e, lo, hi) => {
            let ex = resolve_expr(e, env, schema)?;
            let t = ex.dtype(schema)?;
            let lo = coerce_resolved(lo, env, schema, t)?;
            let hi = coerce_resolved(hi, env, schema, t)?;
            Expr::Between(Box::new(ex), Box::new(lo), Box::new(hi))
        }
        Ast::InList(e, items) => {
            let ex = resolve_expr(e, env, schema)?;
            let t = ex.dtype(schema)?;
            let vals: Result<Vec<Value>> = items
                .iter()
                .map(|i| {
                    lit_of(i)
                        .map(|v| coerce(v, t))
                        .ok_or_else(|| VhError::Plan("IN list items must be literals".into()))
                })
                .collect();
            Expr::InList(Box::new(ex), vals?)
        }
        Ast::Like(e, pat, negated) => {
            let ex = resolve_expr(e, env, schema)?;
            if *negated {
                Expr::NotLike(Box::new(ex), pat.clone())
            } else {
                Expr::Like(Box::new(ex), pat.clone())
            }
        }
        Ast::Bin(op, l, r) => {
            match op.as_str() {
                "and" => Expr::And(vec![
                    resolve_expr(l, env, schema)?,
                    resolve_expr(r, env, schema)?,
                ]),
                "or" => Expr::Or(vec![
                    resolve_expr(l, env, schema)?,
                    resolve_expr(r, env, schema)?,
                ]),
                "+" | "-" | "*" | "/" => {
                    let le = resolve_expr(l, env, schema)?;
                    let re = resolve_expr(r, env, schema)?;
                    match op.as_str() {
                        "+" => Expr::add(le, re),
                        "-" => Expr::sub(le, re),
                        "*" => Expr::mul(le, re),
                        _ => Expr::div(le, re),
                    }
                }
                cmp => {
                    // Comparisons get literal coercion against the column side.
                    let le = resolve_expr(l, env, schema)?;
                    let lt = le.dtype(schema)?;
                    let re = coerce_resolved(r, env, schema, lt)?;
                    // ... and symmetric when the literal is on the left.
                    let (le, re) = if lit_of(l).is_some() {
                        let rt = re.dtype(schema)?;
                        (coerce_resolved(l, env, schema, rt)?, re)
                    } else {
                        (le, re)
                    };
                    let op = match cmp {
                        "=" => CmpOp::Eq,
                        "<>" => CmpOp::Ne,
                        "<" => CmpOp::Lt,
                        "<=" => CmpOp::Le,
                        ">" => CmpOp::Gt,
                        ">=" => CmpOp::Ge,
                        other => return Err(VhError::Plan(format!("unknown operator '{other}'"))),
                    };
                    Expr::Cmp(op, Box::new(le), Box::new(re))
                }
            }
        }
        Ast::Agg(..) => return Err(VhError::Plan("aggregate in unexpected position".into())),
    })
}

fn coerce_resolved(ast: &Ast, env: &Env, schema: &Schema, target: DataType) -> Result<Expr> {
    if let Some(v) = lit_of(ast) {
        Ok(Expr::Lit(coerce(v, target)))
    } else {
        resolve_expr(ast, env, schema)
    }
}

// --- query assembly ------------------------------------------------------------

/// Parse a SQL query into a logical plan.
pub fn parse_query(sql: &str, catalog: &dyn CatalogInfo) -> Result<LogicalPlan> {
    let mut p = Parser {
        toks: tokenize(sql)?,
        pos: 0,
    };
    p.expect_kw("select")?;

    // Select list (deferred resolution).
    let mut select_items: Vec<(Ast, Option<String>)> = Vec::new();
    loop {
        if matches!(p.peek(), Some(Tok::Sym('*'))) && select_items.is_empty() {
            p.pos += 1;
            select_items.push((Ast::Star, None));
        } else {
            let e = p.expr()?;
            let alias = if p.eat_kw("as") {
                Some(p.ident()?)
            } else {
                None
            };
            select_items.push((e, alias));
        }
        if !p.eat_sym(',') {
            break;
        }
    }

    p.expect_kw("from")?;
    // FROM t [alias] (JOIN t2 [alias] ON eq [AND eq]*)*
    let mut plan;
    let mut env;
    {
        let (tname, alias) = parse_table_ref(&mut p)?;
        let meta = catalog.table(&tname)?;
        let cols: Vec<usize> = (0..meta.schema.len()).collect();
        env = Env {
            cols: meta
                .schema
                .fields()
                .iter()
                .map(|f| (alias.clone(), f.name.clone()))
                .collect(),
        };
        plan = LogicalPlan::Scan { table: tname, cols };
    }
    while p.eat_kw("join") || (p.eat_kw("inner") && p.eat_kw("join")) {
        let (tname, alias) = parse_table_ref(&mut p)?;
        let meta = catalog.table(&tname)?;
        p.expect_kw("on")?;
        // Equality conjunction referencing both sides.
        let mut right_env_cols: Vec<(String, String)> = meta
            .schema
            .fields()
            .iter()
            .map(|f| (alias.clone(), f.name.clone()))
            .collect();
        let combined = Env {
            cols: env
                .cols
                .iter()
                .cloned()
                .chain(right_env_cols.iter().cloned())
                .collect(),
        };
        let left_width = env.cols.len();
        let mut lkeys = Vec::new();
        let mut rkeys = Vec::new();
        loop {
            let a = p.expr()?;
            match a {
                Ast::Bin(op, l, r) if op == "=" => {
                    let li = resolve_col(&l, &combined)?;
                    let ri = resolve_col(&r, &combined)?;
                    let (lk, rk) = if li < left_width {
                        (li, ri - left_width)
                    } else {
                        (ri, li - left_width)
                    };
                    lkeys.push(lk);
                    rkeys.push(rk);
                }
                _ => return Err(VhError::Plan("JOIN ON expects equality".into())),
            }
            if !p.eat_kw("and") {
                break;
            }
        }
        let rcols: Vec<usize> = (0..meta.schema.len()).collect();
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(LogicalPlan::Scan {
                table: tname,
                cols: rcols,
            }),
            left_keys: lkeys,
            right_keys: rkeys,
            kind: JoinKind::Inner,
        };
        env.cols.append(&mut right_env_cols);
    }

    let schema = plan.schema(catalog)?;

    if p.eat_kw("where") {
        let ast = p.expr()?;
        let predicate = resolve_expr(&ast, &env, &schema)?;
        plan = LogicalPlan::Select {
            input: Box::new(plan),
            predicate,
        };
    }

    // GROUP BY / aggregates.
    let group_cols: Vec<usize> = if p.eat_kw("group") {
        p.expect_kw("by")?;
        let mut cols = Vec::new();
        loop {
            let ast = p.expr()?;
            cols.push(resolve_col(&ast, &env)?);
            if !p.eat_sym(',') {
                break;
            }
        }
        cols
    } else {
        vec![]
    };

    let has_aggs = select_items.iter().any(|(a, _)| contains_agg(a));
    let mut out_names: Vec<String> = Vec::new();
    if has_aggs || !group_cols.is_empty() {
        // Pre-project: group cols first, then each aggregate's argument.
        let mut pre_items: Vec<(Expr, String)> = Vec::new();
        for (i, &g) in group_cols.iter().enumerate() {
            pre_items.push((Expr::Col(g), format!("g{i}")));
        }
        let mut aggs: Vec<AggFn> = Vec::new();
        // Output projection over [group cols..., agg results...].
        let mut post_items: Vec<(Expr, String)> = Vec::new();
        for (idx, (ast, alias)) in select_items.iter().enumerate() {
            let default_name = alias.clone().unwrap_or_else(|| display_name(ast, idx));
            out_names.push(default_name.clone());
            match ast {
                Ast::Agg(f, distinct, arg) => {
                    let agg_out_pos = group_cols.len() + aggs.len();
                    let fnc = match (f.as_str(), distinct, arg.as_ref()) {
                        ("count", false, Ast::Star) => AggFn::CountStar,
                        ("count", true, a) => {
                            let col = push_arg(a, &env, &schema, &mut pre_items)?;
                            AggFn::CountDistinct(col)
                        }
                        ("count", false, a) => {
                            let col = push_arg(a, &env, &schema, &mut pre_items)?;
                            AggFn::Count(col)
                        }
                        ("sum", _, a) => AggFn::Sum(push_arg(a, &env, &schema, &mut pre_items)?),
                        ("avg", _, a) => AggFn::Avg(push_arg(a, &env, &schema, &mut pre_items)?),
                        ("min", _, a) => AggFn::Min(push_arg(a, &env, &schema, &mut pre_items)?),
                        ("max", _, a) => AggFn::Max(push_arg(a, &env, &schema, &mut pre_items)?),
                        (other, _, _) => {
                            return Err(VhError::Plan(format!("unknown aggregate '{other}'")))
                        }
                    };
                    aggs.push(fnc);
                    post_items.push((Expr::Col(agg_out_pos), default_name));
                }
                other => {
                    // Must be a grouped column reference.
                    let col = resolve_col(other, &env)?;
                    let gpos = group_cols.iter().position(|g| *g == col).ok_or_else(|| {
                        VhError::Plan("non-aggregated select column must be in GROUP BY".into())
                    })?;
                    post_items.push((Expr::Col(gpos), default_name));
                }
            }
        }
        // A pure `count(*)` needs no pre-projection — and an empty
        // projection would lose the row count entirely.
        if !pre_items.is_empty() {
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                items: pre_items,
            };
        }
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: (0..group_cols.len()).collect(),
            aggs,
        };
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            items: post_items,
        };
    } else {
        // Plain projection.
        let mut items: Vec<(Expr, String)> = Vec::new();
        for (idx, (ast, alias)) in select_items.iter().enumerate() {
            if matches!(ast, Ast::Star) {
                for (i, (_, name)) in env.cols.iter().enumerate() {
                    items.push((Expr::Col(i), name.clone()));
                    out_names.push(name.clone());
                }
            } else {
                let name = alias.clone().unwrap_or_else(|| display_name(ast, idx));
                items.push((resolve_expr(ast, &env, &schema)?, name.clone()));
                out_names.push(name);
            }
        }
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            items,
        };
    }

    // ORDER BY on output names / 1-based positions.
    if p.eat_kw("order") {
        p.expect_kw("by")?;
        let mut keys = Vec::new();
        loop {
            let pos = match p.next() {
                Some(Tok::Int(n)) => (n as usize)
                    .checked_sub(1)
                    .ok_or_else(|| VhError::Plan("ORDER BY position is 1-based".into()))?,
                Some(Tok::Ident(name)) => out_names
                    .iter()
                    .position(|n| *n == name)
                    .ok_or_else(|| VhError::Plan(format!("ORDER BY unknown column '{name}'")))?,
                t => return Err(VhError::Plan(format!("bad ORDER BY key {t:?}"))),
            };
            let dir = if p.eat_kw("desc") {
                Dir::Desc
            } else {
                p.eat_kw("asc");
                Dir::Asc
            };
            keys.push((pos, dir));
            if !p.eat_sym(',') {
                break;
            }
        }
        let limit = if p.eat_kw("limit") {
            match p.next() {
                Some(Tok::Int(n)) => Some(n as usize),
                t => return Err(VhError::Plan(format!("bad LIMIT {t:?}"))),
            }
        } else {
            None
        };
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
            limit,
        };
    } else if p.eat_kw("limit") {
        match p.next() {
            Some(Tok::Int(n)) => {
                plan = LogicalPlan::Limit {
                    input: Box::new(plan),
                    n: n as usize,
                }
            }
            t => return Err(VhError::Plan(format!("bad LIMIT {t:?}"))),
        }
    }

    if let Some(t) = p.peek() {
        return Err(VhError::Plan(format!("trailing tokens starting at {t:?}")));
    }
    Ok(plan)
}

fn parse_table_ref(p: &mut Parser) -> Result<(String, String)> {
    let name = p.ident()?;
    // Optional alias (not a keyword).
    let keywords = [
        "join", "inner", "left", "on", "where", "group", "order", "limit",
    ];
    let alias = match p.peek() {
        Some(Tok::Ident(s)) if !keywords.contains(&s.as_str()) => {
            let a = s.clone();
            p.pos += 1;
            a
        }
        _ => name.clone(),
    };
    Ok((name, alias))
}

fn resolve_col(ast: &Ast, env: &Env) -> Result<usize> {
    match ast {
        Ast::Col(q, n) => env.resolve(q, n),
        _ => Err(VhError::Plan("expected a column reference".into())),
    }
}

fn contains_agg(ast: &Ast) -> bool {
    match ast {
        Ast::Agg(..) => true,
        Ast::Bin(_, l, r) => contains_agg(l) || contains_agg(r),
        Ast::Not(e) => contains_agg(e),
        Ast::Between(a, b, c) => contains_agg(a) || contains_agg(b) || contains_agg(c),
        Ast::InList(e, _) | Ast::Like(e, _, _) => contains_agg(e),
        _ => false,
    }
}

fn display_name(ast: &Ast, idx: usize) -> String {
    match ast {
        Ast::Col(_, n) => n.clone(),
        Ast::Agg(f, _, _) => format!("{f}_{idx}"),
        _ => format!("col{idx}"),
    }
}

/// Resolve an aggregate argument: reuse an existing pre-projection item or
/// append a new one; returns its column position.
fn push_arg(
    ast: &Ast,
    env: &Env,
    schema: &Schema,
    pre_items: &mut Vec<(Expr, String)>,
) -> Result<usize> {
    let e = resolve_expr(ast, env, schema)?;
    if let Some(pos) = pre_items.iter().position(|(x, _)| *x == e) {
        return Ok(pos);
    }
    let pos = pre_items.len();
    pre_items.push((e, format!("a{pos}")));
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{MemoryCatalog, TableMeta};

    fn catalog() -> MemoryCatalog {
        let mut c = MemoryCatalog::new();
        c.add(TableMeta {
            name: "orders".into(),
            schema: Schema::of(&[
                ("o_orderkey", DataType::I64),
                ("o_custkey", DataType::I64),
                ("o_orderdate", DataType::Date),
                ("o_totalprice", DataType::Decimal { scale: 2 }),
                ("o_status", DataType::Str),
            ]),
            rows: 1000,
            partitioning: Some((vec![0], 4)),
            sort_order: Some(vec![2]),
        });
        c.add(TableMeta {
            name: "customer".into(),
            schema: Schema::of(&[("c_custkey", DataType::I64), ("c_name", DataType::Str)]),
            rows: 100,
            partitioning: Some((vec![0], 4)),
            sort_order: None,
        });
        c
    }

    #[test]
    fn simple_select_star() {
        let c = catalog();
        let p = parse_query("SELECT * FROM orders", &c).unwrap();
        let s = p.schema(&c).unwrap();
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn where_with_date_coercion() {
        let c = catalog();
        let p = parse_query(
            "SELECT o_orderkey FROM orders WHERE o_orderdate < '1995-03-05'",
            &c,
        )
        .unwrap();
        // The literal became a Date value.
        fn find_date(plan: &LogicalPlan) -> bool {
            match plan {
                LogicalPlan::Select { predicate, .. } => format!("{predicate:?}").contains("Date("),
                LogicalPlan::Project { input, .. } => find_date(input),
                _ => false,
            }
        }
        assert!(find_date(&p), "{p:?}");
    }

    #[test]
    fn decimal_coercion_in_compare() {
        let c = catalog();
        let p = parse_query("SELECT o_orderkey FROM orders WHERE o_totalprice > 100", &c).unwrap();
        // 100 must be scaled to Decimal(10000, 2).
        assert!(format!("{p:?}").contains("Decimal(10000, 2)"), "{p:?}");
    }

    #[test]
    fn join_with_on_clause() {
        let c = catalog();
        let p = parse_query(
            "SELECT o.o_orderkey, c.c_name FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey",
            &c,
        )
        .unwrap();
        fn find_join(plan: &LogicalPlan) -> Option<(Vec<usize>, Vec<usize>)> {
            match plan {
                LogicalPlan::Join {
                    left_keys,
                    right_keys,
                    ..
                } => Some((left_keys.clone(), right_keys.clone())),
                LogicalPlan::Project { input, .. } | LogicalPlan::Select { input, .. } => {
                    find_join(input)
                }
                _ => None,
            }
        }
        let (lk, rk) = find_join(&p).expect("join");
        assert_eq!(lk, vec![1]); // o_custkey
        assert_eq!(rk, vec![0]); // c_custkey
        let s = p.schema(&c).unwrap();
        assert_eq!(s.names(), vec!["o_orderkey", "c_name"]);
    }

    #[test]
    fn group_by_with_aggregates() {
        let c = catalog();
        let p = parse_query(
            "SELECT o_status, count(*) AS n, sum(o_totalprice) AS total, avg(o_totalprice) \
             FROM orders GROUP BY o_status ORDER BY n DESC LIMIT 5",
            &c,
        )
        .unwrap();
        let s = p.schema(&c).unwrap();
        assert_eq!(s.names(), vec!["o_status", "n", "total", "avg_3"]);
        assert_eq!(s.dtype(2), DataType::Decimal { scale: 2 });
        assert_eq!(s.dtype(3), DataType::F64);
        assert!(matches!(p, LogicalPlan::Sort { limit: Some(5), .. }));
    }

    #[test]
    fn aggregate_over_expression() {
        let c = catalog();
        let p = parse_query("SELECT sum(o_totalprice * 2) FROM orders", &c).unwrap();
        assert!(p.schema(&c).is_ok());
    }

    #[test]
    fn between_in_like_not() {
        let c = catalog();
        let queries = [
            "SELECT o_orderkey FROM orders WHERE o_orderdate BETWEEN '1994-01-01' AND '1994-12-31'",
            "SELECT o_orderkey FROM orders WHERE o_status IN ('open', 'closed')",
            "SELECT o_orderkey FROM orders WHERE o_status LIKE 'o%'",
            "SELECT o_orderkey FROM orders WHERE o_status NOT LIKE '%x%'",
            "SELECT o_orderkey FROM orders WHERE NOT o_orderkey = 5 AND o_custkey > 3 OR o_custkey < 1",
        ];
        for q in queries {
            parse_query(q, &c).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn count_distinct() {
        let c = catalog();
        let p = parse_query("SELECT count(distinct o_custkey) FROM orders", &c).unwrap();
        fn find(plan: &LogicalPlan) -> bool {
            match plan {
                LogicalPlan::Aggregate { aggs, .. } => {
                    matches!(aggs[0], AggFn::CountDistinct(_))
                }
                LogicalPlan::Project { input, .. } => find(input),
                _ => false,
            }
        }
        assert!(find(&p));
    }

    #[test]
    fn errors_are_reported() {
        let c = catalog();
        assert!(parse_query("SELECT FROM orders", &c).is_err());
        assert!(parse_query("SELECT nope FROM orders", &c).is_err());
        assert!(parse_query("SELECT o_orderkey FROM missing", &c).is_err());
        assert!(parse_query("SELECT o_orderkey FROM orders WHERE", &c).is_err());
        assert!(parse_query("SELECT o_orderkey FROM orders trailing junk", &c).is_err());
        assert!(parse_query("SELECT o_custkey, count(*) FROM orders", &c).is_err());
        assert!(parse_query("SELECT 'unterminated FROM orders", &c).is_err());
    }

    #[test]
    fn order_by_position() {
        let c = catalog();
        let p = parse_query(
            "SELECT o_orderkey, o_custkey FROM orders ORDER BY 2 DESC",
            &c,
        )
        .unwrap();
        match p {
            LogicalPlan::Sort { keys, .. } => assert_eq!(keys, vec![(1, Dir::Desc)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_unary_minus() {
        let c = catalog();
        let p = parse_query(
            "SELECT o_totalprice * (1 - 0.04) AS discounted FROM orders WHERE o_orderkey > -5",
            &c,
        )
        .unwrap();
        let s = p.schema(&c).unwrap();
        assert_eq!(s.names(), vec!["discounted"]);
    }
}
