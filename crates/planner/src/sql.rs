//! A SQL subset parser and lowerer producing logical plans.
//!
//! Covers the surface the 22 TPC-H queries need:
//!
//! ```sql
//! SELECT [DISTINCT] expr [AS name], agg(expr), ...
//! FROM t [alias] | (SELECT ...) alias
//!   [[INNER] JOIN | LEFT [OUTER] JOIN t2 ON a.x = b.y [AND ...]] ...
//! [WHERE <boolean expr>]          -- incl. IN/EXISTS/scalar subqueries
//! [GROUP BY expr, ...]
//! [HAVING <boolean expr>]
//! [ORDER BY col|position [ASC|DESC], ...]
//! [LIMIT n]
//! ```
//!
//! Expressions: arithmetic, comparisons, `AND/OR/NOT`, `BETWEEN`, `IN`,
//! `LIKE`, `CASE WHEN`, `EXTRACT(YEAR FROM ...)`, `SUBSTRING`, decimal/
//! date/interval/string literals. Literals are coerced against column
//! types ('1995-03-05' becomes a date when compared to a date column;
//! numeric literals pick up a decimal column's scale).
//!
//! Subqueries are decorrelated at lowering time (see [`crate::subquery`]):
//! uncorrelated scalars become single-row cross joins, correlated scalars
//! become grouped joins on the correlation keys, IN/EXISTS become
//! Semi/Anti joins, and the Q21-style `EXISTS (... <> ...)` pattern is
//! rewritten through a grouped count-distinct/min.

use vectorh_common::types::date;
use vectorh_common::{DataType, Result, Schema, Value, VhError};
use vectorh_exec::aggr::AggFn;
use vectorh_exec::expr::{CmpOp, Expr};
use vectorh_exec::sort::Dir;

use crate::logical::{CatalogInfo, JoinKind, LogicalPlan};

// --- tokenizer ---------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Dec(String),
    Str(String),
    Sym(char),
    // two-char symbols
    Le,
    Ge,
    Ne,
}

fn tokenize(input: &str) -> Result<Vec<Tok>> {
    let mut out = Vec::new();
    let b = input.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && matches!(b[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    i += 1;
                }
                out.push(Tok::Ident(input[start..i].to_lowercase()));
            }
            '0'..='9' => {
                let start = i;
                let mut dec = false;
                while i < b.len() && matches!(b[i] as char, '0'..='9' | '.') {
                    if b[i] == b'.' {
                        dec = true;
                    }
                    i += 1;
                }
                if dec {
                    out.push(Tok::Dec(input[start..i].to_string()));
                } else {
                    out.push(Tok::Int(input[start..i].parse().map_err(|_| {
                        VhError::Plan(format!("bad integer literal '{}'", &input[start..i]))
                    })?));
                }
            }
            '\'' => {
                i += 1;
                let start = i;
                while i < b.len() && b[i] != b'\'' {
                    i += 1;
                }
                if i >= b.len() {
                    return Err(VhError::Plan("unterminated string literal".into()));
                }
                out.push(Tok::Str(input[start..i].to_string()));
                i += 1;
            }
            '<' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Tok::Le);
                i += 2;
            }
            '>' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Tok::Ge);
                i += 2;
            }
            '<' if i + 1 < b.len() && b[i + 1] == b'>' => {
                out.push(Tok::Ne);
                i += 2;
            }
            '!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Tok::Ne);
                i += 2;
            }
            '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '=' | '<' | '>' => {
                out.push(Tok::Sym(c));
                i += 1;
            }
            other => return Err(VhError::Plan(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

// --- parse tree (pre-resolution) ---------------------------------------------

#[derive(Debug, Clone)]
pub(crate) enum Ast {
    Col(Option<String>, String),
    /// Already-resolved column position (introduced during lowering, never
    /// produced by the parser).
    ResolvedCol(usize),
    IntLit(i64),
    DecLit(String),
    StrLit(String),
    DateLit(i32),
    Star,
    Bin(String, Box<Ast>, Box<Ast>),
    Not(Box<Ast>),
    Between(Box<Ast>, Box<Ast>, Box<Ast>),
    InList(Box<Ast>, Vec<Ast>),
    Like(Box<Ast>, String, bool),
    Agg(String, bool, Box<Ast>), // fn, distinct, arg (Star for count(*))
    Case(Vec<(Ast, Ast)>, Box<Ast>),
    ExtractYear(Box<Ast>),
    Substr(Box<Ast>, usize, usize),
    /// Scalar subquery `( SELECT agg(...) ... )`.
    Scalar(Box<QueryAst>),
    /// `lhs [NOT] IN ( SELECT ... )`.
    InSub(Box<Ast>, Box<QueryAst>, bool),
    /// `[NOT] EXISTS ( SELECT ... )`.
    Exists(Box<QueryAst>, bool),
}

#[derive(Debug, Clone)]
pub(crate) enum OrderKey {
    Pos(usize),
    Name(String),
}

#[derive(Debug, Clone)]
pub(crate) enum FromItem {
    /// table name, alias
    Table(String, String),
    /// derived table (subquery in FROM), alias
    Derived(Box<QueryAst>, String),
}

#[derive(Debug, Clone)]
pub(crate) struct FromClause {
    pub kind: JoinKind,
    pub item: FromItem,
    /// None only for the first FROM entry.
    pub on: Option<Ast>,
}

/// One parsed SELECT block (possibly nested as a subquery).
#[derive(Debug, Clone)]
pub(crate) struct QueryAst {
    pub distinct: bool,
    pub items: Vec<(Ast, Option<String>)>,
    pub from: Vec<FromClause>,
    pub where_: Option<Ast>,
    pub group_by: Vec<Ast>,
    pub having: Option<Ast>,
    pub order_by: Vec<(OrderKey, Dir)>,
    pub limit: Option<usize>,
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    /// Current expression-nesting depth; bounded so hostile inputs (200
    /// nested parens, towers of CASE) get a Plan error, not a stack overflow.
    depth: usize,
}

/// Recursion budget for nested expressions and subqueries. TPC-H tops out
/// around depth 6; 64 leaves generous headroom while keeping worst-case
/// stack usage far below thread limits.
const MAX_EXPR_DEPTH: usize = 64;

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&Tok> {
        self.toks.get(self.pos + off)
    }

    /// Non-consuming keyword lookahead (the join loop depends on this: a
    /// dangling `inner` with no `join` after it must NOT be swallowed).
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn peek_kw_at(&self, off: usize, kw: &str) -> bool {
        matches!(self.peek_at(off), Some(Tok::Ident(s)) if s == kw)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(VhError::Plan(format!(
                "expected '{kw}' at token {:?}",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(s)) if *s == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<()> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            Err(VhError::Plan(format!(
                "expected '{c}' at token {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            t => Err(VhError::Plan(format!("expected identifier, got {t:?}"))),
        }
    }

    fn int_lit(&mut self) -> Result<i64> {
        match self.next() {
            Some(Tok::Int(n)) => Ok(n),
            t => Err(VhError::Plan(format!(
                "expected integer literal, got {t:?}"
            ))),
        }
    }

    // expr := or_expr
    fn expr(&mut self) -> Result<Ast> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(VhError::Plan(format!(
                "expression nesting deeper than {MAX_EXPR_DEPTH}"
            )));
        }
        let e = self.or_expr();
        self.depth -= 1;
        e
    }

    fn or_expr(&mut self) -> Result<Ast> {
        let mut e = self.and_expr()?;
        while self.eat_kw("or") {
            let r = self.and_expr()?;
            e = Ast::Bin("or".into(), Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Ast> {
        let mut e = self.not_expr()?;
        while self.eat_kw("and") {
            let r = self.not_expr()?;
            e = Ast::Bin("and".into(), Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<Ast> {
        // Count NOT prefixes iteratively — a `not not not ...` tower must
        // not consume a stack frame per token.
        let mut nots = 0usize;
        while self.peek_kw("not")
            && !self.peek_kw_at(1, "like")
            && !self.peek_kw_at(1, "in")
            && !self.peek_kw_at(1, "between")
        {
            self.pos += 1;
            nots += 1;
        }
        let mut e = self.cmp_expr()?;
        for _ in 0..nots {
            e = Ast::Not(Box::new(e));
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Ast> {
        let e = self.add_expr()?;
        if self.eat_kw("between") {
            let lo = self.add_expr()?;
            self.expect_kw("and")?;
            let hi = self.add_expr()?;
            return Ok(Ast::Between(Box::new(e), Box::new(lo), Box::new(hi)));
        }
        if self.eat_kw("in") {
            return self.in_rest(e, false);
        }
        let negated = if self.eat_kw("not") {
            if self.eat_kw("in") {
                return self.in_rest(e, true);
            }
            if self.eat_kw("between") {
                let lo = self.add_expr()?;
                self.expect_kw("and")?;
                let hi = self.add_expr()?;
                return Ok(Ast::Not(Box::new(Ast::Between(
                    Box::new(e),
                    Box::new(lo),
                    Box::new(hi),
                ))));
            }
            self.expect_kw("like")?;
            true
        } else if self.eat_kw("like") {
            false
        } else {
            let op = match self.peek() {
                Some(Tok::Sym('=')) => Some("="),
                Some(Tok::Sym('<')) => Some("<"),
                Some(Tok::Sym('>')) => Some(">"),
                Some(Tok::Le) => Some("<="),
                Some(Tok::Ge) => Some(">="),
                Some(Tok::Ne) => Some("<>"),
                _ => None,
            };
            if let Some(op) = op {
                self.pos += 1;
                let r = self.add_expr()?;
                return Ok(Ast::Bin(op.into(), Box::new(e), Box::new(r)));
            }
            return Ok(e);
        };
        match self.next() {
            Some(Tok::Str(p)) => Ok(Ast::Like(Box::new(e), p, negated)),
            t => Err(VhError::Plan(format!(
                "LIKE expects a string pattern, got {t:?}"
            ))),
        }
    }

    /// Tail of `[NOT] IN ( ... )`: literal list or subquery.
    fn in_rest(&mut self, lhs: Ast, negated: bool) -> Result<Ast> {
        self.expect_sym('(')?;
        if self.eat_kw("select") {
            let q = self.parse_select()?;
            self.expect_sym(')')?;
            return Ok(Ast::InSub(Box::new(lhs), Box::new(q), negated));
        }
        let mut items = vec![self.add_expr()?];
        while self.eat_sym(',') {
            items.push(self.add_expr()?);
        }
        self.expect_sym(')')?;
        let inlist = Ast::InList(Box::new(lhs), items);
        Ok(if negated {
            Ast::Not(Box::new(inlist))
        } else {
            inlist
        })
    }

    fn add_expr(&mut self) -> Result<Ast> {
        let mut e = self.mul_expr()?;
        loop {
            if self.eat_sym('+') {
                e = Ast::Bin("+".into(), Box::new(e), Box::new(self.mul_expr()?));
            } else if self.eat_sym('-') {
                e = Ast::Bin("-".into(), Box::new(e), Box::new(self.mul_expr()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Ast> {
        let mut e = self.atom()?;
        loop {
            if self.eat_sym('*') {
                e = Ast::Bin("*".into(), Box::new(e), Box::new(self.atom()?));
            } else if self.eat_sym('/') {
                e = Ast::Bin("/".into(), Box::new(e), Box::new(self.atom()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn atom(&mut self) -> Result<Ast> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Ast::IntLit(v)),
            Some(Tok::Dec(s)) => Ok(Ast::DecLit(s)),
            Some(Tok::Str(s)) => Ok(Ast::StrLit(s)),
            Some(Tok::Sym('(')) => {
                if self.eat_kw("select") {
                    let q = self.parse_select()?;
                    self.expect_sym(')')?;
                    return Ok(Ast::Scalar(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Some(Tok::Sym('*')) => Ok(Ast::Star),
            Some(Tok::Sym('-')) => {
                // Unary minus; fold `--x` towers iteratively so each extra
                // sign costs an Ast node, not a stack frame.
                let mut negs = 1usize;
                while self.eat_sym('-') {
                    negs += 1;
                }
                let mut e = self.atom()?;
                for _ in 0..negs {
                    e = Ast::Bin("-".into(), Box::new(Ast::IntLit(0)), Box::new(e));
                }
                Ok(e)
            }
            Some(Tok::Ident(name)) => self.ident_atom(name),
            t => Err(VhError::Plan(format!("unexpected token {t:?}"))),
        }
    }

    /// An identifier atom: special forms (CASE, EXTRACT, SUBSTRING, DATE,
    /// INTERVAL, EXISTS, aggregates) are gated on their signature next-token
    /// so the same words keep working as plain column names.
    fn ident_atom(&mut self, name: String) -> Result<Ast> {
        match name.as_str() {
            "case" if self.peek_kw("when") => {
                let mut arms = Vec::new();
                while self.eat_kw("when") {
                    let c = self.expr()?;
                    self.expect_kw("then")?;
                    let v = self.expr()?;
                    arms.push((c, v));
                }
                self.expect_kw("else")?;
                let e = self.expr()?;
                self.expect_kw("end")?;
                return Ok(Ast::Case(arms, Box::new(e)));
            }
            "extract" if matches!(self.peek(), Some(Tok::Sym('('))) => {
                self.pos += 1;
                self.expect_kw("year")?;
                self.expect_kw("from")?;
                let e = self.expr()?;
                self.expect_sym(')')?;
                return Ok(Ast::ExtractYear(Box::new(e)));
            }
            "substring" | "substr" if matches!(self.peek(), Some(Tok::Sym('('))) => {
                self.pos += 1;
                let e = self.expr()?;
                let (start, len) = if self.eat_sym(',') {
                    let s = self.int_lit()?;
                    self.expect_sym(',')?;
                    (s, self.int_lit()?)
                } else {
                    self.expect_kw("from")?;
                    let s = self.int_lit()?;
                    self.expect_kw("for")?;
                    (s, self.int_lit()?)
                };
                self.expect_sym(')')?;
                if start < 1 {
                    return Err(VhError::Plan("SUBSTRING start is 1-based".into()));
                }
                if len < 0 {
                    return Err(VhError::Plan(
                        "SUBSTRING length must be non-negative".into(),
                    ));
                }
                return Ok(Ast::Substr(Box::new(e), start as usize, len as usize));
            }
            "date" if matches!(self.peek(), Some(Tok::Str(_))) => {
                if let Some(Tok::Str(s)) = self.next() {
                    let d = date::parse(&s)
                        .ok_or_else(|| VhError::Plan(format!("bad date literal '{s}'")))?;
                    return Ok(Ast::DateLit(d));
                }
                unreachable!()
            }
            "interval" if matches!(self.peek(), Some(Tok::Str(_))) => {
                if let Some(Tok::Str(s)) = self.next() {
                    let n: i64 = s
                        .parse()
                        .map_err(|_| VhError::Plan(format!("bad interval literal '{s}'")))?;
                    if !self.eat_kw("day") && !self.eat_kw("days") {
                        return Err(VhError::Plan("only DAY intervals are supported".into()));
                    }
                    return Ok(Ast::IntLit(n));
                }
                unreachable!()
            }
            "exists" if matches!(self.peek(), Some(Tok::Sym('('))) => {
                self.pos += 1;
                self.expect_kw("select")?;
                let q = self.parse_select()?;
                self.expect_sym(')')?;
                return Ok(Ast::Exists(Box::new(q), false));
            }
            _ => {}
        }
        let aggs = ["sum", "count", "avg", "min", "max"];
        if aggs.contains(&name.as_str()) && self.eat_sym('(') {
            let distinct = self.eat_kw("distinct");
            let arg = if matches!(self.peek(), Some(Tok::Sym('*'))) {
                self.pos += 1;
                Ast::Star
            } else {
                self.expr()?
            };
            self.expect_sym(')')?;
            return Ok(Ast::Agg(name, distinct, Box::new(arg)));
        }
        if self.eat_sym('.') {
            let col = self.ident()?;
            Ok(Ast::Col(Some(name), col))
        } else {
            Ok(Ast::Col(None, name))
        }
    }

    /// Parse one SELECT block. The leading `select` keyword has already been
    /// consumed by the caller.
    fn parse_select(&mut self) -> Result<QueryAst> {
        // Subqueries nest through here (scalar, EXISTS/IN, derived tables);
        // share the expression budget so `(select (select ...` towers error
        // out instead of exhausting the stack.
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(VhError::Plan(format!(
                "query nesting deeper than {MAX_EXPR_DEPTH}"
            )));
        }
        let q = self.parse_select_inner();
        self.depth -= 1;
        q
    }

    fn parse_select_inner(&mut self) -> Result<QueryAst> {
        let distinct = self.eat_kw("distinct");
        let mut items: Vec<(Ast, Option<String>)> = Vec::new();
        loop {
            if matches!(self.peek(), Some(Tok::Sym('*'))) && items.is_empty() {
                self.pos += 1;
                items.push((Ast::Star, None));
            } else {
                let e = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push((e, alias));
            }
            if !self.eat_sym(',') {
                break;
            }
        }

        self.expect_kw("from")?;
        let mut from = vec![FromClause {
            kind: JoinKind::Inner,
            item: self.parse_from_item()?,
            on: None,
        }];
        loop {
            let kind = if self.peek_kw("join") {
                self.pos += 1;
                JoinKind::Inner
            } else if self.peek_kw("inner") && self.peek_kw_at(1, "join") {
                self.pos += 2;
                JoinKind::Inner
            } else if self.peek_kw("left")
                && self.peek_kw_at(1, "outer")
                && self.peek_kw_at(2, "join")
            {
                self.pos += 3;
                JoinKind::LeftOuter
            } else if self.peek_kw("left") && self.peek_kw_at(1, "join") {
                self.pos += 2;
                JoinKind::LeftOuter
            } else {
                break;
            };
            let item = self.parse_from_item()?;
            self.expect_kw("on")?;
            let on = self.expr()?;
            from.push(FromClause {
                kind,
                item,
                on: Some(on),
            });
        }

        let where_ = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(',') {
                    break;
                }
            }
        }

        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let key = match self.next() {
                    Some(Tok::Int(n)) => OrderKey::Pos(
                        (n as usize)
                            .checked_sub(1)
                            .ok_or_else(|| VhError::Plan("ORDER BY position is 1-based".into()))?,
                    ),
                    Some(Tok::Ident(name)) => OrderKey::Name(name),
                    t => return Err(VhError::Plan(format!("bad ORDER BY key {t:?}"))),
                };
                let dir = if self.eat_kw("desc") {
                    Dir::Desc
                } else {
                    self.eat_kw("asc");
                    Dir::Asc
                };
                order_by.push((key, dir));
                if !self.eat_sym(',') {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Tok::Int(n)) if n >= 0 => Some(n as usize),
                t => return Err(VhError::Plan(format!("bad LIMIT {t:?}"))),
            }
        } else {
            None
        };

        Ok(QueryAst {
            distinct,
            items,
            from,
            where_,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        if self.eat_sym('(') {
            self.expect_kw("select")?;
            let q = self.parse_select()?;
            self.expect_sym(')')?;
            self.eat_kw("as");
            let alias = self.ident()?;
            return Ok(FromItem::Derived(Box::new(q), alias));
        }
        let name = self.ident()?;
        const KEYWORDS: [&str; 12] = [
            "join", "inner", "left", "right", "outer", "on", "where", "group", "having", "order",
            "limit", "union",
        ];
        let alias = if self.eat_kw("as") {
            self.ident()?
        } else {
            match self.peek() {
                Some(Tok::Ident(s)) if !KEYWORDS.contains(&s.as_str()) => {
                    let a = s.clone();
                    self.pos += 1;
                    a
                }
                _ => name.clone(),
            }
        };
        Ok(FromItem::Table(name, alias))
    }
}

// --- name scope & resolution --------------------------------------------------

/// Maps (qualifier, column) to positions in the running plan's output.
pub(crate) struct Scope {
    /// (alias, column name) per output position.
    pub cols: Vec<(String, String)>,
    /// (start, end, matched_col): column ranges made nullable by a LEFT
    /// OUTER join, with the position of that join's `__matched` indicator.
    pub nullable: Vec<(usize, usize, usize)>,
}

impl Scope {
    pub(crate) fn of(cols: Vec<(String, String)>) -> Scope {
        Scope {
            cols,
            nullable: Vec::new(),
        }
    }

    pub(crate) fn resolve(&self, qual: &Option<String>, name: &str) -> Result<usize> {
        let hits: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (a, c))| c == name && qual.as_ref().map(|q| q == a).unwrap_or(true))
            .map(|(i, _)| i)
            .collect();
        match hits.len() {
            1 => Ok(hits[0]),
            0 => Err(VhError::Plan(format!("unknown column '{name}'"))),
            _ => Err(VhError::Plan(format!("ambiguous column '{name}'"))),
        }
    }

    /// Quiet single-hit lookup (None on unknown or ambiguous).
    pub(crate) fn lookup(&self, qual: &Option<String>, name: &str) -> Option<usize> {
        self.resolve(qual, name).ok()
    }

    /// The `__matched` indicator guarding `col`, if `col` sits on the
    /// nullable side of a LEFT OUTER join.
    pub(crate) fn matched_of(&self, col: usize) -> Option<usize> {
        self.nullable
            .iter()
            .find(|(s, e, _)| col >= *s && col < *e)
            .map(|&(_, _, m)| m)
    }
}

/// Coerce a literal to a column type when the other comparison side is a
/// column (dates from strings, decimal scaling of ints). Overflowing
/// rescales keep the original value rather than panicking.
fn coerce(value: Value, target: DataType) -> Value {
    match (&value, target) {
        (Value::Str(s), DataType::Date) => date::parse(s).map(Value::Date).unwrap_or(value),
        (Value::I64(v), DataType::Decimal { scale }) => 10i64
            .checked_pow(scale as u32)
            .and_then(|f| v.checked_mul(f))
            .map(|raw| Value::Decimal(raw, scale))
            .unwrap_or(value),
        (Value::Decimal(raw, s), DataType::Decimal { scale }) if *s < scale => 10i64
            .checked_pow((scale - s) as u32)
            .and_then(|f| raw.checked_mul(f))
            .map(|r| Value::Decimal(r, scale))
            .unwrap_or(value),
        _ => value,
    }
}

/// Parse a decimal literal without panicking: scale capped at 4 (the
/// engine's MAX_SCALE, extra digits truncated), overflow rejected.
fn dec_lit_value(s: &str) -> Option<Value> {
    let (int_part, frac_part) = match s.split_once('.') {
        Some((i, f)) => (i, f),
        None => (s, ""),
    };
    if frac_part.contains('.') {
        return None; // "1.2.3"
    }
    let scale = frac_part.len().min(4);
    let frac = &frac_part[..scale];
    let int_v: i64 = if int_part.is_empty() {
        0
    } else {
        int_part.parse().ok()?
    };
    let frac_v: i64 = if frac.is_empty() {
        0
    } else {
        frac.parse().ok()?
    };
    let f = 10i64.checked_pow(scale as u32)?;
    let raw = int_v.checked_mul(f)?.checked_add(frac_v)?;
    Some(Value::Decimal(raw, scale as u8))
}

fn lit_of(ast: &Ast) -> Option<Value> {
    match ast {
        Ast::IntLit(v) => Some(Value::I64(*v)),
        Ast::DecLit(s) => dec_lit_value(s),
        Ast::StrLit(s) => Some(Value::Str(s.clone())),
        Ast::DateLit(d) => Some(Value::Date(*d)),
        _ => None,
    }
}

fn is_lit(ast: &Ast) -> bool {
    matches!(
        ast,
        Ast::IntLit(_) | Ast::DecLit(_) | Ast::StrLit(_) | Ast::DateLit(_)
    )
}

/// Resolve a (non-aggregate) AST into an executable expression.
pub(crate) fn resolve_expr(ast: &Ast, scope: &Scope, schema: &Schema) -> Result<Expr> {
    Ok(match ast {
        Ast::Col(q, n) => Expr::Col(scope.resolve(q, n)?),
        Ast::ResolvedCol(i) => Expr::Col(*i),
        Ast::IntLit(_) | Ast::DecLit(_) | Ast::StrLit(_) | Ast::DateLit(_) => Expr::Lit(
            lit_of(ast).ok_or_else(|| VhError::Plan(format!("bad numeric literal {ast:?}")))?,
        ),
        Ast::Star => return Err(VhError::Plan("'*' outside count(*)".into())),
        Ast::Not(e) => Expr::Not(Box::new(resolve_expr(e, scope, schema)?)),
        Ast::Between(e, lo, hi) => {
            let ex = resolve_expr(e, scope, schema)?;
            let t = ex.dtype(schema)?;
            let lo = coerce_resolved(lo, scope, schema, t)?;
            let hi = coerce_resolved(hi, scope, schema, t)?;
            Expr::Between(Box::new(ex), Box::new(lo), Box::new(hi))
        }
        Ast::InList(e, items) => {
            let ex = resolve_expr(e, scope, schema)?;
            let t = ex.dtype(schema)?;
            let vals: Result<Vec<Value>> = items
                .iter()
                .map(|i| {
                    lit_of(i)
                        .map(|v| coerce(v, t))
                        .ok_or_else(|| VhError::Plan("IN list items must be literals".into()))
                })
                .collect();
            Expr::InList(Box::new(ex), vals?)
        }
        Ast::Like(e, pat, negated) => {
            let ex = resolve_expr(e, scope, schema)?;
            if *negated {
                Expr::NotLike(Box::new(ex), pat.clone())
            } else {
                Expr::Like(Box::new(ex), pat.clone())
            }
        }
        Ast::Case(arms, else_e) => {
            let mut out = Vec::new();
            for (c, v) in arms {
                out.push((
                    resolve_expr(c, scope, schema)?,
                    resolve_expr(v, scope, schema)?,
                ));
            }
            Expr::Case(out, Box::new(resolve_expr(else_e, scope, schema)?))
        }
        Ast::ExtractYear(e) => Expr::ExtractYear(Box::new(resolve_expr(e, scope, schema)?)),
        Ast::Substr(e, start, len) => {
            Expr::Substr(Box::new(resolve_expr(e, scope, schema)?), *start, *len)
        }
        Ast::Bin(op, l, r) => {
            match op.as_str() {
                "and" => Expr::And(vec![
                    resolve_expr(l, scope, schema)?,
                    resolve_expr(r, scope, schema)?,
                ]),
                "or" => Expr::Or(vec![
                    resolve_expr(l, scope, schema)?,
                    resolve_expr(r, scope, schema)?,
                ]),
                "+" | "-" | "*" | "/" => {
                    let le = resolve_expr(l, scope, schema)?;
                    let re = resolve_expr(r, scope, schema)?;
                    match op.as_str() {
                        "+" => Expr::add(le, re),
                        "-" => Expr::sub(le, re),
                        "*" => Expr::mul(le, re),
                        _ => Expr::div(le, re),
                    }
                }
                cmp => {
                    // Comparisons get literal coercion against the column side.
                    let le = resolve_expr(l, scope, schema)?;
                    let lt = le.dtype(schema)?;
                    let re = coerce_resolved(r, scope, schema, lt)?;
                    // ... and symmetric when the literal is on the left.
                    let (le, re) = if is_lit(l) {
                        let rt = re.dtype(schema)?;
                        (coerce_resolved(l, scope, schema, rt)?, re)
                    } else {
                        (le, re)
                    };
                    let op = match cmp {
                        "=" => CmpOp::Eq,
                        "<>" => CmpOp::Ne,
                        "<" => CmpOp::Lt,
                        "<=" => CmpOp::Le,
                        ">" => CmpOp::Gt,
                        ">=" => CmpOp::Ge,
                        other => return Err(VhError::Plan(format!("unknown operator '{other}'"))),
                    };
                    Expr::Cmp(op, Box::new(le), Box::new(re))
                }
            }
        }
        Ast::Agg(..) => return Err(VhError::Plan("aggregate in unexpected position".into())),
        Ast::Scalar(_) | Ast::InSub(..) | Ast::Exists(..) => {
            return Err(VhError::Plan("subquery in unsupported position".into()))
        }
    })
}

fn coerce_resolved(ast: &Ast, scope: &Scope, schema: &Schema, target: DataType) -> Result<Expr> {
    if is_lit(ast) {
        let v = lit_of(ast).ok_or_else(|| VhError::Plan(format!("bad numeric literal {ast:?}")))?;
        Ok(Expr::Lit(coerce(v, target)))
    } else {
        resolve_expr(ast, scope, schema)
    }
}

// --- AST utilities ------------------------------------------------------------

/// Split a conjunction into its conjuncts, in textual order.
pub(crate) fn conjuncts(ast: Ast) -> Vec<Ast> {
    match ast {
        Ast::Bin(op, l, r) if op == "and" => {
            let mut v = conjuncts(*l);
            v.extend(conjuncts(*r));
            v
        }
        other => vec![other],
    }
}

/// Does this expression contain a subquery (without descending into
/// subquery bodies)?
pub(crate) fn has_subquery(ast: &Ast) -> bool {
    match ast {
        Ast::Scalar(_) | Ast::Exists(..) => true,
        Ast::InSub(l, _, _) => {
            let _ = l;
            true
        }
        Ast::Bin(_, l, r) => has_subquery(l) || has_subquery(r),
        Ast::Not(e) | Ast::Like(e, _, _) | Ast::ExtractYear(e) | Ast::Substr(e, _, _) => {
            has_subquery(e)
        }
        Ast::Between(a, b, c) => has_subquery(a) || has_subquery(b) || has_subquery(c),
        Ast::InList(e, items) => has_subquery(e) || items.iter().any(has_subquery),
        Ast::Agg(_, _, a) => has_subquery(a),
        Ast::Case(arms, else_e) => {
            arms.iter().any(|(c, v)| has_subquery(c) || has_subquery(v)) || has_subquery(else_e)
        }
        _ => false,
    }
}

pub(crate) fn contains_agg(ast: &Ast) -> bool {
    match ast {
        Ast::Agg(..) => true,
        Ast::Bin(_, l, r) => contains_agg(l) || contains_agg(r),
        Ast::Not(e) | Ast::Like(e, _, _) | Ast::ExtractYear(e) | Ast::Substr(e, _, _) => {
            contains_agg(e)
        }
        Ast::Between(a, b, c) => contains_agg(a) || contains_agg(b) || contains_agg(c),
        Ast::InList(e, items) => contains_agg(e) || items.iter().any(contains_agg),
        Ast::Case(arms, else_e) => {
            arms.iter().any(|(c, v)| contains_agg(c) || contains_agg(v)) || contains_agg(else_e)
        }
        Ast::InSub(l, _, _) => contains_agg(l),
        _ => false,
    }
}

/// Collect all column references, without descending into subquery bodies
/// (an `IN (subquery)` left side does count).
fn col_refs(ast: &Ast, out: &mut Vec<(Option<String>, String)>) {
    match ast {
        Ast::Col(q, n) => out.push((q.clone(), n.clone())),
        Ast::Bin(_, l, r) => {
            col_refs(l, out);
            col_refs(r, out);
        }
        Ast::Not(e) | Ast::Like(e, _, _) | Ast::ExtractYear(e) | Ast::Substr(e, _, _) => {
            col_refs(e, out)
        }
        Ast::Between(a, b, c) => {
            col_refs(a, out);
            col_refs(b, out);
            col_refs(c, out);
        }
        Ast::InList(e, items) => {
            col_refs(e, out);
            for i in items {
                col_refs(i, out);
            }
        }
        Ast::Agg(_, _, a) => col_refs(a, out),
        Ast::Case(arms, else_e) => {
            for (c, v) in arms {
                col_refs(c, out);
                col_refs(v, out);
            }
            col_refs(else_e, out);
        }
        Ast::InSub(l, _, _) => col_refs(l, out),
        _ => {}
    }
}

/// Fold `NOT` into EXISTS / IN-subquery nodes so the lowering sees plain
/// negated forms.
fn normalize_not(ast: Ast) -> Ast {
    match ast {
        Ast::Not(inner) => match normalize_not(*inner) {
            Ast::Exists(q, n) => Ast::Exists(q, !n),
            Ast::InSub(l, q, n) => Ast::InSub(l, q, !n),
            other => Ast::Not(Box::new(other)),
        },
        other => other,
    }
}

/// Does the resolved expression read any input column?
fn expr_reads_cols(e: &Expr) -> bool {
    match e {
        Expr::Col(_) => true,
        Expr::Lit(_) => false,
        Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => expr_reads_cols(a) || expr_reads_cols(b),
        Expr::And(v) | Expr::Or(v) => v.iter().any(expr_reads_cols),
        Expr::Not(a)
        | Expr::Like(a, _)
        | Expr::NotLike(a, _)
        | Expr::Substr(a, _, _)
        | Expr::ExtractYear(a) => expr_reads_cols(a),
        Expr::Between(a, b, c) => expr_reads_cols(a) || expr_reads_cols(b) || expr_reads_cols(c),
        Expr::InList(a, _) => expr_reads_cols(a),
        Expr::Case(arms, else_e) => {
            arms.iter()
                .any(|(c, v)| expr_reads_cols(c) || expr_reads_cols(v))
                || expr_reads_cols(else_e)
        }
    }
}

fn first_col_name(ast: &Ast) -> Option<String> {
    let mut refs = Vec::new();
    col_refs(ast, &mut refs);
    refs.first().map(|(_, n)| n.clone())
}

fn display_name(ast: &Ast, idx: usize) -> String {
    match ast {
        Ast::Col(_, n) => n.clone(),
        Ast::Agg(f, _, _) => format!("{f}_{idx}"),
        _ => format!("col{idx}"),
    }
}

pub(crate) fn take_plan(plan: &mut LogicalPlan) -> LogicalPlan {
    std::mem::replace(
        plan,
        LogicalPlan::Scan {
            table: String::new(),
            cols: Vec::new(),
        },
    )
}

// --- query lowering -----------------------------------------------------------

/// A correlated predicate between a subquery and its outer scope:
/// `inner_col = outer_col` (eq) or `inner_col <> outer_col`.
pub(crate) struct Correlation {
    pub eq: bool,
    pub outer: usize,
    pub inner: usize,
}

/// Parse a SQL query into a logical plan.
pub fn parse_query(sql: &str, catalog: &dyn CatalogInfo) -> Result<LogicalPlan> {
    let mut p = Parser {
        toks: tokenize(sql)?,
        pos: 0,
        depth: 0,
    };
    p.expect_kw("select")?;
    let q = p.parse_select()?;
    if let Some(t) = p.peek() {
        return Err(VhError::Plan(format!("trailing tokens starting at {t:?}")));
    }
    Ok(lower_select(&q, catalog)?.0)
}

/// Lower a full SELECT block into a plan; returns the output column names
/// (used by derived tables and ORDER BY name resolution).
pub(crate) fn lower_select(
    q: &QueryAst,
    catalog: &dyn CatalogInfo,
) -> Result<(LogicalPlan, Vec<String>)> {
    let mut corr = Vec::new();
    let (mut plan, scope) = lower_from_where(q, catalog, None, &mut corr)?;
    let has_aggs = !q.group_by.is_empty()
        || q.having.is_some()
        || q.items.iter().any(|(a, _)| contains_agg(a));
    let mut out_names;
    if has_aggs {
        let (p, names) = build_aggregate(
            plan,
            &scope,
            catalog,
            &q.group_by,
            &q.items,
            q.having.as_ref(),
        )?;
        plan = p;
        out_names = names;
    } else {
        let schema = plan.schema(catalog)?;
        let mut items: Vec<(Expr, String)> = Vec::new();
        out_names = Vec::new();
        for (idx, (ast, alias)) in q.items.iter().enumerate() {
            if matches!(ast, Ast::Star) {
                for (i, (a, name)) in scope.cols.iter().enumerate() {
                    // Hide lowering-internal bookkeeping columns.
                    if a.is_empty() && name.starts_with("__") {
                        continue;
                    }
                    items.push((Expr::Col(i), name.clone()));
                    out_names.push(name.clone());
                }
            } else {
                let name = alias.clone().unwrap_or_else(|| display_name(ast, idx));
                items.push((resolve_expr(ast, &scope, &schema)?, name.clone()));
                out_names.push(name);
            }
        }
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            items,
        };
    }

    if q.distinct {
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: (0..out_names.len()).collect(),
            aggs: vec![],
        };
    }

    if !q.order_by.is_empty() {
        let mut keys = Vec::new();
        for (key, dir) in &q.order_by {
            let pos = match key {
                OrderKey::Pos(p) => {
                    if *p >= out_names.len() {
                        return Err(VhError::Plan(format!(
                            "ORDER BY position {} is out of range",
                            p + 1
                        )));
                    }
                    *p
                }
                OrderKey::Name(name) => out_names
                    .iter()
                    .position(|n| n == name)
                    .ok_or_else(|| VhError::Plan(format!("ORDER BY unknown column '{name}'")))?,
            };
            keys.push((pos, *dir));
        }
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
            limit: q.limit,
        };
    } else if let Some(n) = q.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok((plan, out_names))
}

struct Frag {
    plan: LogicalPlan,
    cols: Vec<(String, String)>,
    kind: JoinKind,
    on: Option<Ast>,
}

/// Lower FROM + WHERE: scan/derive each fragment, push single-fragment
/// WHERE conjuncts below the joins, build the join tree in FROM order, then
/// apply the residual predicates (subqueries lower here; predicates over
/// `outer` columns are returned through `corr` instead of being applied).
pub(crate) fn lower_from_where(
    q: &QueryAst,
    catalog: &dyn CatalogInfo,
    outer: Option<&Scope>,
    corr: &mut Vec<Correlation>,
) -> Result<(LogicalPlan, Scope)> {
    // 1. Lower each FROM fragment.
    let mut frags: Vec<Frag> = Vec::new();
    for fc in &q.from {
        let (plan, cols) = match &fc.item {
            FromItem::Table(name, alias) => {
                let meta = catalog.table(name)?;
                let cols: Vec<(String, String)> = meta
                    .schema
                    .fields()
                    .iter()
                    .map(|f| (alias.clone(), f.name.clone()))
                    .collect();
                (
                    LogicalPlan::Scan {
                        table: name.clone(),
                        cols: (0..meta.schema.len()).collect(),
                    },
                    cols,
                )
            }
            FromItem::Derived(sub, alias) => {
                let (plan, names) = lower_select(sub, catalog)?;
                (
                    plan,
                    names.iter().map(|n| (alias.clone(), n.clone())).collect(),
                )
            }
        };
        frags.push(Frag {
            plan,
            cols,
            kind: fc.kind,
            on: fc.on.clone(),
        });
    }

    // 2. Split WHERE into per-fragment pushdowns and residual conjuncts.
    let all = q.where_.clone().map(conjuncts).unwrap_or_default();
    let mut pushed: Vec<Vec<Ast>> = vec![Vec::new(); frags.len()];
    let mut residual: Vec<Ast> = Vec::new();
    'conj: for c in all {
        if has_subquery(&c) || contains_agg(&c) {
            residual.push(c);
            continue;
        }
        let mut refs = Vec::new();
        col_refs(&c, &mut refs);
        if refs.is_empty() {
            residual.push(c);
            continue;
        }
        let mut target: Option<usize> = None;
        for (qual, name) in &refs {
            let mut hit = None;
            for (fi, frag) in frags.iter().enumerate() {
                let n = frag
                    .cols
                    .iter()
                    .filter(|(a, cn)| cn == name && qual.as_ref().map(|q| q == a).unwrap_or(true))
                    .count();
                if n == 1 && hit.is_none() {
                    hit = Some(fi);
                } else if n >= 1 {
                    // Ambiguous within or across fragments: resolve later,
                    // surfacing the error with the full scope.
                    residual.push(c);
                    continue 'conj;
                }
            }
            match (hit, target) {
                (Some(fi), None) => target = Some(fi),
                (Some(fi), Some(t)) if fi == t => {}
                // Unknown column or a predicate spanning fragments.
                _ => {
                    residual.push(c);
                    continue 'conj;
                }
            }
        }
        let t = target.unwrap();
        if frags[t].kind == JoinKind::LeftOuter {
            // WHERE over the nullable side must stay above the outer join.
            residual.push(c);
        } else {
            pushed[t].push(c);
        }
    }
    for (frag, mut cs) in frags.iter_mut().zip(pushed) {
        if cs.is_empty() {
            continue;
        }
        let local = Scope::of(frag.cols.clone());
        let schema = frag.plan.schema(catalog)?;
        let mut pred = resolve_expr(&cs.remove(0), &local, &schema)?;
        for c in &cs {
            pred = Expr::And(vec![pred, resolve_expr(c, &local, &schema)?]);
        }
        let input = take_plan(&mut frag.plan);
        frag.plan = LogicalPlan::Select {
            input: Box::new(input),
            predicate: pred,
        };
    }

    // 3. Build the join tree in FROM order.
    let mut it = frags.into_iter();
    let first = it
        .next()
        .expect("grammar guarantees at least one FROM item");
    let mut plan = first.plan;
    let mut scope = Scope::of(first.cols);
    for frag in it {
        join_fragment(&mut plan, &mut scope, frag, catalog)?;
    }

    // 4. Residual predicates, in textual order.
    for c in residual {
        let c = normalize_not(c);
        match c {
            Ast::Exists(sub, neg) => {
                crate::subquery::lower_exists(&mut plan, &mut scope, &sub, neg, catalog)?;
            }
            Ast::InSub(lhs, sub, neg) => {
                crate::subquery::lower_in(&mut plan, &mut scope, &lhs, &sub, neg, catalog)?;
            }
            c => {
                if let Some(outer_scope) = outer {
                    if let Some(cr) = as_correlation(&c, &scope, outer_scope)? {
                        corr.push(cr);
                        continue;
                    }
                }
                let c = crate::subquery::substitute_scalars(c, &mut plan, &mut scope, catalog)?;
                let schema = plan.schema(catalog)?;
                let predicate = resolve_expr(&c, &scope, &schema)?;
                plan = LogicalPlan::Select {
                    input: Box::new(plan),
                    predicate,
                };
            }
        }
    }
    Ok((plan, scope))
}

/// Join one more FROM fragment onto the running plan, classifying the ON
/// conjuncts into equi-keys, build-side filters, probe-side filters and
/// post-join filters.
fn join_fragment(
    plan: &mut LogicalPlan,
    scope: &mut Scope,
    frag: Frag,
    catalog: &dyn CatalogInfo,
) -> Result<()> {
    let mut rplan = frag.plan;
    let rcols = frag.cols;
    let rscope = Scope::of(rcols.clone());
    let on = frag
        .on
        .ok_or_else(|| VhError::Plan("JOIN without ON clause".into()))?;
    let left_width = scope.cols.len();
    let mut lkeys = Vec::new();
    let mut rkeys = Vec::new();
    let mut rpred: Vec<Ast> = Vec::new();
    let mut lpred: Vec<Ast> = Vec::new();
    let mut post: Vec<Ast> = Vec::new();
    for c in conjuncts(on) {
        if let Ast::Bin(op, l, r) = &c {
            if op == "=" {
                let try_keys = |a: &Ast, b: &Ast| -> Option<(usize, usize)> {
                    match (a, b) {
                        (Ast::Col(aq, an), Ast::Col(bq, bn)) => {
                            match (scope.lookup(aq, an), rscope.lookup(bq, bn)) {
                                (Some(li), Some(ri)) => Some((li, ri)),
                                _ => None,
                            }
                        }
                        _ => None,
                    }
                };
                if let Some((li, ri)) = try_keys(l, r).or_else(|| try_keys(r, l)) {
                    lkeys.push(li);
                    rkeys.push(ri);
                    continue;
                }
            }
        }
        let mut refs = Vec::new();
        col_refs(&c, &mut refs);
        let all_right = refs.iter().all(|(q, n)| rscope.lookup(q, n).is_some());
        let all_left = refs.iter().all(|(q, n)| scope.lookup(q, n).is_some());
        if all_right && !all_left {
            rpred.push(c);
        } else if all_left && !all_right {
            lpred.push(c);
        } else {
            post.push(c);
        }
    }
    if lkeys.is_empty() {
        return Err(VhError::Plan(
            "JOIN ON needs at least one equality between the two sides".into(),
        ));
    }
    // Build-side ON filters apply below the join — for LEFT OUTER this is
    // exactly the SQL semantics (unmatched probe rows survive).
    if !rpred.is_empty() {
        let schema = rplan.schema(catalog)?;
        for c in rpred {
            let predicate = resolve_expr(&c, &rscope, &schema)?;
            rplan = LogicalPlan::Select {
                input: Box::new(rplan),
                predicate,
            };
        }
    }
    if !lpred.is_empty() {
        if frag.kind == JoinKind::LeftOuter {
            return Err(VhError::Plan(
                "LEFT JOIN ON predicate over the left side is not supported".into(),
            ));
        }
        let schema = plan.schema(catalog)?;
        for c in lpred {
            let predicate = resolve_expr(&c, scope, &schema)?;
            *plan = LogicalPlan::Select {
                input: Box::new(take_plan(plan)),
                predicate,
            };
        }
    }
    if !post.is_empty() && frag.kind == JoinKind::LeftOuter {
        return Err(VhError::Plan(
            "LEFT JOIN ON predicate spanning both sides must be an equality".into(),
        ));
    }
    *plan = LogicalPlan::Join {
        left: Box::new(take_plan(plan)),
        right: Box::new(rplan),
        left_keys: lkeys,
        right_keys: rkeys,
        kind: frag.kind,
    };
    scope.cols.extend(rcols);
    if frag.kind == JoinKind::LeftOuter {
        // The executor appends a `__matched` indicator column.
        let matched = scope.cols.len();
        scope.nullable.push((left_width, matched, matched));
        scope.cols.push((String::new(), "__matched".into()));
    }
    if !post.is_empty() {
        let schema = plan.schema(catalog)?;
        for c in post {
            let predicate = resolve_expr(&c, scope, &schema)?;
            *plan = LogicalPlan::Select {
                input: Box::new(take_plan(plan)),
                predicate,
            };
        }
    }
    Ok(())
}

/// Recognize `inner_col = outer_col` / `inner_col <> outer_col` predicates
/// linking a subquery to its outer scope.
fn as_correlation(c: &Ast, inner: &Scope, outer: &Scope) -> Result<Option<Correlation>> {
    let (op, l, r) = match c {
        Ast::Bin(op, l, r) if op == "=" || op == "<>" => (op, l.as_ref(), r.as_ref()),
        _ => return Ok(None),
    };
    let ((lq, ln), (rq, rn)) = match (l, r) {
        (Ast::Col(lq, ln), Ast::Col(rq, rn)) => ((lq, ln), (rq, rn)),
        _ => return Ok(None),
    };
    match (inner.lookup(lq, ln), inner.lookup(rq, rn)) {
        // Both sides inner: a plain predicate, not a correlation.
        (Some(_), Some(_)) => Ok(None),
        (Some(i), None) => Ok(Some(Correlation {
            eq: op == "=",
            outer: outer.resolve(rq, rn)?,
            inner: i,
        })),
        (None, Some(i)) => Ok(Some(Correlation {
            eq: op == "=",
            outer: outer.resolve(lq, ln)?,
            inner: i,
        })),
        // Neither resolves: fall through so the residual path reports the
        // unknown column.
        (None, None) => Ok(None),
    }
}

// --- aggregation --------------------------------------------------------------

struct AggBuild<'a> {
    scope: &'a Scope,
    schema: &'a Schema,
    group_exprs: Vec<Expr>,
    pre_items: Vec<(Expr, String)>,
    aggs: Vec<AggFn>,
}

impl AggBuild<'_> {
    /// Reuse or append a pre-projection item; returns its position.
    fn push_pre(&mut self, e: Expr) -> usize {
        if let Some(pos) = self.pre_items.iter().position(|(x, _)| *x == e) {
            return pos;
        }
        let pos = self.pre_items.len();
        self.pre_items.push((e, format!("a{pos}")));
        pos
    }

    fn push_arg(&mut self, a: &Ast) -> Result<usize> {
        let e = resolve_expr(a, self.scope, self.schema)?;
        Ok(self.push_pre(e))
    }

    fn push_agg(&mut self, f: AggFn) -> usize {
        if let Some(pos) = self.aggs.iter().position(|x| *x == f) {
            return pos;
        }
        self.aggs.push(f);
        self.aggs.len() - 1
    }

    /// Rewrite a select/HAVING expression over the aggregate's output:
    /// grouping expressions and aggregates become `ResolvedCol`s, literals
    /// stay literal, anything else is an error. Scalar subqueries are kept
    /// verbatim (HAVING lowers them against the aggregate output later).
    fn rewrite_post(&mut self, ast: &Ast) -> Result<Ast> {
        if !contains_agg(ast) && !has_subquery(ast) {
            let e = resolve_expr(ast, self.scope, self.schema)?;
            if let Some(g) = self.group_exprs.iter().position(|x| *x == e) {
                return Ok(Ast::ResolvedCol(g));
            }
            if !expr_reads_cols(&e) {
                return Ok(ast.clone());
            }
            return Err(VhError::Plan(format!(
                "non-aggregated select column '{}' must appear in GROUP BY",
                first_col_name(ast).unwrap_or_else(|| "?".into())
            )));
        }
        Ok(match ast {
            Ast::Agg(f, distinct, arg) => {
                let fnc = match (f.as_str(), distinct, arg.as_ref()) {
                    ("count", false, Ast::Star) => AggFn::CountStar,
                    ("count", true, a) => {
                        let col = self.push_arg(a)?;
                        AggFn::CountDistinct(col)
                    }
                    ("count", false, a) => {
                        // count(col) over the nullable side of a LEFT OUTER
                        // join counts matched rows: sum the join's
                        // `__matched` indicator (TPC-H Q13).
                        let e = resolve_expr(a, self.scope, self.schema)?;
                        match &e {
                            Expr::Col(i) => match self.scope.matched_of(*i) {
                                Some(m) => AggFn::Sum(self.push_pre(Expr::Col(m))),
                                None => AggFn::Count(self.push_pre(e)),
                            },
                            _ => AggFn::Count(self.push_pre(e)),
                        }
                    }
                    ("sum", _, a) => AggFn::Sum(self.push_arg(a)?),
                    ("avg", _, a) => AggFn::Avg(self.push_arg(a)?),
                    ("min", _, a) => AggFn::Min(self.push_arg(a)?),
                    ("max", _, a) => AggFn::Max(self.push_arg(a)?),
                    (other, ..) => {
                        return Err(VhError::Plan(format!("unknown aggregate '{other}'")))
                    }
                };
                let pos = self.push_agg(fnc);
                Ast::ResolvedCol(self.group_exprs.len() + pos)
            }
            Ast::Bin(op, l, r) => Ast::Bin(
                op.clone(),
                Box::new(self.rewrite_post(l)?),
                Box::new(self.rewrite_post(r)?),
            ),
            Ast::Not(e) => Ast::Not(Box::new(self.rewrite_post(e)?)),
            Ast::Scalar(q) => Ast::Scalar(q.clone()),
            _ => {
                return Err(VhError::Plan(
                    "aggregates may not appear inside this expression".into(),
                ))
            }
        })
    }
}

/// Build pre-project → Aggregate → HAVING filters → post-project for an
/// aggregated SELECT.
pub(crate) fn build_aggregate(
    plan: LogicalPlan,
    scope: &Scope,
    catalog: &dyn CatalogInfo,
    group_by: &[Ast],
    items: &[(Ast, Option<String>)],
    having: Option<&Ast>,
) -> Result<(LogicalPlan, Vec<String>)> {
    let schema = plan.schema(catalog)?;
    let mut group_exprs = Vec::new();
    for g in group_by {
        group_exprs.push(resolve_expr(g, scope, &schema)?);
    }
    let mut b = AggBuild {
        scope,
        schema: &schema,
        pre_items: group_exprs
            .iter()
            .enumerate()
            .map(|(i, e)| (e.clone(), format!("g{i}")))
            .collect(),
        group_exprs,
        aggs: Vec::new(),
    };
    let mut post_asts = Vec::new();
    let mut out_names = Vec::new();
    for (idx, (ast, alias)) in items.iter().enumerate() {
        if matches!(ast, Ast::Star) {
            return Err(VhError::Plan("'*' in an aggregated select list".into()));
        }
        out_names.push(alias.clone().unwrap_or_else(|| display_name(ast, idx)));
        post_asts.push(b.rewrite_post(ast)?);
    }
    // HAVING conjuncts may introduce more aggregates (e.g. Q18's
    // `having sum(l_quantity) > 300`), so rewrite them before freezing the
    // aggregate list.
    let having_asts: Vec<Ast> = match having {
        Some(h) => conjuncts(h.clone())
            .iter()
            .map(|c| b.rewrite_post(c))
            .collect::<Result<_>>()?,
        None => Vec::new(),
    };
    let group_n = b.group_exprs.len();
    let aggs_n = b.aggs.len();
    let mut plan = plan;
    if !b.pre_items.is_empty() {
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            items: b.pre_items,
        };
    }
    plan = LogicalPlan::Aggregate {
        input: Box::new(plan),
        group_by: (0..group_n).collect(),
        aggs: b.aggs,
    };
    // HAVING runs over the aggregate output; scalar subqueries in it (Q11)
    // lower here, appending their columns past the aggregate's own.
    let mut post_scope = Scope::of(
        (0..group_n)
            .map(|i| (String::new(), format!("__g{i}")))
            .chain((0..aggs_n).map(|i| (String::new(), format!("__a{i}"))))
            .collect(),
    );
    for h in having_asts {
        let h = crate::subquery::substitute_scalars(h, &mut plan, &mut post_scope, catalog)?;
        let hschema = plan.schema(catalog)?;
        let predicate = resolve_expr(&h, &post_scope, &hschema)?;
        plan = LogicalPlan::Select {
            input: Box::new(plan),
            predicate,
        };
    }
    let pschema = plan.schema(catalog)?;
    let mut post_items = Vec::new();
    for (ast, name) in post_asts.iter().zip(&out_names) {
        post_items.push((resolve_expr(ast, &post_scope, &pschema)?, name.clone()));
    }
    plan = LogicalPlan::Project {
        input: Box::new(plan),
        items: post_items,
    };
    Ok((plan, out_names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{MemoryCatalog, TableMeta};

    fn catalog() -> MemoryCatalog {
        let mut c = MemoryCatalog::new();
        c.add(TableMeta {
            name: "orders".into(),
            schema: Schema::of(&[
                ("o_orderkey", DataType::I64),
                ("o_custkey", DataType::I64),
                ("o_orderdate", DataType::Date),
                ("o_totalprice", DataType::Decimal { scale: 2 }),
                ("o_status", DataType::Str),
            ]),
            rows: 1000,
            partitioning: Some((vec![0], 4)),
            sort_order: Some(vec![2]),
        });
        c.add(TableMeta {
            name: "customer".into(),
            schema: Schema::of(&[("c_custkey", DataType::I64), ("c_name", DataType::Str)]),
            rows: 100,
            partitioning: Some((vec![0], 4)),
            sort_order: None,
        });
        c
    }

    fn find_join(plan: &LogicalPlan) -> Option<(Vec<usize>, Vec<usize>, JoinKind)> {
        match plan {
            LogicalPlan::Join {
                left_keys,
                right_keys,
                kind,
                ..
            } => Some((left_keys.clone(), right_keys.clone(), *kind)),
            LogicalPlan::Project { input, .. }
            | LogicalPlan::Select { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => find_join(input),
            _ => None,
        }
    }

    #[test]
    fn simple_select_star() {
        let c = catalog();
        let p = parse_query("SELECT * FROM orders", &c).unwrap();
        let s = p.schema(&c).unwrap();
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn where_with_date_coercion() {
        let c = catalog();
        let p = parse_query(
            "SELECT o_orderkey FROM orders WHERE o_orderdate < '1995-03-05'",
            &c,
        )
        .unwrap();
        // The literal became a Date value.
        fn find_date(plan: &LogicalPlan) -> bool {
            match plan {
                LogicalPlan::Select { predicate, .. } => format!("{predicate:?}").contains("Date("),
                LogicalPlan::Project { input, .. } => find_date(input),
                _ => false,
            }
        }
        assert!(find_date(&p), "{p:?}");
    }

    #[test]
    fn decimal_coercion_in_compare() {
        let c = catalog();
        let p = parse_query("SELECT o_orderkey FROM orders WHERE o_totalprice > 100", &c).unwrap();
        // 100 must be scaled to Decimal(10000, 2).
        assert!(format!("{p:?}").contains("Decimal(10000, 2)"), "{p:?}");
    }

    #[test]
    fn join_with_on_clause() {
        let c = catalog();
        let p = parse_query(
            "SELECT o.o_orderkey, c.c_name FROM orders o JOIN customer c ON o.o_custkey = c.c_custkey",
            &c,
        )
        .unwrap();
        let (lk, rk, kind) = find_join(&p).expect("join");
        assert_eq!(lk, vec![1]); // o_custkey
        assert_eq!(rk, vec![0]); // c_custkey
        assert_eq!(kind, JoinKind::Inner);
        let s = p.schema(&c).unwrap();
        assert_eq!(s.names(), vec!["o_orderkey", "c_name"]);
    }

    #[test]
    fn group_by_with_aggregates() {
        let c = catalog();
        let p = parse_query(
            "SELECT o_status, count(*) AS n, sum(o_totalprice) AS total, avg(o_totalprice) \
             FROM orders GROUP BY o_status ORDER BY n DESC LIMIT 5",
            &c,
        )
        .unwrap();
        let s = p.schema(&c).unwrap();
        assert_eq!(s.names(), vec!["o_status", "n", "total", "avg_3"]);
        assert_eq!(s.dtype(2), DataType::Decimal { scale: 2 });
        assert_eq!(s.dtype(3), DataType::F64);
        assert!(matches!(p, LogicalPlan::Sort { limit: Some(5), .. }));
    }

    #[test]
    fn aggregate_over_expression() {
        let c = catalog();
        let p = parse_query("SELECT sum(o_totalprice * 2) FROM orders", &c).unwrap();
        assert!(p.schema(&c).is_ok());
    }

    #[test]
    fn between_in_like_not() {
        let c = catalog();
        let queries = [
            "SELECT o_orderkey FROM orders WHERE o_orderdate BETWEEN '1994-01-01' AND '1994-12-31'",
            "SELECT o_orderkey FROM orders WHERE o_status IN ('open', 'closed')",
            "SELECT o_orderkey FROM orders WHERE o_status LIKE 'o%'",
            "SELECT o_orderkey FROM orders WHERE o_status NOT LIKE '%x%'",
            "SELECT o_orderkey FROM orders WHERE NOT o_orderkey = 5 AND o_custkey > 3 OR o_custkey < 1",
            "SELECT o_orderkey FROM orders WHERE o_status NOT IN ('open') AND o_orderkey NOT BETWEEN 5 AND 9",
        ];
        for q in queries {
            parse_query(q, &c).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn count_distinct() {
        let c = catalog();
        let p = parse_query("SELECT count(distinct o_custkey) FROM orders", &c).unwrap();
        fn find(plan: &LogicalPlan) -> bool {
            match plan {
                LogicalPlan::Aggregate { aggs, .. } => {
                    matches!(aggs[0], AggFn::CountDistinct(_))
                }
                LogicalPlan::Project { input, .. } => find(input),
                _ => false,
            }
        }
        assert!(find(&p));
    }

    #[test]
    fn errors_are_reported() {
        let c = catalog();
        assert!(parse_query("SELECT FROM orders", &c).is_err());
        assert!(parse_query("SELECT nope FROM orders", &c).is_err());
        assert!(parse_query("SELECT o_orderkey FROM missing", &c).is_err());
        assert!(parse_query("SELECT o_orderkey FROM orders WHERE", &c).is_err());
        assert!(parse_query("SELECT o_orderkey FROM orders trailing junk", &c).is_err());
        assert!(parse_query("SELECT o_custkey, count(*) FROM orders", &c).is_err());
        assert!(parse_query("SELECT 'unterminated FROM orders", &c).is_err());
    }

    #[test]
    fn order_by_position() {
        let c = catalog();
        let p = parse_query(
            "SELECT o_orderkey, o_custkey FROM orders ORDER BY 2 DESC",
            &c,
        )
        .unwrap();
        match p {
            LogicalPlan::Sort { keys, .. } => assert_eq!(keys, vec![(1, Dir::Desc)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_and_unary_minus() {
        let c = catalog();
        let p = parse_query(
            "SELECT o_totalprice * (1 - 0.04) AS discounted FROM orders WHERE o_orderkey > -5",
            &c,
        )
        .unwrap();
        let s = p.schema(&c).unwrap();
        assert_eq!(s.names(), vec!["discounted"]);
    }

    // --- new-frontend coverage ------------------------------------------------

    #[test]
    fn dangling_inner_is_not_swallowed() {
        let c = catalog();
        // Regression (sql.rs consuming-lookahead bug): a dangling `inner`
        // with no `join` was eaten, silently accepting the query.
        let err = parse_query("SELECT o_orderkey FROM orders inner", &c).unwrap_err();
        assert!(format!("{err}").contains("inner"), "{err}");
        // ... while identifiers merely *starting* with `inner` are aliases.
        parse_query("SELECT inner_tab.o_orderkey FROM orders inner_tab", &c).unwrap();
        parse_query(
            "SELECT o_orderkey FROM orders o INNER JOIN customer c ON o.o_custkey = c.c_custkey",
            &c,
        )
        .unwrap();
    }

    #[test]
    fn left_outer_join() {
        let c = catalog();
        for sql in [
            "SELECT c_custkey, count(o_orderkey) AS n FROM customer LEFT JOIN orders \
             ON c_custkey = o_custkey GROUP BY c_custkey",
            "SELECT c_custkey, count(o_orderkey) AS n FROM customer LEFT OUTER JOIN orders \
             ON c_custkey = o_custkey GROUP BY c_custkey",
        ] {
            let p = parse_query(sql, &c).unwrap();
            let (_, _, kind) = find_join(&p).expect("join");
            assert_eq!(kind, JoinKind::LeftOuter);
            // count(o_orderkey) over the nullable side becomes
            // sum(__matched), never a plain Count.
            fn agg_of(plan: &LogicalPlan) -> Option<AggFn> {
                match plan {
                    LogicalPlan::Aggregate { aggs, .. } => aggs.first().copied(),
                    LogicalPlan::Project { input, .. } | LogicalPlan::Select { input, .. } => {
                        agg_of(input)
                    }
                    _ => None,
                }
            }
            assert!(matches!(agg_of(&p), Some(AggFn::Sum(_))), "{p:?}");
        }
    }

    #[test]
    fn derived_table_in_from() {
        let c = catalog();
        let p = parse_query(
            "SELECT st, total FROM (SELECT o_status AS st, sum(o_totalprice) AS total \
             FROM orders GROUP BY o_status) t WHERE total > 10 ORDER BY st",
            &c,
        )
        .unwrap();
        let s = p.schema(&c).unwrap();
        assert_eq!(s.names(), vec!["st", "total"]);
    }

    #[test]
    fn exists_and_in_subqueries() {
        let c = catalog();
        let p = parse_query(
            "SELECT o_orderkey FROM orders WHERE EXISTS \
             (SELECT * FROM customer WHERE c_custkey = o_custkey)",
            &c,
        )
        .unwrap();
        assert_eq!(find_join(&p).unwrap().2, JoinKind::Semi);
        let p = parse_query(
            "SELECT o_orderkey FROM orders WHERE NOT EXISTS \
             (SELECT * FROM customer WHERE c_custkey = o_custkey)",
            &c,
        )
        .unwrap();
        assert_eq!(find_join(&p).unwrap().2, JoinKind::Anti);
        let p = parse_query(
            "SELECT o_orderkey FROM orders WHERE o_custkey IN \
             (SELECT c_custkey FROM customer WHERE c_name LIKE 'A%')",
            &c,
        )
        .unwrap();
        assert_eq!(find_join(&p).unwrap().2, JoinKind::Semi);
        let p = parse_query(
            "SELECT o_orderkey FROM orders WHERE o_custkey NOT IN \
             (SELECT c_custkey FROM customer)",
            &c,
        )
        .unwrap();
        assert_eq!(find_join(&p).unwrap().2, JoinKind::Anti);
    }

    #[test]
    fn scalar_subqueries() {
        let c = catalog();
        // Uncorrelated: cross join (empty keys).
        let p = parse_query(
            "SELECT o_orderkey FROM orders WHERE o_totalprice > \
             (SELECT avg(o2.o_totalprice) FROM orders o2)",
            &c,
        )
        .unwrap();
        let (lk, rk, kind) = find_join(&p).unwrap();
        assert!(lk.is_empty() && rk.is_empty());
        assert_eq!(kind, JoinKind::Inner);
        // Correlated: grouped join on the correlation key.
        let p = parse_query(
            "SELECT o_orderkey FROM orders o WHERE o_totalprice > \
             (SELECT avg(o2.o_totalprice) FROM orders o2 WHERE o2.o_custkey = o.o_custkey)",
            &c,
        )
        .unwrap();
        let (lk, rk, kind) = find_join(&p).unwrap();
        assert_eq!((lk, rk, kind), (vec![1], vec![0], JoinKind::Inner));
    }

    #[test]
    fn having_distinct_case_extract_substring() {
        let c = catalog();
        let p = parse_query(
            "SELECT o_status, sum(o_totalprice) AS total FROM orders GROUP BY o_status \
             HAVING sum(o_totalprice) > 300 ORDER BY total DESC",
            &c,
        )
        .unwrap();
        // HAVING's literal picked up the decimal scale of the sum.
        assert!(format!("{p:?}").contains("Decimal(30000, 2)"), "{p:?}");
        parse_query("SELECT DISTINCT o_status FROM orders", &c).unwrap();
        parse_query(
            "SELECT sum(CASE WHEN o_status = 'open' THEN o_totalprice ELSE 0 END) FROM orders",
            &c,
        )
        .unwrap();
        let p = parse_query(
            "SELECT EXTRACT(YEAR FROM o_orderdate) AS y, count(*) FROM orders GROUP BY \
             EXTRACT(YEAR FROM o_orderdate) ORDER BY y",
            &c,
        )
        .unwrap();
        assert_eq!(p.schema(&c).unwrap().dtype(0), DataType::I32);
        parse_query(
            "SELECT SUBSTRING(o_status, 1, 2) AS code FROM orders WHERE \
             SUBSTRING(o_status, 1, 2) IN ('op', 'cl')",
            &c,
        )
        .unwrap();
        assert!(parse_query("SELECT SUBSTRING(o_status, 0, 2) FROM orders", &c).is_err());
    }

    #[test]
    fn date_arithmetic_and_intervals() {
        let c = catalog();
        let p = parse_query(
            "SELECT o_orderkey FROM orders WHERE o_orderdate <= date '1998-12-01' - interval '90' day",
            &c,
        )
        .unwrap();
        assert!(format!("{p:?}").contains("Date("), "{p:?}");
        assert!(parse_query("SELECT date 'not-a-date' FROM orders", &c).is_err());
        assert!(parse_query(
            "SELECT o_orderkey FROM orders WHERE o_orderdate < interval '1' month",
            &c
        )
        .is_err());
    }

    #[test]
    fn ambiguous_and_out_of_range_errors() {
        let c = catalog();
        let mut c2 = c;
        c2.add(TableMeta {
            name: "orders2".into(),
            schema: Schema::of(&[("o_orderkey", DataType::I64)]),
            rows: 10,
            partitioning: None,
            sort_order: None,
        });
        let err = parse_query(
            "SELECT o_orderkey FROM orders JOIN orders2 ON orders.o_orderkey = orders2.o_orderkey",
            &c2,
        )
        .unwrap_err();
        assert!(format!("{err}").contains("ambiguous"), "{err}");
        let err = parse_query("SELECT o_orderkey FROM orders ORDER BY 3", &c2).unwrap_err();
        assert!(format!("{err}").contains("out of range"), "{err}");
    }
}
