//! The Parallel Rewriter (§5).
//!
//! Turns a serial logical plan into a distributed physical plan by choosing,
//! per operator, among cost-ranked alternatives — the search the paper
//! formulates as dynamic programming over states `(operator, structural
//! properties, parallelism)`. The structural properties tracked here are
//! **partitioning** (which output columns the streams are partitioned on,
//! and whether that partitioning is aligned with table partitioning so
//! co-located execution is possible), **sorting** (clustered-index order
//! survives scans/filters, enabling co-ordered merge joins) and
//! **replication** (the subtree is present on every node).
//!
//! The §5 rewrite rules, each independently togglable for the ablation
//! benchmark:
//!
//! * **local join** — both sides partitioned on the join key with the same
//!   partition count ⇒ join matching partitions without any DXchg;
//! * **replicate build side** — a replicated (or small, broadcast) build
//!   side lets the join run wherever the probe side already is;
//! * **partial aggregation** — aggregate locally below the exchange, merge
//!   above, shrinking what crosses the network.
//!
//! The cost model "appropriately adds a high cost for Dxchg operators" —
//! network rows cost ~20× CPU rows — so the rewriter avoids communication
//! at all cost, as the paper puts it.

use vectorh_common::{Result, VhError};
use vectorh_exec::aggr::AggFn;
use vectorh_exec::expr::Expr;

use crate::logical::{CatalogInfo, JoinKind, LogicalPlan};
use crate::physical::{AggStrategy, JoinStrategy, PhysPlan};

/// Rule toggles + cost constants.
#[derive(Debug, Clone)]
pub struct RewriterOptions {
    pub enable_local_join: bool,
    pub enable_replicated_build: bool,
    pub enable_partial_aggr: bool,
    /// Build sides estimated below this row count get broadcast.
    pub broadcast_threshold_rows: f64,
    /// Cost per row crossing the network (CPU row = 1.0).
    pub net_cost_per_row: f64,
    /// Worker count (for broadcast cost).
    pub nodes: usize,
}

impl Default for RewriterOptions {
    fn default() -> Self {
        RewriterOptions {
            enable_local_join: true,
            enable_replicated_build: true,
            enable_partial_aggr: true,
            broadcast_threshold_rows: 50_000.0,
            net_cost_per_row: 20.0,
            nodes: 3,
        }
    }
}

/// Stream partitioning property.
#[derive(Debug, Clone, PartialEq)]
struct Part {
    /// Output column positions the streams are hash-partitioned on
    /// (empty = partition-aligned but the key columns are not in the
    /// output, so it cannot justify a local join).
    keys: Vec<usize>,
    /// Alignment class: table partition count, or the cluster width for
    /// exchange-produced partitionings.
    n_parts: usize,
    /// True when aligned with on-disk table partitioning (co-located).
    table_aligned: bool,
}

/// Structural properties of a candidate.
#[derive(Debug, Clone)]
struct Props {
    part: Option<Part>,
    /// Output columns the streams are sorted on (clustered order).
    sorted: Option<Vec<usize>>,
    replicated: bool,
    /// Single stream at the session master.
    serial: bool,
}

struct Candidate {
    plan: PhysPlan,
    props: Props,
    rows: f64,
    cost: f64,
}

/// The rewriter.
pub struct ParallelRewriter<'a> {
    catalog: &'a dyn CatalogInfo,
    pub options: RewriterOptions,
}

/// Map child-output key positions through a projection item list; `None`
/// when any key is not forwarded as a bare column.
fn remap_keys(keys: &[usize], items: &[(Expr, String)]) -> Option<Vec<usize>> {
    keys.iter()
        .map(|k| {
            items
                .iter()
                .position(|(e, _)| matches!(e, Expr::Col(c) if c == k))
        })
        .collect()
}

impl<'a> ParallelRewriter<'a> {
    pub fn new(catalog: &'a dyn CatalogInfo, options: RewriterOptions) -> ParallelRewriter<'a> {
        ParallelRewriter { catalog, options }
    }

    /// Rewrite a logical plan into a distributed physical plan whose result
    /// arrives as a single stream at the session master.
    pub fn rewrite(&self, lp: &LogicalPlan) -> Result<PhysPlan> {
        let cand = self.plan(lp)?;
        Ok(if cand.props.serial {
            cand.plan
        } else {
            PhysPlan::DxchgUnion {
                input: Box::new(cand.plan),
            }
        })
    }

    fn plan(&self, lp: &LogicalPlan) -> Result<Candidate> {
        match lp {
            LogicalPlan::Scan { table, cols } => self.plan_scan(table, cols),
            LogicalPlan::Select { input, predicate } => {
                let child = self.plan(input)?;
                let rows = child.rows * 0.3;
                // Push the predicate into a scan when directly below —
                // that is what enables MinMax skipping.
                let plan = match child.plan {
                    PhysPlan::ScanPartitioned {
                        table,
                        cols,
                        pred: None,
                    } => PhysPlan::ScanPartitioned {
                        table,
                        cols,
                        pred: Some(predicate.clone()),
                    },
                    PhysPlan::ScanReplicated {
                        table,
                        cols,
                        pred: None,
                    } => PhysPlan::ScanReplicated {
                        table,
                        cols,
                        pred: Some(predicate.clone()),
                    },
                    other => PhysPlan::Select {
                        input: Box::new(other),
                        predicate: predicate.clone(),
                    },
                };
                Ok(Candidate {
                    plan,
                    props: child.props,
                    rows,
                    cost: child.cost + child.rows * 0.5,
                })
            }
            LogicalPlan::Project { input, items } => {
                let child = self.plan(input)?;
                let part = child.props.part.as_ref().and_then(|p| {
                    remap_keys(&p.keys, items).map(|keys| Part { keys, ..p.clone() })
                });
                let sorted = child
                    .props
                    .sorted
                    .as_ref()
                    .and_then(|keys| remap_keys(keys, items));
                let props = Props {
                    part,
                    sorted,
                    ..child.props
                };
                Ok(Candidate {
                    plan: PhysPlan::Project {
                        input: Box::new(child.plan),
                        items: items.clone(),
                    },
                    props,
                    rows: child.rows,
                    cost: child.cost + child.rows * 0.2,
                })
            }
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
                kind,
            } => self.plan_join(left, right, left_keys, right_keys, *kind),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => self.plan_aggregate(input, group_by, aggs),
            LogicalPlan::Sort { input, keys, limit } => {
                let child = self.plan(input)?;
                let rows = limit
                    .map(|l| l as f64)
                    .unwrap_or(child.rows)
                    .min(child.rows);
                // Partial TopN below / final above is decided by the engine
                // from the strategy implied here: Sort is always serialized.
                let input_plan = if child.props.serial {
                    child.plan
                } else {
                    PhysPlan::DxchgUnion {
                        input: Box::new(child.plan),
                    }
                };
                Ok(Candidate {
                    plan: PhysPlan::Sort {
                        input: Box::new(input_plan),
                        keys: keys.clone(),
                        limit: *limit,
                    },
                    props: Props {
                        part: None,
                        sorted: None,
                        replicated: false,
                        serial: true,
                    },
                    rows,
                    cost: child.cost + child.rows * 1.0,
                })
            }
            LogicalPlan::Limit { input, n } => {
                let child = self.plan(input)?;
                let input_plan = if child.props.serial {
                    child.plan
                } else {
                    PhysPlan::DxchgUnion {
                        input: Box::new(child.plan),
                    }
                };
                Ok(Candidate {
                    plan: PhysPlan::Limit {
                        input: Box::new(input_plan),
                        n: *n,
                    },
                    props: Props {
                        part: None,
                        sorted: None,
                        replicated: false,
                        serial: true,
                    },
                    rows: (*n as f64).min(child.rows),
                    cost: child.cost,
                })
            }
        }
    }

    fn plan_scan(&self, table: &str, cols: &[usize]) -> Result<Candidate> {
        let meta = self.catalog.table(table)?;
        let rows = meta.rows as f64;
        let sorted = meta.sort_order.as_ref().and_then(|order| {
            order
                .iter()
                .map(|k| cols.iter().position(|c| c == k))
                .collect()
        });
        if meta.is_replicated() {
            Ok(Candidate {
                plan: PhysPlan::ScanReplicated {
                    table: table.into(),
                    cols: cols.to_vec(),
                    pred: None,
                },
                props: Props {
                    part: None,
                    sorted,
                    replicated: true,
                    serial: false,
                },
                rows,
                cost: rows,
            })
        } else {
            let (pkeys, n_parts) = meta.partitioning.clone().expect("partitioned");
            // Partition keys as positions in the projected output.
            let keys: Vec<usize> = pkeys
                .iter()
                .filter_map(|k| cols.iter().position(|c| c == k))
                .collect();
            let keys = if keys.len() == pkeys.len() {
                keys
            } else {
                vec![]
            };
            Ok(Candidate {
                plan: PhysPlan::ScanPartitioned {
                    table: table.into(),
                    cols: cols.to_vec(),
                    pred: None,
                },
                props: Props {
                    part: Some(Part {
                        keys,
                        n_parts,
                        table_aligned: true,
                    }),
                    sorted,
                    replicated: false,
                    serial: false,
                },
                rows,
                cost: rows,
            })
        }
    }

    fn plan_join(
        &self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        left_keys: &[usize],
        right_keys: &[usize],
        kind: JoinKind,
    ) -> Result<Candidate> {
        let l = self.plan(left)?;
        let r = self.plan(right)?;
        let out_rows = match kind {
            JoinKind::Inner => l.rows.max(r.rows),
            JoinKind::LeftOuter => l.rows,
            JoinKind::Semi | JoinKind::Anti => 0.5 * l.rows,
        };
        let mut cands: Vec<Candidate> = Vec::new();

        let partitioned_on = |p: &Props, keys: &[usize]| -> Option<Part> {
            p.part
                .as_ref()
                .filter(|part| !part.keys.is_empty() && part.keys == keys)
                .cloned()
        };

        // Rule: LOCAL JOIN — co-partitioned inputs, no exchange.
        if self.options.enable_local_join {
            if let (Some(lp), Some(rp)) = (
                partitioned_on(&l.props, left_keys),
                partitioned_on(&r.props, right_keys),
            ) {
                if lp.n_parts == rp.n_parts && lp.table_aligned && rp.table_aligned {
                    // Co-ordered single-key inputs merge-join instead.
                    let co_sorted = left_keys.len() == 1
                        && l.props
                            .sorted
                            .as_deref()
                            .map(|s| s.first() == Some(&left_keys[0]))
                            == Some(true)
                        && r.props
                            .sorted
                            .as_deref()
                            .map(|s| s.first() == Some(&right_keys[0]))
                            == Some(true)
                        && kind == JoinKind::Inner;
                    let cost =
                        l.cost + r.cost + (l.rows + r.rows) * if co_sorted { 1.0 } else { 2.0 };
                    let plan = if co_sorted {
                        PhysPlan::MergeJoin {
                            left: Box::new(l.plan.clone()),
                            right: Box::new(r.plan.clone()),
                            left_key: left_keys[0],
                            right_key: right_keys[0],
                        }
                    } else {
                        PhysPlan::HashJoin {
                            probe: Box::new(l.plan.clone()),
                            build: Box::new(r.plan.clone()),
                            probe_keys: left_keys.to_vec(),
                            build_keys: right_keys.to_vec(),
                            kind,
                            strategy: JoinStrategy::Local,
                        }
                    };
                    cands.push(Candidate {
                        plan,
                        props: Props {
                            part: Some(lp),
                            sorted: l.props.sorted.clone(),
                            replicated: false,
                            serial: false,
                        },
                        rows: out_rows,
                        cost,
                    });
                }
            }
        }

        // Rule: REPLICATED BUILD SIDE — replicated table or broadcast small.
        if self.options.enable_replicated_build && !l.props.serial {
            // Keyless (cross) joins always broadcast: they come from scalar-
            // subquery lowering where the build side is a single row, and a
            // hash repartition on zero columns would be meaningless.
            let small = r.rows <= self.options.broadcast_threshold_rows || right_keys.is_empty();
            if r.props.replicated || small {
                let (build_plan, extra) = if r.props.replicated {
                    (
                        r.plan.clone(),
                        r.rows * (self.options.nodes as f64 - 1.0) * 0.1,
                    )
                } else {
                    (
                        PhysPlan::DxchgBroadcast {
                            input: Box::new(r.plan.clone()),
                        },
                        r.rows * self.options.net_cost_per_row * self.options.nodes as f64,
                    )
                };
                cands.push(Candidate {
                    plan: PhysPlan::HashJoin {
                        probe: Box::new(l.plan.clone()),
                        build: Box::new(build_plan),
                        probe_keys: left_keys.to_vec(),
                        build_keys: right_keys.to_vec(),
                        kind,
                        strategy: JoinStrategy::BroadcastBuild,
                    },
                    props: Props {
                        part: l.props.part.clone(),
                        sorted: l.props.sorted.clone(),
                        replicated: l.props.replicated,
                        serial: false,
                    },
                    rows: out_rows,
                    cost: l.cost
                        + r.cost
                        + extra
                        + l.rows * 2.0
                        + r.rows * 2.0 * self.options.nodes as f64,
                });
            }
        }

        // Rule: REPARTITION — DXchgHashSplit both sides on the join keys.
        {
            let net = self.options.net_cost_per_row;
            cands.push(Candidate {
                plan: PhysPlan::HashJoin {
                    probe: Box::new(PhysPlan::DxchgHashSplit {
                        input: Box::new(l.plan.clone()),
                        keys: left_keys.to_vec(),
                    }),
                    build: Box::new(PhysPlan::DxchgHashSplit {
                        input: Box::new(r.plan.clone()),
                        keys: right_keys.to_vec(),
                    }),
                    probe_keys: left_keys.to_vec(),
                    build_keys: right_keys.to_vec(),
                    kind,
                    strategy: JoinStrategy::Repartitioned,
                },
                props: Props {
                    part: Some(Part {
                        keys: left_keys.to_vec(),
                        n_parts: self.options.nodes,
                        table_aligned: false,
                    }),
                    sorted: None,
                    replicated: false,
                    serial: false,
                },
                rows: out_rows,
                cost: l.cost + r.cost + (l.rows + r.rows) * (net + 2.0),
            });
        }

        cands
            .into_iter()
            .min_by(|a, b| a.cost.total_cmp(&b.cost))
            .ok_or_else(|| VhError::Plan("no join strategy applicable".into()))
    }

    fn plan_aggregate(
        &self,
        input: &LogicalPlan,
        group_by: &[usize],
        aggs: &[AggFn],
    ) -> Result<Candidate> {
        let child = self.plan(input)?;
        let has_distinct = aggs.iter().any(|a| matches!(a, AggFn::CountDistinct(_)));
        let out_rows = if group_by.is_empty() {
            1.0
        } else {
            (child.rows / 10.0).max(1.0)
        };
        let mk = |strategy: AggStrategy, child_plan: PhysPlan| PhysPlan::Aggr {
            input: Box::new(child_plan),
            group_by: group_by.to_vec(),
            aggs: aggs.to_vec(),
            strategy,
        };

        if group_by.is_empty() {
            // Global aggregate: always funnels to the master.
            let strategy = if self.options.enable_partial_aggr && !has_distinct {
                AggStrategy::GlobalPartialFinal
            } else {
                AggStrategy::GlobalComplete
            };
            return Ok(Candidate {
                plan: mk(strategy, child.plan),
                props: Props {
                    part: None,
                    sorted: None,
                    replicated: false,
                    serial: true,
                },
                rows: 1.0,
                cost: child.cost + child.rows * 1.5,
            });
        }

        // Already partitioned on a subset of the group keys: aggregate
        // locally, no exchange needed ("VectorH also detects that a
        // XchgHashSplit does not need to be inserted below the Aggr").
        let local_ok = child
            .props
            .part
            .as_ref()
            .map(|p| !p.keys.is_empty() && p.keys.iter().all(|k| group_by.contains(k)))
            .unwrap_or(false);
        if local_ok && !has_distinct {
            let part = child.props.part.clone().map(|p| Part {
                keys: p
                    .keys
                    .iter()
                    .map(|k| group_by.iter().position(|g| g == k).expect("subset"))
                    .collect(),
                ..p
            });
            return Ok(Candidate {
                plan: mk(AggStrategy::Local, child.plan),
                props: Props {
                    part,
                    sorted: None,
                    replicated: false,
                    serial: false,
                },
                rows: out_rows,
                cost: child.cost + child.rows * 1.5,
            });
        }

        let strategy = if self.options.enable_partial_aggr && !has_distinct {
            AggStrategy::PartialFinal
        } else {
            AggStrategy::RepartitionComplete
        };
        // Partial aggregation shrinks network traffic to ~groups.
        let net_rows = if strategy == AggStrategy::PartialFinal {
            out_rows * self.options.nodes as f64
        } else {
            child.rows
        };
        Ok(Candidate {
            plan: mk(strategy, child.plan),
            props: Props {
                part: Some(Part {
                    keys: (0..group_by.len()).collect(),
                    n_parts: self.options.nodes,
                    table_aligned: false,
                }),
                sorted: None,
                replicated: false,
                serial: false,
            },
            rows: out_rows,
            cost: child.cost + child.rows * 1.5 + net_rows * self.options.net_cost_per_row,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{MemoryCatalog, TableMeta};
    use vectorh_common::{DataType, Schema, Value};
    use vectorh_exec::sort::Dir;

    /// A TPC-H-ish catalog: lineitem/orders co-partitioned on the orderkey,
    /// supplier replicated.
    fn catalog() -> MemoryCatalog {
        let mut c = MemoryCatalog::new();
        c.add(TableMeta {
            name: "lineitem".into(),
            schema: Schema::of(&[
                ("l_orderkey", DataType::I64),
                ("l_suppkey", DataType::I64),
                ("l_discount", DataType::Decimal { scale: 2 }),
            ]),
            rows: 6_000_000,
            partitioning: Some((vec![0], 12)),
            sort_order: Some(vec![0]),
        });
        c.add(TableMeta {
            name: "orders".into(),
            schema: Schema::of(&[
                ("o_orderkey", DataType::I64),
                ("o_orderdate", DataType::Date),
            ]),
            rows: 1_500_000,
            partitioning: Some((vec![0], 12)),
            sort_order: Some(vec![1]),
        });
        c.add(TableMeta {
            name: "supplier".into(),
            schema: Schema::of(&[("s_suppkey", DataType::I64), ("s_name", DataType::Str)]),
            rows: 10_000,
            partitioning: None,
            sort_order: None,
        });
        c
    }

    fn sec5_query() -> LogicalPlan {
        // lineitem ⋈ orders on orderkey, then ⋈ supplier on suppkey,
        // GROUP BY s_suppkey, ORDER BY count LIMIT 10 — the §5 example.
        let li = LogicalPlan::Scan {
            table: "lineitem".into(),
            cols: vec![0, 1],
        };
        let ord = LogicalPlan::Scan {
            table: "orders".into(),
            cols: vec![0],
        };
        let join1 = LogicalPlan::Join {
            left: Box::new(li),
            right: Box::new(ord),
            left_keys: vec![0],
            right_keys: vec![0],
            kind: JoinKind::Inner,
        };
        let sup = LogicalPlan::Scan {
            table: "supplier".into(),
            cols: vec![0, 1],
        };
        let join2 = LogicalPlan::Join {
            left: Box::new(join1),
            right: Box::new(sup),
            left_keys: vec![1], // l_suppkey
            right_keys: vec![0],
            kind: JoinKind::Inner,
        };
        let agg = LogicalPlan::Aggregate {
            input: Box::new(join2),
            group_by: vec![3], // s_suppkey in join output
            aggs: vec![AggFn::CountStar],
        };
        LogicalPlan::Sort {
            input: Box::new(agg),
            keys: vec![(1, Dir::Asc)],
            limit: Some(10),
        }
    }

    fn count_strategy(plan: &PhysPlan, want: JoinStrategy) -> usize {
        let own = matches!(plan, PhysPlan::HashJoin { strategy, .. } if *strategy == want) as usize;
        own + plan
            .children()
            .iter()
            .map(|c| count_strategy(c, want))
            .sum::<usize>()
    }

    fn count_mergejoin(plan: &PhysPlan) -> usize {
        let own = matches!(plan, PhysPlan::MergeJoin { .. }) as usize;
        own + plan
            .children()
            .iter()
            .map(|c| count_mergejoin(c))
            .sum::<usize>()
    }

    #[test]
    fn sec5_plan_uses_all_three_rules() {
        let c = catalog();
        let rw = ParallelRewriter::new(&c, RewriterOptions::default());
        let plan = rw.rewrite(&sec5_query()).unwrap();
        // Local (merge) join between the co-partitioned, co-ordered tables.
        assert_eq!(
            count_mergejoin(&plan) + count_strategy(&plan, JoinStrategy::Local),
            1
        );
        // Replicated build side for supplier.
        assert_eq!(count_strategy(&plan, JoinStrategy::BroadcastBuild), 1);
        // The only exchanges: the aggregation split + final union.
        assert!(plan.exchange_count() <= 2, "{}", plan.explain());
        // Partial aggregation chosen.
        assert!(
            plan.explain().contains("PartialFinal"),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn disabling_local_join_forces_repartition() {
        let c = catalog();
        let opts = RewriterOptions {
            enable_local_join: false,
            ..Default::default()
        };
        let rw = ParallelRewriter::new(&c, opts);
        let plan = rw.rewrite(&sec5_query()).unwrap();
        assert_eq!(count_mergejoin(&plan), 0);
        assert!(
            count_strategy(&plan, JoinStrategy::Repartitioned) >= 1,
            "{}",
            plan.explain()
        );
        assert!(plan.exchange_count() > 2);
    }

    #[test]
    fn disabling_replicated_build_repartitions_supplier_join() {
        let c = catalog();
        let opts = RewriterOptions {
            enable_replicated_build: false,
            ..Default::default()
        };
        let rw = ParallelRewriter::new(&c, opts);
        let plan = rw.rewrite(&sec5_query()).unwrap();
        assert_eq!(count_strategy(&plan, JoinStrategy::BroadcastBuild), 0);
        assert!(count_strategy(&plan, JoinStrategy::Repartitioned) >= 1);
    }

    #[test]
    fn disabling_partial_aggr_changes_strategy() {
        let c = catalog();
        let opts = RewriterOptions {
            enable_partial_aggr: false,
            ..Default::default()
        };
        let rw = ParallelRewriter::new(&c, opts);
        let plan = rw.rewrite(&sec5_query()).unwrap();
        assert!(
            plan.explain().contains("RepartitionComplete"),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn predicate_pushed_into_scan() {
        let c = catalog();
        let rw = ParallelRewriter::new(&c, RewriterOptions::default());
        let lp = LogicalPlan::Select {
            input: Box::new(LogicalPlan::Scan {
                table: "orders".into(),
                cols: vec![0, 1],
            }),
            predicate: Expr::lt(Expr::col(1), Expr::lit(Value::Date(9000))),
        };
        let plan = rw.rewrite(&lp).unwrap();
        assert!(
            plan.explain().contains("+minmax-pred"),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn group_by_partition_key_needs_no_exchange() {
        let c = catalog();
        let rw = ParallelRewriter::new(&c, RewriterOptions::default());
        let lp = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Scan {
                table: "orders".into(),
                cols: vec![0, 1],
            }),
            group_by: vec![0], // o_orderkey = partition key
            aggs: vec![AggFn::CountStar],
        };
        let plan = rw.rewrite(&lp).unwrap();
        assert!(plan.explain().contains("Local"), "{}", plan.explain());
        assert_eq!(plan.exchange_count(), 1, "only the final union");
    }

    #[test]
    fn global_aggregate_is_serial() {
        let c = catalog();
        let rw = ParallelRewriter::new(&c, RewriterOptions::default());
        let lp = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Scan {
                table: "lineitem".into(),
                cols: vec![2],
            }),
            group_by: vec![],
            aggs: vec![AggFn::Sum(0)],
        };
        let plan = rw.rewrite(&lp).unwrap();
        // No trailing union needed: the aggregate itself serializes.
        assert!(matches!(plan, PhysPlan::Aggr { .. }), "{}", plan.explain());
        assert!(plan.explain().contains("GlobalPartialFinal"));
    }

    #[test]
    fn count_distinct_forces_repartition_complete() {
        let c = catalog();
        let rw = ParallelRewriter::new(&c, RewriterOptions::default());
        let lp = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Scan {
                table: "lineitem".into(),
                cols: vec![1, 2],
            }),
            group_by: vec![1],
            aggs: vec![AggFn::CountDistinct(0)],
        };
        let plan = rw.rewrite(&lp).unwrap();
        assert!(
            plan.explain().contains("RepartitionComplete"),
            "{}",
            plan.explain()
        );
    }

    #[test]
    fn projection_preserves_partitioning_for_local_join() {
        let c = catalog();
        let rw = ParallelRewriter::new(&c, RewriterOptions::default());
        // Project reorders columns; partition key tracked through it.
        let li = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Scan {
                table: "lineitem".into(),
                cols: vec![0, 2],
            }),
            items: vec![(Expr::col(1), "disc".into()), (Expr::col(0), "ok".into())],
        };
        let ord = LogicalPlan::Scan {
            table: "orders".into(),
            cols: vec![0],
        };
        let lp = LogicalPlan::Join {
            left: Box::new(li),
            right: Box::new(ord),
            left_keys: vec![1], // "ok" position after projection
            right_keys: vec![0],
            kind: JoinKind::Inner,
        };
        let plan = rw.rewrite(&lp).unwrap();
        assert!(
            count_strategy(&plan, JoinStrategy::Local) + count_mergejoin(&plan) == 1,
            "{}",
            plan.explain()
        );
    }
}
