//! Logical plans and catalog metadata.

use std::sync::Arc;

use vectorh_common::{Result, Schema, VhError};
use vectorh_exec::aggr::AggFn;
use vectorh_exec::expr::Expr;
use vectorh_exec::sort::Dir;

/// What the optimizer knows about a table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub name: String,
    pub schema: Schema,
    pub rows: u64,
    /// Hash-partitioning key columns and partition count; `None` means the
    /// table is small and replicated on every node.
    pub partitioning: Option<(Vec<usize>, usize)>,
    /// Clustered-index sort order (column indexes), if declared.
    pub sort_order: Option<Vec<usize>>,
}

impl TableMeta {
    pub fn is_replicated(&self) -> bool {
        self.partitioning.is_none()
    }
}

/// Catalog access used during planning.
pub trait CatalogInfo {
    fn table(&self, name: &str) -> Result<TableMeta>;
}

/// A logical (location-free) relational plan.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Base table scan with projection by column index.
    Scan {
        table: String,
        cols: Vec<usize>,
    },
    Select {
        input: Box<LogicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<LogicalPlan>,
        items: Vec<(Expr, String)>,
    },
    /// Equi-join; `kind` mirrors the executor's join kinds.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        kind: JoinKind,
    },
    Aggregate {
        input: Box<LogicalPlan>,
        group_by: Vec<usize>,
        aggs: Vec<AggFn>,
    },
    Sort {
        input: Box<LogicalPlan>,
        keys: Vec<(usize, Dir)>,
        limit: Option<usize>,
    },
    Limit {
        input: Box<LogicalPlan>,
        n: usize,
    },
}

/// Join kinds at the logical level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    Semi,
    Anti,
}

impl LogicalPlan {
    /// Output schema given the catalog.
    pub fn schema(&self, catalog: &dyn CatalogInfo) -> Result<Schema> {
        Ok(match self {
            LogicalPlan::Scan { table, cols } => catalog.table(table)?.schema.project(cols),
            LogicalPlan::Select { input, .. } => input.schema(catalog)?,
            LogicalPlan::Project { input, items } => {
                let in_schema = input.schema(catalog)?;
                let mut fields = Vec::new();
                for (e, name) in items {
                    fields.push(vectorh_common::Field::new(
                        name.clone(),
                        e.dtype(&in_schema)?,
                    ));
                }
                Schema::new(fields)
            }
            LogicalPlan::Join {
                left, right, kind, ..
            } => {
                let l = left.schema(catalog)?;
                match kind {
                    JoinKind::Semi | JoinKind::Anti => l,
                    JoinKind::Inner => l.join(&right.schema(catalog)?),
                    JoinKind::LeftOuter => {
                        let mut s = l.join(&right.schema(catalog)?);
                        s = s.join(&Schema::of(&[("__matched", vectorh_common::DataType::I32)]));
                        s
                    }
                }
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                // Delegate the field typing to the executor's Aggr by
                // construction rules: group fields then one field per agg
                // (avg partials never appear at the logical level).
                let in_schema = input.schema(catalog)?;
                let mut fields: Vec<vectorh_common::Field> = group_by
                    .iter()
                    .map(|&g| in_schema.field(g).clone())
                    .collect();
                for (i, a) in aggs.iter().enumerate() {
                    let name = format!("agg{i}");
                    let dt = match a {
                        AggFn::CountStar | AggFn::Count(_) | AggFn::CountDistinct(_) => {
                            vectorh_common::DataType::I64
                        }
                        AggFn::Sum(c) => match in_schema.dtype(*c) {
                            vectorh_common::DataType::F64 => vectorh_common::DataType::F64,
                            vectorh_common::DataType::Decimal { scale } => {
                                vectorh_common::DataType::Decimal { scale }
                            }
                            _ => vectorh_common::DataType::I64,
                        },
                        AggFn::Min(c) | AggFn::Max(c) => in_schema.dtype(*c),
                        AggFn::Avg(_) => vectorh_common::DataType::F64,
                    };
                    fields.push(vectorh_common::Field::new(name, dt));
                }
                Schema::new(fields)
            }
            LogicalPlan::Sort { input, .. } | LogicalPlan::Limit { input, .. } => {
                input.schema(catalog)?
            }
        })
    }

    /// Crude cardinality estimate for costing.
    pub fn estimate_rows(&self, catalog: &dyn CatalogInfo) -> Result<f64> {
        Ok(match self {
            LogicalPlan::Scan { table, .. } => catalog.table(table)?.rows as f64,
            LogicalPlan::Select { input, .. } => 0.3 * input.estimate_rows(catalog)?,
            LogicalPlan::Project { input, .. } => input.estimate_rows(catalog)?,
            LogicalPlan::Join {
                left, right, kind, ..
            } => {
                let l = left.estimate_rows(catalog)?;
                let r = right.estimate_rows(catalog)?;
                match kind {
                    // FK joins dominate TPC-H: output ≈ the larger side.
                    JoinKind::Inner => l.max(r),
                    JoinKind::LeftOuter => l,
                    JoinKind::Semi | JoinKind::Anti => 0.5 * l,
                }
            }
            LogicalPlan::Aggregate {
                input, group_by, ..
            } => {
                let n = input.estimate_rows(catalog)?;
                if group_by.is_empty() {
                    1.0
                } else {
                    (n / 10.0).max(1.0)
                }
            }
            LogicalPlan::Sort { input, limit, .. } => {
                let n = input.estimate_rows(catalog)?;
                limit.map(|l| (l as f64).min(n)).unwrap_or(n)
            }
            LogicalPlan::Limit { input, n } => (*n as f64).min(input.estimate_rows(catalog)?),
        })
    }
}

/// Simple in-memory catalog for tests and the TPC-H harness.
#[derive(Debug, Clone, Default)]
pub struct MemoryCatalog {
    tables: std::collections::HashMap<String, TableMeta>,
}

impl MemoryCatalog {
    pub fn new() -> MemoryCatalog {
        MemoryCatalog::default()
    }

    pub fn add(&mut self, meta: TableMeta) {
        self.tables.insert(meta.name.clone(), meta);
    }
}

impl CatalogInfo for MemoryCatalog {
    fn table(&self, name: &str) -> Result<TableMeta> {
        self.tables
            .get(name)
            .cloned()
            .ok_or_else(|| VhError::Catalog(format!("unknown table '{name}'")))
    }
}

/// Schemas are shared as Arcs throughout execution; helper for call sites.
pub fn arc_schema(s: Schema) -> Arc<Schema> {
    Arc::new(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::DataType;

    fn catalog() -> MemoryCatalog {
        let mut c = MemoryCatalog::new();
        c.add(TableMeta {
            name: "orders".into(),
            schema: Schema::of(&[
                ("o_orderkey", DataType::I64),
                ("o_total", DataType::Decimal { scale: 2 }),
            ]),
            rows: 1000,
            partitioning: Some((vec![0], 4)),
            sort_order: Some(vec![0]),
        });
        c.add(TableMeta {
            name: "nation".into(),
            schema: Schema::of(&[("n_key", DataType::I64), ("n_name", DataType::Str)]),
            rows: 25,
            partitioning: None,
            sort_order: None,
        });
        c
    }

    #[test]
    fn scan_schema_projects() {
        let c = catalog();
        let p = LogicalPlan::Scan {
            table: "orders".into(),
            cols: vec![1],
        };
        assert_eq!(p.schema(&c).unwrap().names(), vec!["o_total"]);
        assert!(LogicalPlan::Scan {
            table: "nope".into(),
            cols: vec![]
        }
        .schema(&c)
        .is_err());
    }

    #[test]
    fn join_schema_concatenates() {
        let c = catalog();
        let p = LogicalPlan::Join {
            left: Box::new(LogicalPlan::Scan {
                table: "orders".into(),
                cols: vec![0, 1],
            }),
            right: Box::new(LogicalPlan::Scan {
                table: "nation".into(),
                cols: vec![0, 1],
            }),
            left_keys: vec![0],
            right_keys: vec![0],
            kind: JoinKind::Inner,
        };
        assert_eq!(p.schema(&c).unwrap().len(), 4);
    }

    #[test]
    fn aggregate_schema_types() {
        let c = catalog();
        let p = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Scan {
                table: "orders".into(),
                cols: vec![0, 1],
            }),
            group_by: vec![0],
            aggs: vec![AggFn::CountStar, AggFn::Sum(1), AggFn::Avg(1)],
        };
        let s = p.schema(&c).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.dtype(1), DataType::I64);
        assert_eq!(s.dtype(2), DataType::Decimal { scale: 2 });
        assert_eq!(s.dtype(3), DataType::F64);
    }

    #[test]
    fn estimates_are_sane() {
        let c = catalog();
        let scan = LogicalPlan::Scan {
            table: "orders".into(),
            cols: vec![0],
        };
        assert_eq!(scan.estimate_rows(&c).unwrap(), 1000.0);
        let sel = LogicalPlan::Select {
            input: Box::new(scan),
            predicate: Expr::lit(vectorh_common::Value::I32(1)),
        };
        assert!(sel.estimate_rows(&c).unwrap() < 1000.0);
        let top = LogicalPlan::Sort {
            input: Box::new(sel),
            keys: vec![],
            limit: Some(10),
        };
        assert_eq!(top.estimate_rows(&c).unwrap(), 10.0);
    }

    #[test]
    fn replication_flag() {
        let c = catalog();
        assert!(c.table("nation").unwrap().is_replicated());
        assert!(!c.table("orders").unwrap().is_replicated());
    }
}
