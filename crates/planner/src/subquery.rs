//! Subquery decorrelation (the GlareDB/DataFusion playbook, house-built).
//!
//! * Uncorrelated scalar subqueries become a single-row **cross join**
//!   (empty-key Inner join; the rewriter broadcasts the one-row side).
//! * Correlated scalar subqueries become a **grouped join**: the subquery is
//!   aggregated by its correlation keys, then inner-joined on them. An
//!   empty correlation group and a NULL scalar reject the outer row the
//!   same way, so the inner join is exact for TPC-H's comparison contexts.
//! * `IN (SELECT ...)` / `EXISTS` become **Semi** joins, their negations
//!   **Anti** joins.
//! * `EXISTS` with one `<>` correlation (TPC-H Q21's "another supplier")
//!   is rewritten through a grouped `count(distinct ne)/min(ne)`: a group
//!   holds a row with `ne <> outer.ne` iff it has more than one distinct
//!   value or its single value differs from the outer one.

use vectorh_common::{Result, Value, VhError};
use vectorh_exec::aggr::AggFn;
use vectorh_exec::expr::Expr;

use crate::logical::{CatalogInfo, JoinKind, LogicalPlan};
use crate::sql::{
    build_aggregate, contains_agg, lower_from_where, lower_select, take_plan, Ast, Correlation,
    QueryAst, Scope,
};

/// Replace every scalar subquery in `ast` with a `ResolvedCol` pointing at
/// a column appended to `plan` by the lowering joins.
pub(crate) fn substitute_scalars(
    ast: Ast,
    plan: &mut LogicalPlan,
    scope: &mut Scope,
    catalog: &dyn CatalogInfo,
) -> Result<Ast> {
    Ok(match ast {
        Ast::Scalar(q) => Ast::ResolvedCol(lower_scalar(&q, plan, scope, catalog)?),
        Ast::Bin(op, l, r) => Ast::Bin(
            op,
            Box::new(substitute_scalars(*l, plan, scope, catalog)?),
            Box::new(substitute_scalars(*r, plan, scope, catalog)?),
        ),
        Ast::Not(e) => Ast::Not(Box::new(substitute_scalars(*e, plan, scope, catalog)?)),
        Ast::Between(a, lo, hi) => Ast::Between(
            Box::new(substitute_scalars(*a, plan, scope, catalog)?),
            Box::new(substitute_scalars(*lo, plan, scope, catalog)?),
            Box::new(substitute_scalars(*hi, plan, scope, catalog)?),
        ),
        other => other,
    })
}

/// Lower one scalar subquery; returns the position of its value in the
/// joined plan's output.
fn lower_scalar(
    q: &QueryAst,
    plan: &mut LogicalPlan,
    scope: &mut Scope,
    catalog: &dyn CatalogInfo,
) -> Result<usize> {
    if q.items.len() != 1
        || !q.group_by.is_empty()
        || q.having.is_some()
        || q.distinct
        || !q.order_by.is_empty()
        || q.limit.is_some()
        || !contains_agg(&q.items[0].0)
    {
        return Err(VhError::Plan(
            "scalar subquery must be a single ungrouped aggregate".into(),
        ));
    }
    let mut corr = Vec::new();
    let (sub, sub_scope) = lower_from_where(q, catalog, Some(scope), &mut corr)?;
    let width = scope.cols.len();
    if corr.is_empty() {
        let (agg, _) = build_aggregate(sub, &sub_scope, catalog, &[], &q.items, None)?;
        *plan = LogicalPlan::Join {
            left: Box::new(take_plan(plan)),
            right: Box::new(agg),
            left_keys: vec![],
            right_keys: vec![],
            kind: JoinKind::Inner,
        };
        scope.cols.push((String::new(), format!("__sq{width}")));
        return Ok(width);
    }
    if corr.iter().any(|c| !c.eq) {
        return Err(VhError::Plan(
            "scalar subquery correlation must be an equality".into(),
        ));
    }
    let group_asts: Vec<Ast> = corr.iter().map(|c| Ast::ResolvedCol(c.inner)).collect();
    let mut items2: Vec<(Ast, Option<String>)> =
        group_asts.iter().map(|g| (g.clone(), None)).collect();
    items2.push(q.items[0].clone());
    let (agg, _) = build_aggregate(sub, &sub_scope, catalog, &group_asts, &items2, None)?;
    let k = corr.len();
    *plan = LogicalPlan::Join {
        left: Box::new(take_plan(plan)),
        right: Box::new(agg),
        left_keys: corr.iter().map(|c| c.outer).collect(),
        right_keys: (0..k).collect(),
        kind: JoinKind::Inner,
    };
    for i in 0..=k {
        scope.cols.push((String::new(), format!("__sq{width}_{i}")));
    }
    Ok(width + k)
}

/// Lower `lhs [NOT] IN (SELECT single_col ...)` into a Semi/Anti join.
pub(crate) fn lower_in(
    plan: &mut LogicalPlan,
    scope: &mut Scope,
    lhs: &Ast,
    q: &QueryAst,
    neg: bool,
    catalog: &dyn CatalogInfo,
) -> Result<()> {
    let li = match lhs {
        Ast::Col(qual, name) => scope.resolve(qual, name)?,
        _ => {
            return Err(VhError::Plan(
                "IN (subquery) left side must be a column".into(),
            ))
        }
    };
    let (sub, names) = lower_select(q, catalog)?;
    if names.len() != 1 {
        return Err(VhError::Plan(
            "IN subquery must select exactly one column".into(),
        ));
    }
    *plan = LogicalPlan::Join {
        left: Box::new(take_plan(plan)),
        right: Box::new(sub),
        left_keys: vec![li],
        right_keys: vec![0],
        kind: if neg { JoinKind::Anti } else { JoinKind::Semi },
    };
    Ok(())
}

/// Lower `[NOT] EXISTS (SELECT ...)` into a Semi/Anti join on its equality
/// correlations — or, with one `<>` correlation, through a grouped
/// count-distinct/min rewrite (TPC-H Q21).
pub(crate) fn lower_exists(
    plan: &mut LogicalPlan,
    scope: &mut Scope,
    q: &QueryAst,
    neg: bool,
    catalog: &dyn CatalogInfo,
) -> Result<()> {
    if !q.group_by.is_empty()
        || q.having.is_some()
        || q.distinct
        || !q.order_by.is_empty()
        || q.limit.is_some()
    {
        return Err(VhError::Plan(
            "EXISTS subquery must be a plain SELECT".into(),
        ));
    }
    let mut corr = Vec::new();
    let (sub, _sub_scope) = lower_from_where(q, catalog, Some(scope), &mut corr)?;
    let eqs: Vec<&Correlation> = corr.iter().filter(|c| c.eq).collect();
    let nes: Vec<&Correlation> = corr.iter().filter(|c| !c.eq).collect();
    if eqs.is_empty() {
        return Err(VhError::Plan(
            "EXISTS requires an equality correlation with the outer query".into(),
        ));
    }
    if nes.len() > 1 {
        return Err(VhError::Plan(
            "EXISTS supports at most one '<>' correlation".into(),
        ));
    }
    if nes.is_empty() {
        *plan = LogicalPlan::Join {
            left: Box::new(take_plan(plan)),
            right: Box::new(sub),
            left_keys: eqs.iter().map(|c| c.outer).collect(),
            right_keys: eqs.iter().map(|c| c.inner).collect(),
            kind: if neg { JoinKind::Anti } else { JoinKind::Semi },
        };
        return Ok(());
    }
    let ne = nes[0];
    let k = eqs.len();
    // Per equality-key group: how many distinct ne values, and one witness.
    let pre: Vec<(Expr, String)> = eqs
        .iter()
        .enumerate()
        .map(|(i, c)| (Expr::Col(c.inner), format!("g{i}")))
        .chain(std::iter::once((Expr::Col(ne.inner), "ne".to_string())))
        .collect();
    let agg = LogicalPlan::Aggregate {
        input: Box::new(LogicalPlan::Project {
            input: Box::new(sub),
            items: pre,
        }),
        group_by: (0..k).collect(),
        aggs: vec![AggFn::CountDistinct(k), AggFn::Min(k)],
    };
    let width = scope.cols.len();
    *plan = LogicalPlan::Join {
        left: Box::new(take_plan(plan)),
        right: Box::new(agg),
        left_keys: eqs.iter().map(|c| c.outer).collect(),
        right_keys: (0..k).collect(),
        kind: if neg {
            JoinKind::LeftOuter
        } else {
            JoinKind::Inner
        },
    };
    for i in 0..k + 2 {
        scope.cols.push((String::new(), format!("__ex{width}_{i}")));
    }
    let cnt = Expr::Col(width + k);
    let mn = Expr::Col(width + k + 1);
    let outer_ne = Expr::Col(ne.outer);
    let predicate = if neg {
        // NOT EXISTS: no group at all, or a single distinct value equal to
        // the outer one (so no inner row differs).
        let matched = width + k + 2;
        scope.cols.push((String::new(), "__matched".into()));
        Expr::Or(vec![
            Expr::eq(Expr::Col(matched), Expr::Lit(Value::I64(0))),
            Expr::And(vec![
                Expr::eq(cnt, Expr::Lit(Value::I64(1))),
                Expr::eq(mn, outer_ne),
            ]),
        ])
    } else {
        // EXISTS: >1 distinct values, or the single value differs.
        Expr::Or(vec![
            Expr::gt(cnt, Expr::Lit(Value::I64(1))),
            Expr::ne(mn, outer_ne),
        ])
    };
    *plan = LogicalPlan::Select {
        input: Box::new(take_plan(plan)),
        predicate,
    };
    Ok(())
}
