//! Query planning for VectorH-rs.
//!
//! * [`logical`] — logical plans plus the [`logical::CatalogInfo`] trait the
//!   optimizer consults (schemas, row counts, partitioning, clustered-index
//!   sort order, replication).
//! * [`sql`] — a hand-written SQL subset parser (SELECT/FROM/JOIN/WHERE/
//!   GROUP BY/ORDER BY/LIMIT, the expression grammar TPC-H needs).
//! * [`physical`] — the distributed physical plan: operators annotated with
//!   where they run, with explicit exchange nodes.
//! * [`rewriter`] — the **Parallel Rewriter** (§5): cost-based placement of
//!   (D)Xchg operators using structural properties (partitioning, sorting,
//!   replication). It detects co-partitioned **local joins** by tracking
//!   join-key origins, **replicates small build sides**, inserts **partial
//!   aggregation** below exchanges, and charges DXchg heavily so plans
//!   avoid communication at all cost — each rule individually togglable for
//!   the §5 ablation benchmark.

pub mod logical;
pub mod physical;
pub mod rewriter;
pub mod sql;
mod subquery;

pub use logical::{CatalogInfo, LogicalPlan, TableMeta};
pub use physical::PhysPlan;
pub use rewriter::{ParallelRewriter, RewriterOptions};
pub use sql::parse_query;
