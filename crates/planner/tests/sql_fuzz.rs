//! Grammar fuzzing for the SQL frontend.
//!
//! Two properties, checked over 64 deterministic SplitMix64 seeds:
//!
//! 1. **No panics.** `parse_query` must return `Ok` or `Err` on *any* input —
//!    both generated-valid SQL and hostile mutations of it (byte flips,
//!    truncations, token deletions). A panic in the parser would take down
//!    the whole session thread, so `Err` is the only acceptable failure mode.
//! 2. **Determinism.** A generated program that parses successfully must
//!    re-parse to the *same* logical plan (compared via `{:?}` rendering) —
//!    the parser has no hidden state and no iteration-order dependence.
//!
//! The generator is grammar-directed rather than purely random so a healthy
//! fraction of programs exercise deep paths (joins, subqueries, GROUP BY,
//! CASE); the mutator then degrades them into near-miss garbage, which is
//! where consuming-lookahead and unchecked-index bugs live.

use vectorh_common::rng::SplitMix64;
use vectorh_common::{DataType, Schema};
use vectorh_planner::logical::{MemoryCatalog, TableMeta};
use vectorh_planner::parse_query;

const SEEDS: u64 = 64;
const PROGRAMS_PER_SEED: usize = 8;
const MUTANTS_PER_PROGRAM: usize = 6;

fn catalog() -> MemoryCatalog {
    let mut c = MemoryCatalog::new();
    c.add(TableMeta {
        name: "t".into(),
        schema: Schema::of(&[
            ("a", DataType::I64),
            ("b", DataType::I32),
            ("d", DataType::Date),
            ("p", DataType::Decimal { scale: 2 }),
            ("s", DataType::Str),
        ]),
        rows: 1000,
        partitioning: Some((vec![0], 4)),
        sort_order: Some(vec![0]),
    });
    c.add(TableMeta {
        name: "u".into(),
        schema: Schema::of(&[("ua", DataType::I64), ("ub", DataType::Str)]),
        rows: 100,
        partitioning: None,
        sort_order: None,
    });
    c
}

/// Pick one element of a slice.
fn pick<'a>(rng: &mut SplitMix64, xs: &[&'a str]) -> &'a str {
    xs[rng.next_bounded(xs.len() as u64) as usize]
}

fn gen_scalar(rng: &mut SplitMix64, depth: usize) -> String {
    let num_cols = ["a", "b", "t.a", "t.b"];
    match rng.next_bounded(if depth == 0 { 4 } else { 7 }) {
        0 => pick(rng, &num_cols).to_string(),
        1 => format!("{}", rng.next_bounded(1000)),
        2 => format!("{}.{:02}", rng.next_bounded(100), rng.next_bounded(100)),
        3 => "p".to_string(),
        4 => format!(
            "({} {} {})",
            gen_scalar(rng, depth - 1),
            pick(rng, &["+", "-", "*"]),
            gen_scalar(rng, depth - 1)
        ),
        5 => format!("-{}", gen_scalar(rng, depth - 1)),
        _ => format!(
            "case when {} then {} else {} end",
            gen_pred(rng, 0),
            gen_scalar(rng, depth - 1),
            gen_scalar(rng, depth - 1)
        ),
    }
}

fn gen_pred(rng: &mut SplitMix64, depth: usize) -> String {
    match rng.next_bounded(if depth == 0 { 5 } else { 7 }) {
        0 => format!(
            "{} {} {}",
            pick(rng, &["a", "b", "p"]),
            pick(rng, &["=", "<", ">", "<=", ">=", "<>"]),
            rng.next_bounded(500)
        ),
        1 => format!(
            "d {} date '1995-0{}-01'",
            pick(rng, &["<", ">=", "="]),
            1 + rng.next_bounded(9)
        ),
        2 => format!(
            "s like '%{}%'",
            pick(rng, &["red", "green", "BRASS", "x_y"])
        ),
        3 => format!(
            "b between {} and {}",
            rng.next_bounded(10),
            10 + rng.next_bounded(90)
        ),
        4 => format!("a in ({}, {}, {})", rng.next_bounded(9), 10, 11),
        5 => format!(
            "({} and {})",
            gen_pred(rng, depth - 1),
            gen_pred(rng, depth - 1)
        ),
        _ => format!("not ({})", gen_pred(rng, depth - 1)),
    }
}

/// A syntactically valid program per the frontend's grammar.
fn gen_query(rng: &mut SplitMix64) -> String {
    let mut q = String::from("select ");
    if rng.chance(0.15) {
        q.push_str("distinct ");
    }
    let grouped = rng.chance(0.3);
    if grouped {
        // Grouped: one group column plus aggregates over scalars.
        q.push_str("s, ");
        let n_aggs = 1 + rng.next_bounded(2);
        for i in 0..n_aggs {
            if i > 0 {
                q.push_str(", ");
            }
            let agg = pick(rng, &["sum", "min", "max", "avg", "count"]);
            q.push_str(&format!("{agg}({})", gen_scalar(rng, 1)));
        }
    } else {
        let n_items = 1 + rng.next_bounded(3);
        for i in 0..n_items {
            if i > 0 {
                q.push_str(", ");
            }
            q.push_str(&format!("{} as c{i}", gen_scalar(rng, 2)));
        }
    }
    q.push_str(" from t");
    let joined = rng.chance(0.35);
    if joined {
        q.push_str(match rng.next_bounded(3) {
            0 => " join u on a = ua",
            1 => " inner join u on a = ua",
            _ => " left outer join u on a = ua",
        });
    }
    if rng.chance(0.6) {
        q.push_str(&format!(" where {}", gen_pred(rng, 2)));
    }
    if rng.chance(0.2) && !grouped {
        q.push_str(" where exists (select ua from u where ua = a)");
    }
    if grouped {
        q.push_str(" group by s");
        if rng.chance(0.4) {
            q.push_str(&format!(" having count(*) > {}", rng.next_bounded(5)));
        }
        if rng.chance(0.5) {
            q.push_str(" order by s");
        }
    } else if rng.chance(0.4) {
        q.push_str(&format!(" order by {} desc", 1 + rng.next_bounded(2)));
    }
    if rng.chance(0.3) {
        q.push_str(&format!(" limit {}", 1 + rng.next_bounded(50)));
    }
    q
}

/// Corrupt a valid program: byte substitutions, truncation, or word removal.
fn mutate(rng: &mut SplitMix64, sql: &str) -> String {
    let mut bytes: Vec<u8> = sql.as_bytes().to_vec();
    match rng.next_bounded(4) {
        0 => {
            // Replace a few bytes with random printable ASCII.
            for _ in 0..=rng.next_bounded(4) {
                if bytes.is_empty() {
                    break;
                }
                let i = rng.next_bounded(bytes.len() as u64) as usize;
                bytes[i] = (0x20 + rng.next_bounded(0x5f)) as u8;
            }
        }
        1 => {
            // Truncate at a random point.
            let cut = rng.next_bounded(bytes.len() as u64 + 1) as usize;
            bytes.truncate(cut);
        }
        2 => {
            // Delete a whole whitespace-delimited word.
            let words: Vec<&str> = sql.split_whitespace().collect();
            if !words.is_empty() {
                let skip = rng.next_bounded(words.len() as u64) as usize;
                let rebuilt: Vec<&str> = words
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, w)| *w)
                    .collect();
                return rebuilt.join(" ");
            }
        }
        _ => {
            // Duplicate a random slice (unbalances parens/quotes).
            if !bytes.is_empty() {
                let i = rng.next_bounded(bytes.len() as u64) as usize;
                let j = i + rng.next_bounded((bytes.len() - i) as u64 + 1) as usize;
                let slice: Vec<u8> = bytes[i..j].to_vec();
                bytes.extend_from_slice(&slice);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn fuzz_parser_never_panics_and_is_deterministic() {
    let cat = catalog();
    let mut parsed_ok = 0usize;
    let mut total = 0usize;
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(0x5eed_0000 + seed);
        for _ in 0..PROGRAMS_PER_SEED {
            let sql = gen_query(&mut rng);
            total += 1;
            // Property 2: valid programs re-parse deterministically. (An
            // Err here is fine — the generator over-approximates the
            // grammar; the parse-rate assert below keeps it honest.)
            if let Ok(plan) = parse_query(&sql, &cat) {
                parsed_ok += 1;
                let again = parse_query(&sql, &cat)
                    .unwrap_or_else(|e| panic!("non-deterministic parse of {sql:?}: {e}"));
                assert_eq!(
                    format!("{plan:?}"),
                    format!("{again:?}"),
                    "plan changed between parses of {sql:?}"
                );
            }
            // Property 1: mutants never panic (Err is fine).
            for _ in 0..MUTANTS_PER_PROGRAM {
                let bad = mutate(&mut rng, &sql);
                let _ = parse_query(&bad, &cat);
            }
        }
    }
    // The generator tracks the implemented grammar; if the valid-parse rate
    // collapses, the corpus is no longer exercising deep parser paths.
    assert!(
        parsed_ok * 2 > total,
        "only {parsed_ok}/{total} generated programs parsed — generator drifted from grammar"
    );
}

/// Hostile inputs that historically break hand-written parsers: deep nesting,
/// unterminated tokens, keyword-only soup, and empty/whitespace strings.
#[test]
fn adversarial_inputs_do_not_panic() {
    let cat = catalog();
    let deep_parens = format!("select {}a{} from t", "(".repeat(200), ")".repeat(200));
    let deep_case = format!(
        "select {} 1 {} from t",
        "case when a = 1 then ".repeat(60),
        "else 0 end ".repeat(60)
    );
    let cases: Vec<String> = vec![
        String::new(),
        "   \t\n  ".into(),
        "select".into(),
        "select from where".into(),
        "select a from t where".into(),
        "select a from t order by".into(),
        "select a from t group by".into(),
        "select 'unterminated from t".into(),
        "select a from t where s like '%".into(),
        "select ((((((((((a from t".into(),
        "select a from t t2 t3 t4".into(),
        "select count(((*))) from t".into(),
        "select a from t where a in (".into(),
        "select a from t where exists".into(),
        "select a from (select".into(),
        "select a from t join".into(),
        "select a from t join u on".into(),
        "select * from t where d = date".into(),
        "select * from t where d = date '9999-99-99'".into(),
        "select * from t where p = 99999999999999999999999.99".into(),
        "select * from t limit 99999999999999999999999".into(),
        "select a from t -- no comment support".into(),
        "select a,,b from t".into(),
        "select a from t where a = = 1".into(),
        deep_parens,
        deep_case,
    ];
    for sql in &cases {
        let _ = parse_query(sql, &cat);
    }
}
