//! Negative-path contract for the SQL frontend: every rejected program must
//! come back as a `VhError` whose message *names the offending token* — a
//! user staring at a 40-line query needs the error to point at something.
//! These tests pin the messages so refactors can't silently degrade them
//! into generic "parse error" strings.

use vectorh_common::{DataType, Schema, VhError};
use vectorh_planner::logical::{MemoryCatalog, TableMeta};
use vectorh_planner::parse_query;

fn catalog() -> MemoryCatalog {
    let mut c = MemoryCatalog::new();
    c.add(TableMeta {
        name: "orders".into(),
        schema: Schema::of(&[
            ("o_orderkey", DataType::I64),
            ("o_custkey", DataType::I64),
            ("o_totalprice", DataType::Decimal { scale: 2 }),
        ]),
        rows: 1000,
        partitioning: Some((vec![0], 4)),
        sort_order: Some(vec![0]),
    });
    c.add(TableMeta {
        name: "customer".into(),
        schema: Schema::of(&[
            ("c_custkey", DataType::I64),
            ("c_name", DataType::Str),
            // Same unqualified name on both sides of a join:
            ("o_orderkey", DataType::I64),
        ]),
        rows: 100,
        partitioning: None,
        sort_order: None,
    });
    c
}

/// Parse must fail and the message must contain `needle`.
fn expect_err(sql: &str, needle: &str) {
    match parse_query(sql, &catalog()) {
        Ok(plan) => panic!("expected error containing {needle:?} for {sql:?}, got plan {plan:?}"),
        Err(e) => {
            let msg = format!("{e}");
            assert!(
                msg.contains(needle),
                "error for {sql:?} should name {needle:?}, got: {msg}"
            );
        }
    }
}

#[test]
fn unknown_table_is_named() {
    let err = parse_query("select x from nosuch", &catalog()).unwrap_err();
    assert!(matches!(err, VhError::Catalog(_)), "got {err:?}");
    assert!(format!("{err}").contains("nosuch"));
}

#[test]
fn unknown_column_is_named() {
    expect_err("select o_nope from orders", "o_nope");
    expect_err(
        "select o_orderkey from orders where o_missing = 1",
        "o_missing",
    );
    expect_err("select o_orderkey from orders order by o_ghost", "o_ghost");
}

#[test]
fn ambiguous_unqualified_column_is_named() {
    // `o_orderkey` exists in both orders and customer.
    expect_err(
        "select o_orderkey from orders join customer on o_custkey = c_custkey",
        "ambiguous column 'o_orderkey'",
    );
    // Qualifying it resolves the ambiguity.
    parse_query(
        "select orders.o_orderkey from orders join customer on o_custkey = c_custkey",
        &catalog(),
    )
    .expect("qualified column should resolve");
}

#[test]
fn non_grouped_select_column_is_named() {
    expect_err(
        "select o_custkey, sum(o_totalprice) from orders group by o_orderkey",
        "non-aggregated select column 'o_custkey'",
    );
    expect_err(
        "select o_custkey, count(*) from orders",
        "non-aggregated select column 'o_custkey'",
    );
}

#[test]
fn trailing_tokens_are_named() {
    // `garbage` is eaten as a table alias (bare-identifier aliasing), so the
    // first genuinely trailing token is `here` — that is what must be named.
    expect_err("select o_orderkey from orders garbage here", "here");
    expect_err("select o_orderkey from orders limit 5 extra", "extra");
    expect_err("select o_orderkey from orders; drop", "';'");
}

#[test]
fn bad_order_by_positions() {
    expect_err("select o_orderkey from orders order by 0", "1-based");
    expect_err(
        "select o_orderkey from orders order by 7",
        "position 7 is out of range",
    );
}

#[test]
fn malformed_syntax_names_the_token() {
    expect_err("select o_orderkey from orders where o_orderkey ~ 3", "'~'");
    expect_err("select o_orderkey orders", "orders");
    expect_err("select count(o_orderkey, o_custkey) from orders", ",");
}

/// All frontend rejections surface as VhError::Plan (or Catalog for unknown
/// tables) — never a panic, never a silent wrong plan.
#[test]
fn errors_are_plan_errors() {
    let cases = [
        "select o_nope from orders",
        "select o_orderkey from orders order by 0",
        "select o_orderkey from orders limit 5 extra",
        "select o_custkey, count(*) from orders",
        "select o_orderkey from orders join customer on o_custkey = c_custkey where o_orderkey = 1",
    ];
    for sql in cases {
        match parse_query(sql, &catalog()) {
            Err(VhError::Plan(_)) | Err(VhError::Catalog(_)) => {}
            other => panic!("{sql:?}: expected Plan/Catalog error, got {other:?}"),
        }
    }
}
