//! A simulated HDFS for VectorH-rs.
//!
//! The paper's storage contributions (§3) are *policy-level*: VectorH
//! instruments the HDFS `BlockPlacementPolicy` so every table-partition
//! replica lands on chosen datanodes, keeps all reads short-circuit local,
//! and survives node failures through re-replication steered by the same
//! policy. Reproducing that does not require JNI and spinning disks — it
//! requires an append-only, block-replicated filesystem that:
//!
//! * splits files into fixed-size blocks replicated at `R` datanodes,
//! * delegates placement to a pluggable [`placement::BlockPlacementPolicy`]
//!   whose `choose_targets` receives the file name (exactly like HDFS's
//!   `chooseTarget()`), both at append time and during re-replication,
//! * distinguishes **short-circuit local reads** from remote reads and
//!   accounts for both ([`stats::IoStats`]), so benches can verify the
//!   "all table IOs are short-circuited" claim,
//! * supports datanode failure, decommissioning and background
//!   re-replication.
//!
//! Everything is deterministic: placement randomness comes from a seeded
//! [`vectorh_common::rng::SplitMix64`].

pub mod fs;
pub mod placement;
pub mod stats;

pub use fs::{BlockLocation, FileStatus, SimHdfs, SimHdfsConfig};
pub use placement::{AffinityPolicy, BlockPlacementPolicy, ClusterView, DefaultPolicy};
pub use stats::{IoSnapshot, IoStats};
