//! A simulated HDFS for VectorH-rs.
//!
//! The paper's storage contributions (§3) are *policy-level*: VectorH
//! instruments the HDFS `BlockPlacementPolicy` so every table-partition
//! replica lands on chosen datanodes, keeps all reads short-circuit local,
//! and survives node failures through re-replication steered by the same
//! policy. Reproducing that does not require JNI and spinning disks — it
//! requires an append-only, block-replicated filesystem that:
//!
//! * splits files into fixed-size blocks replicated at `R` datanodes,
//! * delegates placement to a pluggable
//!   [`BlockPlacementPolicy`](vectorh_blockstore::BlockPlacementPolicy)
//!   whose `choose_targets` receives the file name (exactly like HDFS's
//!   `chooseTarget()`), both at append time and during re-replication,
//! * distinguishes **short-circuit local reads** from remote reads and
//!   accounts for both ([`vectorh_blockstore::IoStats`]), so benches can
//!   verify the "all table IOs are short-circuited" claim,
//! * supports datanode failure, decommissioning and background
//!   re-replication.
//!
//! Everything is deterministic: placement randomness comes from a seeded
//! [`vectorh_common::rng::SplitMix64`].
//!
//! [`SimHdfs`] is the in-memory implementor of the backend-neutral
//! [`vectorh_blockstore::BlockStore`] trait; the shared types (placement
//! policies, IO stats, file/block metadata) live in `vectorh-blockstore`
//! and are re-exported here so existing imports keep working.

pub mod fs;

pub use fs::{SimHdfs, SimHdfsConfig};
pub use vectorh_blockstore::{
    AffinityPolicy, BlockLocation, BlockPlacementPolicy, BlockStore, ClusterView, DefaultPolicy,
    FileStatus, IoSnapshot, IoStats, StoreRef,
};
