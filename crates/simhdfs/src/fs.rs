//! The simulated filesystem: namenode metadata + datanode block storage.
//!
//! Semantics mirror the HDFS behaviours VectorH depends on (§3):
//!
//! * Files are **append-only**; there is no writing in the middle of a file.
//!   (VectorH's block-chunk layout exists precisely because of this.)
//! * Files are split into fixed-size blocks, each replicated on `R`
//!   datanodes. Like HDFS's default policy behaviour described in the paper,
//!   placement is decided **per file**: all blocks of a file live on the
//!   same target set, chosen by the registered [`BlockPlacementPolicy`] when
//!   the first byte is appended.
//! * Reads are served **short-circuit** (counted as local) when the reading
//!   node holds a replica, remote otherwise.
//! * Datanode failure triggers namenode-driven re-replication, which asks
//!   the same placement policy for new targets; [`SimHdfs::conform_to_policy`]
//!   models the background rebalancer.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use vectorh_blockstore::placement::{BlockPlacementPolicy, ClusterView};
use vectorh_blockstore::stats::{IoStats, UsageReport};
use vectorh_blockstore::store::{consult_hook, BlockStore};
use vectorh_blockstore::types::{BlockLocation, BlockStoreConfig, FileStatus};
use vectorh_common::fault::{FaultSite, SharedFaultHook};
use vectorh_common::sync::RwLock;
use vectorh_common::{NodeId, Result, VhError};

/// Configuration of the simulated cluster — the backend-neutral config type
/// under its historical name.
pub type SimHdfsConfig = BlockStoreConfig;

/// One replicated block.
#[derive(Debug, Clone)]
struct Block {
    data: Vec<u8>,
    replicas: Vec<NodeId>,
}

/// Namenode file entry.
#[derive(Debug, Clone)]
struct FileEntry {
    blocks: Vec<Block>,
    len: u64,
    replication: usize,
    /// Per-file placement target set (fixed at first append, adjusted by
    /// failures / rebalancing).
    targets: Vec<NodeId>,
}

struct Inner {
    files: BTreeMap<String, FileEntry>,
    alive: BTreeSet<NodeId>,
    all_nodes: BTreeSet<NodeId>,
    used: HashMap<NodeId, u64>,
}

/// The simulated HDFS cluster. Cheap to clone (shared state).
#[derive(Clone)]
pub struct SimHdfs {
    inner: Arc<RwLock<Inner>>,
    policy: Arc<dyn BlockPlacementPolicy>,
    stats: Arc<IoStats>,
    config: SimHdfsConfig,
    // Arc-shared (not per-clone) so installing a hook on any handle is
    // visible to every clone already embedded in WALs and stores.
    hook: Arc<RwLock<Option<SharedFaultHook>>>,
}

impl SimHdfs {
    /// Create a cluster of `nodes` datanodes using the given placement policy.
    pub fn new(nodes: usize, config: SimHdfsConfig, policy: Arc<dyn BlockPlacementPolicy>) -> Self {
        let ids: BTreeSet<NodeId> = (0..nodes as u32).map(NodeId).collect();
        SimHdfs {
            inner: Arc::new(RwLock::new(Inner {
                files: BTreeMap::new(),
                alive: ids.clone(),
                all_nodes: ids,
                used: HashMap::new(),
            })),
            policy,
            stats: Arc::new(IoStats::default()),
            config,
            hook: Arc::new(RwLock::new(None)),
        }
    }

    /// Install (or clear) the fault hook consulted on every read/append.
    /// Shared across all clones of this filesystem.
    pub fn set_fault_hook(&self, hook: Option<SharedFaultHook>) {
        *self.hook.write() = hook;
    }

    /// The currently installed fault hook, if any.
    pub fn fault_hook(&self) -> Option<SharedFaultHook> {
        self.hook.read().clone()
    }

    /// Consult the hook at `site` for `detail`, honouring transient-error
    /// retries with simulated exponential backoff (the shared
    /// [`consult_hook`] discipline every backend runs). Public so layers
    /// built on the filesystem (WAL replay) can gate their own sites on the
    /// same hook.
    pub fn consult_fault(&self, site: FaultSite, detail: &str) -> Result<()> {
        consult_hook(self.fault_hook(), &self.stats, site, detail)
    }

    /// Durability point. The simulation has no physical medium, so this is
    /// accounting-only — but it validates the path and counts the fsync so
    /// durability discipline is observable identically on both backends.
    pub fn sync(&self, path: &str) -> Result<()> {
        if !self.inner.read().files.contains_key(path) {
            return Err(VhError::Hdfs(format!("no such file: {path}")));
        }
        self.stats.record_fsync();
        Ok(())
    }

    pub fn config(&self) -> &SimHdfsConfig {
        &self.config
    }

    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    pub fn policy(&self) -> &Arc<dyn BlockPlacementPolicy> {
        &self.policy
    }

    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.inner.read().alive.iter().copied().collect()
    }

    pub fn all_nodes(&self) -> Vec<NodeId> {
        self.inner.read().all_nodes.iter().copied().collect()
    }

    fn view(inner: &Inner) -> ClusterView {
        ClusterView {
            alive: inner.alive.iter().copied().collect(),
            used_bytes: inner.used.clone(),
            existing: vec![],
        }
    }

    /// Create an empty file. Errors if it already exists.
    pub fn create(&self, path: &str, replication: Option<usize>) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.files.contains_key(path) {
            return Err(VhError::Hdfs(format!("file exists: {path}")));
        }
        let replication = replication.unwrap_or(self.config.default_replication);
        inner.files.insert(
            path.to_string(),
            FileEntry {
                blocks: vec![],
                len: 0,
                replication,
                targets: vec![],
            },
        );
        Ok(())
    }

    /// Append bytes to a file (creating it if needed), issued from `writer`.
    ///
    /// This is the only write primitive — HDFS files cannot be modified in
    /// the middle.
    pub fn append(&self, path: &str, data: &[u8], writer: Option<NodeId>) -> Result<()> {
        self.consult_fault(FaultSite::HdfsAppend, path)?;
        let mut inner = self.inner.write();
        if !inner.files.contains_key(path) {
            let replication = self.config.default_replication;
            inner.files.insert(
                path.to_string(),
                FileEntry {
                    blocks: vec![],
                    len: 0,
                    replication,
                    targets: vec![],
                },
            );
        }
        // Fix placement targets on first append.
        let needs_targets = inner.files[path].targets.is_empty();
        if needs_targets {
            let wanted = inner.files[path].replication;
            let view = Self::view(&inner);
            let targets = self.policy.choose_targets(path, writer, wanted, &view);
            if targets.is_empty() {
                return Err(VhError::Hdfs(format!("no alive datanodes to place {path}")));
            }
            inner.files.get_mut(path).unwrap().targets = targets;
        }
        let block_size = self.config.block_size;
        let targets = inner.files[path].targets.clone();
        let alive = inner.alive.clone();
        let live_targets: Vec<NodeId> = targets
            .iter()
            .copied()
            .filter(|n| alive.contains(n))
            .collect();
        if live_targets.is_empty() {
            return Err(VhError::Hdfs(format!(
                "all replica targets of {path} are dead"
            )));
        }

        let mut remaining = data;
        while !remaining.is_empty() {
            let entry = inner.files.get_mut(path).unwrap();
            // Fill the trailing partial block first.
            let space = match entry.blocks.last() {
                Some(b) if b.data.len() < block_size => block_size - b.data.len(),
                _ => 0,
            };
            let take;
            if space > 0 {
                take = remaining.len().min(space);
                let last = entry.blocks.last_mut().unwrap();
                last.data.extend_from_slice(&remaining[..take]);
            } else {
                take = remaining.len().min(block_size);
                entry.blocks.push(Block {
                    data: remaining[..take].to_vec(),
                    replicas: live_targets.clone(),
                });
            }
            entry.len += take as u64;
            let replicas = entry.blocks.last().unwrap().replicas.clone();
            for n in &replicas {
                *inner.used.entry(*n).or_insert(0) += take as u64;
            }
            remaining = &remaining[take..];
        }
        self.stats
            .record_write(data.len() as u64 * live_targets.len() as u64);
        Ok(())
    }

    /// Read `len` bytes at `offset`, issued from `reader` (None = external
    /// client, always remote). Short reads at EOF return what exists.
    pub fn read(
        &self,
        path: &str,
        offset: u64,
        len: usize,
        reader: Option<NodeId>,
    ) -> Result<Vec<u8>> {
        self.consult_fault(FaultSite::HdfsRead, path)?;
        let inner = self.inner.read();
        // A dead node cannot issue reads: surfacing this as `NodeDown` (not
        // a generic Hdfs error) lets the query layer fail over by
        // re-planning on the surviving worker set.
        if let Some(r) = reader {
            if !inner.alive.contains(&r) {
                return Err(VhError::NodeDown(format!(
                    "reader {r} is dead (reading {path})"
                )));
            }
        }
        let entry = inner
            .files
            .get(path)
            .ok_or_else(|| VhError::Hdfs(format!("no such file: {path}")))?;
        let end = (offset + len as u64).min(entry.len);
        if offset >= end {
            return Ok(vec![]);
        }
        let block_size = self.config.block_size as u64;
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut pos = offset;
        while pos < end {
            let bi = (pos / block_size) as usize;
            let block = &entry.blocks[bi];
            let in_block = (pos % block_size) as usize;
            let take = ((end - pos) as usize).min(block.data.len() - in_block);
            // A dead node's replica cannot be read; require a live replica.
            let live: Vec<NodeId> = block
                .replicas
                .iter()
                .copied()
                .filter(|n| inner.alive.contains(n))
                .collect();
            if live.is_empty() {
                return Err(VhError::Hdfs(format!(
                    "block {bi} of {path} has no live replica"
                )));
            }
            let local = reader.map(|r| live.contains(&r)).unwrap_or(false);
            self.stats.record_read(take as u64, local);
            out.extend_from_slice(&block.data[in_block..in_block + take]);
            pos += take as u64;
        }
        Ok(out)
    }

    /// Read a whole file.
    pub fn read_all(&self, path: &str, reader: Option<NodeId>) -> Result<Vec<u8>> {
        let len = self.len(path)?;
        self.read(path, 0, len as usize, reader)
    }

    /// Delete a file. Frees space on all replicas.
    pub fn delete(&self, path: &str) -> Result<()> {
        let mut inner = self.inner.write();
        let entry = inner
            .files
            .remove(path)
            .ok_or_else(|| VhError::Hdfs(format!("no such file: {path}")))?;
        for b in &entry.blocks {
            for n in &b.replicas {
                if let Some(u) = inner.used.get_mut(n) {
                    *u = u.saturating_sub(b.data.len() as u64);
                }
            }
        }
        Ok(())
    }

    pub fn exists(&self, path: &str) -> bool {
        self.inner.read().files.contains_key(path)
    }

    pub fn len(&self, path: &str) -> Result<u64> {
        self.inner
            .read()
            .files
            .get(path)
            .map(|f| f.len)
            .ok_or_else(|| VhError::Hdfs(format!("no such file: {path}")))
    }

    /// List files whose path starts with `prefix`, sorted.
    pub fn list(&self, prefix: &str) -> Vec<FileStatus> {
        self.inner
            .read()
            .files
            .range(prefix.to_string()..)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(p, f)| FileStatus {
                path: p.clone(),
                len: f.len,
                replication: f.replication,
                block_count: f.blocks.len(),
            })
            .collect()
    }

    /// Block locations of a file (namenode metadata query).
    pub fn block_locations(&self, path: &str) -> Result<Vec<BlockLocation>> {
        let inner = self.inner.read();
        let entry = inner
            .files
            .get(path)
            .ok_or_else(|| VhError::Hdfs(format!("no such file: {path}")))?;
        let mut out = Vec::with_capacity(entry.blocks.len());
        let mut offset = 0u64;
        for b in &entry.blocks {
            out.push(BlockLocation {
                offset,
                len: b.data.len() as u64,
                nodes: b.replicas.clone(),
            });
            offset += b.data.len() as u64;
        }
        Ok(out)
    }

    /// Does `node` hold a replica of every block of `path`?
    pub fn fully_local(&self, path: &str, node: NodeId) -> Result<bool> {
        Ok(self
            .block_locations(path)?
            .iter()
            .all(|b| b.nodes.contains(&node)))
    }

    /// Kill a datanode. The namenode notices and re-replicates every block
    /// that lost a replica, asking the placement policy for the new target
    /// (with the surviving replicas as `existing`).
    pub fn kill_node(&self, node: NodeId) -> Result<()> {
        let mut inner = self.inner.write();
        if !inner.alive.remove(&node) {
            return Err(VhError::Hdfs(format!("{node} is not alive")));
        }
        // Drop the dead node's usage; its replicas are gone.
        inner.used.remove(&node);
        let paths: Vec<String> = inner.files.keys().cloned().collect();
        for path in paths {
            // Per-file re-replication to keep placement per-file.
            let (wanted, mut targets) = {
                let f = &inner.files[&path];
                (f.replication, f.targets.clone())
            };
            targets.retain(|&n| n != node);
            let mut rerep_bytes = 0u64;
            let mut new_target: Option<NodeId> = None;
            let needs = {
                let f = &inner.files[&path];
                f.blocks.iter().any(|b| b.replicas.contains(&node))
            };
            if needs && targets.len() < wanted {
                let mut view = Self::view(&inner);
                view.existing = targets.clone();
                let extra = self.policy.choose_targets(&path, None, 1, &view);
                new_target = extra.first().copied();
                if let Some(t) = new_target {
                    targets.push(t);
                }
            }
            let f = inner.files.get_mut(&path).unwrap();
            f.targets = targets;
            let mut added: HashMap<NodeId, u64> = HashMap::new();
            for b in &mut f.blocks {
                if let Some(pos) = b.replicas.iter().position(|&n| n == node) {
                    b.replicas.remove(pos);
                    // Re-replication copies from a surviving replica; a block
                    // with no survivors is lost (read() will error).
                    if b.replicas.is_empty() {
                        continue;
                    }
                    if let Some(t) = new_target {
                        if !b.replicas.contains(&t) {
                            b.replicas.push(t);
                            rerep_bytes += b.data.len() as u64;
                            *added.entry(t).or_insert(0) += b.data.len() as u64;
                        }
                    }
                }
            }
            for (n, bytes) in added {
                *inner.used.entry(n).or_insert(0) += bytes;
            }
            if rerep_bytes > 0 {
                self.stats.record_rereplication(rerep_bytes);
            }
        }
        Ok(())
    }

    /// Revive a previously killed datanode. It comes back *empty* — its
    /// replicas were discarded at death and re-replicated elsewhere, exactly
    /// like a restarted HDFS datanode whose blocks the namenode already
    /// re-homed. [`conform_to_policy`](Self::conform_to_policy) repopulates
    /// it once the placement policy prescribes replicas there again.
    pub fn revive_node(&self, node: NodeId) -> Result<()> {
        let mut inner = self.inner.write();
        if !inner.all_nodes.contains(&node) {
            return Err(VhError::Hdfs(format!("{node} was never in the cluster")));
        }
        if !inner.alive.insert(node) {
            return Err(VhError::Hdfs(format!("{node} is already alive")));
        }
        Ok(())
    }

    /// Add a fresh (empty) datanode to the cluster.
    pub fn add_node(&self) -> NodeId {
        let mut inner = self.inner.write();
        let id = NodeId(inner.all_nodes.iter().map(|n| n.0 + 1).max().unwrap_or(0));
        inner.all_nodes.insert(id);
        inner.alive.insert(id);
        id
    }

    /// Background rebalancer: migrate every file's replicas to what the
    /// placement policy currently prescribes (HDFS calls `chooseTarget` for
    /// re-balancing too). Returns bytes moved.
    pub fn conform_to_policy(&self) -> u64 {
        let mut inner = self.inner.write();
        let paths: Vec<String> = inner.files.keys().cloned().collect();
        let mut moved = 0u64;
        for path in paths {
            let wanted = inner.files[&path].replication;
            let view = Self::view(&inner);
            let desired = self.policy.choose_targets(&path, None, wanted, &view);
            if desired.is_empty() {
                continue;
            }
            let f = inner.files.get_mut(&path).unwrap();
            if f.targets == desired {
                continue;
            }
            let mut delta: HashMap<NodeId, i64> = HashMap::new();
            for b in &mut f.blocks {
                for n in &b.replicas {
                    if !desired.contains(n) {
                        *delta.entry(*n).or_insert(0) -= b.data.len() as i64;
                    }
                }
                for n in &desired {
                    if !b.replicas.contains(n) {
                        *delta.entry(*n).or_insert(0) += b.data.len() as i64;
                        moved += b.data.len() as u64;
                    }
                }
                b.replicas = desired.clone();
            }
            f.targets = desired;
            for (n, d) in delta {
                let e = inner.used.entry(n).or_insert(0);
                *e = (*e as i64 + d).max(0) as u64;
            }
        }
        if moved > 0 {
            self.stats.record_rereplication(moved);
        }
        moved
    }

    /// Per-node stored bytes.
    pub fn usage(&self) -> UsageReport {
        let inner = self.inner.read();
        UsageReport {
            per_node_bytes: inner.used.clone(),
        }
    }
}

/// The simulation as a pluggable backend: pure delegation to the inherent
/// methods, zero behaviour change.
impl BlockStore for SimHdfs {
    fn backend(&self) -> &'static str {
        "sim"
    }

    fn config(&self) -> &SimHdfsConfig {
        self.config()
    }

    fn stats(&self) -> &IoStats {
        self.stats()
    }

    fn set_fault_hook(&self, hook: Option<SharedFaultHook>) {
        SimHdfs::set_fault_hook(self, hook)
    }

    fn fault_hook(&self) -> Option<SharedFaultHook> {
        SimHdfs::fault_hook(self)
    }

    fn alive_nodes(&self) -> Vec<NodeId> {
        SimHdfs::alive_nodes(self)
    }

    fn all_nodes(&self) -> Vec<NodeId> {
        SimHdfs::all_nodes(self)
    }

    fn create(&self, path: &str, replication: Option<usize>) -> Result<()> {
        SimHdfs::create(self, path, replication)
    }

    fn append(&self, path: &str, data: &[u8], writer: Option<NodeId>) -> Result<()> {
        SimHdfs::append(self, path, data, writer)
    }

    fn sync(&self, path: &str) -> Result<()> {
        SimHdfs::sync(self, path)
    }

    fn read(&self, path: &str, offset: u64, len: usize, reader: Option<NodeId>) -> Result<Vec<u8>> {
        SimHdfs::read(self, path, offset, len, reader)
    }

    fn delete(&self, path: &str) -> Result<()> {
        SimHdfs::delete(self, path)
    }

    fn exists(&self, path: &str) -> bool {
        SimHdfs::exists(self, path)
    }

    fn len(&self, path: &str) -> Result<u64> {
        SimHdfs::len(self, path)
    }

    fn list(&self, prefix: &str) -> Vec<FileStatus> {
        SimHdfs::list(self, prefix)
    }

    fn block_locations(&self, path: &str) -> Result<Vec<BlockLocation>> {
        SimHdfs::block_locations(self, path)
    }

    fn kill_node(&self, node: NodeId) -> Result<()> {
        SimHdfs::kill_node(self, node)
    }

    fn revive_node(&self, node: NodeId) -> Result<()> {
        SimHdfs::revive_node(self, node)
    }

    fn add_node(&self) -> NodeId {
        SimHdfs::add_node(self)
    }

    fn conform_to_policy(&self) -> u64 {
        SimHdfs::conform_to_policy(self)
    }

    fn usage(&self) -> UsageReport {
        SimHdfs::usage(self)
    }

    fn read_all(&self, path: &str, reader: Option<NodeId>) -> Result<Vec<u8>> {
        SimHdfs::read_all(self, path, reader)
    }

    fn fully_local(&self, path: &str, node: NodeId) -> Result<bool> {
        SimHdfs::fully_local(self, path, node)
    }

    fn consult_fault(&self, site: FaultSite, detail: &str) -> Result<()> {
        SimHdfs::consult_fault(self, site, detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_blockstore::placement::{AffinityPolicy, DefaultPolicy};
    use vectorh_blockstore::store::MAX_IO_ATTEMPTS;
    use vectorh_common::fault::FaultAction;

    fn small_fs(nodes: usize) -> SimHdfs {
        SimHdfs::new(
            nodes,
            SimHdfsConfig {
                block_size: 64,
                default_replication: 3,
            },
            Arc::new(DefaultPolicy::new(42)),
        )
    }

    #[test]
    fn append_read_roundtrip() {
        let fs = small_fs(4);
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        fs.append("/f", &data, Some(NodeId(0))).unwrap();
        assert_eq!(fs.read_all("/f", Some(NodeId(0))).unwrap(), data);
        assert_eq!(fs.len("/f").unwrap(), 1000);
        // 1000 bytes / 64 block size = 16 blocks
        assert_eq!(fs.block_locations("/f").unwrap().len(), 16);
    }

    #[test]
    fn partial_reads() {
        let fs = small_fs(3);
        let data: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        fs.append("/f", &data, None).unwrap();
        assert_eq!(fs.read("/f", 10, 5, None).unwrap(), &data[10..15]);
        // crossing a block boundary
        assert_eq!(fs.read("/f", 60, 10, None).unwrap(), &data[60..70]);
        // past EOF: short read
        assert_eq!(fs.read("/f", 195, 100, None).unwrap(), &data[195..]);
        assert_eq!(fs.read("/f", 500, 10, None).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn appends_accumulate_across_block_boundaries() {
        let fs = small_fs(3);
        fs.append("/f", &[1; 40], None).unwrap();
        fs.append("/f", &[2; 40], None).unwrap(); // fills block 0, spills to 1
        let mut expect = vec![1u8; 40];
        expect.extend(vec![2u8; 40]);
        assert_eq!(fs.read_all("/f", None).unwrap(), expect);
        assert_eq!(fs.block_locations("/f").unwrap().len(), 2);
    }

    #[test]
    fn replication_on_writer_node_gives_local_reads() {
        let fs = small_fs(5);
        fs.append("/f", &[9u8; 256], Some(NodeId(2))).unwrap();
        let before = fs.stats().snapshot();
        fs.read_all("/f", Some(NodeId(2))).unwrap();
        let after = fs.stats().snapshot().since(&before);
        assert_eq!(after.remote_read_bytes, 0);
        assert_eq!(after.local_read_bytes, 256);
    }

    #[test]
    fn external_reads_are_remote() {
        let fs = small_fs(3);
        fs.append("/f", &[1u8; 10], Some(NodeId(0))).unwrap();
        let before = fs.stats().snapshot();
        fs.read_all("/f", None).unwrap();
        let delta = fs.stats().snapshot().since(&before);
        assert_eq!(delta.local_read_bytes, 0);
        assert_eq!(delta.remote_read_bytes, 10);
    }

    #[test]
    fn delete_frees_space() {
        let fs = small_fs(3);
        fs.append("/f", &[1u8; 100], Some(NodeId(0))).unwrap();
        let used: u64 = fs.usage().per_node_bytes.values().sum();
        assert_eq!(used, 300); // 100 bytes × R=3
        fs.delete("/f").unwrap();
        let used: u64 = fs.usage().per_node_bytes.values().sum();
        assert_eq!(used, 0);
        assert!(!fs.exists("/f"));
        assert!(fs.read_all("/f", None).is_err());
    }

    #[test]
    fn create_twice_fails() {
        let fs = small_fs(3);
        fs.create("/f", None).unwrap();
        assert!(fs.create("/f", None).is_err());
    }

    #[test]
    fn list_by_prefix() {
        let fs = small_fs(3);
        fs.append("/db/t/p0/c0", &[0], None).unwrap();
        fs.append("/db/t/p0/c1", &[0], None).unwrap();
        fs.append("/db/t/p1/c0", &[0], None).unwrap();
        fs.append("/other", &[0], None).unwrap();
        assert_eq!(fs.list("/db/t/p0/").len(), 2);
        assert_eq!(fs.list("/db/").len(), 3);
        assert_eq!(fs.list("/zzz").len(), 0);
    }

    #[test]
    fn node_failure_triggers_rereplication() {
        let fs = small_fs(4);
        fs.append("/f", &[7u8; 128], Some(NodeId(0))).unwrap();
        let locs_before = fs.block_locations("/f").unwrap();
        assert!(locs_before.iter().all(|b| b.nodes.len() == 3));
        fs.kill_node(NodeId(0)).unwrap();
        let locs = fs.block_locations("/f").unwrap();
        for b in &locs {
            assert_eq!(b.nodes.len(), 3, "re-replicated back to R=3");
            assert!(!b.nodes.contains(&NodeId(0)));
        }
        assert!(fs.stats().snapshot().rereplicated_bytes >= 128);
        // Data still readable.
        assert_eq!(fs.read_all("/f", None).unwrap(), vec![7u8; 128]);
    }

    #[test]
    fn failure_below_replication_degrades_gracefully() {
        // 3 nodes, R=3: after one failure only 2 replicas are possible.
        let fs = small_fs(3);
        fs.append("/f", &[1u8; 64], Some(NodeId(0))).unwrap();
        fs.kill_node(NodeId(1)).unwrap();
        let locs = fs.block_locations("/f").unwrap();
        assert_eq!(locs[0].nodes.len(), 2);
        assert_eq!(fs.read_all("/f", None).unwrap(), vec![1u8; 64]);
    }

    #[test]
    fn affinity_policy_controls_placement_and_rebalance() {
        let policy = Arc::new(AffinityPolicy::new(7));
        let fs = SimHdfs::new(
            4,
            SimHdfsConfig {
                block_size: 32,
                default_replication: 2,
            },
            policy.clone(),
        );
        policy.set_affinity("/db/r/p0/", vec![NodeId(1), NodeId(3)]);
        fs.append("/db/r/p0/chunk0", &[5u8; 100], Some(NodeId(0)))
            .unwrap();
        for b in fs.block_locations("/db/r/p0/chunk0").unwrap() {
            assert_eq!(b.nodes, vec![NodeId(1), NodeId(3)]);
        }
        assert!(fs.fully_local("/db/r/p0/chunk0", NodeId(1)).unwrap());
        // Change the affinity map (responsibility moved), then rebalance.
        policy.set_affinity("/db/r/p0/", vec![NodeId(0), NodeId(2)]);
        let moved = fs.conform_to_policy();
        assert!(moved >= 100);
        for b in fs.block_locations("/db/r/p0/chunk0").unwrap() {
            assert_eq!(b.nodes, vec![NodeId(0), NodeId(2)]);
        }
        assert_eq!(
            fs.read_all("/db/r/p0/chunk0", None).unwrap(),
            vec![5u8; 100]
        );
    }

    #[test]
    fn add_node_extends_cluster() {
        let fs = small_fs(2);
        let id = fs.add_node();
        assert_eq!(id, NodeId(2));
        assert_eq!(fs.alive_nodes().len(), 3);
    }

    #[test]
    fn revive_restores_node_and_rebalance_repopulates_it() {
        let policy = Arc::new(AffinityPolicy::new(11));
        let fs = SimHdfs::new(
            3,
            SimHdfsConfig {
                block_size: 32,
                default_replication: 2,
            },
            policy.clone(),
        );
        policy.set_affinity("/db/t/p0/", vec![NodeId(1), NodeId(2)]);
        fs.append("/db/t/p0/chunk0", &[4u8; 96], Some(NodeId(1)))
            .unwrap();
        fs.kill_node(NodeId(1)).unwrap();
        assert_eq!(fs.alive_nodes().len(), 2);
        // Revival: back in the alive set, holding nothing.
        fs.revive_node(NodeId(1)).unwrap();
        assert_eq!(fs.alive_nodes().len(), 3);
        assert_eq!(fs.usage().per_node_bytes.get(&NodeId(1)), None);
        assert!(!fs.fully_local("/db/t/p0/chunk0", NodeId(1)).unwrap());
        // The rebalancer moves replicas back onto it per the policy.
        assert!(fs.conform_to_policy() >= 96);
        assert!(fs.fully_local("/db/t/p0/chunk0", NodeId(1)).unwrap());
        assert_eq!(
            fs.read_all("/db/t/p0/chunk0", Some(NodeId(1))).unwrap(),
            vec![4u8; 96]
        );
        // Guard rails: double revive and unknown nodes error.
        assert!(fs.revive_node(NodeId(1)).is_err());
        assert!(fs.revive_node(NodeId(9)).is_err());
    }

    #[test]
    fn kill_unknown_node_errors() {
        let fs = small_fs(2);
        assert!(fs.kill_node(NodeId(9)).is_err());
        fs.kill_node(NodeId(1)).unwrap();
        assert!(fs.kill_node(NodeId(1)).is_err());
    }

    #[test]
    fn all_replicas_dead_read_fails() {
        let policy = Arc::new(AffinityPolicy::new(9));
        let fs = SimHdfs::new(
            4,
            SimHdfsConfig {
                block_size: 32,
                default_replication: 1,
            },
            policy.clone(),
        );
        policy.set_affinity("/solo/", vec![NodeId(2)]);
        fs.append("/solo/f", &[1u8; 10], None).unwrap();
        fs.kill_node(NodeId(2)).unwrap();
        // R=1: the only replica died, there is nothing to copy from — the
        // block is lost and reads must fail.
        assert!(fs.read_all("/solo/f", None).is_err());
    }

    #[test]
    fn usage_tracks_replica_bytes() {
        let fs = small_fs(3);
        fs.append("/a", &[0u8; 50], Some(NodeId(0))).unwrap();
        let report = fs.usage();
        let total: u64 = report.per_node_bytes.values().sum();
        assert_eq!(total, 150);
    }

    /// Scripted hook for the injection tests: acts on paths containing a
    /// marker substring, pure function of (site, detail, attempt).
    #[derive(Debug)]
    struct ScriptedHook {
        site: FaultSite,
        marker: &'static str,
        action: FaultAction,
        /// For TransientError: fail attempts `< clears_after`.
        clears_after: u32,
    }

    impl vectorh_common::fault::FaultHook for ScriptedHook {
        fn decide(&self, site: FaultSite, detail: &str, attempt: u32) -> FaultAction {
            if site != self.site || !detail.contains(self.marker) {
                return FaultAction::None;
            }
            if self.action == FaultAction::TransientError && attempt >= self.clears_after {
                return FaultAction::None;
            }
            self.action
        }
    }

    #[test]
    fn transient_read_fault_is_retried_and_recovers() {
        let fs = small_fs(3);
        fs.append("/flaky/f", &[3u8; 32], Some(NodeId(0))).unwrap();
        fs.set_fault_hook(Some(Arc::new(ScriptedHook {
            site: FaultSite::HdfsRead,
            marker: "/flaky/",
            action: FaultAction::TransientError,
            clears_after: 2,
        })));
        assert_eq!(
            fs.read_all("/flaky/f", Some(NodeId(0))).unwrap(),
            vec![3u8; 32]
        );
        let snap = fs.stats().snapshot();
        assert_eq!(snap.injected_faults, 2);
        assert_eq!(snap.read_retries, 2);
    }

    #[test]
    fn transient_read_fault_exhausts_retry_budget() {
        let fs = small_fs(3);
        fs.append("/flaky/f", &[3u8; 32], Some(NodeId(0))).unwrap();
        fs.set_fault_hook(Some(Arc::new(ScriptedHook {
            site: FaultSite::HdfsRead,
            marker: "/flaky/",
            action: FaultAction::TransientError,
            clears_after: u32::MAX,
        })));
        let err = fs.read_all("/flaky/f", Some(NodeId(0))).unwrap_err();
        assert!(err.to_string().contains("gave up"), "{err}");
        assert_eq!(
            fs.stats().snapshot().injected_faults,
            MAX_IO_ATTEMPTS as u64
        );
    }

    #[test]
    fn permanent_fault_and_hook_clearing() {
        let fs = small_fs(3);
        fs.append("/f", &[1u8; 8], None).unwrap();
        fs.set_fault_hook(Some(Arc::new(ScriptedHook {
            site: FaultSite::HdfsAppend,
            marker: "/f",
            action: FaultAction::PermanentError,
            clears_after: 0,
        })));
        assert!(fs.append("/f", &[1u8; 8], None).is_err());
        // Reads are unaffected (different site).
        assert!(fs.read_all("/f", None).is_ok());
        fs.set_fault_hook(None);
        assert!(fs.append("/f", &[1u8; 8], None).is_ok());
    }

    #[test]
    fn slow_reads_are_accounted_not_failed() {
        let fs = small_fs(3);
        fs.append("/s/f", &[2u8; 16], Some(NodeId(1))).unwrap();
        fs.set_fault_hook(Some(Arc::new(ScriptedHook {
            site: FaultSite::HdfsRead,
            marker: "/s/",
            action: FaultAction::SlowRead,
            clears_after: 0,
        })));
        assert!(fs.read_all("/s/f", Some(NodeId(1))).is_ok());
        let snap = fs.stats().snapshot();
        assert_eq!(snap.slow_read_ops, 1);
        assert_eq!(snap.injected_faults, 0);
    }

    #[test]
    fn hook_is_shared_across_clones() {
        let fs = small_fs(3);
        let clone_made_before_install = fs.clone();
        fs.append("/f", &[0u8; 4], None).unwrap();
        fs.set_fault_hook(Some(Arc::new(ScriptedHook {
            site: FaultSite::HdfsRead,
            marker: "/f",
            action: FaultAction::PermanentError,
            clears_after: 0,
        })));
        assert!(clone_made_before_install.read_all("/f", None).is_err());
    }

    #[test]
    fn dead_reader_surfaces_node_down() {
        let fs = small_fs(4);
        fs.append("/f", &[1u8; 64], Some(NodeId(0))).unwrap();
        fs.kill_node(NodeId(2)).unwrap();
        let err = fs.read_all("/f", Some(NodeId(2))).unwrap_err();
        assert!(matches!(err, VhError::NodeDown(_)), "{err}");
        // Live readers and external clients still work.
        assert!(fs.read_all("/f", Some(NodeId(0))).is_ok());
        assert!(fs.read_all("/f", None).is_ok());
    }
}
