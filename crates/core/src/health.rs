//! Proactive failure detection: the engine's heartbeat round.
//!
//! Without a detector, a dead responsible node is only noticed when a query
//! trips over it ([`VhError::NodeDown`] → query-level failover). The
//! heartbeat round makes death detection *proactive*: each completed tick,
//! every worker is expected to have delivered a heartbeat; a node that
//! stays silent past the deadline is declared dead, fenced, and recovered
//! exactly as if [`VectorH::kill_node`] had been called.
//!
//! Time is the monitor's explicit tick counter — there is no wall clock —
//! so the chaos harness can schedule ticks deterministically between
//! transactions and replay identical detection schedules from a seed.
//! In ordinary operation nobody calls [`VectorH::health_tick`] by hand:
//! the engine's background health plane
//! ([`HealthScheduler`](crate::scheduler::HealthScheduler), advanced via
//! `advance_health` from inside `query_logical` and the trickle-DML entry
//! points) fires a round every
//! [`ClusterConfig::health_every`](crate::engine::ClusterConfig) work
//! units, so detection, election and takeover all happen as a side effect
//! of running queries.
//! Heartbeat delivery consults the fault hook at [`FaultSite::Heartbeat`]
//! (detail `"{node}@t{tick}"`), so a chaos plan can drop individual beats:
//! one drop only delays detection (the deadline tolerates
//! [`HEARTBEAT_DEADLINE_MISSES`](crate::engine::HEARTBEAT_DEADLINE_MISSES)
//! consecutive misses), it never false-kills a healthy node.

use vectorh_common::fault::{FaultAction, FaultSite};
use vectorh_common::{NodeId, Result};
use vectorh_net::NodeHealth;

use crate::engine::VectorH;

impl VectorH {
    /// Run one heartbeat round: collect this tick's heartbeats from live
    /// workers (each delivery consults the fault hook, so chaos schedules
    /// can drop them), advance the deadline monitor, and run full recovery
    /// — YARN `node_lost`, fencing, worker-set reconciliation with
    /// partition takeover — for any node newly declared dead. Returns the
    /// newly declared nodes.
    pub fn health_tick(&self) -> Result<Vec<NodeId>> {
        let workers = self.workers();
        let alive = self.fs().alive_nodes();
        let tick = self.health.tick() + 1;
        let master = self.session_master();
        let mut sent = 0usize;
        for &node in &workers {
            if !alive.contains(&node) {
                continue; // a crashed process sends nothing
            }
            let action = match self.fs().fault_hook() {
                Some(hook) => hook.decide(FaultSite::Heartbeat, &format!("{node}@t{tick}"), 0),
                None => FaultAction::None,
            };
            match action {
                // Clean (possibly slow or duplicated) delivery. In Tcp mode
                // the beat is a real frame to the master on the reserved
                // transport channel; otherwise it is recorded directly.
                FaultAction::None | FaultAction::SlowRead | FaultAction::Duplicate => {
                    match &self.hb_net {
                        Some(hb) => {
                            if hb.send(node, master).is_ok() {
                                sent += 1;
                            }
                        }
                        None => self.health.beat(node),
                    }
                }
                // A delayed beat still arrives — just after this tick's
                // deadline check. It credits the next tick, so with the
                // grace-stretched deadline, delay jitter only ever slows
                // detection; it can never dead-latch a live node.
                FaultAction::Delay => self.health.beat_late(node),
                // Anything else: lost in flight this tick.
                _ => {}
            }
        }
        if let Some(hb) = &self.hb_net {
            for node in hb.drain(master, sent) {
                self.health.beat(node);
            }
        }
        let newly_dead = self.health.advance(&workers);
        for &node in &newly_dead {
            self.rm().node_lost(node);
            // Fence before recovering: if the node is actually still up
            // (false suspicion), kill it so the declaration and the
            // filesystem agree — recovery must never race a live writer.
            if self.fs().alive_nodes().contains(&node) {
                self.fs().kill_node(node)?;
            }
        }
        if !newly_dead.is_empty() {
            self.reconcile_workers()?;
        }
        Ok(newly_dead)
    }

    /// The detector's current verdict for `node`.
    pub fn node_health(&self, node: NodeId) -> NodeHealth {
        self.health.health(node)
    }

    /// Completed heartbeat ticks (the detector's clock).
    pub fn health_ticks(&self) -> u64 {
        self.health.tick()
    }
}
