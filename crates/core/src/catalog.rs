//! Table definitions and the catalog.
//!
//! Mirrors the physical-design options of §2: tables can be hash-partitioned
//! on a key (with a fixed partition count), declared *clustered* on a sort
//! order (the "clustered index" — the table is stored sorted, enabling
//! MinMax skipping on correlated columns and co-ordered merge joins), or be
//! small and *replicated* to every worker.

use vectorh_common::{Result, Schema, VhError};

/// A table definition.
#[derive(Debug, Clone)]
pub struct TableDef {
    pub name: String,
    pub schema: Schema,
    /// Hash partitioning: (key column indexes, partition count).
    /// `None` = replicated small table.
    pub partitioning: Option<(Vec<usize>, usize)>,
    /// Clustered-index sort order (column indexes).
    pub sort_order: Option<Vec<usize>>,
}

/// Fluent construction of table definitions.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    name: String,
    fields: Vec<(String, vectorh_common::DataType)>,
    partition_by: Option<(Vec<String>, usize)>,
    clustered_by: Option<Vec<String>>,
}

impl TableBuilder {
    pub fn new(name: impl Into<String>) -> TableBuilder {
        TableBuilder {
            name: name.into(),
            fields: Vec::new(),
            partition_by: None,
            clustered_by: None,
        }
    }

    pub fn column(mut self, name: impl Into<String>, dtype: vectorh_common::DataType) -> Self {
        self.fields.push((name.into(), dtype));
        self
    }

    /// Hash-partition on the named columns into `n` partitions.
    pub fn partition_by(mut self, cols: &[&str], n: usize) -> Self {
        self.partition_by = Some((cols.iter().map(|s| s.to_string()).collect(), n));
        self
    }

    /// Declare a clustered index: the table is stored sorted on these
    /// columns.
    pub fn clustered_by(mut self, cols: &[&str]) -> Self {
        self.clustered_by = Some(cols.iter().map(|s| s.to_string()).collect());
        self
    }

    pub fn build(self) -> Result<TableDef> {
        if self.fields.is_empty() {
            return Err(VhError::Catalog(format!(
                "table '{}' has no columns",
                self.name
            )));
        }
        let schema = Schema::new(
            self.fields
                .iter()
                .map(|(n, t)| vectorh_common::Field::new(n.clone(), *t))
                .collect(),
        );
        let resolve = |names: &[String]| -> Result<Vec<usize>> {
            names.iter().map(|n| schema.index_of(n)).collect()
        };
        let partitioning = match &self.partition_by {
            Some((cols, n)) => {
                if *n == 0 {
                    return Err(VhError::Catalog("partition count must be > 0".into()));
                }
                Some((resolve(cols)?, *n))
            }
            None => None,
        };
        let sort_order = match &self.clustered_by {
            Some(cols) => Some(resolve(cols)?),
            None => None,
        };
        Ok(TableDef {
            name: self.name,
            schema,
            partitioning,
            sort_order,
        })
    }
}

/// The catalog: named table definitions.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: std::collections::BTreeMap<String, TableDef>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    pub fn add(&mut self, def: TableDef) -> Result<()> {
        if self.tables.contains_key(&def.name) {
            return Err(VhError::Catalog(format!(
                "table '{}' already exists",
                def.name
            )));
        }
        self.tables.insert(def.name.clone(), def);
        Ok(())
    }

    pub fn get(&self, name: &str) -> Result<&TableDef> {
        self.tables
            .get(name)
            .ok_or_else(|| VhError::Catalog(format!("unknown table '{name}'")))
    }

    pub fn drop_table(&mut self, name: &str) -> Result<TableDef> {
        self.tables
            .remove(name)
            .ok_or_else(|| VhError::Catalog(format!("unknown table '{name}'")))
    }

    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::DataType;

    #[test]
    fn builder_resolves_names() {
        let def = TableBuilder::new("orders")
            .column("o_orderkey", DataType::I64)
            .column("o_orderdate", DataType::Date)
            .partition_by(&["o_orderkey"], 8)
            .clustered_by(&["o_orderdate"])
            .build()
            .unwrap();
        assert_eq!(def.partitioning, Some((vec![0], 8)));
        assert_eq!(def.sort_order, Some(vec![1]));
    }

    #[test]
    fn builder_rejects_bad_input() {
        assert!(TableBuilder::new("empty").build().is_err());
        assert!(TableBuilder::new("t")
            .column("a", DataType::I64)
            .partition_by(&["nope"], 2)
            .build()
            .is_err());
        assert!(TableBuilder::new("t")
            .column("a", DataType::I64)
            .partition_by(&["a"], 0)
            .build()
            .is_err());
    }

    #[test]
    fn catalog_add_get_drop() {
        let mut c = Catalog::new();
        let def = TableBuilder::new("t")
            .column("a", DataType::I64)
            .build()
            .unwrap();
        c.add(def.clone()).unwrap();
        assert!(c.add(def).is_err());
        assert_eq!(c.get("t").unwrap().name, "t");
        assert_eq!(c.names(), vec!["t"]);
        c.drop_table("t").unwrap();
        assert!(c.get("t").is_err());
    }
}
