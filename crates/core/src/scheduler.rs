//! Deterministic background health scheduling.
//!
//! VectorH's health plane must run *during ordinary query traffic*, not only
//! when a test harness remembers to call `health_tick`. A wall-clock timer
//! thread would make every run schedule-dependent, so the scheduler keeps a
//! **virtual clock**: query execution advances it by one unit per query (and
//! tests may advance it explicitly), and every time the clock crosses a
//! multiple of the configured period one heartbeat round is due. The engine
//! drains the due rounds at the top of `query_logical`, which is what lets
//! detection, fencing, election and takeover fire from inside the ordinary
//! query path with fully reproducible timing.

use std::sync::atomic::{AtomicU64, Ordering};

/// Virtual-clock scheduler for background heartbeat rounds.
///
/// `every` is the period in clock units between rounds; `0` disables
/// background scheduling entirely (the engine then only ticks when told to,
/// which is what most unit tests want).
#[derive(Debug)]
pub struct HealthScheduler {
    every: u64,
    clock: AtomicU64,
}

impl HealthScheduler {
    pub fn new(every: u64) -> HealthScheduler {
        HealthScheduler {
            every,
            clock: AtomicU64::new(0),
        }
    }

    /// The configured period (0 = disabled).
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Advance the virtual clock by `units` and return how many heartbeat
    /// rounds became due — the number of period boundaries the advance
    /// crossed. Deterministic: the same sequence of advances always yields
    /// the same round schedule.
    pub fn advance(&self, units: u64) -> u64 {
        if self.every == 0 || units == 0 {
            if units > 0 {
                self.clock.fetch_add(units, Ordering::SeqCst);
            }
            return 0;
        }
        let before = self.clock.fetch_add(units, Ordering::SeqCst);
        let after = before + units;
        after / self.every - before / self.every
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_fire_once_per_period() {
        let s = HealthScheduler::new(3);
        assert_eq!(s.advance(1), 0);
        assert_eq!(s.advance(1), 0);
        assert_eq!(s.advance(1), 1); // clock 3: one boundary crossed
        assert_eq!(s.advance(2), 0);
        assert_eq!(s.advance(1), 1); // clock 6
        assert_eq!(s.now(), 6);
    }

    #[test]
    fn big_advance_yields_every_crossed_round() {
        let s = HealthScheduler::new(2);
        assert_eq!(s.advance(7), 3); // boundaries at 2, 4, 6
        assert_eq!(s.now(), 7);
        assert_eq!(s.advance(1), 1); // boundary at 8
    }

    #[test]
    fn period_one_fires_every_unit() {
        let s = HealthScheduler::new(1);
        assert_eq!(s.advance(1), 1);
        assert_eq!(s.advance(5), 5);
    }

    #[test]
    fn zero_period_disables_scheduling() {
        let s = HealthScheduler::new(0);
        assert_eq!(s.advance(10), 0);
        assert_eq!(s.now(), 10); // the clock still moves for observability
    }

    #[test]
    fn schedule_is_deterministic() {
        let run = |advances: &[u64]| -> Vec<u64> {
            let s = HealthScheduler::new(4);
            advances.iter().map(|&u| s.advance(u)).collect()
        };
        let pattern = [1, 3, 2, 2, 9, 1];
        assert_eq!(run(&pattern), run(&pattern));
    }
}
