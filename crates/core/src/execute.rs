//! Physical plan execution: PhysPlan → per-node operator pipelines.
//!
//! The interpreter turns the Parallel Rewriter's output into streams:
//! partition-parallel scans run at their responsible nodes (MScan with
//! MinMax pruning + PDT merge), local joins pair co-located partitions,
//! broadcast builds materialize the build side once per node, repartitioned
//! operators connect through the DXchg layer, and everything funnels into a
//! single stream at the session master.

use std::sync::Arc;

use vectorh_common::{NodeId, Result, Value, VhError};
use vectorh_exec::aggr::{AggFn, AggMode, Aggr};
use vectorh_exec::expr::{CmpOp, Expr};
use vectorh_exec::filter::Select;
use vectorh_exec::join::{HashJoin, JoinKind as ExecJoinKind};
use vectorh_exec::mergejoin::MergeJoin;
use vectorh_exec::operator::{collect_profiles, render_profile, BatchSource, Operator};
use vectorh_exec::project::Project;
use vectorh_exec::scan::MScan;
use vectorh_exec::sort::{Limit, Sort};
use vectorh_exec::Batch;
use vectorh_net::dxchg::{dxchg_hash_split, dxchg_union};
use vectorh_pdt::MergeStep;
use vectorh_planner::logical::JoinKind;
use vectorh_planner::physical::{AggStrategy, JoinStrategy};
use vectorh_planner::PhysPlan;
use vectorh_storage::minmax::{PruneOp, Pruning};

use crate::engine::VectorH;

/// Streams produced by a plan fragment.
enum Streams {
    /// One pipeline per partition/consumer, each pinned to a node.
    Parallel(Vec<(u32, Box<dyn Operator>)>),
    /// A single pipeline at the session master.
    Serial(Box<dyn Operator>),
}

impl Streams {
    fn into_parallel(self) -> Vec<(u32, Box<dyn Operator>)> {
        match self {
            Streams::Parallel(v) => v,
            Streams::Serial(op) => vec![(0, op)],
        }
    }
}

struct Ctx<'a> {
    vh: &'a VectorH,
    master: u32,
}

impl<'a> Ctx<'a> {
    /// Exchange consumer layout: `streams_per_node` threads on each worker.
    fn consumer_layout(&self) -> Vec<u32> {
        let spn = self.vh.streams_per_node().max(1);
        let mut out = Vec::new();
        for w in self.vh.workers() {
            for _ in 0..spn {
                out.push(w.0);
            }
        }
        out
    }
}

/// Run a physical plan, returning rows and the execution profile. The
/// optional cancel flag is polled between result batches at the top of the
/// plan — one vector of work is the cancellation latency bound.
pub(crate) fn execute(
    vh: &VectorH,
    phys: &PhysPlan,
    cancel: Option<&std::sync::atomic::AtomicBool>,
) -> Result<(Vec<Vec<Value>>, String)> {
    let ctx = Ctx {
        vh,
        master: vh.session_master().0,
    };
    let streams = build(&ctx, phys)?;
    let mut top: Box<dyn Operator> = match streams {
        Streams::Serial(op) => op,
        Streams::Parallel(streams) => Box::new(dxchg_union(
            streams.into_iter().collect(),
            ctx.master,
            vh.dxchg_config(),
            vh.net_stats().clone(),
        )?),
    };
    let mut rows = Vec::new();
    while let Some(batch) = top.next()? {
        if let Some(flag) = cancel {
            if flag.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(vectorh_common::VhError::Cancelled(
                    "query cancelled mid-stream".into(),
                ));
            }
        }
        rows.extend(batch.rows());
    }
    let profile = render_profile(&collect_profiles(top.as_ref()));
    Ok((rows, profile))
}

/// Extract MinMax-prunable conjuncts from a pushed-down predicate.
/// `cols` maps projected positions back to table columns.
fn extract_pruning(pred: &Expr, cols: &[usize]) -> Pruning {
    fn lit(e: &Expr) -> Option<Value> {
        match e {
            Expr::Lit(v) => Some(v.clone()),
            _ => None,
        }
    }
    fn col(e: &Expr, cols: &[usize]) -> Option<usize> {
        match e {
            Expr::Col(c) => cols.get(*c).copied(),
            _ => None,
        }
    }
    let mut out = Pruning::new();
    match pred {
        Expr::And(es) => {
            for e in es {
                out.extend(extract_pruning(e, cols));
            }
        }
        Expr::Cmp(op, l, r) => {
            if let (Some(c), Some(v)) = (col(l, cols), lit(r)) {
                let op = match op {
                    CmpOp::Lt => Some(PruneOp::Lt),
                    CmpOp::Le => Some(PruneOp::Le),
                    CmpOp::Gt => Some(PruneOp::Gt),
                    CmpOp::Ge => Some(PruneOp::Ge),
                    CmpOp::Eq => Some(PruneOp::Eq),
                    CmpOp::Ne => None,
                };
                if let Some(op) = op {
                    out.push((c, op, v));
                }
            } else if let (Some(v), Some(c)) = (lit(l), col(r, cols)) {
                // literal OP column — mirror the comparison
                let op = match op {
                    CmpOp::Lt => Some(PruneOp::Gt),
                    CmpOp::Le => Some(PruneOp::Ge),
                    CmpOp::Gt => Some(PruneOp::Lt),
                    CmpOp::Ge => Some(PruneOp::Le),
                    CmpOp::Eq => Some(PruneOp::Eq),
                    CmpOp::Ne => None,
                };
                if let Some(op) = op {
                    out.push((c, op, v));
                }
            }
        }
        Expr::Between(e, lo, hi) => {
            if let (Some(c), Some(lo), Some(hi)) = (col(e, cols), lit(lo), lit(hi)) {
                out.push((c, PruneOp::Between(hi), lo));
            }
        }
        _ => {}
    }
    out
}

fn exec_join_kind(kind: JoinKind) -> ExecJoinKind {
    match kind {
        JoinKind::Inner => ExecJoinKind::Inner,
        JoinKind::LeftOuter => ExecJoinKind::LeftOuter,
        JoinKind::Semi => ExecJoinKind::Semi,
        JoinKind::Anti => ExecJoinKind::Anti,
    }
}

/// Build the scan streams for a partitioned table.
fn scan_partitioned(
    ctx: &Ctx,
    table: &str,
    cols: &[usize],
    pred: &Option<Expr>,
) -> Result<Streams> {
    let rt = ctx.vh.table(table)?;
    let mut streams = Vec::with_capacity(rt.pids.len());
    for (i, pid) in rt.pids.iter().enumerate() {
        let plan = ctx.vh.txns.scan_plan(*pid)?;
        let store = rt.stores[i].read().clone();
        // MinMax pruning is only sound against a clean (update-free)
        // partition image; trickle updates are conservative until the next
        // propagation rebuilds the index.
        let clean = plan
            .iter()
            .all(|s| matches!(s, MergeStep::CopyStable { .. }));
        let keep = match (clean, pred) {
            (true, Some(p)) => {
                let pruning = extract_pruning(p, cols);
                if pruning.is_empty() {
                    vec![true; store.n_chunks()]
                } else {
                    store.prune(&pruning)
                }
            }
            _ => vec![true; store.n_chunks()],
        };
        let home = ctx.vh.responsible(*pid);
        let mut op: Box<dyn Operator> =
            Box::new(MScan::new(store, cols.to_vec(), keep, plan, Some(home))?);
        if let Some(p) = pred {
            op = Box::new(Select::new(op, p.clone()));
        }
        streams.push((home.0, op));
    }
    Ok(Streams::Parallel(streams))
}

/// One scan pipeline over a replicated table, reading at `node`.
fn scan_replicated_at(
    ctx: &Ctx,
    table: &str,
    cols: &[usize],
    pred: &Option<Expr>,
    node: NodeId,
) -> Result<Box<dyn Operator>> {
    let rt = ctx.vh.table(table)?;
    let pid = rt.pids[0];
    let plan = ctx.vh.txns.scan_plan(pid)?;
    let store = rt.stores[0].read().clone();
    let keep = vec![true; store.n_chunks()];
    let mut op: Box<dyn Operator> =
        Box::new(MScan::new(store, cols.to_vec(), keep, plan, Some(node))?);
    if let Some(p) = pred {
        op = Box::new(Select::new(op, p.clone()));
    }
    Ok(op)
}

/// Instantiate a (replicated) subtree for a specific node. Supports the
/// shapes the rewriter produces for broadcast build sides: replicated scans
/// under Select/Project chains, plus joins of replicated subtrees.
fn build_for_node(ctx: &Ctx, phys: &PhysPlan, node: NodeId) -> Result<Box<dyn Operator>> {
    Ok(match phys {
        PhysPlan::ScanReplicated { table, cols, pred } => {
            scan_replicated_at(ctx, table, cols, pred, node)?
        }
        PhysPlan::Select { input, predicate } => Box::new(Select::new(
            build_for_node(ctx, input, node)?,
            predicate.clone(),
        )),
        PhysPlan::Project { input, items } => Box::new(Project::new(
            build_for_node(ctx, input, node)?,
            items.clone(),
        )?),
        PhysPlan::HashJoin {
            probe,
            build,
            probe_keys,
            build_keys,
            kind,
            ..
        } => Box::new(HashJoin::new(
            build_for_node(ctx, probe, node)?,
            build_for_node(ctx, build, node)?,
            probe_keys.clone(),
            build_keys.clone(),
            exec_join_kind(*kind),
        )?),
        other => {
            return Err(VhError::Exec(format!(
                "broadcast build side contains non-replicated operator: {}",
                other.explain().lines().next().unwrap_or("?")
            )))
        }
    })
}

/// Materialize a broadcast build side once per distinct node.
/// Returns `node → batches` plus the build-side schema.
type PerNodeBatches = std::collections::HashMap<u32, Vec<Batch>>;

fn build_side_per_node(
    ctx: &Ctx,
    side: &PhysPlan,
    nodes: &[u32],
) -> Result<(PerNodeBatches, Arc<vectorh_common::Schema>)> {
    let mut distinct: Vec<u32> = nodes.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let mut map = std::collections::HashMap::new();

    match side {
        PhysPlan::DxchgBroadcast { input } => {
            // Materialize once at the master, then ship to every node.
            let inner = build(ctx, input)?;
            let mut producer: Box<dyn Operator> = match inner {
                Streams::Serial(op) => op,
                Streams::Parallel(streams) => Box::new(dxchg_union(
                    streams,
                    ctx.master,
                    ctx.vh.dxchg_config(),
                    ctx.vh.net_stats().clone(),
                )?),
            };
            let schema = producer.schema();
            let mut batches = Vec::new();
            while let Some(b) = producer.next()? {
                batches.push(b);
            }
            // Network accounting: one serialized copy per non-master node.
            let stats = ctx.vh.net_stats();
            for &n in &distinct {
                if n != ctx.master {
                    for b in &batches {
                        let bytes = vectorh_net::buffer::serialize(b);
                        stats.record_net_message(bytes.len() as u64, b.len() as u64);
                    }
                }
                map.insert(n, batches.clone());
            }
            Ok((map, schema))
        }
        replicated => {
            // Replicated subtree: every node builds from its local replica.
            let mut schema = None;
            for &n in &distinct {
                let mut op = build_for_node(ctx, replicated, NodeId(n))?;
                schema = Some(op.schema());
                let mut batches = Vec::new();
                while let Some(b) = op.next()? {
                    batches.push(b);
                }
                map.insert(n, batches);
            }
            let schema =
                schema.ok_or_else(|| VhError::Exec("broadcast build with no nodes".into()))?;
            Ok((map, schema))
        }
    }
}

/// Final-mode aggregate column mapping: each agg's first state column in
/// the partial output layout `[groups..., states...]`.
fn final_aggs(group_len: usize, aggs: &[AggFn]) -> Vec<AggFn> {
    let mut col = group_len;
    aggs.iter()
        .map(|a| {
            let here = col;
            col += match a {
                AggFn::Avg(_) => 2,
                _ => 1,
            };
            match a {
                AggFn::CountStar => AggFn::Count(here),
                AggFn::Count(_) => AggFn::Count(here),
                AggFn::Sum(_) => AggFn::Sum(here),
                AggFn::Min(_) => AggFn::Min(here),
                AggFn::Max(_) => AggFn::Max(here),
                AggFn::Avg(_) => AggFn::Avg(here),
                AggFn::CountDistinct(_) => AggFn::CountDistinct(here),
            }
        })
        .collect()
}

fn build(ctx: &Ctx, phys: &PhysPlan) -> Result<Streams> {
    match phys {
        PhysPlan::ScanPartitioned { table, cols, pred } => scan_partitioned(ctx, table, cols, pred),
        PhysPlan::ScanReplicated { table, cols, pred } => Ok(Streams::Serial(scan_replicated_at(
            ctx,
            table,
            cols,
            pred,
            NodeId(ctx.master),
        )?)),
        PhysPlan::Select { input, predicate } => Ok(map_streams(build(ctx, input)?, |op| {
            Ok(Box::new(Select::new(op, predicate.clone())) as Box<dyn Operator>)
        })?),
        PhysPlan::Project { input, items } => Ok(map_streams(build(ctx, input)?, |op| {
            Ok(Box::new(Project::new(op, items.clone())?) as Box<dyn Operator>)
        })?),
        PhysPlan::MergeJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let l = build(ctx, left)?.into_parallel();
            let r = build(ctx, right)?.into_parallel();
            if l.len() != r.len() {
                return Err(VhError::Exec(format!(
                    "merge join partition mismatch: {} vs {}",
                    l.len(),
                    r.len()
                )));
            }
            let mut out = Vec::with_capacity(l.len());
            for ((node, lop), (_, rop)) in l.into_iter().zip(r) {
                out.push((
                    node,
                    Box::new(MergeJoin::new(lop, rop, *left_key, *right_key)?) as Box<dyn Operator>,
                ));
            }
            Ok(Streams::Parallel(out))
        }
        PhysPlan::HashJoin {
            probe,
            build: build_side,
            probe_keys,
            build_keys,
            kind,
            strategy,
        } => {
            match strategy {
                JoinStrategy::Local => {
                    let l = build(ctx, probe)?.into_parallel();
                    let r = build(ctx, build_side)?.into_parallel();
                    if l.len() != r.len() {
                        return Err(VhError::Exec(format!(
                            "local join partition mismatch: {} vs {}",
                            l.len(),
                            r.len()
                        )));
                    }
                    let mut out = Vec::with_capacity(l.len());
                    for ((node, lop), (_, rop)) in l.into_iter().zip(r) {
                        out.push((
                            node,
                            Box::new(HashJoin::new(
                                lop,
                                rop,
                                probe_keys.clone(),
                                build_keys.clone(),
                                exec_join_kind(*kind),
                            )?) as Box<dyn Operator>,
                        ));
                    }
                    Ok(Streams::Parallel(out))
                }
                JoinStrategy::BroadcastBuild => {
                    let probe_streams = build(ctx, probe)?.into_parallel();
                    let nodes: Vec<u32> = probe_streams.iter().map(|(n, _)| *n).collect();
                    let (sources, schema) = build_side_per_node(ctx, build_side, &nodes)?;
                    let mut out = Vec::with_capacity(probe_streams.len());
                    for (node, pop) in probe_streams {
                        let batches = sources.get(&node).cloned().unwrap_or_default();
                        let src = Box::new(BatchSource::new(schema.clone(), batches));
                        out.push((
                            node,
                            Box::new(HashJoin::new(
                                pop,
                                src,
                                probe_keys.clone(),
                                build_keys.clone(),
                                exec_join_kind(*kind),
                            )?) as Box<dyn Operator>,
                        ));
                    }
                    Ok(Streams::Parallel(out))
                }
                JoinStrategy::Repartitioned => {
                    // The rewriter placed explicit DxchgHashSplit children.
                    let (probe_in, pkeys) = match probe.as_ref() {
                        PhysPlan::DxchgHashSplit { input, keys } => (input.as_ref(), keys.clone()),
                        other => (other, probe_keys.clone()),
                    };
                    let (build_in, bkeys) = match build_side.as_ref() {
                        PhysPlan::DxchgHashSplit { input, keys } => (input.as_ref(), keys.clone()),
                        other => (other, build_keys.clone()),
                    };
                    let consumers = ctx.consumer_layout();
                    let precv = dxchg_hash_split(
                        build(ctx, probe_in)?.into_parallel(),
                        consumers.clone(),
                        pkeys,
                        ctx.vh.dxchg_config(),
                        ctx.vh.net_stats().clone(),
                    )?;
                    let brecv = dxchg_hash_split(
                        build(ctx, build_in)?.into_parallel(),
                        consumers.clone(),
                        bkeys,
                        ctx.vh.dxchg_config(),
                        ctx.vh.net_stats().clone(),
                    )?;
                    let mut out = Vec::with_capacity(consumers.len());
                    for ((node, p), b) in consumers.iter().zip(precv).zip(brecv) {
                        out.push((
                            *node,
                            Box::new(HashJoin::new(
                                Box::new(p),
                                Box::new(b),
                                probe_keys.clone(),
                                build_keys.clone(),
                                exec_join_kind(*kind),
                            )?) as Box<dyn Operator>,
                        ));
                    }
                    Ok(Streams::Parallel(out))
                }
            }
        }
        PhysPlan::Aggr {
            input,
            group_by,
            aggs,
            strategy,
        } => match strategy {
            AggStrategy::Local => Ok(map_streams(build(ctx, input)?, |op| {
                Ok(Box::new(Aggr::new(
                    op,
                    group_by.clone(),
                    aggs.clone(),
                    AggMode::Complete,
                )?) as Box<dyn Operator>)
            })?),
            AggStrategy::PartialFinal => {
                let partials = map_streams(build(ctx, input)?, |op| {
                    Ok(Box::new(Aggr::new(
                        op,
                        group_by.clone(),
                        aggs.clone(),
                        AggMode::Partial,
                    )?) as Box<dyn Operator>)
                })?;
                let consumers = ctx.consumer_layout();
                let recv = dxchg_hash_split(
                    partials.into_parallel(),
                    consumers.clone(),
                    (0..group_by.len()).collect(),
                    ctx.vh.dxchg_config(),
                    ctx.vh.net_stats().clone(),
                )?;
                let fin = final_aggs(group_by.len(), aggs);
                let mut out = Vec::with_capacity(consumers.len());
                for (node, r) in consumers.iter().zip(recv) {
                    out.push((
                        *node,
                        Box::new(Aggr::new(
                            Box::new(r),
                            (0..group_by.len()).collect(),
                            fin.clone(),
                            AggMode::Final,
                        )?) as Box<dyn Operator>,
                    ));
                }
                Ok(Streams::Parallel(out))
            }
            AggStrategy::RepartitionComplete => {
                let consumers = ctx.consumer_layout();
                let recv = dxchg_hash_split(
                    build(ctx, input)?.into_parallel(),
                    consumers.clone(),
                    group_by.clone(),
                    ctx.vh.dxchg_config(),
                    ctx.vh.net_stats().clone(),
                )?;
                let mut out = Vec::with_capacity(consumers.len());
                for (node, r) in consumers.iter().zip(recv) {
                    out.push((
                        *node,
                        Box::new(Aggr::new(
                            Box::new(r),
                            group_by.clone(),
                            aggs.clone(),
                            AggMode::Complete,
                        )?) as Box<dyn Operator>,
                    ));
                }
                Ok(Streams::Parallel(out))
            }
            AggStrategy::GlobalPartialFinal => {
                let partials = map_streams(build(ctx, input)?, |op| {
                    Ok(
                        Box::new(Aggr::new(op, vec![], aggs.clone(), AggMode::Partial)?)
                            as Box<dyn Operator>,
                    )
                })?;
                let union = dxchg_union(
                    partials.into_parallel(),
                    ctx.master,
                    ctx.vh.dxchg_config(),
                    ctx.vh.net_stats().clone(),
                )?;
                Ok(Streams::Serial(Box::new(Aggr::new(
                    Box::new(union),
                    vec![],
                    final_aggs(0, aggs),
                    AggMode::Final,
                )?)))
            }
            AggStrategy::GlobalComplete => {
                let union = dxchg_union(
                    build(ctx, input)?.into_parallel(),
                    ctx.master,
                    ctx.vh.dxchg_config(),
                    ctx.vh.net_stats().clone(),
                )?;
                Ok(Streams::Serial(Box::new(Aggr::new(
                    Box::new(union),
                    vec![],
                    aggs.clone(),
                    AggMode::Complete,
                )?)))
            }
        },
        PhysPlan::Sort { input, keys, limit } => {
            // Partial TopN below the union when a limit exists.
            let serial: Box<dyn Operator> = match (input.as_ref(), limit) {
                (PhysPlan::DxchgUnion { input: inner }, Some(n)) => {
                    let partial = map_streams(build(ctx, inner)?, |op| {
                        Ok(Box::new(Sort::new(op, keys.clone(), Some(*n))) as Box<dyn Operator>)
                    })?;
                    Box::new(dxchg_union(
                        partial.into_parallel(),
                        ctx.master,
                        ctx.vh.dxchg_config(),
                        ctx.vh.net_stats().clone(),
                    )?)
                }
                _ => match build(ctx, input)? {
                    Streams::Serial(op) => op,
                    Streams::Parallel(streams) => Box::new(dxchg_union(
                        streams,
                        ctx.master,
                        ctx.vh.dxchg_config(),
                        ctx.vh.net_stats().clone(),
                    )?),
                },
            };
            Ok(Streams::Serial(Box::new(Sort::new(
                serial,
                keys.clone(),
                *limit,
            ))))
        }
        PhysPlan::Limit { input, n } => {
            let serial: Box<dyn Operator> = match build(ctx, input)? {
                Streams::Serial(op) => op,
                Streams::Parallel(streams) => Box::new(dxchg_union(
                    streams,
                    ctx.master,
                    ctx.vh.dxchg_config(),
                    ctx.vh.net_stats().clone(),
                )?),
            };
            Ok(Streams::Serial(Box::new(Limit::new(serial, *n))))
        }
        PhysPlan::DxchgUnion { input } => {
            let inner = build(ctx, input)?;
            match inner {
                Streams::Serial(op) => Ok(Streams::Serial(op)),
                Streams::Parallel(streams) => Ok(Streams::Serial(Box::new(dxchg_union(
                    streams,
                    ctx.master,
                    ctx.vh.dxchg_config(),
                    ctx.vh.net_stats().clone(),
                )?))),
            }
        }
        PhysPlan::DxchgHashSplit { input, keys } => {
            let consumers = ctx.consumer_layout();
            let recv = dxchg_hash_split(
                build(ctx, input)?.into_parallel(),
                consumers.clone(),
                keys.clone(),
                ctx.vh.dxchg_config(),
                ctx.vh.net_stats().clone(),
            )?;
            Ok(Streams::Parallel(
                consumers
                    .iter()
                    .zip(recv)
                    .map(|(n, r)| (*n, Box::new(r) as Box<dyn Operator>))
                    .collect(),
            ))
        }
        PhysPlan::DxchgBroadcast { .. } => Err(VhError::Internal(
            "standalone DxchgBroadcast outside a join build side".into(),
        )),
    }
}

fn map_streams<F>(streams: Streams, mut f: F) -> Result<Streams>
where
    F: FnMut(Box<dyn Operator>) -> Result<Box<dyn Operator>>,
{
    Ok(match streams {
        Streams::Serial(op) => Streams::Serial(f(op)?),
        Streams::Parallel(v) => {
            let mut out = Vec::with_capacity(v.len());
            for (n, op) in v {
                out.push((n, f(op)?));
            }
            Streams::Parallel(out)
        }
    })
}
