//! The VectorH engine: cluster lifecycle, DDL, loading, queries, failover.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use vectorh_blockstore::FileStore;
use vectorh_common::fault::SharedFaultHook;
use vectorh_common::sync::{Mutex, RwLock};
use vectorh_common::util::{hash_bytes, hash_combine, hash_u64};
use vectorh_common::{ColumnData, NodeId, PartitionId, Result, Value, VhError};
use vectorh_net::{
    ChannelStats, DxchgConfig, FanoutMode, HeartbeatMonitor, NetStats, PropagationStats,
    ServerStats,
};
use vectorh_planner::logical::{CatalogInfo, TableMeta};
use vectorh_planner::{parse_query, LogicalPlan, ParallelRewriter, PhysPlan, RewriterOptions};
use vectorh_simhdfs::{AffinityPolicy, BlockStore, SimHdfs, SimHdfsConfig, StoreRef};
use vectorh_storage::{PartitionStore, StorageConfig};
use vectorh_transport::{
    Fabric, FrameRx, FrameTx, RxKind, SharedEpoch, TcpFabric, HEARTBEAT_CHANNEL,
};
use vectorh_txn::twophase::{Drained, LogShipper, ShipRetention, TwoPhaseCoordinator};
use vectorh_txn::{TransactionManager, TxnConfig, Wal};

use crate::scheduler::HealthScheduler;
use vectorh_yarn::placement::{
    affinity_mapping, initial_affinity, responsibility_assignment, PlacementInput,
};
use vectorh_yarn::{DbAgent, ResourceFootprint, ResourceManager, RmConfig};

use crate::catalog::{Catalog, TableBuilder, TableDef};

/// How the simulated nodes talk to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterMode {
    /// Pure in-process channels (the original single-process simulation);
    /// the exchange layer is structurally unchanged from earlier PRs.
    #[default]
    InProc,
    /// Real TCP between per-node loopback endpoints: cross-node DXchg
    /// buffers travel as framed, CRC-checked, credit-flow-controlled
    /// messages, and heartbeats ride the reserved transport channel.
    Tcp,
}

/// Which [`BlockStore`] implementation backs the cluster's storage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum StorageBackend {
    /// The in-memory simulated HDFS (deterministic, no real IO).
    #[default]
    Sim,
    /// Real files under the given root directory
    /// ([`FileStore`]): buffered appends, fsync at
    /// commit points, mmap'd reads. An empty root means "a fresh temp
    /// directory per cluster, removed on shutdown". A non-empty root gets a
    /// unique per-cluster subdirectory so concurrently started clusters
    /// (parallel tests) never collide — to reopen an existing root (crash
    /// recovery), construct a [`FileStore`] directly.
    File(String),
}

impl StorageBackend {
    /// Backend selection from the environment: `VH_STORE_BACKEND=file`
    /// selects the real-file backend, rooted at `VH_STORE_DIR` (empty or
    /// unset = per-cluster temp dirs). Anything else is the simulation.
    /// [`ClusterConfig::default`] calls this, so
    /// `VH_STORE_BACKEND=file cargo test` runs the whole suite on real
    /// files.
    pub fn from_env() -> StorageBackend {
        match std::env::var("VH_STORE_BACKEND").as_deref() {
            Ok("file") => StorageBackend::File(std::env::var("VH_STORE_DIR").unwrap_or_default()),
            _ => StorageBackend::Sim,
        }
    }
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub nodes: usize,
    pub cores_per_node: u32,
    pub mem_per_node: u64,
    /// HDFS replication degree (capped at the node count).
    pub replication: usize,
    pub hdfs_block_size: usize,
    pub rows_per_chunk: usize,
    /// Exchange consumer threads per node for repartitioning operators.
    pub streams_per_node: usize,
    pub seed: u64,
    pub dxchg: DxchgConfig,
    /// Rewrite-rule toggles (§5 ablation).
    pub enable_local_join: bool,
    pub enable_replicated_build: bool,
    pub enable_partial_aggr: bool,
    /// Virtual-clock period between background heartbeat rounds: one round
    /// every `health_every` queries. 0 disables background scheduling
    /// (health then runs only when `health_tick`/`advance_health` is called
    /// explicitly).
    pub health_every: u64,
    /// Retention policy for the shipped replicated-table log. The default
    /// reads `VH_SHIP_RETAIN_BYTES`/`VH_SHIP_RETAIN_RECORDS` from the
    /// environment (unset = unbounded, truncate only at checkpoints).
    pub ship_retention: ShipRetention,
    /// Inter-node transport: in-process channels or real TCP.
    pub cluster_mode: ClusterMode,
    /// Heartbeat-deadline grace multiplier for transport latency: the
    /// effective deadline is `HEARTBEAT_DEADLINE_MISSES × grace`. Clamps to
    /// ≥ 2 in [`ClusterMode::Tcp`], where a beat can legitimately arrive a
    /// tick late and delay jitter must never dead-latch a live node.
    pub heartbeat_grace: u32,
    /// Virtual-clock period between background update-propagation rounds
    /// (same clock as `health_every`: one unit per query/DML call). 0
    /// disables background propagation (it then runs only through
    /// [`VectorH::propagate_table`]).
    pub propagate_every: u64,
    /// Chunk budget per background propagation round: a round stops
    /// visiting further partitions once it has written this many chunk
    /// images, so propagation shares the clock fairly with live queries.
    pub propagate_chunks_per_tick: usize,
    /// Storage backend: the in-memory simulation or real files. The default
    /// honours `VH_STORE_BACKEND`/`VH_STORE_DIR`
    /// ([`StorageBackend::from_env`]).
    pub storage_backend: StorageBackend,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 3,
            cores_per_node: 4,
            mem_per_node: 64 << 30,
            replication: 3,
            hdfs_block_size: 1 << 20,
            rows_per_chunk: 4096,
            streams_per_node: 2,
            seed: 0x5648,
            dxchg: DxchgConfig::default(),
            enable_local_join: true,
            enable_replicated_build: true,
            enable_partial_aggr: true,
            health_every: 1,
            ship_retention: ShipRetention::from_env(),
            cluster_mode: ClusterMode::InProc,
            heartbeat_grace: 1,
            propagate_every: 0,
            propagate_chunks_per_tick: 8,
            storage_backend: StorageBackend::from_env(),
        }
    }
}

/// Heartbeats as real transport frames ([`ClusterMode::Tcp`]): every node
/// binds the reserved [`HEARTBEAT_CHANNEL`] at startup; each health round,
/// live workers send one beat frame to the current master, whose inbox is
/// drained into the deadline monitor. Beat streams persist across rounds —
/// the transport allows one live sender per `(from, to, channel)`, and a
/// fresh sender would restart the wire sequence into the dedup window.
pub(crate) struct HbNet {
    fabric: Arc<dyn Fabric>,
    rxs: Mutex<HashMap<NodeId, Box<dyn FrameRx>>>,
    txs: Mutex<HashMap<(NodeId, NodeId), Box<dyn FrameTx>>>,
}

impl HbNet {
    fn new(fabric: Arc<dyn Fabric>, nodes: &[NodeId]) -> Result<HbNet> {
        let mut rxs = HashMap::new();
        for &n in nodes {
            rxs.insert(n, fabric.endpoint(n)?.bind(HEARTBEAT_CHANNEL, 64)?);
        }
        Ok(HbNet {
            fabric,
            rxs: Mutex::new(rxs),
            txs: Mutex::new(HashMap::new()),
        })
    }

    /// Send one beat `from → to` (the payload names the sender).
    pub(crate) fn send(&self, from: NodeId, to: NodeId) -> Result<()> {
        let mut txs = self.txs.lock();
        let tx = match txs.entry((from, to)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(self.fabric.endpoint(from)?.sender(to, HEARTBEAT_CHANNEL)?)
            }
        };
        tx.send(&from.0.to_le_bytes())
    }

    /// Drain `master`'s heartbeat inbox, waiting (bounded) until at least
    /// `want` frames arrived so this round's own beats are not lost to
    /// socket scheduling.
    pub(crate) fn drain(&self, master: NodeId, want: usize) -> Vec<NodeId> {
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(500);
        loop {
            {
                let mut rxs = self.rxs.lock();
                if let Some(rx) = rxs.get_mut(&master) {
                    while let Ok(Some(item)) = rx.try_recv() {
                        if item.kind == RxKind::Data && item.payload.len() == 4 {
                            got.push(NodeId(u32::from_le_bytes(
                                item.payload[..4].try_into().unwrap(),
                            )));
                        }
                    }
                }
            }
            if got.len() >= want || std::time::Instant::now() >= deadline {
                return got;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}

/// The session-master role: which node currently holds it, and under which
/// epoch. The epoch is bumped by every election and fences deposed masters
/// — a commit carrying an older epoch is rejected with
/// [`VhError::StaleMaster`] at the 2PC commit point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterState {
    pub node: NodeId,
    pub epoch: u64,
}

/// Runtime state of one table.
pub struct TableRuntime {
    pub def: TableDef,
    pub pids: Vec<PartitionId>,
    pub stores: Vec<Arc<RwLock<PartitionStore>>>,
    pub wals: Vec<Arc<Wal>>,
}

impl TableRuntime {
    pub fn n_partitions(&self) -> usize {
        self.pids.len()
    }
}

/// Per-query control block, threaded from the SQL front door down to the
/// execute loop. The cancel flag is checked between result batches (so a
/// cancel lands within one vector of work) and between failover attempts;
/// the retry counter reports how many `NodeDown` failovers `query_logical`
/// absorbed — the front door surfaces it per session so "the client saw
/// nothing" is a measured claim, not an assumption.
#[derive(Debug, Default)]
pub struct QueryCtl {
    cancel: AtomicBool,
    retries: AtomicU64,
}

impl QueryCtl {
    pub fn new() -> Arc<QueryCtl> {
        Arc::new(QueryCtl::default())
    }

    /// Request cancellation; the execute loop notices between batches.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    pub(crate) fn cancel_flag(&self) -> &AtomicBool {
        &self.cancel
    }

    pub(crate) fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Failover retries absorbed while this query ran.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
}

/// The engine.
pub struct VectorH {
    pub config: ClusterConfig,
    fs: StoreRef,
    policy: Arc<AffinityPolicy>,
    rm: Arc<ResourceManager>,
    agent: Mutex<DbAgent>,
    catalog: RwLock<Catalog>,
    tables: RwLock<HashMap<String, Arc<TableRuntime>>>,
    pub txns: Arc<TransactionManager>,
    pub coordinator: TwoPhaseCoordinator,
    pub shipper: LogShipper,
    /// Per-worker in-RAM state for replicated tables: every worker applies
    /// the shipped log to its own copy (§6), so any node can serve a
    /// replicated scan without crossing the network.
    pub(crate) replicas: RwLock<HashMap<NodeId, Arc<TransactionManager>>>,
    /// Heartbeat failure detector, driven by [`VectorH::health_tick`].
    pub(crate) health: HeartbeatMonitor,
    /// Virtual-clock scheduler that turns query traffic into heartbeat
    /// rounds ([`VectorH::advance_health`]).
    scheduler: HealthScheduler,
    /// Reentrancy guard: recovery triggered by a health round must not
    /// recurse into another round.
    in_health_round: AtomicBool,
    /// Virtual-clock scheduler for background update propagation, advanced
    /// by the same query/DML traffic as the health plane.
    prop_scheduler: HealthScheduler,
    /// Reentrancy guard for background propagation rounds.
    in_propagation: AtomicBool,
    /// Propagation counters (runs, kept/rewritten chunks, recovered
    /// crashes), read through [`VectorH::propagation_stats`].
    propagation: Arc<PropagationStats>,
    /// The current session master and its fencing epoch.
    master: RwLock<MasterState>,
    /// Every (epoch, master) ever in force, in order — election audit trail.
    master_history: Mutex<Vec<(u64, NodeId)>>,
    net: Arc<NetStats>,
    /// Front-door session counters (queries served, retries absorbed,
    /// queue waits, busy rejections), written by `vectorh-server` and read
    /// through [`VectorH::server_stats`].
    server: Arc<ServerStats>,
    /// Transport fabric in [`ClusterMode::Tcp`]; `None` keeps the exchange
    /// layer on pure in-process channels.
    fabric: Option<Arc<dyn Fabric>>,
    /// Epoch cell backing the fabric's handshake fencing; every election
    /// bumps it so restarted peers announcing an old epoch are rejected.
    epoch_cell: Arc<SharedEpoch>,
    /// Heartbeat frames over the fabric (Tcp mode only).
    pub(crate) hb_net: Option<HbNet>,
    workers: RwLock<Vec<NodeId>>,
    responsibility: RwLock<HashMap<PartitionId, NodeId>>,
    next_pid: AtomicU32,
}

/// Consecutive missed heartbeats tolerated before a node is declared dead.
/// Must be ≥ 2 so a single dropped heartbeat message (a budget-1 chaos
/// fault) can only ever delay detection, never cause a false declaration.
pub const HEARTBEAT_DEADLINE_MISSES: u32 = 2;

/// Hash used for storage partitioning — deliberately the same per-value
/// hashing as the exchange operators, so one hash family partitions both
/// tables and streams.
pub fn partition_of(values: &[Value], keys: &[usize], n_parts: usize) -> usize {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &k in keys {
        let hk = match &values[k] {
            Value::I32(x) => hash_u64(*x as u64),
            Value::Date(x) => hash_u64(*x as u64),
            Value::I64(x) => hash_u64(*x as u64),
            Value::Decimal(x, _) => hash_u64(*x as u64),
            Value::F64(x) => hash_u64(x.to_bits()),
            Value::Str(s) => hash_bytes(s.as_bytes()),
            Value::Null => 0,
        };
        h = hash_combine(h, hk);
    }
    (h % n_parts as u64) as usize
}

impl VectorH {
    /// Start a cluster: simulated HDFS + YARN, dbAgent resource
    /// negotiation, worker-set selection.
    pub fn start(config: ClusterConfig) -> Result<VectorH> {
        let policy = Arc::new(AffinityPolicy::new(config.seed));
        let store_config = SimHdfsConfig {
            block_size: config.hdfs_block_size,
            default_replication: config.replication.min(config.nodes),
        };
        let fs: StoreRef = match &config.storage_backend {
            StorageBackend::Sim => {
                Arc::new(SimHdfs::new(config.nodes, store_config, policy.clone()))
            }
            StorageBackend::File(dir) => {
                let root = if dir.is_empty() {
                    String::new()
                } else {
                    // A unique per-cluster subdirectory: concurrently
                    // started clusters (parallel tests) must never share a
                    // namespace.
                    static CLUSTER_SEQ: AtomicU64 = AtomicU64::new(0);
                    let seq = CLUSTER_SEQ.fetch_add(1, Ordering::Relaxed);
                    format!("{dir}/vh-cluster-{}-{seq}", std::process::id())
                };
                Arc::new(FileStore::new(
                    config.nodes,
                    store_config,
                    policy.clone(),
                    &root,
                )?)
            }
        };
        let workers: Vec<NodeId> = fs.alive_nodes();
        let rm = Arc::new(ResourceManager::new(
            workers.clone(),
            RmConfig {
                cores_per_node: config.cores_per_node,
                mem_per_node: config.mem_per_node,
            },
        ));
        // Negotiate the full node as target, one core slices, min 1 slice.
        let agent = DbAgent::start(
            &rm,
            workers.clone(),
            5,
            ResourceFootprint {
                cores: 1,
                mem: config.mem_per_node / config.cores_per_node as u64,
            },
            config.cores_per_node,
            1,
        )?;
        let global_wal = Wal::new(
            fs.clone(),
            "/vectorh/wal/global.wal",
            workers.first().copied(),
        );
        let replicas: HashMap<NodeId, Arc<TransactionManager>> = workers
            .iter()
            .map(|&w| (w, Arc::new(TransactionManager::new(TxnConfig::default()))))
            .collect();
        let first = workers.first().copied().unwrap_or(NodeId(0));
        let scheduler = HealthScheduler::new(config.health_every);
        let prop_scheduler = HealthScheduler::new(config.propagate_every);
        let shipper = LogShipper::with_retention(config.ship_retention.clone());
        let epoch_cell = Arc::new(SharedEpoch::new(1));
        let (fabric, hb_net): (Option<Arc<dyn Fabric>>, Option<HbNet>) = match config.cluster_mode {
            ClusterMode::InProc => (None, None),
            ClusterMode::Tcp => {
                let f: Arc<dyn Fabric> =
                    Arc::new(TcpFabric::loopback(&workers, epoch_cell.clone(), None)?);
                let hb = HbNet::new(f.clone(), &workers)?;
                (Some(f), Some(hb))
            }
        };
        // TCP beats can legitimately land a tick late; stretch the deadline
        // so transport latency (and injected delay faults) only ever delays
        // detection.
        let grace = match config.cluster_mode {
            ClusterMode::InProc => config.heartbeat_grace,
            ClusterMode::Tcp => config.heartbeat_grace.max(2),
        };
        Ok(VectorH {
            config,
            fs,
            policy,
            rm,
            agent: Mutex::new(agent),
            catalog: RwLock::new(Catalog::new()),
            tables: RwLock::new(HashMap::new()),
            txns: Arc::new(TransactionManager::new(TxnConfig::default())),
            coordinator: TwoPhaseCoordinator::new(global_wal),
            shipper,
            replicas: RwLock::new(replicas),
            health: HeartbeatMonitor::with_grace(HEARTBEAT_DEADLINE_MISSES, grace),
            scheduler,
            in_health_round: AtomicBool::new(false),
            prop_scheduler,
            in_propagation: AtomicBool::new(false),
            propagation: Arc::new(PropagationStats::default()),
            master: RwLock::new(MasterState {
                node: first,
                epoch: 1,
            }),
            master_history: Mutex::new(vec![(1, first)]),
            net: Arc::new(NetStats::default()),
            server: Arc::new(ServerStats::default()),
            fabric,
            epoch_cell,
            hb_net,
            workers: RwLock::new(workers),
            responsibility: RwLock::new(HashMap::new()),
            next_pid: AtomicU32::new(0),
        })
    }

    pub fn fs(&self) -> &StoreRef {
        &self.fs
    }

    /// Which storage backend this cluster runs on ("sim" or "file").
    pub fn storage_backend(&self) -> &'static str {
        self.fs.backend()
    }

    /// Install (or clear) the fault-injection hook. The filesystem holds it
    /// Arc-shared, so WALs, 2PC (via the global WAL's fs) and exchanges
    /// (via [`Self::dxchg_config`]) all observe the same hook.
    pub fn install_fault_hook(&self, hook: Option<SharedFaultHook>) {
        self.fs.set_fault_hook(hook);
    }

    /// Exchange configuration for query execution, carrying the currently
    /// installed fault hook.
    pub fn dxchg_config(&self) -> DxchgConfig {
        let mut c = self.config.dxchg.clone();
        c.fault = self.fs.fault_hook();
        if let Some(fabric) = &self.fabric {
            // Cross-node exchange traffic leaves the process as framed
            // transport messages; the fabric path requires per-node fanout
            // (the route-byte design), so Tcp mode forces thread-to-node.
            c.fabric = Some(fabric.clone());
            c.mode = FanoutMode::ThreadToNode;
        }
        c
    }

    /// Front-door per-session counters (the `vectorh-server` crate writes
    /// them; load generators and chaos assertions read real numbers here
    /// instead of scraping output).
    pub fn server_stats(&self) -> &Arc<ServerStats> {
        &self.server
    }

    pub fn net_stats(&self) -> &Arc<NetStats> {
        &self.net
    }

    /// Background update-propagation counters: committed runs, tail
    /// appends, chunks kept byte-identical vs rewritten, crashes repaired.
    pub fn propagation_stats(&self) -> &Arc<PropagationStats> {
        &self.propagation
    }

    /// Per-exchange-channel traffic counters (messages, bytes, credit
    /// stalls) — the probe API backing in-proc vs TCP comparisons.
    pub fn net_channels(&self) -> Vec<(String, ChannelStats)> {
        self.net.channels()
    }

    /// The transport fabric in effect: `"inproc"` or `"tcp"`.
    pub fn transport_mode(&self) -> &'static str {
        self.fabric.as_ref().map_or("inproc", |f| f.mode())
    }

    pub fn rm(&self) -> &Arc<ResourceManager> {
        &self.rm
    }

    pub fn workers(&self) -> Vec<NodeId> {
        self.workers.read().clone()
    }

    /// The session master: any worker can take the role (§6). The holder is
    /// elected — when the incumbent dies, the lowest live NodeId takes over
    /// under a bumped epoch ([`Self::master_epoch`]).
    pub fn session_master(&self) -> NodeId {
        self.master.read().node
    }

    /// The current master epoch. Every 2PC commit carries the epoch its
    /// sender observed; the commit point rejects older epochs.
    pub fn master_epoch(&self) -> u64 {
        self.master.read().epoch
    }

    /// Current master + epoch as one consistent snapshot.
    pub fn master_state(&self) -> MasterState {
        *self.master.read()
    }

    /// Every (epoch, master) ever in force, oldest first. Epoch 1 is the
    /// initial master; each election appends exactly one entry.
    pub fn master_history(&self) -> Vec<(u64, NodeId)> {
        self.master_history.lock().clone()
    }

    /// Per-query parallelism budget from the dbAgent's current footprint.
    pub fn streams_per_node(&self) -> usize {
        let cores = {
            let agent = self.agent.lock();
            let fp = agent.footprint();
            fp.values().map(|f| f.cores).min().unwrap_or(1) as usize
        };
        self.config.streams_per_node.min(cores.max(1))
    }

    /// Poll YARN (preemptions shrink the budget; renegotiation grows it).
    pub fn poll_yarn(&self) -> bool {
        let mut agent = self.agent.lock();
        let changed = agent.poll(&self.rm);
        let _ = agent.renegotiate(&self.rm);
        changed
    }

    /// Voluntarily shrink to `slices` cores per node.
    pub fn shrink_footprint(&self, slices: u32) -> Result<()> {
        self.agent.lock().shrink_to(&self.rm, slices)
    }

    pub fn total_cores_budget(&self) -> u32 {
        self.agent.lock().total_cores()
    }

    // --- DDL ----------------------------------------------------------------

    /// Create a table from a builder.
    pub fn create_table(&self, builder: TableBuilder) -> Result<()> {
        self.create_table_def(builder.build()?)
    }

    /// Create a table: allocate partitions, register placement affinity
    /// (round-robin initial mapping), assign responsibility, create WALs.
    pub fn create_table_def(&self, def: TableDef) -> Result<()> {
        let workers = self.workers();
        if workers.is_empty() {
            return Err(VhError::Yarn("no workers".into()));
        }
        let n_parts = def.partitioning.as_ref().map(|(_, n)| *n).unwrap_or(1);
        let replication = if def.partitioning.is_none() {
            workers.len() // replicated tables: a copy everywhere
        } else {
            self.config.replication.min(workers.len())
        };
        let pids: Vec<PartitionId> = (0..n_parts)
            .map(|_| PartitionId(self.next_pid.fetch_add(1, Ordering::Relaxed)))
            .collect();
        let mapping = initial_affinity(&pids, &workers, replication);
        let mut resp = self.responsibility.write();
        let mut stores = Vec::with_capacity(n_parts);
        let mut wals = Vec::with_capacity(n_parts);
        for (i, pid) in pids.iter().enumerate() {
            let dir = format!("/vectorh/db/{}/p{:04}/", def.name, i);
            let nodes = mapping.get(pid).cloned().unwrap_or_default();
            self.policy.set_affinity(dir.clone(), nodes.clone());
            let home = nodes.first().copied();
            resp.insert(*pid, home.unwrap_or(self.session_master()));
            let mut store = PartitionStore::new(
                self.fs.clone(),
                dir.clone(),
                def.schema.clone(),
                StorageConfig {
                    rows_per_chunk: self.config.rows_per_chunk,
                },
            );
            store.set_home(home);
            stores.push(Arc::new(RwLock::new(store)));
            let wal = Wal::new(self.fs.clone(), format!("{dir}wal"), home);
            wals.push(Arc::new(wal));
            self.txns.register_partition(*pid, 0);
            if def.partitioning.is_none() {
                // Replicated tables: every worker keeps its own replica
                // state, fed by log shipping at commit time.
                for mgr in self.replicas.read().values() {
                    mgr.register_partition(*pid, 0);
                }
            }
        }
        drop(resp);
        self.coordinator
            .global_wal()
            .append(&[vectorh_txn::LogRecord::Ddl {
                statement: format!("CREATE TABLE {}", def.name),
            }])?;
        self.catalog.write().add(def.clone())?;
        self.tables.write().insert(
            def.name.clone(),
            Arc::new(TableRuntime {
                def,
                pids,
                stores,
                wals,
            }),
        );
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<Arc<TableRuntime>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| VhError::Catalog(format!("unknown table '{name}'")))
    }

    /// Visible row count (committed state, PDTs included).
    pub fn table_rows(&self, name: &str) -> Result<u64> {
        let rt = self.table(name)?;
        let mut n = 0;
        for pid in &rt.pids {
            n += self.txns.visible_rows(*pid)?;
        }
        Ok(n)
    }

    // --- bulk loading ---------------------------------------------------------

    /// Bulk-load rows (the vwload path): rows are hash-partitioned, each
    /// partition sorted by the clustered order and appended directly to
    /// disk from its responsible node ("large inserts ... are appended
    /// directly on disk").
    pub fn insert_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<()> {
        let rt = self.table(table)?;
        let n_parts = rt.n_partitions();
        let mut buckets: Vec<Vec<Vec<Value>>> = vec![Vec::new(); n_parts];
        match &rt.def.partitioning {
            Some((keys, _)) => {
                for row in rows {
                    let p = partition_of(&row, keys, n_parts);
                    buckets[p].push(row);
                }
            }
            None => buckets[0] = rows,
        }
        for (i, mut bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            if let Some(order) = &rt.def.sort_order {
                bucket.sort_by(|a, b| {
                    for &k in order {
                        match a[k].partial_cmp(&b[k]) {
                            Some(std::cmp::Ordering::Equal) | None => continue,
                            Some(o) => return o,
                        }
                    }
                    std::cmp::Ordering::Equal
                });
            }
            let mut cols: Vec<ColumnData> = rt
                .def
                .schema
                .fields()
                .iter()
                .map(|f| ColumnData::with_capacity(f.dtype, bucket.len()))
                .collect();
            for row in &bucket {
                if row.len() != cols.len() {
                    return Err(VhError::InvalidArg(format!(
                        "row width {} != schema width {}",
                        row.len(),
                        cols.len()
                    )));
                }
                for (c, v) in row.iter().enumerate() {
                    cols[c].push_value(v)?;
                }
            }
            rt.stores[i].write().append_rows(&cols)?;
            self.txns.bulk_append(rt.pids[i], bucket.len() as u64)?;
            if rt.def.partitioning.is_none() {
                for mgr in self.replicas.read().values() {
                    mgr.bulk_append(rt.pids[i], bucket.len() as u64)?;
                }
            }
            rt.wals[i].append(&[vectorh_txn::LogRecord::Append {
                txn: 0,
                rows: bucket.len() as u64,
            }])?;
        }
        Ok(())
    }

    // --- queries ---------------------------------------------------------------

    fn rewriter_options(&self) -> RewriterOptions {
        RewriterOptions {
            enable_local_join: self.config.enable_local_join,
            enable_replicated_build: self.config.enable_replicated_build,
            enable_partial_aggr: self.config.enable_partial_aggr,
            nodes: self.workers().len().max(1),
            ..RewriterOptions::default()
        }
    }

    /// Parse, optimize and run a SQL query, returning result rows.
    pub fn query(&self, sql: &str) -> Result<Vec<Vec<Value>>> {
        let logical = parse_query(sql, &EngineCatalog(self))?;
        self.query_logical(&logical)
    }

    /// Optimize and run a logical plan, with query-level failover: when a
    /// node dies mid-query ([`VhError::NodeDown`]), the worker set is
    /// reconciled with the filesystem's alive set, affinity/responsibility
    /// are remapped, and the query is re-planned and re-run on the
    /// survivors. Each failover shrinks the cluster, so the retry count is
    /// bounded by the original node count.
    pub fn query_logical(&self, logical: &LogicalPlan) -> Result<Vec<Vec<Value>>> {
        self.query_logical_ctl(logical, None)
    }

    /// [`Self::query_logical`] with a per-query control block: the cancel
    /// flag is honored between failover attempts and between result
    /// batches, and every absorbed `NodeDown` retry is counted on `ctl` so
    /// the front door can report session-transparent failovers.
    pub fn query_logical_ctl(
        &self,
        logical: &LogicalPlan,
        ctl: Option<&QueryCtl>,
    ) -> Result<Vec<Vec<Value>>> {
        // Pin the retry budget to the worker count *at entry*: each
        // failover shrinks the set, so re-reading the survivor count after
        // a kill under-budgets a cascade (N nodes dying one by one needs up
        // to N retries, but the shrunken set only grants the remainder).
        // The budget still shrinks-to-fit in the common case because a
        // retry only happens after NodeDown, and each death consumes one.
        let retry_budget = self.workers().len();
        let mut failovers = 0usize;
        loop {
            if let Some(c) = ctl {
                if c.is_cancelled() {
                    return Err(VhError::Cancelled("query cancelled".into()));
                }
            }
            // Background health plane: every query advances the virtual
            // clock, so detection/election/takeover fire from inside
            // ordinary traffic — a dead node is usually recovered *before*
            // planning instead of tripping the retry path below.
            self.advance_health(1)?;
            let phys = self.optimize(logical)?;
            match self.run_physical(&phys, ctl.map(|c| c.cancel_flag())) {
                Ok((rows, _)) => return Ok(rows),
                Err(e @ VhError::Cancelled(_)) => return Err(e),
                Err(e) => {
                    failovers += 1;
                    // A mid-query death surfaces as NodeDown from the pinned
                    // read that hit the dead node, but sibling pipelines may
                    // collapse with secondary transport errors that win the
                    // race to the collector. "Did the worker set shrink?" is
                    // therefore the authoritative failover signal.
                    let node_died = self.reconcile_workers().unwrap_or(false);
                    let retryable = node_died || matches!(e, VhError::NodeDown(_));
                    if !retryable || failovers > retry_budget {
                        return Err(e);
                    }
                    if let Some(c) = ctl {
                        c.record_retry();
                    }
                }
            }
        }
    }

    /// Run a query and return its appendix-style execution profile too.
    pub fn query_profiled(&self, sql: &str) -> Result<(Vec<Vec<Value>>, String)> {
        let logical = parse_query(sql, &EngineCatalog(self))?;
        let phys = self.optimize(&logical)?;
        self.run_physical(&phys, None)
    }

    /// Parse SQL against the live catalog without running it — the plan
    /// half of a server-side prepared statement.
    pub fn parse(&self, sql: &str) -> Result<LogicalPlan> {
        parse_query(sql, &EngineCatalog(self))
    }

    /// The distributed physical plan for a query (EXPLAIN).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let logical = parse_query(sql, &EngineCatalog(self))?;
        Ok(self.optimize(&logical)?.explain())
    }

    pub fn optimize(&self, logical: &LogicalPlan) -> Result<PhysPlan> {
        let catalog = EngineCatalog(self);
        let rewriter = ParallelRewriter::new(&catalog, self.rewriter_options());
        rewriter.rewrite(logical)
    }

    pub(crate) fn run_physical(
        &self,
        phys: &PhysPlan,
        cancel: Option<&AtomicBool>,
    ) -> Result<(Vec<Vec<Value>>, String)> {
        crate::execute::execute(self, phys, cancel)
    }

    /// Run a pre-optimized physical plan, returning rows and the execution
    /// profile (benchmark harnesses and EXPLAIN ANALYZE-style tooling).
    pub fn run_physical_public(&self, phys: &PhysPlan) -> Result<(Vec<Vec<Value>>, String)> {
        self.run_physical(phys, None)
    }

    // --- failure handling -------------------------------------------------------

    /// Kill a datanode: HDFS re-replicates (steered by the affinity
    /// policy), the worker set shrinks, the affinity map and responsibility
    /// assignment are recomputed with the min-cost-flow solvers, and
    /// partition homes move — after which all scans are local again.
    pub fn kill_node(&self, node: NodeId) -> Result<()> {
        self.fs.kill_node(node)?;
        // YARN learns about the dead NodeManager; its containers surface to
        // the dbAgent as lost on the next poll.
        self.rm.node_lost(node);
        self.reconcile_workers()?;
        Ok(())
    }

    /// Sync the worker set with the filesystem's alive set and remap
    /// affinity + responsibility. This is the recovery half of
    /// [`Self::kill_node`], callable on its own when a node death is
    /// detected mid-query (the chaos harness kills nodes underneath running
    /// queries). Returns whether the worker set shrank.
    pub fn reconcile_workers(&self) -> Result<bool> {
        let alive = self.fs.alive_nodes();
        let mut workers = self.workers.write();
        let before = workers.len();
        workers.retain(|w| alive.contains(w));
        if workers.is_empty() {
            return Err(VhError::Yarn("no workers left".into()));
        }
        let changed = workers.len() != before;
        let workers_now = workers.clone();
        drop(workers);
        if !changed {
            return Ok(false);
        }

        // Snapshot the partitions whose responsible node died *before* the
        // remap overwrites the assignment: those are the ones the new owners
        // must recover (WAL repair + in-doubt resolution + replay).
        let mut orphaned: Vec<PartitionId> = {
            let r = self.responsibility.read();
            r.iter()
                .filter(|(_, n)| !workers_now.contains(n))
                .map(|(pid, _)| *pid)
                .collect()
        };
        orphaned.sort_unstable();
        // A dead node's in-RAM replica state died with it.
        self.replicas.write().retain(|n, _| workers_now.contains(n));
        // Session-master election (§6): if the master is among the dead, the
        // lowest live NodeId takes the role under a bumped epoch, the global
        // WAL re-homes to it, and — after the takeover below re-owns the
        // orphaned partitions — the new master finishes every transaction
        // the old one left in doubt.
        let deposed = {
            let m = self.master.read();
            !workers_now.contains(&m.node)
        };
        if deposed {
            self.elect_master(&workers_now)?;
        }
        self.remap_placement(&workers_now)?;
        self.take_over_partitions(&orphaned)?;
        if deposed {
            self.resolve_in_doubt()?;
        }
        Ok(true)
    }

    /// Elect a new session master from `workers_now` (sorted, so the first
    /// entry is the lowest live NodeId — every survivor computes the same
    /// result without a vote). Bumps the epoch, installs it at the 2PC
    /// coordinator so stale commits fence, re-homes the global WAL onto the
    /// winner (repairing any torn decision frame the crash left), and logs
    /// the election durably as a `MasterEpoch` record.
    pub(crate) fn elect_master(&self, workers_now: &[NodeId]) -> Result<MasterState> {
        let new_node = *workers_now
            .first()
            .ok_or_else(|| VhError::Yarn("no workers to elect from".into()))?;
        let state = {
            let mut m = self.master.write();
            m.node = new_node;
            m.epoch += 1;
            *m
        };
        self.coordinator.install_epoch(state.epoch);
        // Fence the transport too: handshakes announcing the old epoch are
        // rejected from this point on.
        self.epoch_cell.set(state.epoch);
        let gw = self.coordinator.global_wal();
        gw.set_home(Some(new_node));
        gw.repair()?;
        gw.append(&[vectorh_txn::LogRecord::MasterEpoch {
            epoch: state.epoch,
            node: new_node.0 as u64,
        }])?;
        self.master_history.lock().push((state.epoch, new_node));
        Ok(state)
    }

    /// Recompute affinity + responsibility for the given worker set and move
    /// partition homes (stores *and* WALs) to the new responsible nodes.
    /// Shared by failover ([`Self::reconcile_workers`]) and rejoin
    /// ([`Self::rejoin_node`]) — in both directions the min-cost-flow remap
    /// plus `conform_to_policy` converges locality (the paper's Figure 2,
    /// forward and in reverse).
    pub(crate) fn remap_placement(&self, workers_now: &[NodeId]) -> Result<()> {
        // Recompute the affinity map from actual block locality.
        //
        // Placement is solved per *co-location class*: tables with the same
        // partition count keep their i-th partitions together (that is what
        // makes co-located joins survive failures — the paper's Figure 2
        // moves R04 and S04 as a unit). A class is represented by one
        // synthetic partition in the flow network; the result applies to
        // every member partition.
        let tables = self.tables.read();
        // class (replication, index) -> members (table, partition, col, idx)
        type ClassMembers = Vec<(String, PartitionId, String, usize)>;
        let mut classes: HashMap<(usize, usize), ClassMembers> = HashMap::new();
        for rt in tables.values() {
            if rt.def.partitioning.is_none() {
                // Replicated tables stay replicated on every worker.
                let dir = format!("/vectorh/db/{}/p{:04}/", rt.def.name, 0);
                self.policy.set_affinity(dir, workers_now.to_vec());
                // If the writer (responsible node) is gone, the session
                // master takes over the single partition.
                let pid = rt.pids[0];
                let holder = { self.responsibility.read().get(&pid).copied() };
                if holder.map(|h| !workers_now.contains(&h)).unwrap_or(true) {
                    if let Some(&h) = workers_now.first() {
                        self.responsibility.write().insert(pid, h);
                        rt.stores[0].write().set_home(Some(h));
                        rt.wals[0].set_home(Some(h));
                    }
                }
                continue;
            }
            let n = rt.pids.len();
            for (i, pid) in rt.pids.iter().enumerate() {
                let dir = format!("/vectorh/db/{}/p{:04}/", rt.def.name, i);
                classes
                    .entry((n, i))
                    .or_default()
                    .push((rt.def.name.clone(), *pid, dir, i));
            }
        }
        if !classes.is_empty() {
            let mut keys: Vec<(usize, usize)> = classes.keys().copied().collect();
            keys.sort_unstable();
            // Locality of a class = every member partition fully local.
            let local: Vec<Vec<bool>> = keys
                .iter()
                .map(|k| {
                    workers_now
                        .iter()
                        .map(|&w| {
                            classes[k].iter().all(|(_, _, dir, _)| {
                                let files = self.fs.list(dir);
                                !files.is_empty()
                                    && files
                                        .iter()
                                        .all(|f| self.fs.fully_local(&f.path, w).unwrap_or(false))
                            })
                        })
                        .collect()
                })
                .collect();
            let class_ids: Vec<PartitionId> =
                (0..keys.len()).map(|i| PartitionId(i as u32)).collect();
            let input = PlacementInput {
                partitions: class_ids.clone(),
                workers: workers_now.to_vec(),
                local,
            };
            let repl = self.fs.config().default_replication.min(workers_now.len());
            let mapping = affinity_mapping(&input, repl)?;
            for (ci, key) in keys.iter().enumerate() {
                if let Some(nodes) = mapping.get(&class_ids[ci]) {
                    for (_, _, dir, _) in &classes[key] {
                        self.policy.set_affinity(dir.clone(), nodes.clone());
                    }
                }
            }
            // Background re-replication toward the new mapping.
            self.fs.conform_to_policy();
            // Responsibility per class: prefer nodes that now hold the data.
            let local2: Vec<Vec<bool>> = class_ids
                .iter()
                .map(|cid| {
                    workers_now
                        .iter()
                        .map(|w| mapping.get(cid).map(|v| v.contains(w)).unwrap_or(false))
                        .collect()
                })
                .collect();
            let input2 = PlacementInput {
                partitions: class_ids.clone(),
                workers: workers_now.to_vec(),
                local: local2,
            };
            let resp = responsibility_assignment(&input2)?;
            let mut r = self.responsibility.write();
            for (ci, key) in keys.iter().enumerate() {
                if let Some(node) = resp.get(&class_ids[ci]) {
                    for (_, pid, _, _) in &classes[key] {
                        r.insert(*pid, *node);
                    }
                }
            }
            drop(r);
            // Move partition homes (writers) to the responsible nodes —
            // both the store and its WAL, so the next commit appends from
            // the node that now owns the partition.
            for rt in tables.values() {
                if rt.def.partitioning.is_none() {
                    continue; // handled above
                }
                for (i, pid) in rt.pids.iter().enumerate() {
                    let node = self.responsibility.read().get(pid).copied();
                    if let Some(node) = node {
                        rt.stores[i].write().set_home(Some(node));
                        rt.wals[i].set_home(Some(node));
                    }
                }
            }
        }
        Ok(())
    }

    /// Responsible node of a partition.
    pub fn responsible(&self, pid: PartitionId) -> NodeId {
        self.responsibility
            .read()
            .get(&pid)
            .copied()
            .unwrap_or_else(|| self.session_master())
    }

    /// Operator override: pin a partition's responsibility to `node`
    /// without consulting the placement solver (fault drills). The pin
    /// holds until the next remap — a node death or rejoin recomputes the
    /// assignment and overwrites it.
    pub fn pin_responsible(&self, pid: PartitionId, node: NodeId) {
        self.responsibility.write().insert(pid, node);
    }

    pub(crate) fn tables_snapshot(&self) -> HashMap<String, Arc<TableRuntime>> {
        self.tables.read().clone()
    }

    /// Add a node back to the worker set (rejoin), returning the new set.
    /// The heartbeat monitor's dead latch and missed-deadline counters are
    /// cleared *inside* the worker-set lock: a background health round must
    /// never observe the node re-admitted but still latched dead (it would
    /// instantly re-fence a healthy node).
    pub(crate) fn admit_worker(&self, node: NodeId) -> Vec<NodeId> {
        let mut workers = self.workers.write();
        if !workers.contains(&node) {
            workers.push(node);
            workers.sort_unstable();
        }
        self.health.clear(node);
        workers.clone()
    }

    pub(crate) fn renegotiate_agent(&self) {
        let _ = self.agent.lock().renegotiate(&self.rm);
    }

    pub(crate) fn install_replica(&self, node: NodeId, mgr: Arc<TransactionManager>) {
        self.replicas.write().insert(node, mgr);
    }

    /// Drain the shipped log of a replicated partition into every live
    /// worker's replica state — the receive half of log shipping, applying
    /// records through the ordinary replay path. A receiver whose watermark
    /// fell behind the retention horizon takes a full-image bootstrap
    /// instead.
    pub(crate) fn apply_shipped(
        &self,
        rt: &TableRuntime,
        pid: PartitionId,
        workers: &[NodeId],
    ) -> Result<()> {
        let replicas = self.replicas.read();
        for &w in workers {
            if let Some(mgr) = replicas.get(&w) {
                match self.shipper.drain(pid, w) {
                    Drained::Records(batch) => {
                        if !batch.is_empty() {
                            mgr.replay(pid, &batch)?;
                        }
                    }
                    Drained::BehindHorizon => self.bootstrap_replica(rt, pid, w, mgr)?,
                }
            }
        }
        Ok(())
    }

    /// Full-image bootstrap of one receiver's replica state: rebuild from
    /// the stable on-disk image plus the committed tail of the partition
    /// WAL (which reaches back at least as far as the ship log did before
    /// truncation — both are cut at propagation), then fast-forward the
    /// receiver's watermark to the head of the retained log.
    pub(crate) fn bootstrap_replica(
        &self,
        rt: &TableRuntime,
        pid: PartitionId,
        node: NodeId,
        mgr: &TransactionManager,
    ) -> Result<()> {
        let i = rt
            .pids
            .iter()
            .position(|p| *p == pid)
            .ok_or_else(|| VhError::Internal(format!("partition {pid} not in table")))?;
        let stable = rt.stores[i].read().row_count();
        crate::recovery::recover_partition(&self.coordinator, mgr, pid, stable, &rt.wals[i])?;
        self.shipper.fast_forward(pid, node);
        Ok(())
    }

    /// Advance the health plane's virtual clock by `units` and run every
    /// heartbeat round that became due. Called with 1 from the query and
    /// DML paths (background operation) and with arbitrary amounts by
    /// tests. Reentrancy-guarded: recovery work inside a round may itself
    /// run queries, which must not recurse into another round. Returns the
    /// nodes newly declared dead.
    pub fn advance_health(&self, units: u64) -> Result<Vec<NodeId>> {
        let rounds = self.scheduler.advance(units);
        let prop_rounds = self.prop_scheduler.advance(units);
        let mut dead = Vec::new();
        let mut result = Ok(());
        if rounds > 0 && !self.in_health_round.swap(true, Ordering::SeqCst) {
            for _ in 0..rounds {
                match self.health_tick() {
                    Ok(newly) => dead.extend(newly),
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            self.in_health_round.store(false, Ordering::SeqCst);
        }
        // The propagation plane runs on its own period but competes for the
        // same virtual clock; it is guarded separately so a health round's
        // recovery queries cannot recurse into propagation and vice versa.
        if prop_rounds > 0 && result.is_ok() && !self.in_propagation.swap(true, Ordering::SeqCst) {
            let r = self.propagation_tick();
            self.in_propagation.store(false, Ordering::SeqCst);
            if let Err(e) = r {
                result = Err(e);
            }
        }
        result.map(|_| dead)
    }

    /// The health scheduler's virtual clock (observability + tests).
    pub fn health_clock(&self) -> u64 {
        self.scheduler.now()
    }

    /// Visible rows of a replicated partition as seen by `node`'s replica
    /// state (catch-up verification in tests and the chaos harness).
    pub fn replica_rows(&self, node: NodeId, pid: PartitionId) -> Result<u64> {
        let replicas = self.replicas.read();
        let mgr = replicas
            .get(&node)
            .ok_or_else(|| VhError::Internal(format!("no replica state on {node}")))?;
        mgr.visible_rows(pid)
    }

    // --- maintenance --------------------------------------------------------------

    /// Run update propagation for every partition of a table that needs it
    /// (or all of them when `force`).
    pub fn propagate_table(&self, name: &str, force: bool) -> Result<usize> {
        let rt = self.table(name)?;
        let mut done = 0;
        for (i, pid) in rt.pids.iter().enumerate() {
            if force || self.txns.needs_propagation(*pid) {
                let report = self.propagate_partition_runtime(&rt, i)?;
                if report.mode != vectorh_txn::propagate::PropagationMode::Noop {
                    done += 1;
                }
            }
        }
        Ok(done)
    }

    /// Propagate one partition of a table and do the post-commit
    /// bookkeeping (ship-log checkpoint + replica re-base for replicated
    /// tables, counters). Shared by [`Self::propagate_table`] and the
    /// background [`Self::propagation_tick`].
    fn propagate_partition_runtime(
        &self,
        rt: &TableRuntime,
        i: usize,
    ) -> Result<vectorh_txn::propagate::PropagationReport> {
        let pid = rt.pids[i];
        let mut store = rt.stores[i].write();
        let report =
            vectorh_txn::propagate::propagate_partition(&self.txns, pid, &mut store, &rt.wals[i])?;
        if report.mode != vectorh_txn::propagate::PropagationMode::Noop {
            if rt.def.partitioning.is_none() {
                // Propagation folded the shipped updates into the stable
                // image: the retained ship log is obsolete (mirroring the
                // WAL `Checkpoint`) and every replica re-bases on the new
                // image.
                let stable = store.row_count();
                self.shipper.checkpoint(pid);
                for mgr in self.replicas.read().values() {
                    mgr.register_partition(pid, stable);
                }
            }
            self.propagation.record_run(
                report.mode == vectorh_txn::propagate::PropagationMode::TailAppend,
                report.chunks_kept,
                report.chunks_rewritten,
            );
        }
        Ok(report)
    }

    /// One background propagation round: visit tables in name order and
    /// flush partitions whose PDTs cross the propagation thresholds, until
    /// the per-tick chunk budget is spent. A partition busy with live
    /// transactions (`TxnAbort`) is simply skipped until a later round; a
    /// propagation crash (injected fault or I/O error) is repaired in place
    /// with [`Self::recover_after_propagation_crash`] so background
    /// propagation never poisons the query path that drove the clock.
    fn propagation_tick(&self) -> Result<()> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        let mut budget = self.config.propagate_chunks_per_tick.max(1);
        for name in names {
            let Ok(rt) = self.table(&name) else { continue };
            for i in 0..rt.pids.len() {
                if budget == 0 {
                    return Ok(());
                }
                if !self.txns.needs_propagation(rt.pids[i]) {
                    continue;
                }
                match self.propagate_partition_runtime(&rt, i) {
                    Ok(report) => {
                        let spent = (report.chunks_rewritten + report.tail_chunks).max(1) as usize;
                        budget = budget.saturating_sub(spent);
                    }
                    Err(VhError::TxnAbort(_)) => continue,
                    Err(_) => {
                        self.propagation.record_crash_recovered();
                        self.recover_after_propagation_crash(&rt, i)?;
                        budget = budget.saturating_sub(1);
                    }
                }
            }
        }
        Ok(())
    }

    /// Repair a partition after a propagation crash: WAL repair + replay of
    /// the committed updates on top of whichever chunk images survived. If
    /// nothing needed replaying, the crash happened after the commit point
    /// — the new image is installed and the PDTs are already empty, so a
    /// replicated table additionally re-bases its ship log and replicas
    /// (the step the crash interrupted).
    fn recover_after_propagation_crash(&self, rt: &TableRuntime, i: usize) -> Result<()> {
        let pid = rt.pids[i];
        let stable = rt.stores[i].read().row_count();
        let report = crate::recovery::recover_partition(
            &self.coordinator,
            &self.txns,
            pid,
            stable,
            &rt.wals[i],
        )?;
        if report.replayed_records == 0 && rt.def.partitioning.is_none() {
            self.shipper.checkpoint(pid);
            for mgr in self.replicas.read().values() {
                mgr.register_partition(pid, stable);
            }
        }
        Ok(())
    }

    /// Total stored bytes of a table (compressed, all replicas counted once).
    pub fn table_bytes(&self, name: &str) -> Result<u64> {
        let rt = self.table(name)?;
        Ok(rt.stores.iter().map(|s| s.read().total_bytes()).sum())
    }
}

/// Catalog adapter for the planner.
pub struct EngineCatalog<'a>(pub &'a VectorH);

impl<'a> CatalogInfo for EngineCatalog<'a> {
    fn table(&self, name: &str) -> Result<TableMeta> {
        let catalog = self.0.catalog.read();
        let def = catalog.get(name)?;
        let rows = self.0.table_rows(name).unwrap_or(0);
        Ok(TableMeta {
            name: def.name.clone(),
            schema: def.schema.clone(),
            rows,
            partitioning: def.partitioning.clone(),
            sort_order: def.sort_order.clone(),
        })
    }
}
