//! # VectorH-rs
//!
//! A from-scratch Rust reproduction of **Actian VectorH** (Costea et al.,
//! SIGMOD 2016): an MPP SQL-on-Hadoop analytical engine with vectorized
//! execution, lightweight compression, MinMax skipping, instrumented HDFS
//! block placement, YARN elasticity, and trickle updates through Positional
//! Delta Trees — all running against an in-process simulated Hadoop cluster.
//!
//! ```
//! use vectorh::{VectorH, ClusterConfig, TableBuilder};
//! use vectorh_common::{DataType, Value};
//!
//! let vh = VectorH::start(ClusterConfig { nodes: 3, ..Default::default() }).unwrap();
//! vh.create_table(
//!     TableBuilder::new("items")
//!         .column("id", DataType::I64)
//!         .column("price", DataType::Decimal { scale: 2 })
//!         .partition_by(&["id"], 6)
//!         .clustered_by(&["id"]),
//! ).unwrap();
//! vh.insert_rows("items", (0..1000).map(|i| vec![
//!     Value::I64(i), Value::Decimal(i * 10, 2),
//! ]).collect()).unwrap();
//! let rows = vh.query("SELECT count(*), sum(price) FROM items WHERE id < 500").unwrap();
//! assert_eq!(rows[0][0], Value::I64(500));
//! ```
//!
//! The crate layers the substrates built in the sibling crates:
//! [`vectorh_simhdfs`] (storage + placement), [`vectorh_storage`] (chunked
//! columnar format + MinMax), [`vectorh_pdt`] + [`vectorh_txn`] (updates),
//! [`vectorh_exec`] + [`vectorh_net`] (vectorized distributed execution),
//! [`vectorh_yarn`] (elasticity) and [`vectorh_planner`] (SQL + the
//! Parallel Rewriter).

pub mod catalog;
pub mod dml;
pub mod engine;
pub mod execute;
pub mod health;
pub mod recovery;
pub mod scheduler;

pub use catalog::{Catalog, TableBuilder, TableDef};
pub use engine::{ClusterConfig, ClusterMode, MasterState, QueryCtl, StorageBackend, VectorH};
pub use recovery::{recover_partition, RecoveryReport};
pub use scheduler::HealthScheduler;
// The DML predicate type ([`dml`] takes `&Expr`), re-exported so callers
// of `delete_where`/`update_where` don't need a direct exec dependency.
pub use vectorh_exec::expr::Expr;
pub use vectorh_net::NodeHealth;

// Re-exports for example/bench ergonomics.
pub use vectorh_common as common;
pub use vectorh_planner::LogicalPlan;
