//! The recovery coordinator: WAL-driven partition takeover and node rejoin.
//!
//! §6 of the paper promises that the failure of a responsible node is
//! survivable *transactionally*: "the role of session-master can be taken
//! over by any other worker", the new responsible node replays the
//! per-partition WAL, and in-doubt 2PC transactions are resolved against the
//! decision records of the reduced global WAL. This module is that promise,
//! end to end:
//!
//! * [`recover_partition`] — repair a partition WAL's torn tail, resolve
//!   every logged transaction (local `Commit`, global decision, or presumed
//!   abort), and install the committed image atomically into a
//!   [`TransactionManager`]. Used by the engine when responsibility moves
//!   off a dead node, and by the chaos harness as the one true recovery
//!   entry point.
//! * [`VectorH::rejoin_node`] — the reverse of `kill_node`: revive the
//!   datanode, re-admit the NodeManager, re-run the min-cost-flow remap so
//!   locality converges back (Figure 2 in reverse), and catch the node's
//!   replicated-table state up from the shipped log.

use std::sync::Arc;

use vectorh_common::{NodeId, PartitionId, Result};
use vectorh_txn::twophase::TwoPhaseCoordinator;
use vectorh_txn::{LogRecord, TransactionManager, TxnConfig, Wal};

use crate::engine::VectorH;

/// What one partition takeover did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Torn-tail bytes trimmed by `Wal::repair`.
    pub repaired_bytes: u64,
    /// Transactions resolved to committed (local record or global decision),
    /// in log order.
    pub committed: Vec<u64>,
    /// Transactions resolved to aborted (no commit evidence anywhere).
    pub aborted: Vec<u64>,
    /// Update records replayed into the fresh partition state.
    pub replayed_records: usize,
}

/// Recover one partition onto its (new) responsible node: repair the WAL
/// tail, resolve in-doubt transactions against the global WAL, and replay
/// the committed records into `txns` atomically — committed updates stay
/// visible, uncommitted ones never surface. `stable_rows` is the row count
/// of the partition's stable (on-disk) image; records up to the WAL's last
/// `Checkpoint` are already part of it and are skipped.
pub fn recover_partition(
    coordinator: &TwoPhaseCoordinator,
    txns: &TransactionManager,
    pid: PartitionId,
    stable_rows: u64,
    wal: &Wal,
) -> Result<RecoveryReport> {
    let repaired_bytes = wal.repair()?;
    let verdicts = coordinator.recoverable_txns(wal)?;
    let mut committed = Vec::new();
    let mut aborted = Vec::new();
    for v in &verdicts {
        if v.resolution.is_committed() {
            committed.push(v.txn);
        } else {
            aborted.push(v.txn);
        }
    }
    let committed_set: std::collections::HashSet<u64> = committed.iter().copied().collect();
    // Records after the last checkpoint, in log order (= commit order: each
    // commit appends its whole batch atomically). Bulk `Append`s are already
    // in the stable image and are ignored by replay.
    let (_ckpt_stable, tail) = wal.read_since_checkpoint()?;
    let records: Vec<LogRecord> = tail
        .into_iter()
        .filter(|r| match r {
            LogRecord::Insert { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Modify { txn, .. } => committed_set.contains(txn),
            _ => false,
        })
        .collect();
    txns.recover_partition(pid, stable_rows, &records)?;
    Ok(RecoveryReport {
        repaired_bytes,
        committed,
        aborted,
        replayed_records: records.len(),
    })
}

impl VectorH {
    /// Takeover for partitions whose responsible node died: move each WAL
    /// to the new responsible node and run [`recover_partition`] there.
    /// Called by `reconcile_workers` after the placement remap picked the
    /// new owners.
    pub(crate) fn take_over_partitions(
        &self,
        orphaned: &[PartitionId],
    ) -> Result<Vec<(PartitionId, RecoveryReport)>> {
        let mut reports = Vec::new();
        if orphaned.is_empty() {
            return Ok(reports);
        }
        let tables = self.tables_snapshot();
        // Deterministic order: recovery consults the fault hook (WAL reads
        // and repairs), so the chaos harness needs a stable schedule.
        let mut names: Vec<&String> = tables.keys().collect();
        names.sort_unstable();
        for name in names {
            let rt = &tables[name];
            for (i, pid) in rt.pids.iter().enumerate() {
                if !orphaned.contains(pid) {
                    continue;
                }
                let new_home = self.responsible(*pid);
                rt.wals[i].set_home(Some(new_home));
                let stable = rt.stores[i].read().row_count();
                let report =
                    recover_partition(&self.coordinator, &self.txns, *pid, stable, &rt.wals[i])?;
                reports.push((*pid, report));
            }
        }
        Ok(reports)
    }

    /// Re-admit a previously killed worker (the reverse of
    /// [`VectorH::kill_node`]): revive the datanode, un-lose the
    /// NodeManager, re-negotiate YARN slices, re-run the min-cost-flow remap
    /// (re-replicating toward the restored affinity so locality converges
    /// back to the pre-failure state), and rebuild the node's
    /// replicated-table RAM state from the stable image plus the shipped
    /// log.
    pub fn rejoin_node(&self, node: NodeId) -> Result<()> {
        self.fs().revive_node(node)?;
        self.rm().node_added(node)?;
        let workers_now = self.admit_worker(node);
        // The dbAgent kept the node in its worker list; renegotiation
        // re-acquires slices there now that the RM accepts requests again.
        self.renegotiate_agent();
        self.health_clear(node);
        self.remap_placement(&workers_now)?;
        // Replicated-table catch-up: fresh per-node state registered at the
        // stable image, then the retained shipped log replays on top —
        // the ordinary replay path, same as a live receiver.
        let mgr = Arc::new(TransactionManager::new(TxnConfig::default()));
        let tables = self.tables_snapshot();
        for rt in tables.values() {
            if rt.def.partitioning.is_some() {
                continue;
            }
            let pid = rt.pids[0];
            let stable = rt.stores[0].read().row_count();
            mgr.register_partition(pid, stable);
            self.shipper.rewind(pid, node);
            let backlog = self.shipper.drain(pid, node);
            mgr.replay(pid, &backlog)?;
        }
        self.install_replica(node, mgr);
        Ok(())
    }
}
