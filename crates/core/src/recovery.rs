//! The recovery coordinator: WAL-driven partition takeover and node rejoin.
//!
//! §6 of the paper promises that the failure of a responsible node is
//! survivable *transactionally*: "the role of session-master can be taken
//! over by any other worker", the new responsible node replays the
//! per-partition WAL, and in-doubt 2PC transactions are resolved against the
//! decision records of the reduced global WAL. This module is that promise,
//! end to end:
//!
//! * [`recover_partition`] — repair a partition WAL's torn tail, resolve
//!   every logged transaction (local `Commit`, global decision, or presumed
//!   abort), and install the committed image atomically into a
//!   [`TransactionManager`]. Used by the engine when responsibility moves
//!   off a dead node, and by the chaos harness as the one true recovery
//!   entry point.
//! * [`VectorH::rejoin_node`] — the reverse of `kill_node`: revive the
//!   datanode, re-admit the NodeManager, re-run the min-cost-flow remap so
//!   locality converges back (Figure 2 in reverse), and catch the node's
//!   replicated-table state up from the shipped log.

use std::sync::Arc;

use vectorh_common::{NodeId, PartitionId, Result};
use vectorh_txn::twophase::{Drained, TwoPhaseCoordinator};
use vectorh_txn::{LogRecord, TransactionManager, TxnConfig, Wal};

use crate::engine::VectorH;

/// What one partition takeover did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Torn-tail bytes trimmed by `Wal::repair`.
    pub repaired_bytes: u64,
    /// Transactions resolved to committed (local record or global decision),
    /// in log order.
    pub committed: Vec<u64>,
    /// Transactions resolved to aborted (no commit evidence anywhere).
    pub aborted: Vec<u64>,
    /// Update records replayed into the fresh partition state.
    pub replayed_records: usize,
}

/// Recover one partition onto its (new) responsible node: repair the WAL
/// tail, resolve in-doubt transactions against the global WAL, and replay
/// the committed records into `txns` atomically — committed updates stay
/// visible, uncommitted ones never surface. `stable_rows` is the row count
/// of the partition's stable (on-disk) image; records up to the WAL's last
/// `Checkpoint` are already part of it and are skipped.
pub fn recover_partition(
    coordinator: &TwoPhaseCoordinator,
    txns: &TransactionManager,
    pid: PartitionId,
    stable_rows: u64,
    wal: &Wal,
) -> Result<RecoveryReport> {
    let repaired_bytes = wal.repair()?;
    let verdicts = coordinator.recoverable_txns(wal)?;
    let mut committed = Vec::new();
    let mut aborted = Vec::new();
    for v in &verdicts {
        if v.resolution.is_committed() {
            committed.push(v.txn);
        } else {
            aborted.push(v.txn);
        }
    }
    let committed_set: std::collections::HashSet<u64> = committed.iter().copied().collect();
    // Records after the last checkpoint, in log order (= commit order: each
    // commit appends its whole batch atomically). Bulk `Append`s are already
    // in the stable image and are ignored by replay.
    let (_ckpt_stable, tail) = wal.read_since_checkpoint()?;
    let records: Vec<LogRecord> = tail
        .into_iter()
        .filter(|r| match r {
            LogRecord::Insert { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Modify { txn, .. } => committed_set.contains(txn),
            _ => false,
        })
        .collect();
    txns.recover_partition(pid, stable_rows, &records)?;
    Ok(RecoveryReport {
        repaired_bytes,
        committed,
        aborted,
        replayed_records: records.len(),
    })
}

impl VectorH {
    /// Takeover for partitions whose responsible node died: move each WAL
    /// to the new responsible node and run [`recover_partition`] there.
    /// Called by `reconcile_workers` after the placement remap picked the
    /// new owners.
    pub(crate) fn take_over_partitions(
        &self,
        orphaned: &[PartitionId],
    ) -> Result<Vec<(PartitionId, RecoveryReport)>> {
        let mut reports = Vec::new();
        if orphaned.is_empty() {
            return Ok(reports);
        }
        let tables = self.tables_snapshot();
        // Deterministic order: recovery consults the fault hook (WAL reads
        // and repairs), so the chaos harness needs a stable schedule.
        let mut names: Vec<&String> = tables.keys().collect();
        names.sort_unstable();
        for name in names {
            let rt = &tables[name];
            for (i, pid) in rt.pids.iter().enumerate() {
                if !orphaned.contains(pid) {
                    continue;
                }
                let new_home = self.responsible(*pid);
                rt.wals[i].set_home(Some(new_home));
                let stable = rt.stores[i].read().row_count();
                let report =
                    recover_partition(&self.coordinator, &self.txns, *pid, stable, &rt.wals[i])?;
                reports.push((*pid, report));
            }
        }
        Ok(reports)
    }

    /// Re-admit a previously killed worker (the reverse of
    /// [`VectorH::kill_node`]): revive the datanode, un-lose the
    /// NodeManager, re-negotiate YARN slices, re-run the min-cost-flow remap
    /// (re-replicating toward the restored affinity so locality converges
    /// back to the pre-failure state), and rebuild the node's
    /// replicated-table RAM state from the stable image plus the shipped
    /// log.
    pub fn rejoin_node(&self, node: NodeId) -> Result<()> {
        self.fs().revive_node(node)?;
        self.rm().node_added(node)?;
        // `admit_worker` also clears the heartbeat monitor's dead latch,
        // atomically with re-admission (a background health round between
        // the two would otherwise instantly re-fence the node).
        let workers_now = self.admit_worker(node);
        // The dbAgent kept the node in its worker list; renegotiation
        // re-acquires slices there now that the RM accepts requests again.
        self.renegotiate_agent();
        self.remap_placement(&workers_now)?;
        // Replicated-table catch-up: fresh per-node state registered at the
        // stable image, then the retained shipped log replays on top — the
        // ordinary replay path, same as a live receiver. If retention
        // truncated the log past the beginning, the node is behind the
        // horizon and takes the full-image bootstrap instead (stable image
        // + committed WAL tail, watermark fast-forwarded to the head).
        let mgr = Arc::new(TransactionManager::new(TxnConfig::default()));
        let tables = self.tables_snapshot();
        for rt in tables.values() {
            if rt.def.partitioning.is_some() {
                continue;
            }
            let pid = rt.pids[0];
            let stable = rt.stores[0].read().row_count();
            mgr.register_partition(pid, stable);
            self.shipper.rewind(pid, node);
            match self.shipper.drain(pid, node) {
                Drained::Records(backlog) => mgr.replay(pid, &backlog)?,
                Drained::BehindHorizon => self.bootstrap_replica(rt, pid, node, &mgr)?,
            }
        }
        self.install_replica(node, mgr);
        Ok(())
    }

    /// Finish every transaction the deposed master left in doubt: for each
    /// partition WAL, find transactions that prepared but never got a local
    /// verdict, append the phase-2 `Commit` where the global WAL holds the
    /// decision and an explicit `Abort` otherwise (presumed abort), then
    /// realign the in-memory image with the durable outcome via
    /// [`recover_partition`] — the old master may have installed state for
    /// a transaction whose decision never became durable (or vice versa).
    /// Decided transactions on replicated tables are re-shipped so every
    /// replica converges. Returns the number of transactions resolved.
    ///
    /// Called by `reconcile_workers` right after an election; also callable
    /// directly by drills that depose a master without killing it.
    pub fn resolve_in_doubt(&self) -> Result<usize> {
        let tables = self.tables_snapshot();
        let mut names: Vec<&String> = tables.keys().collect();
        names.sort_unstable();
        let workers = self.workers();
        let mut resolved = 0;
        for name in names {
            let rt = &tables[name];
            for (i, pid) in rt.pids.iter().enumerate() {
                let wal = &rt.wals[i];
                wal.repair()?;
                let in_doubt = self.coordinator.in_doubt_txns_of(wal)?;
                if in_doubt.is_empty() {
                    continue;
                }
                for &(txn, decided) in &in_doubt {
                    let verdict = if decided {
                        LogRecord::Commit { txn, seq: 0 }
                    } else {
                        LogRecord::Abort { txn }
                    };
                    wal.append(&[verdict])?;
                    resolved += 1;
                }
                let stable = rt.stores[i].read().row_count();
                recover_partition(&self.coordinator, &self.txns, *pid, stable, wal)?;
                if rt.def.partitioning.is_none() {
                    for &(txn, decided) in &in_doubt {
                        if decided {
                            let recs = TwoPhaseCoordinator::records_of(wal, txn)?;
                            self.shipper
                                .ship(*pid, &recs, workers.len().saturating_sub(1));
                        }
                    }
                    self.apply_shipped(rt, *pid, &workers)?;
                }
            }
        }
        Ok(resolved)
    }
}
