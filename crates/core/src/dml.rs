//! Trickle DML: transactional inserts, deletes and updates through PDTs.
//!
//! The paper's headline updatability claim (§6): fine-grained updates land
//! in PDTs without touching the compressed columnar data, clustered tables
//! stay ordered (inserts go to their sort position), every query sees the
//! latest committed state, and update queries "get a distributed query plan
//! that ensures that each table partition is updated at its responsible
//! node". Commits run 2PC: per-partition WAL records + Prepare from the
//! responsible nodes, the decision in the session master's global WAL.

use std::cmp::Ordering;
use std::sync::Arc;

use vectorh_common::{ColumnData, PartitionId, Result, Value, VhError};
use vectorh_exec::expr::Expr;
use vectorh_exec::Batch;
use vectorh_pdt::MergeStep;
use vectorh_storage::PartitionStore;
use vectorh_txn::{LogRecord, Transaction};

use crate::engine::{partition_of, TableRuntime, VectorH};

/// Materialize selected table columns of a partition image (stable data +
/// merge plan applied).
fn materialize_cols(
    store: &PartitionStore,
    plan: &[MergeStep],
    cols: &[usize],
    reader: Option<vectorh_common::NodeId>,
) -> Result<Vec<ColumnData>> {
    let schema = store.schema();
    // Stable data for the selected columns.
    let mut stable: Vec<ColumnData> = cols
        .iter()
        .map(|&c| ColumnData::new(schema.dtype(c)))
        .collect();
    for chunk in 0..store.n_chunks() {
        for (j, &c) in cols.iter().enumerate() {
            stable[j].append(&store.read_column(chunk, c, reader)?)?;
        }
    }
    let mut out: Vec<ColumnData> = cols
        .iter()
        .map(|&c| ColumnData::new(schema.dtype(c)))
        .collect();
    for step in plan {
        match step {
            MergeStep::CopyStable { from_sid, count } => {
                for (j, col) in out.iter_mut().enumerate() {
                    col.append(&stable[j].slice(*from_sid as usize, (*from_sid + count) as usize))?;
                }
            }
            MergeStep::SkipStable { .. } => {}
            MergeStep::ModifyStable { sid, mods } => {
                // Pre-index the patches by column so wide projections don't
                // pay a linear scan of `mods` per selected column.
                let mut by_col: Vec<Option<&Value>> = vec![None; schema.len()];
                for (mc, v) in mods {
                    by_col[*mc] = Some(v);
                }
                for (j, &c) in cols.iter().enumerate() {
                    match by_col[c] {
                        Some(v) => out[j].push_value(v)?,
                        None => out[j]
                            .push_value(&stable[j].value_at(*sid as usize, schema.dtype(c)))?,
                    }
                }
            }
            MergeStep::EmitInsert { values, .. } => {
                for (j, &c) in cols.iter().enumerate() {
                    out[j].push_value(&values[c])?;
                }
            }
        }
    }
    Ok(out)
}

fn cmp_keys(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        match x.partial_cmp(y) {
            Some(Ordering::Equal) | None => continue,
            Some(o) => return o,
        }
    }
    Ordering::Equal
}

impl VectorH {
    fn wal_of(&self, rt: &TableRuntime, pid: PartitionId) -> Result<Arc<vectorh_txn::Wal>> {
        rt.pids
            .iter()
            .position(|p| *p == pid)
            .map(|i| rt.wals[i].clone())
            .ok_or_else(|| VhError::Internal(format!("partition {pid} not in table")))
    }

    /// Commit a transaction with 2PC durability: update records and a
    /// Prepare vote reach each responsible node's partition WAL before the
    /// in-memory state advances; the fenced decision lands in the global
    /// WAL; only then do phase-2 `Commit` records land in the partition
    /// WALs. The commit runs under the master epoch observed at entry — an
    /// election in between fences it with [`VhError::StaleMaster`], and a
    /// coordinator crash injected at the decision leaves the transaction in
    /// doubt (surfaced as an error here, resolved exactly once by the next
    /// master's in-doubt resolution).
    fn commit_2pc(&self, rt: &TableRuntime, txn: Transaction) -> Result<u64> {
        let txn_id = txn.id;
        let epoch = self.master_epoch();
        self.coordinator.check_epoch(epoch)?;
        let mut shipped: Vec<LogRecord> = Vec::new();
        let mut commits: Vec<(PartitionId, LogRecord)> = Vec::new();
        let replicated = rt.def.partitioning.is_none();
        let seq = self.txns.commit(txn, |pid, recs| {
            let wal = self.wal_of(rt, pid)?;
            let mut batch = recs.to_vec();
            // The manager ends every batch with its local Commit record,
            // but 2PC must not persist that before the decision: hold it
            // back for phase 2 and vote Prepare in its place.
            let commit = match batch.pop() {
                Some(c @ LogRecord::Commit { .. }) => c,
                other => {
                    return Err(VhError::Internal(format!(
                        "commit batch must end in a Commit record, got {other:?}"
                    )))
                }
            };
            if replicated {
                shipped.extend(batch.iter().cloned());
            }
            batch.push(LogRecord::Prepare { txn: txn_id });
            wal.append(&batch)?;
            commits.push((pid, commit));
            Ok(())
        })?;
        match self.coordinator.decide(epoch, txn_id)? {
            vectorh_txn::twophase::Outcome::Committed => {}
            vectorh_txn::twophase::Outcome::InDoubt => {
                return Err(VhError::TxnAbort(format!(
                    "txn {txn_id} in doubt: coordinator lost before phase 2"
                )));
            }
        }
        // Phase 2: local Commit records, after the durable decision.
        for (pid, commit) in &commits {
            self.wal_of(rt, *pid)?
                .append(std::slice::from_ref(commit))?;
        }
        // Log shipping for replicated tables: the commit's records go into
        // the retained ship log, and every live worker applies them to its
        // replica state through the ordinary replay path (§6). A node that
        // is down right now catches up from the same log when it rejoins.
        if replicated && !shipped.is_empty() {
            let pid = rt.pids[0];
            let workers = self.workers();
            self.shipper
                .ship(pid, &shipped, workers.len().saturating_sub(1));
            self.apply_shipped(rt, pid, &workers)?;
        }
        Ok(seq)
    }

    /// Trickle-insert rows: each row goes to its hash partition, at its
    /// clustered sort position (ordinary append position for heap tables),
    /// through the PDT machinery.
    pub fn trickle_insert(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<u64> {
        // DML is traffic too: it advances the background health plane.
        self.advance_health(1)?;
        let rt = self.table(table)?;
        let n_parts = rt.n_partitions();
        let mut txn = self.txns.begin(&rt.pids)?;
        // Bucket rows per partition.
        let mut buckets: Vec<Vec<Vec<Value>>> = vec![Vec::new(); n_parts];
        match &rt.def.partitioning {
            Some((keys, _)) => {
                for row in rows {
                    let p = partition_of(&row, keys, n_parts);
                    buckets[p].push(row);
                }
            }
            None => buckets[0] = rows,
        }
        for (i, mut bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let pid = rt.pids[i];
            match &rt.def.sort_order {
                None => {
                    for row in bucket {
                        let end = txn.image_len(pid)?;
                        self.txns.insert_at(&mut txn, pid, end, row)?;
                    }
                }
                Some(order) => {
                    // Insert in ascending key order so earlier inserts only
                    // shift later positions forward.
                    bucket.sort_by(|a, b| {
                        cmp_keys(
                            &order.iter().map(|&k| a[k].clone()).collect::<Vec<_>>(),
                            &order.iter().map(|&k| b[k].clone()).collect::<Vec<_>>(),
                        )
                    });
                    let store = rt.stores[i].read().clone();
                    let plan = txn.merged_plan(pid)?;
                    let sort_cols = materialize_cols(&store, &plan, order, store.home())?;
                    let image = sort_cols.first().map(|c| c.len()).unwrap_or(0);
                    let schema = store.schema();
                    let key_at = |idx: usize| -> Vec<Value> {
                        order
                            .iter()
                            .enumerate()
                            .map(|(j, &k)| sort_cols[j].value_at(idx, schema.dtype(k)))
                            .collect()
                    };
                    for (inserted, row) in bucket.into_iter().enumerate() {
                        let key: Vec<Value> = order.iter().map(|&k| row[k].clone()).collect();
                        // Upper-bound binary search on the original image.
                        let (mut lo, mut hi) = (0usize, image);
                        while lo < hi {
                            let mid = (lo + hi) / 2;
                            if cmp_keys(&key_at(mid), &key) == Ordering::Greater {
                                hi = mid;
                            } else {
                                lo = mid + 1;
                            }
                        }
                        let rid = lo as u64 + inserted as u64;
                        self.txns.insert_at(&mut txn, pid, rid, row)?;
                    }
                }
            }
        }
        self.commit_2pc(&rt, txn)
    }

    /// Delete all rows matching `pred` (over the full table schema).
    /// Returns the number of rows deleted.
    pub fn delete_where(&self, table: &str, pred: &Expr) -> Result<u64> {
        self.mutate_where(table, pred, None)
    }

    /// Set `col` to `value` for all rows matching `pred`.
    pub fn update_where(&self, table: &str, pred: &Expr, col: usize, value: Value) -> Result<u64> {
        self.mutate_where(table, pred, Some((col, value)))
    }

    fn mutate_where(&self, table: &str, pred: &Expr, set: Option<(usize, Value)>) -> Result<u64> {
        self.advance_health(1)?;
        let rt = self.table(table)?;
        let mut txn = self.txns.begin(&rt.pids)?;
        let schema = Arc::new(rt.def.schema.clone());
        let all_cols: Vec<usize> = (0..schema.len()).collect();
        let mut touched = 0u64;
        for (i, pid) in rt.pids.iter().enumerate() {
            let store = rt.stores[i].read().clone();
            let plan = txn.merged_plan(*pid)?;
            let cols = materialize_cols(&store, &plan, &all_cols, store.home())?;
            let batch = Batch::new(schema.clone(), cols)?;
            if batch.is_empty() {
                continue;
            }
            let mask = pred.eval_mask(&batch)?;
            match &set {
                None => {
                    // Delete back-to-front so earlier deletes don't shift
                    // the rids of later ones.
                    for rid in (0..batch.len()).rev() {
                        if mask[rid] {
                            self.txns.delete_at(&mut txn, *pid, rid as u64)?;
                            touched += 1;
                        }
                    }
                }
                Some((col, value)) => {
                    for (rid, hit) in mask.iter().enumerate() {
                        if *hit {
                            self.txns
                                .modify_at(&mut txn, *pid, rid as u64, *col, value.clone())?;
                            touched += 1;
                        }
                    }
                }
            }
        }
        self.commit_2pc(&rt, txn)?;
        Ok(touched)
    }

    /// Delete rows whose column equals any of the given keys (the RF2
    /// refresh-function shape: `DELETE WHERE o_orderkey IN (...)`).
    pub fn delete_by_keys(&self, table: &str, col: usize, keys: &[Value]) -> Result<u64> {
        let pred = Expr::InList(Box::new(Expr::Col(col)), keys.to_vec());
        self.delete_where(table, &pred)
    }
}

/// Verify a unique-key constraint locally (§6: "if the table is partitioned
/// and the partition key is a subset of the unique key, VectorH verifies
/// such constraints by performing node-local verification only").
pub fn unique_key_is_node_local(def: &crate::catalog::TableDef, unique_cols: &[usize]) -> bool {
    match &def.partitioning {
        Some((pkeys, _)) => pkeys.iter().all(|k| unique_cols.contains(k)),
        None => true, // replicated: every node can verify
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, TableBuilder};
    use vectorh_common::DataType;

    fn engine() -> VectorH {
        VectorH::start(ClusterConfig {
            nodes: 3,
            rows_per_chunk: 64,
            hdfs_block_size: 8 * 1024,
            ..Default::default()
        })
        .unwrap()
    }

    fn mk_table(vh: &VectorH, clustered: bool) {
        let mut b = TableBuilder::new("t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 4);
        if clustered {
            b = b.clustered_by(&["k"]);
        }
        vh.create_table(b).unwrap();
    }

    #[test]
    fn trickle_insert_into_clustered_table_keeps_order() {
        let vh = engine();
        mk_table(&vh, true);
        vh.insert_rows(
            "t",
            (0..100)
                .map(|i| vec![Value::I64(i * 2), Value::I64(i)])
                .collect(),
        )
        .unwrap();
        // Insert odd keys that must interleave.
        vh.trickle_insert(
            "t",
            vec![
                vec![Value::I64(5), Value::I64(-1)],
                vec![Value::I64(101), Value::I64(-2)],
                vec![Value::I64(-3), Value::I64(-3)],
            ],
        )
        .unwrap();
        assert_eq!(vh.table_rows("t").unwrap(), 103);
        // Every partition image must be sorted on k.
        let rt = vh.table("t").unwrap();
        for (i, pid) in rt.pids.iter().enumerate() {
            let store = rt.stores[i].read().clone();
            let plan = vh.txns.scan_plan(*pid).unwrap();
            let cols = materialize_cols(&store, &plan, &[0], None).unwrap();
            let keys = cols[0].as_i64().unwrap();
            let mut sorted = keys.to_vec();
            sorted.sort_unstable();
            assert_eq!(keys, &sorted[..], "partition {pid} out of order");
        }
    }

    #[test]
    fn delete_where_and_update_where() {
        let vh = engine();
        mk_table(&vh, false);
        vh.insert_rows(
            "t",
            (0..50)
                .map(|i| vec![Value::I64(i), Value::I64(0)])
                .collect(),
        )
        .unwrap();
        let deleted = vh
            .delete_where("t", &Expr::lt(Expr::col(0), Expr::lit(Value::I64(10))))
            .unwrap();
        assert_eq!(deleted, 10);
        assert_eq!(vh.table_rows("t").unwrap(), 40);
        let updated = vh
            .update_where(
                "t",
                &Expr::ge(Expr::col(0), Expr::lit(Value::I64(45))),
                1,
                Value::I64(99),
            )
            .unwrap();
        assert_eq!(updated, 5);
        let rows = vh.query("SELECT count(*) FROM t WHERE v = 99").unwrap();
        assert_eq!(rows[0][0], Value::I64(5));
    }

    #[test]
    fn updates_are_durable_in_wals() {
        let vh = engine();
        mk_table(&vh, false);
        vh.insert_rows(
            "t",
            (0..20)
                .map(|i| vec![Value::I64(i), Value::I64(0)])
                .collect(),
        )
        .unwrap();
        vh.delete_where("t", &Expr::eq(Expr::col(0), Expr::lit(Value::I64(3))))
            .unwrap();
        // Some partition WAL carries the delete + prepare + commit.
        let rt = vh.table("t").unwrap();
        let mut found = false;
        for wal in &rt.wals {
            let records = wal.read_all().unwrap();
            if records
                .iter()
                .any(|r| matches!(r, LogRecord::Delete { .. }))
            {
                assert!(records
                    .iter()
                    .any(|r| matches!(r, LogRecord::Prepare { .. })));
                assert!(records
                    .iter()
                    .any(|r| matches!(r, LogRecord::Commit { .. })));
                found = true;
            }
        }
        assert!(found, "delete must be logged in a partition WAL");
        // And the global decision exists.
        let global = vh.coordinator.global_wal().read_all().unwrap();
        assert!(global
            .iter()
            .any(|r| matches!(r, LogRecord::GlobalCommit { .. })));
    }

    #[test]
    fn delete_by_keys_matches_rf2_shape() {
        let vh = engine();
        mk_table(&vh, true);
        vh.insert_rows(
            "t",
            (0..30)
                .map(|i| vec![Value::I64(i), Value::I64(i)])
                .collect(),
        )
        .unwrap();
        let n = vh
            .delete_by_keys("t", 0, &[Value::I64(3), Value::I64(7), Value::I64(999)])
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(vh.table_rows("t").unwrap(), 28);
    }

    #[test]
    fn unique_key_locality_rule() {
        let def = TableBuilder::new("t")
            .column("a", DataType::I64)
            .column("b", DataType::I64)
            .partition_by(&["a"], 4)
            .build()
            .unwrap();
        assert!(unique_key_is_node_local(&def, &[0]));
        assert!(unique_key_is_node_local(&def, &[0, 1]));
        assert!(!unique_key_is_node_local(&def, &[1]));
    }
}
