//! The SQL conformance ratchet: every one of the 22 TPC-H queries, parsed
//! from its canonical SQL text (`vectorh_tpch::sql_texts`), must execute to
//! the *byte-identical* result of the hand-built logical plan in
//! `vectorh_tpch::queries` — compared via `exec::fingerprint_rows` at
//! SF 0.01. This is what keeps the SQL frontend honest as the rewriter and
//! executor evolve: a frontend regression (wrong decorrelation, dropped
//! predicate, changed aggregate order) shows up as a fingerprint mismatch
//! on the exact query that needs the feature.
//!
//! `VH_SQL_CONF_TCP=1` additionally runs a 4-query smoke pass over the real
//! TCP transport (`ClusterMode::Tcp`), exercising the SQL path through the
//! framed exchange fabric. It is off by default because the loopback
//! sockets make it much slower than the in-process fabric.

use vectorh::{ClusterConfig, ClusterMode, VectorH};
use vectorh_exec::fingerprint_rows;
use vectorh_tpch::queries::{build_query, run_with};
use vectorh_tpch::{schema, sql_text, N_QUERIES};

const SF: f64 = 0.01;
const PARTS: usize = 4;
const SEED: u64 = 4;

fn engine(mode: ClusterMode) -> VectorH {
    VectorH::start(ClusterConfig {
        nodes: 3,
        rows_per_chunk: 512,
        hdfs_block_size: 64 * 1024,
        streams_per_node: 2,
        cluster_mode: mode,
        ..Default::default()
    })
    .expect("engine start")
}

/// Run query `qn` both ways on `vh` and compare fingerprints.
fn check_query(vh: &VectorH, qn: usize) {
    let sql = sql_text(qn).expect("query number in range");
    let sql_rows = vh
        .query(sql)
        .unwrap_or_else(|e| panic!("Q{qn}: SQL path failed: {e}"));
    let hand = build_query(qn).expect("hand-built query");
    let hand_rows = run_with(&hand, |p| vh.query_logical(p))
        .unwrap_or_else(|e| panic!("Q{qn}: hand-built path failed: {e}"));
    assert_eq!(
        fingerprint_rows(&sql_rows),
        fingerprint_rows(&hand_rows),
        "Q{qn}: SQL result diverges from hand-built plan\n\
         sql  rows={} head={:?}\n\
         hand rows={} head={:?}",
        sql_rows.len(),
        &sql_rows[..sql_rows.len().min(3)],
        hand_rows.len(),
        &hand_rows[..hand_rows.len().min(3)],
    );
}

#[test]
fn all_22_queries_match_hand_plans_byte_for_byte() {
    let vh = engine(ClusterMode::InProc);
    schema::setup(&vh, SF, PARTS, SEED).expect("load TPC-H");
    for qn in 1..=N_QUERIES {
        check_query(&vh, qn);
    }
}

#[test]
fn tcp_cluster_mode_smoke() {
    if std::env::var("VH_SQL_CONF_TCP").is_err() {
        eprintln!("skipping: set VH_SQL_CONF_TCP=1 to run the Tcp-transport leg");
        return;
    }
    let vh = engine(ClusterMode::Tcp);
    schema::setup(&vh, SF, PARTS, SEED).expect("load TPC-H");
    // A scan-heavy aggregate, a 3-way join, a selective filter and a CASE
    // pivot: enough to push SQL-derived plans through the real transport.
    for qn in [1, 3, 6, 12] {
        check_query(&vh, qn);
    }
}
