//! TPC-H refresh functions RF1 (inserts) and RF2 (deletes).
//!
//! The paper's update-impact experiment (§8 "Impact of Updates") runs RF1
//! and RF2 and compares query performance before/after: VectorH's PDTs keep
//! the GeoDiff at ~2.8% while Hive's key-matched delta tables cost 38%.
//! RF1 inserts SF×1500 new orders (with their lineitems) — through the
//! trickle path, so they land in PDTs at their clustered positions; RF2
//! deletes as many existing orders by key.

use vectorh_common::rng::SplitMix64;
use vectorh_common::types::date;
use vectorh_common::{Result, Value};

use crate::gen::cols::{lineitem as l, orders as o};
use crate::gen::TpchData;

/// One refresh pair's data.
pub struct RefreshSet {
    pub orders: Vec<Vec<Value>>,
    pub lineitems: Vec<Vec<Value>>,
    /// Orderkeys RF2 deletes.
    pub delete_keys: Vec<i64>,
}

/// Build an RF1/RF2 set against a generated database.
pub fn refresh_set(data: &TpchData, pairs: usize, seed: u64) -> RefreshSet {
    let mut rng = SplitMix64::new(seed);
    let max_key = data
        .orders
        .iter()
        .map(|r| r[o::O_ORDERKEY].as_i64().unwrap())
        .max()
        .unwrap_or(0);
    let n_customer = data.customer.len() as i64;
    let n_part = data.part.len() as i64;
    let n_supplier = data.supplier.len() as i64;
    let start = date::parse("1995-01-01").unwrap();
    let end = date::parse("1998-08-02").unwrap();

    let mut orders = Vec::with_capacity(pairs);
    let mut lineitems = Vec::new();
    for i in 0..pairs {
        let orderkey = max_key + 1 + i as i64 * 4;
        let orderdate = rng.range_i64(start as i64, end as i64 - 121) as i32;
        let n_lines = rng.range_i64(1, 7) as usize;
        let mut total = 0i64;
        for ln in 0..n_lines {
            let qty = rng.range_i64(1, 50);
            let price = rng.range_i64(90_000, 210_000);
            let extended = qty * price / 100 * 100;
            let shipdate = orderdate + rng.range_i64(1, 121) as i32;
            total += extended;
            lineitems.push(vec![
                Value::I64(orderkey),
                Value::I64(rng.range_i64(1, n_part)),
                Value::I64(rng.range_i64(1, n_supplier)),
                Value::I64(ln as i64 + 1),
                Value::Decimal(qty * 100, 2),
                Value::Decimal(extended, 2),
                Value::Decimal(rng.range_i64(0, 10), 2),
                Value::Decimal(rng.range_i64(0, 8), 2),
                Value::Str("N".into()),
                Value::Str("O".into()),
                Value::Date(shipdate),
                Value::Date(orderdate + rng.range_i64(30, 90) as i32),
                Value::Date(shipdate + rng.range_i64(1, 30) as i32),
                Value::Str("NONE".into()),
                Value::Str("MAIL".into()),
                Value::Str("fresh insert".into()),
            ]);
        }
        orders.push(vec![
            Value::I64(orderkey),
            Value::I64(rng.range_i64(1, n_customer)),
            Value::Str("O".into()),
            Value::Decimal(total, 2),
            Value::Date(orderdate),
            Value::Str("3-MEDIUM".into()),
            Value::I64(0),
            Value::Str("refresh order".into()),
        ]);
    }

    // RF2: delete a random sample of *existing* orderkeys.
    let mut keys: Vec<i64> = data
        .orders
        .iter()
        .map(|r| r[o::O_ORDERKEY].as_i64().unwrap())
        .collect();
    rng.shuffle(&mut keys);
    keys.truncate(pairs);
    RefreshSet {
        orders,
        lineitems,
        delete_keys: keys,
    }
}

/// RF1: trickle-insert the new orders and lineitems.
pub fn rf1(vh: &vectorh::VectorH, set: &RefreshSet) -> Result<()> {
    vh.trickle_insert("orders", set.orders.clone())?;
    vh.trickle_insert("lineitem", set.lineitems.clone())?;
    Ok(())
}

/// RF2: delete the sampled orders (and their lineitems) by key.
/// Returns rows deleted.
pub fn rf2(vh: &vectorh::VectorH, set: &RefreshSet) -> Result<u64> {
    let keys: Vec<Value> = set.delete_keys.iter().map(|&k| Value::I64(k)).collect();
    let a = vh.delete_by_keys("lineitem", l::L_ORDERKEY, &keys)?;
    let b = vh.delete_by_keys("orders", o::O_ORDERKEY, &keys)?;
    Ok(a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn refresh_set_shape() {
        let data = generate(0.001, 2);
        let set = refresh_set(&data, 10, 3);
        assert_eq!(set.orders.len(), 10);
        assert!(!set.lineitems.is_empty());
        assert_eq!(set.delete_keys.len(), 10);
        // New keys don't collide with existing ones.
        let existing: std::collections::HashSet<i64> = data
            .orders
            .iter()
            .map(|r| r[o::O_ORDERKEY].as_i64().unwrap())
            .collect();
        for row in &set.orders {
            assert!(!existing.contains(&row[o::O_ORDERKEY].as_i64().unwrap()));
        }
        // Delete keys are existing ones.
        for k in &set.delete_keys {
            assert!(existing.contains(k));
        }
    }

    #[test]
    fn rf1_rf2_roundtrip_on_engine() {
        let vh = vectorh::VectorH::start(vectorh::ClusterConfig {
            rows_per_chunk: 256,
            ..Default::default()
        })
        .unwrap();
        let data = crate::schema::setup(&vh, 0.0005, 2, 9).unwrap();
        let before_orders = vh.table_rows("orders").unwrap();
        let before_line = vh.table_rows("lineitem").unwrap();
        let set = refresh_set(&data, 5, 4);
        rf1(&vh, &set).unwrap();
        assert_eq!(vh.table_rows("orders").unwrap(), before_orders + 5);
        assert_eq!(
            vh.table_rows("lineitem").unwrap(),
            before_line + set.lineitems.len() as u64
        );
        let deleted = rf2(&vh, &set).unwrap();
        assert!(deleted >= 5, "deleted {deleted}");
        assert_eq!(vh.table_rows("orders").unwrap(), before_orders + 5 - 5);
    }
}
