//! TPC-H for VectorH-rs (§8 of the paper).
//!
//! * [`gen`] — a dbgen-style deterministic data generator, scaled by SF.
//! * [`schema`] — the paper's physical design: clustered indexes on
//!   `o_orderdate` / `l_orderkey` / `ps_partkey` / PKs, hash partitioning of
//!   lineitem+orders on the orderkey and part+partsupp on the partkey (so
//!   those joins are co-located), small tables replicated.
//! * [`queries`] — all 22 TPC-H queries as logical plans (scalar subqueries
//!   decorrelated into explicit two-step plans).
//! * [`sql_texts`] — the same 22 queries as SQL text for the frontend; the
//!   `sql_conformance` suite locks both forms to byte-identical results.
//! * [`refresh`] — RF1 (new orders) and RF2 (deletes) refresh functions.
//! * [`baseline`] — comparator engines for Figure 7: a tuple-at-a-time
//!   interpreter ("rowstore", Hive/PostgreSQL-like) and a single-threaded
//!   columnar executor without MinMax skipping ("naive columnar",
//!   Impala-like), both executing the *same* logical plans so answers can
//!   be cross-checked.

pub mod baseline;
pub mod gen;
pub mod queries;
pub mod refresh;
pub mod schema;
pub mod sql_texts;

pub use gen::{generate, TpchData};
pub use queries::{run_query, TpchQuery, N_QUERIES};
pub use schema::{create_tables, load, table_names};
pub use sql_texts::sql_text;
