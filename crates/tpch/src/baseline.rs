//! Baseline comparator engines for the Figure 7 harness.
//!
//! Two honest stand-ins for the paper's competitor systems, executing the
//! *same* logical plans as VectorH (so answers can be cross-checked):
//!
//! * **RowStore** — a tuple-at-a-time interpreter in the spirit of Hive /
//!   HAWQ's PostgreSQL-derived engine: every expression evaluation
//!   materializes a one-row batch, every operator moves one tuple per call.
//! * **NaiveColumnar** — an Impala-ish single-threaded columnar engine: data
//!   is stored in "ORC-like" encoded chunks (value-at-a-time varint/RLE
//!   decode behind a general-purpose decompression pass), with no MinMax
//!   skipping, no partitioned parallelism, no partial aggregation.
//!
//! Both support Hive-style **delta tables** for the update-impact
//! experiment: RF1/RF2 deltas are kept aside and merged *by key* into every
//! scan — the key-comparison overhead PDTs exist to avoid.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use vectorh_common::{ColumnData, Result, Schema, Value, VhError};
use vectorh_compress::baseline::{decode, encode, BaselineFormat};
use vectorh_exec::aggr::{AggMode, Aggr};
use vectorh_exec::batch::collect_rows;
use vectorh_exec::filter::Select as VSelect;
use vectorh_exec::join::{HashJoin, JoinKind as ExecJoinKind};
use vectorh_exec::operator::{BatchSource, Operator};
use vectorh_exec::project::Project as VProject;
use vectorh_exec::rowengine::{collect_row_op, RowAggr, RowProject, RowScan, RowSelect};
use vectorh_exec::sort::{sort_rows as canon_sort, Dir};
use vectorh_exec::Batch;
use vectorh_planner::logical::{JoinKind, LogicalPlan};

use crate::gen::TpchData;

/// Which baseline engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    RowStore,
    NaiveColumnar,
}

/// Hive-style delta state for one table.
#[derive(Debug, Default, Clone)]
pub struct Delta {
    pub key_col: usize,
    pub deleted: HashSet<i64>,
    pub inserted: Vec<Vec<Value>>,
}

/// The baseline database: materialized rows + ORC-like encoded chunks.
pub struct BaselineDb {
    schemas: HashMap<String, Schema>,
    rows: HashMap<String, Vec<Vec<Value>>>,
    /// `encoded[table][chunk][col]` — OrcLike blocks of ~8192 rows.
    encoded: HashMap<String, Vec<Vec<Vec<u8>>>>,
    deltas: HashMap<String, Delta>,
}

const CHUNK_ROWS: usize = 8192;

fn encode_table(schema: &Schema, rows: &[Vec<Value>]) -> Result<Vec<Vec<Vec<u8>>>> {
    let mut chunks = Vec::new();
    let mut at = 0;
    while at < rows.len() {
        let to = (at + CHUNK_ROWS).min(rows.len());
        let mut cols: Vec<ColumnData> = schema
            .fields()
            .iter()
            .map(|f| ColumnData::new(f.dtype))
            .collect();
        for row in &rows[at..to] {
            for (c, v) in row.iter().enumerate() {
                cols[c].push_value(v)?;
            }
        }
        chunks.push(
            cols.iter()
                .map(|c| encode(BaselineFormat::OrcLike, c))
                .collect(),
        );
        at = to;
    }
    Ok(chunks)
}

impl BaselineDb {
    /// Load a generated dataset.
    pub fn load(data: &TpchData) -> Result<BaselineDb> {
        let defs = crate::schema::table_defs(1)?;
        let mut schemas = HashMap::new();
        let mut rows = HashMap::new();
        let mut encoded = HashMap::new();
        let tables: Vec<(&str, &Vec<Vec<Value>>)> = vec![
            ("region", &data.region),
            ("nation", &data.nation),
            ("supplier", &data.supplier),
            ("customer", &data.customer),
            ("part", &data.part),
            ("partsupp", &data.partsupp),
            ("orders", &data.orders),
            ("lineitem", &data.lineitem),
        ];
        for (name, trows) in tables {
            let def = defs
                .iter()
                .find(|d| d.name == name)
                .ok_or_else(|| VhError::Catalog(format!("no def for {name}")))?;
            encoded.insert(name.to_string(), encode_table(&def.schema, trows)?);
            schemas.insert(name.to_string(), def.schema.clone());
            rows.insert(name.to_string(), trows.clone());
        }
        Ok(BaselineDb {
            schemas,
            rows,
            encoded,
            deltas: HashMap::new(),
        })
    }

    /// Register delta-table state (RF1 inserts / RF2 deletes) for a table.
    pub fn apply_delta(
        &mut self,
        table: &str,
        key_col: usize,
        inserted: Vec<Vec<Value>>,
        deleted: Vec<i64>,
    ) {
        let d = self.deltas.entry(table.to_string()).or_default();
        d.key_col = key_col;
        d.inserted.extend(inserted);
        d.deleted.extend(deleted);
    }

    pub fn has_deltas(&self, table: &str) -> bool {
        self.deltas
            .get(table)
            .map(|d| !d.inserted.is_empty() || !d.deleted.is_empty())
            .unwrap_or(false)
    }

    /// Merge base rows with deltas *by key* — the per-row key lookup is the
    /// merge cost Hive pays after updates.
    fn merged_rows(&self, table: &str) -> Result<Vec<Vec<Value>>> {
        let base = self
            .rows
            .get(table)
            .ok_or_else(|| VhError::Catalog(format!("unknown table '{table}'")))?;
        match self.deltas.get(table) {
            None => Ok(base.clone()),
            Some(d) if d.deleted.is_empty() && d.inserted.is_empty() => Ok(base.clone()),
            Some(d) => {
                let mut out = Vec::with_capacity(base.len() + d.inserted.len());
                for row in base {
                    let key = row[d.key_col].as_i64().unwrap_or(i64::MIN);
                    if !d.deleted.contains(&key) {
                        out.push(row.clone());
                    }
                }
                for row in &d.inserted {
                    let key = row[d.key_col].as_i64().unwrap_or(i64::MIN);
                    if !d.deleted.contains(&key) {
                        out.push(row.clone());
                    }
                }
                Ok(out)
            }
        }
    }

    /// Run a logical plan on the chosen baseline engine.
    pub fn run(&self, plan: &LogicalPlan, kind: BaselineKind) -> Result<Vec<Vec<Value>>> {
        match kind {
            BaselineKind::RowStore => self.eval_rowstore(plan),
            BaselineKind::NaiveColumnar => {
                let mut op = self.build_columnar(plan)?;
                collect_rows(op.as_mut())
            }
        }
    }

    /// Run a [`crate::queries::TpchQuery`] on a baseline.
    pub fn run_query(
        &self,
        q: &crate::queries::TpchQuery,
        kind: BaselineKind,
    ) -> Result<Vec<Vec<Value>>> {
        crate::queries::run_with(q, |plan| self.run(plan, kind))
    }

    fn schema_of(&self, plan: &LogicalPlan) -> Result<Arc<Schema>> {
        struct Cat<'a>(&'a BaselineDb);
        impl<'a> vectorh_planner::logical::CatalogInfo for Cat<'a> {
            fn table(&self, name: &str) -> Result<vectorh_planner::logical::TableMeta> {
                let schema = self
                    .0
                    .schemas
                    .get(name)
                    .cloned()
                    .ok_or_else(|| VhError::Catalog(format!("unknown table '{name}'")))?;
                Ok(vectorh_planner::logical::TableMeta {
                    name: name.to_string(),
                    schema,
                    rows: 0,
                    partitioning: None,
                    sort_order: None,
                })
            }
        }
        Ok(Arc::new(plan.schema(&Cat(self))?))
    }

    // --- tuple-at-a-time -------------------------------------------------------

    fn eval_rowstore(&self, plan: &LogicalPlan) -> Result<Vec<Vec<Value>>> {
        Ok(match plan {
            LogicalPlan::Scan { table, cols } => {
                let rows = self.merged_rows(table)?;
                rows.into_iter()
                    .map(|r| cols.iter().map(|&c| r[c].clone()).collect())
                    .collect()
            }
            LogicalPlan::Select { input, predicate } => {
                let schema = self.schema_of(input)?;
                let rows = self.eval_rowstore(input)?;
                let mut op =
                    RowSelect::new(Box::new(RowScan::new(schema, rows)), predicate.clone());
                collect_row_op(&mut op)?
            }
            LogicalPlan::Project { input, items } => {
                let schema = self.schema_of(input)?;
                let rows = self.eval_rowstore(input)?;
                let mut op = RowProject::new(Box::new(RowScan::new(schema, rows)), items.clone())?;
                collect_row_op(&mut op)?
            }
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
                kind,
            } => {
                let lrows = self.eval_rowstore(left)?;
                let rrows = self.eval_rowstore(right)?;
                row_join(lrows, rrows, left_keys, right_keys, *kind)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let schema = self.schema_of(input)?;
                let rows = self.eval_rowstore(input)?;
                let mut op = RowAggr::new(
                    Box::new(RowScan::new(schema, rows)),
                    group_by.clone(),
                    aggs.clone(),
                )?;
                collect_row_op(&mut op)?
            }
            LogicalPlan::Sort { input, keys, limit } => {
                let mut rows = self.eval_rowstore(input)?;
                sort_values(&mut rows, keys);
                if let Some(n) = limit {
                    rows.truncate(*n);
                }
                rows
            }
            LogicalPlan::Limit { input, n } => {
                let mut rows = self.eval_rowstore(input)?;
                rows.truncate(*n);
                rows
            }
        })
    }

    // --- single-threaded columnar ------------------------------------------------

    fn build_columnar(&self, plan: &LogicalPlan) -> Result<Box<dyn Operator>> {
        Ok(match plan {
            LogicalPlan::Scan { table, cols } => {
                let schema = self
                    .schemas
                    .get(table)
                    .ok_or_else(|| VhError::Catalog(format!("unknown table '{table}'")))?;
                let out_schema = Arc::new(schema.project(cols));
                let mut batches = Vec::new();
                if self.has_deltas(table) {
                    // Delta merge by key: the whole table re-materializes
                    // through row-wise key checks.
                    let rows = self.merged_rows(table)?;
                    let mut bcols: Vec<ColumnData> = out_schema
                        .fields()
                        .iter()
                        .map(|f| ColumnData::new(f.dtype))
                        .collect();
                    for r in &rows {
                        for (j, &c) in cols.iter().enumerate() {
                            bcols[j].push_value(&r[c])?;
                        }
                    }
                    batches.push(Batch::new(out_schema.clone(), bcols)?);
                } else {
                    // Value-at-a-time ORC-like decode of only the needed
                    // columns (column pruning works; skipping doesn't).
                    let chunks = self.encoded.get(table).expect("encoded table");
                    for chunk in chunks {
                        let bcols: Result<Vec<ColumnData>> = cols
                            .iter()
                            .map(|&c| {
                                decode(BaselineFormat::OrcLike, &chunk[c])
                                    .ok_or_else(|| VhError::Codec("baseline chunk corrupt".into()))
                            })
                            .collect();
                        batches.push(Batch::new(out_schema.clone(), bcols?)?);
                    }
                }
                let sources: Vec<Batch> = batches
                    .into_iter()
                    .flat_map(|b| {
                        // Slice into vectors for the vectorized operators.
                        let mut out = Vec::new();
                        let mut at = 0;
                        while at < b.len() {
                            let to = (at + 1024).min(b.len());
                            out.push(b.slice(at, to));
                            at = to;
                        }
                        out
                    })
                    .collect();
                Box::new(BatchSource::new(out_schema, sources))
            }
            LogicalPlan::Select { input, predicate } => {
                Box::new(VSelect::new(self.build_columnar(input)?, predicate.clone()))
            }
            LogicalPlan::Project { input, items } => {
                Box::new(VProject::new(self.build_columnar(input)?, items.clone())?)
            }
            LogicalPlan::Join {
                left,
                right,
                left_keys,
                right_keys,
                kind,
            } => {
                let k = match kind {
                    JoinKind::Inner => ExecJoinKind::Inner,
                    JoinKind::LeftOuter => ExecJoinKind::LeftOuter,
                    JoinKind::Semi => ExecJoinKind::Semi,
                    JoinKind::Anti => ExecJoinKind::Anti,
                };
                Box::new(HashJoin::new(
                    self.build_columnar(left)?,
                    self.build_columnar(right)?,
                    left_keys.clone(),
                    right_keys.clone(),
                    k,
                )?)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => Box::new(Aggr::new(
                self.build_columnar(input)?,
                group_by.clone(),
                aggs.clone(),
                AggMode::Complete,
            )?),
            LogicalPlan::Sort { input, keys, limit } => Box::new(vectorh_exec::sort::Sort::new(
                self.build_columnar(input)?,
                keys.clone(),
                *limit,
            )),
            LogicalPlan::Limit { input, n } => Box::new(vectorh_exec::sort::Limit::new(
                self.build_columnar(input)?,
                *n,
            )),
        })
    }
}

/// Row-at-a-time hash join supporting all kinds and multi-column keys.
fn row_join(
    lrows: Vec<Vec<Value>>,
    rrows: Vec<Vec<Value>>,
    lk: &[usize],
    rk: &[usize],
    kind: JoinKind,
) -> Vec<Vec<Value>> {
    let key_of = |row: &[Value], keys: &[usize]| -> String {
        keys.iter().map(|&k| format!("{}\u{1}", row[k])).collect()
    };
    let mut table: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, r) in rrows.iter().enumerate() {
        table.entry(key_of(r, rk)).or_default().push(i);
    }
    let right_width = rrows.first().map(|r| r.len()).unwrap_or(0);
    let mut out = Vec::new();
    for lrow in &lrows {
        let matches = table.get(&key_of(lrow, lk));
        match kind {
            JoinKind::Inner => {
                if let Some(ms) = matches {
                    for &m in ms {
                        let mut row = lrow.clone();
                        row.extend(rrows[m].iter().cloned());
                        out.push(row);
                    }
                }
            }
            JoinKind::LeftOuter => match matches {
                Some(ms) => {
                    for &m in ms {
                        let mut row = lrow.clone();
                        row.extend(rrows[m].iter().cloned());
                        row.push(Value::I32(1));
                        out.push(row);
                    }
                }
                None => {
                    let mut row = lrow.clone();
                    row.extend((0..right_width).map(|_| Value::I64(0)));
                    row.push(Value::I32(0));
                    out.push(row);
                }
            },
            JoinKind::Semi => {
                if matches.is_some() {
                    out.push(lrow.clone());
                }
            }
            JoinKind::Anti => {
                if matches.is_none() {
                    out.push(lrow.clone());
                }
            }
        }
    }
    out
}

fn sort_values(rows: &mut [Vec<Value>], keys: &[(usize, Dir)]) {
    rows.sort_by(|a, b| {
        for &(k, dir) in keys {
            let ord = a[k].partial_cmp(&b[k]).unwrap_or(std::cmp::Ordering::Equal);
            let ord = if dir == Dir::Desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Canonicalize rows for cross-engine comparison: floats rounded, rows
/// sorted. (Decimal sums are exact and need no rounding; float averages may
/// differ in the last ulps between accumulation orders.)
pub fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    for row in &mut rows {
        for v in row.iter_mut() {
            if let Value::F64(x) = v {
                *v = Value::F64((*x * 1e6).round() / 1e6);
            }
        }
    }
    canon_sort(&mut rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::queries::{build_query, N_QUERIES};
    use vectorh_exec::aggr::AggFn;

    #[test]
    fn baselines_agree_on_simple_plans() {
        let data = generate(0.0005, 17);
        let db = BaselineDb::load(&data).unwrap();
        for qn in [1usize, 3, 6] {
            let q = build_query(qn).unwrap();
            let a = canonical(db.run_query(&q, BaselineKind::RowStore).unwrap());
            let b = canonical(db.run_query(&q, BaselineKind::NaiveColumnar).unwrap());
            assert_eq!(a, b, "Q{qn} differs between baselines");
        }
    }

    #[test]
    fn all_queries_run_on_both_baselines() {
        let data = generate(0.0005, 23);
        let db = BaselineDb::load(&data).unwrap();
        for qn in 1..=N_QUERIES {
            let q = build_query(qn).unwrap();
            let a = db
                .run_query(&q, BaselineKind::RowStore)
                .unwrap_or_else(|e| panic!("Q{qn} rowstore: {e}"));
            let b = db
                .run_query(&q, BaselineKind::NaiveColumnar)
                .unwrap_or_else(|e| panic!("Q{qn} columnar: {e}"));
            assert_eq!(
                canonical(a),
                canonical(b),
                "Q{qn} differs between baselines"
            );
        }
    }

    #[test]
    fn delta_merge_changes_scan_results() {
        let data = generate(0.0005, 29);
        let mut db = BaselineDb::load(&data).unwrap();
        let before = db
            .run(
                &LogicalPlan::Aggregate {
                    input: Box::new(LogicalPlan::Scan {
                        table: "orders".into(),
                        cols: vec![0],
                    }),
                    group_by: vec![],
                    aggs: vec![AggFn::CountStar],
                },
                BaselineKind::RowStore,
            )
            .unwrap()[0][0]
            .as_i64()
            .unwrap();
        // Delete two orders, insert one.
        let k0 = data.orders[0][0].as_i64().unwrap();
        let k1 = data.orders[1][0].as_i64().unwrap();
        let mut new_row = data.orders[2].clone();
        new_row[0] = Value::I64(999_999);
        db.apply_delta("orders", 0, vec![new_row], vec![k0, k1]);
        for kind in [BaselineKind::RowStore, BaselineKind::NaiveColumnar] {
            let after = db
                .run(
                    &LogicalPlan::Aggregate {
                        input: Box::new(LogicalPlan::Scan {
                            table: "orders".into(),
                            cols: vec![0],
                        }),
                        group_by: vec![],
                        aggs: vec![AggFn::CountStar],
                    },
                    kind,
                )
                .unwrap()[0][0]
                .as_i64()
                .unwrap();
            assert_eq!(after, before - 2 + 1, "{kind:?}");
        }
    }
}
