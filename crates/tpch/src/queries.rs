//! The 22 TPC-H queries as logical plans (paper-default parameters).
//!
//! Queries with scalar subqueries (Q11, Q15, Q22) are decorrelated into
//! explicit two-step plans: step one computes the scalar, step two receives
//! it as a literal. Correlated EXISTS/NOT EXISTS (Q4, Q16, Q21, Q22) become
//! semi/anti joins; Q13's outer join uses the engine's `__matched` column
//! (see `vectorh_exec::join`); Q21's "different supplier" inequalities are
//! decorrelated through per-order distinct-supplier counts.

use vectorh_common::types::dec;
use vectorh_common::{Result, Value, VhError};
use vectorh_exec::aggr::AggFn;
use vectorh_exec::expr::{date_lit, Expr};
use vectorh_exec::sort::Dir;
use vectorh_planner::logical::{JoinKind, LogicalPlan};

use crate::gen::cols::{
    customer as c, lineitem as l, nation as n, orders as o, part as p, partsupp as ps, region as r,
    supplier as s,
};

pub const N_QUERIES: usize = 22;

/// A query: one plan, or a scalar-producing step plus a plan builder.
pub enum TpchQuery {
    Single(LogicalPlan),
    TwoStep {
        first: LogicalPlan,
        build: Box<dyn Fn(Value) -> LogicalPlan + Send + Sync>,
    },
}

/// Run a query through any logical-plan runner (the VectorH engine or a
/// baseline executor).
pub fn run_with<F>(q: &TpchQuery, mut runner: F) -> Result<Vec<Vec<Value>>>
where
    F: FnMut(&LogicalPlan) -> Result<Vec<Vec<Value>>>,
{
    match q {
        TpchQuery::Single(plan) => runner(plan),
        TpchQuery::TwoStep { first, build } => {
            let rows = runner(first)?;
            let scalar = rows
                .first()
                .and_then(|r| r.first())
                .cloned()
                .unwrap_or(Value::F64(0.0));
            runner(&build(scalar))
        }
    }
}

/// Run query `n` (1-based) on a VectorH engine.
pub fn run_query(vh: &vectorh::VectorH, n: usize) -> Result<Vec<Vec<Value>>> {
    let q = build_query(n)?;
    run_with(&q, |plan| vh.query_logical(plan))
}

// --- plan-builder helpers ----------------------------------------------------

fn scan(table: &str, cols: Vec<usize>) -> LogicalPlan {
    LogicalPlan::Scan {
        table: table.into(),
        cols,
    }
}

fn select(input: LogicalPlan, predicate: Expr) -> LogicalPlan {
    LogicalPlan::Select {
        input: Box::new(input),
        predicate,
    }
}

fn project(input: LogicalPlan, items: Vec<(Expr, &str)>) -> LogicalPlan {
    LogicalPlan::Project {
        input: Box::new(input),
        items: items.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
    }
}

fn join(
    left: LogicalPlan,
    right: LogicalPlan,
    lk: Vec<usize>,
    rk: Vec<usize>,
    kind: JoinKind,
) -> LogicalPlan {
    LogicalPlan::Join {
        left: Box::new(left),
        right: Box::new(right),
        left_keys: lk,
        right_keys: rk,
        kind,
    }
}

fn aggregate(input: LogicalPlan, group_by: Vec<usize>, aggs: Vec<AggFn>) -> LogicalPlan {
    LogicalPlan::Aggregate {
        input: Box::new(input),
        group_by,
        aggs,
    }
}

fn sort(input: LogicalPlan, keys: Vec<(usize, Dir)>, limit: Option<usize>) -> LogicalPlan {
    LogicalPlan::Sort {
        input: Box::new(input),
        keys,
        limit,
    }
}

fn lit_i(v: i64) -> Expr {
    Expr::lit(Value::I64(v))
}

fn lit_s(v: &str) -> Expr {
    Expr::lit(Value::Str(v.into()))
}

/// `ep * (1 - disc)` over projected column positions.
fn disc_price(ep: usize, disc: usize) -> Expr {
    Expr::mul(
        Expr::col(ep),
        Expr::sub(Expr::lit(dec("1", 2)), Expr::col(disc)),
    )
}

/// Build query `n` (1-based) with the paper's default parameters.
pub fn build_query(num: usize) -> Result<TpchQuery> {
    Ok(match num {
        1 => TpchQuery::Single(q1()),
        2 => TpchQuery::Single(q2()),
        3 => TpchQuery::Single(q3()),
        4 => TpchQuery::Single(q4()),
        5 => TpchQuery::Single(q5()),
        6 => TpchQuery::Single(q6()),
        7 => TpchQuery::Single(q7()),
        8 => TpchQuery::Single(q8()),
        9 => TpchQuery::Single(q9()),
        10 => TpchQuery::Single(q10()),
        11 => q11(),
        12 => TpchQuery::Single(q12()),
        13 => TpchQuery::Single(q13()),
        14 => TpchQuery::Single(q14()),
        15 => q15(),
        16 => TpchQuery::Single(q16()),
        17 => TpchQuery::Single(q17()),
        18 => TpchQuery::Single(q18()),
        19 => TpchQuery::Single(q19()),
        20 => TpchQuery::Single(q20()),
        21 => TpchQuery::Single(q21()),
        22 => q22(),
        other => return Err(VhError::Plan(format!("no TPC-H query {other}"))),
    })
}

/// Q1: pricing summary report.
fn q1() -> LogicalPlan {
    // scan: qty(0) ep(1) disc(2) tax(3) flag(4) status(5) ship(6)
    let li = scan(
        "lineitem",
        vec![
            l::L_QUANTITY,
            l::L_EXTENDEDPRICE,
            l::L_DISCOUNT,
            l::L_TAX,
            l::L_RETURNFLAG,
            l::L_LINESTATUS,
            l::L_SHIPDATE,
        ],
    );
    let filtered = select(li, Expr::le(Expr::col(6), date_lit("1998-09-02")));
    let pre = project(
        filtered,
        vec![
            (Expr::col(4), "flag"),
            (Expr::col(5), "status"),
            (Expr::col(0), "qty"),
            (Expr::col(1), "ep"),
            (Expr::col(2), "disc"),
            (disc_price(1, 2), "disc_price"),
            (
                Expr::mul(
                    disc_price(1, 2),
                    Expr::add(Expr::lit(dec("1", 2)), Expr::col(3)),
                ),
                "charge",
            ),
        ],
    );
    let agg = aggregate(
        pre,
        vec![0, 1],
        vec![
            AggFn::Sum(2),
            AggFn::Sum(3),
            AggFn::Sum(5),
            AggFn::Sum(6),
            AggFn::Avg(2),
            AggFn::Avg(3),
            AggFn::Avg(4),
            AggFn::CountStar,
        ],
    );
    sort(agg, vec![(0, Dir::Asc), (1, Dir::Asc)], None)
}

/// Q2: minimum-cost supplier (size 15, %BRASS, EUROPE).
fn q2() -> LogicalPlan {
    // Region-filtered supply chain:
    // partsupp(pk 0, cost 1) ⋈ supplier(suppkey...) ⋈ nation ⋈ region(EUROPE)
    let chain = || -> LogicalPlan {
        let psup = scan(
            "partsupp",
            vec![ps::PS_PARTKEY, ps::PS_SUPPKEY, ps::PS_SUPPLYCOST],
        );
        let sup = scan(
            "supplier",
            vec![
                s::S_SUPPKEY,
                s::S_NAME,
                s::S_ADDRESS,
                s::S_NATIONKEY,
                s::S_PHONE,
                s::S_ACCTBAL,
                s::S_COMMENT,
            ],
        );
        // join: [ps_pk, ps_sk, cost, s_sk, s_name, s_addr, s_nk, s_phone, s_bal, s_cmt]
        let j1 = join(psup, sup, vec![1], vec![0], JoinKind::Inner);
        let nat = scan("nation", vec![n::N_NATIONKEY, n::N_NAME, n::N_REGIONKEY]);
        // + [n_nk(10), n_name(11), n_rk(12)]
        let j2 = join(j1, nat, vec![6], vec![0], JoinKind::Inner);
        let reg = select(
            scan("region", vec![r::R_REGIONKEY, r::R_NAME]),
            Expr::eq(Expr::col(1), lit_s("EUROPE")),
        );
        // + [r_rk(13), r_name(14)]
        join(j2, reg, vec![12], vec![0], JoinKind::Inner)
    };
    // A: projected chain [partkey, cost, s_acctbal, s_name, n_name, s_addr, s_phone, s_cmt]
    let a = project(
        chain(),
        vec![
            (Expr::col(0), "partkey"),
            (Expr::col(2), "cost"),
            (Expr::col(8), "s_acctbal"),
            (Expr::col(4), "s_name"),
            (Expr::col(11), "n_name"),
            (Expr::col(5), "s_address"),
            (Expr::col(7), "s_phone"),
            (Expr::col(9), "s_comment"),
        ],
    );
    // M: min cost per part
    let m = aggregate(
        project(
            chain(),
            vec![(Expr::col(0), "partkey"), (Expr::col(2), "cost")],
        ),
        vec![0],
        vec![AggFn::Min(1)],
    );
    // A ⋈ M on (partkey, cost=min)
    let best = join(a, m, vec![0, 1], vec![0, 1], JoinKind::Inner);
    // ⋈ part with filters
    let part = select(
        scan("part", vec![p::P_PARTKEY, p::P_MFGR, p::P_TYPE, p::P_SIZE]),
        Expr::and(vec![
            Expr::eq(Expr::col(3), lit_i(15)),
            Expr::Like(Box::new(Expr::col(2)), "%BRASS".into()),
        ]),
    );
    // best(10 cols) + part(4 cols): p_partkey at 10, p_mfgr at 11
    let j = join(best, part, vec![0], vec![0], JoinKind::Inner);
    let out = project(
        j,
        vec![
            (Expr::col(2), "s_acctbal"),
            (Expr::col(3), "s_name"),
            (Expr::col(4), "n_name"),
            (Expr::col(10), "p_partkey"),
            (Expr::col(11), "p_mfgr"),
            (Expr::col(5), "s_address"),
            (Expr::col(6), "s_phone"),
            (Expr::col(7), "s_comment"),
        ],
    );
    sort(
        out,
        vec![(0, Dir::Desc), (2, Dir::Asc), (1, Dir::Asc), (3, Dir::Asc)],
        Some(100),
    )
}

/// Q3: shipping priority (BUILDING, 1995-03-15).
fn q3() -> LogicalPlan {
    let li = select(
        scan(
            "lineitem",
            vec![
                l::L_ORDERKEY,
                l::L_EXTENDEDPRICE,
                l::L_DISCOUNT,
                l::L_SHIPDATE,
            ],
        ),
        Expr::gt(Expr::col(3), date_lit("1995-03-15")),
    );
    let ord = select(
        scan(
            "orders",
            vec![
                o::O_ORDERKEY,
                o::O_CUSTKEY,
                o::O_ORDERDATE,
                o::O_SHIPPRIORITY,
            ],
        ),
        Expr::lt(Expr::col(2), date_lit("1995-03-15")),
    );
    // co-located join: [l_ok, ep, disc, ship, o_ok(4), cust(5), odate(6), shipprio(7)]
    let j1 = join(li, ord, vec![0], vec![0], JoinKind::Inner);
    let cust = select(
        scan("customer", vec![c::C_CUSTKEY, c::C_MKTSEGMENT]),
        Expr::eq(Expr::col(1), lit_s("BUILDING")),
    );
    let j2 = join(j1, cust, vec![5], vec![0], JoinKind::Inner);
    let pre = project(
        j2,
        vec![
            (Expr::col(0), "l_orderkey"),
            (Expr::col(6), "o_orderdate"),
            (Expr::col(7), "o_shippriority"),
            (disc_price(1, 2), "vol"),
        ],
    );
    let agg = aggregate(pre, vec![0, 1, 2], vec![AggFn::Sum(3)]);
    sort(agg, vec![(3, Dir::Desc), (1, Dir::Asc)], Some(10))
}

/// Q4: order priority checking (1993-07-01 quarter).
fn q4() -> LogicalPlan {
    let ord = select(
        scan(
            "orders",
            vec![o::O_ORDERKEY, o::O_ORDERDATE, o::O_ORDERPRIORITY],
        ),
        Expr::and(vec![
            Expr::ge(Expr::col(1), date_lit("1993-07-01")),
            Expr::lt(Expr::col(1), date_lit("1993-10-01")),
        ]),
    );
    let li = select(
        scan(
            "lineitem",
            vec![l::L_ORDERKEY, l::L_COMMITDATE, l::L_RECEIPTDATE],
        ),
        Expr::lt(Expr::col(1), Expr::col(2)),
    );
    let semi = join(ord, li, vec![0], vec![0], JoinKind::Semi);
    let agg = aggregate(
        project(semi, vec![(Expr::col(2), "prio")]),
        vec![0],
        vec![AggFn::CountStar],
    );
    sort(agg, vec![(0, Dir::Asc)], None)
}

/// Q5: local supplier volume (ASIA, 1994).
fn q5() -> LogicalPlan {
    let li = scan(
        "lineitem",
        vec![
            l::L_ORDERKEY,
            l::L_SUPPKEY,
            l::L_EXTENDEDPRICE,
            l::L_DISCOUNT,
        ],
    );
    let ord = select(
        scan("orders", vec![o::O_ORDERKEY, o::O_CUSTKEY, o::O_ORDERDATE]),
        Expr::and(vec![
            Expr::ge(Expr::col(2), date_lit("1994-01-01")),
            Expr::lt(Expr::col(2), date_lit("1995-01-01")),
        ]),
    );
    // [l_ok, l_sk, ep, disc, o_ok(4), cust(5), odate(6)]
    let j1 = join(li, ord, vec![0], vec![0], JoinKind::Inner);
    let cust = scan("customer", vec![c::C_CUSTKEY, c::C_NATIONKEY]);
    // + [c_ck(7), c_nk(8)]
    let j2 = join(j1, cust, vec![5], vec![0], JoinKind::Inner);
    let sup = scan("supplier", vec![s::S_SUPPKEY, s::S_NATIONKEY]);
    // local supplier: s_suppkey = l_suppkey AND s_nationkey = c_nationkey
    // + [s_sk(9), s_nk(10)]
    let j3 = join(j2, sup, vec![1, 8], vec![0, 1], JoinKind::Inner);
    let nat = scan("nation", vec![n::N_NATIONKEY, n::N_NAME, n::N_REGIONKEY]);
    // + [n_nk(11), n_name(12), n_rk(13)]
    let j4 = join(j3, nat, vec![10], vec![0], JoinKind::Inner);
    let reg = select(
        scan("region", vec![r::R_REGIONKEY, r::R_NAME]),
        Expr::eq(Expr::col(1), lit_s("ASIA")),
    );
    let j5 = join(j4, reg, vec![13], vec![0], JoinKind::Inner);
    let pre = project(
        j5,
        vec![(Expr::col(12), "n_name"), (disc_price(2, 3), "vol")],
    );
    let agg = aggregate(pre, vec![0], vec![AggFn::Sum(1)]);
    sort(agg, vec![(1, Dir::Desc)], None)
}

/// Q6: forecasting revenue change (1994, disc 0.05-0.07, qty < 24).
fn q6() -> LogicalPlan {
    let li = select(
        scan(
            "lineitem",
            vec![
                l::L_QUANTITY,
                l::L_EXTENDEDPRICE,
                l::L_DISCOUNT,
                l::L_SHIPDATE,
            ],
        ),
        Expr::and(vec![
            Expr::ge(Expr::col(3), date_lit("1994-01-01")),
            Expr::lt(Expr::col(3), date_lit("1995-01-01")),
            Expr::Between(
                Box::new(Expr::col(2)),
                Box::new(Expr::lit(dec("0.05", 2))),
                Box::new(Expr::lit(dec("0.07", 2))),
            ),
            Expr::lt(Expr::col(0), Expr::lit(dec("24", 2))),
        ]),
    );
    let pre = project(li, vec![(Expr::mul(Expr::col(1), Expr::col(2)), "rev")]);
    aggregate(pre, vec![], vec![AggFn::Sum(0)])
}

/// Q7: volume shipping (FRANCE ↔ GERMANY, 1995-1996).
fn q7() -> LogicalPlan {
    let li = select(
        scan(
            "lineitem",
            vec![
                l::L_ORDERKEY,
                l::L_SUPPKEY,
                l::L_EXTENDEDPRICE,
                l::L_DISCOUNT,
                l::L_SHIPDATE,
            ],
        ),
        Expr::Between(
            Box::new(Expr::col(4)),
            Box::new(date_lit("1995-01-01")),
            Box::new(date_lit("1996-12-31")),
        ),
    );
    let ord = scan("orders", vec![o::O_ORDERKEY, o::O_CUSTKEY]);
    // [l_ok, l_sk, ep, disc, ship, o_ok(5), cust(6)]
    let j1 = join(li, ord, vec![0], vec![0], JoinKind::Inner);
    let sup = scan("supplier", vec![s::S_SUPPKEY, s::S_NATIONKEY]);
    // + [s_sk(7), s_nk(8)]
    let j2 = join(j1, sup, vec![1], vec![0], JoinKind::Inner);
    let cust = scan("customer", vec![c::C_CUSTKEY, c::C_NATIONKEY]);
    // + [c_ck(9), c_nk(10)]
    let j3 = join(j2, cust, vec![6], vec![0], JoinKind::Inner);
    let n1 = scan("nation", vec![n::N_NATIONKEY, n::N_NAME]);
    // + [n1_nk(11), n1_name(12)] — supplier nation
    let j4 = join(j3, n1, vec![8], vec![0], JoinKind::Inner);
    let n2 = scan("nation", vec![n::N_NATIONKEY, n::N_NAME]);
    // + [n2_nk(13), n2_name(14)] — customer nation
    let j5 = join(j4, n2, vec![10], vec![0], JoinKind::Inner);
    let pair = select(
        j5,
        Expr::or(vec![
            Expr::and(vec![
                Expr::eq(Expr::col(12), lit_s("FRANCE")),
                Expr::eq(Expr::col(14), lit_s("GERMANY")),
            ]),
            Expr::and(vec![
                Expr::eq(Expr::col(12), lit_s("GERMANY")),
                Expr::eq(Expr::col(14), lit_s("FRANCE")),
            ]),
        ]),
    );
    let pre = project(
        pair,
        vec![
            (Expr::col(12), "supp_nation"),
            (Expr::col(14), "cust_nation"),
            (Expr::ExtractYear(Box::new(Expr::col(4))), "l_year"),
            (disc_price(2, 3), "vol"),
        ],
    );
    let agg = aggregate(pre, vec![0, 1, 2], vec![AggFn::Sum(3)]);
    sort(agg, vec![(0, Dir::Asc), (1, Dir::Asc), (2, Dir::Asc)], None)
}

/// Q8: national market share (BRAZIL, AMERICA, ECONOMY ANODIZED STEEL).
fn q8() -> LogicalPlan {
    let part = select(
        scan("part", vec![p::P_PARTKEY, p::P_TYPE]),
        Expr::eq(Expr::col(1), lit_s("ECONOMY ANODIZED STEEL")),
    );
    let li = scan(
        "lineitem",
        vec![
            l::L_ORDERKEY,
            l::L_PARTKEY,
            l::L_SUPPKEY,
            l::L_EXTENDEDPRICE,
            l::L_DISCOUNT,
        ],
    );
    // [l_ok, l_pk, l_sk, ep, disc, p_pk(5), p_type(6)]
    let j1 = join(li, part, vec![1], vec![0], JoinKind::Inner);
    let ord = select(
        scan("orders", vec![o::O_ORDERKEY, o::O_CUSTKEY, o::O_ORDERDATE]),
        Expr::Between(
            Box::new(Expr::col(2)),
            Box::new(date_lit("1995-01-01")),
            Box::new(date_lit("1996-12-31")),
        ),
    );
    // + [o_ok(7), cust(8), odate(9)]
    let j2 = join(j1, ord, vec![0], vec![0], JoinKind::Inner);
    let cust = scan("customer", vec![c::C_CUSTKEY, c::C_NATIONKEY]);
    // + [c_ck(10), c_nk(11)]
    let j3 = join(j2, cust, vec![8], vec![0], JoinKind::Inner);
    let n1 = scan("nation", vec![n::N_NATIONKEY, n::N_REGIONKEY]);
    // customer nation → region: + [n1_nk(12), n1_rk(13)]
    let j4 = join(j3, n1, vec![11], vec![0], JoinKind::Inner);
    let reg = select(
        scan("region", vec![r::R_REGIONKEY, r::R_NAME]),
        Expr::eq(Expr::col(1), lit_s("AMERICA")),
    );
    // + [r_rk(14), r_name(15)]
    let j5 = join(j4, reg, vec![13], vec![0], JoinKind::Inner);
    let sup = scan("supplier", vec![s::S_SUPPKEY, s::S_NATIONKEY]);
    // + [s_sk(16), s_nk(17)]
    let j6 = join(j5, sup, vec![2], vec![0], JoinKind::Inner);
    let n2 = scan("nation", vec![n::N_NATIONKEY, n::N_NAME]);
    // supplier nation name: + [n2_nk(18), n2_name(19)]
    let j7 = join(j6, n2, vec![17], vec![0], JoinKind::Inner);
    let pre = project(
        j7,
        vec![
            (Expr::ExtractYear(Box::new(Expr::col(9))), "o_year"),
            (disc_price(3, 4), "vol"),
            (
                Expr::Case(
                    vec![(Expr::eq(Expr::col(19), lit_s("BRAZIL")), disc_price(3, 4))],
                    Box::new(Expr::lit(dec("0", 2))),
                ),
                "brazil_vol",
            ),
        ],
    );
    let agg = aggregate(pre, vec![0], vec![AggFn::Sum(2), AggFn::Sum(1)]);
    let share = project(
        agg,
        vec![
            (Expr::col(0), "o_year"),
            (Expr::div(Expr::col(1), Expr::col(2)), "mkt_share"),
        ],
    );
    sort(share, vec![(0, Dir::Asc)], None)
}

/// Q9: product type profit measure (%green%).
fn q9() -> LogicalPlan {
    let part = select(
        scan("part", vec![p::P_PARTKEY, p::P_NAME]),
        Expr::Like(Box::new(Expr::col(1)), "%green%".into()),
    );
    let li = scan(
        "lineitem",
        vec![
            l::L_ORDERKEY,
            l::L_PARTKEY,
            l::L_SUPPKEY,
            l::L_QUANTITY,
            l::L_EXTENDEDPRICE,
            l::L_DISCOUNT,
        ],
    );
    // [l_ok, l_pk, l_sk, qty, ep, disc, p_pk(6), p_name(7)]
    let j1 = join(li, part, vec![1], vec![0], JoinKind::Inner);
    let psup = scan(
        "partsupp",
        vec![ps::PS_PARTKEY, ps::PS_SUPPKEY, ps::PS_SUPPLYCOST],
    );
    // two-key: + [ps_pk(8), ps_sk(9), cost(10)]
    let j2 = join(j1, psup, vec![1, 2], vec![0, 1], JoinKind::Inner);
    let sup = scan("supplier", vec![s::S_SUPPKEY, s::S_NATIONKEY]);
    // + [s_sk(11), s_nk(12)]
    let j3 = join(j2, sup, vec![2], vec![0], JoinKind::Inner);
    let ord = scan("orders", vec![o::O_ORDERKEY, o::O_ORDERDATE]);
    // + [o_ok(13), odate(14)]
    let j4 = join(j3, ord, vec![0], vec![0], JoinKind::Inner);
    let nat = scan("nation", vec![n::N_NATIONKEY, n::N_NAME]);
    // + [n_nk(15), n_name(16)]
    let j5 = join(j4, nat, vec![12], vec![0], JoinKind::Inner);
    let pre = project(
        j5,
        vec![
            (Expr::col(16), "nation"),
            (Expr::ExtractYear(Box::new(Expr::col(14))), "o_year"),
            (
                Expr::sub(disc_price(4, 5), Expr::mul(Expr::col(10), Expr::col(3))),
                "amount",
            ),
        ],
    );
    let agg = aggregate(pre, vec![0, 1], vec![AggFn::Sum(2)]);
    sort(agg, vec![(0, Dir::Asc), (1, Dir::Desc)], None)
}

/// Q10: returned item reporting (1993-10-01 quarter).
fn q10() -> LogicalPlan {
    let li = select(
        scan(
            "lineitem",
            vec![
                l::L_ORDERKEY,
                l::L_EXTENDEDPRICE,
                l::L_DISCOUNT,
                l::L_RETURNFLAG,
            ],
        ),
        Expr::eq(Expr::col(3), lit_s("R")),
    );
    let ord = select(
        scan("orders", vec![o::O_ORDERKEY, o::O_CUSTKEY, o::O_ORDERDATE]),
        Expr::and(vec![
            Expr::ge(Expr::col(2), date_lit("1993-10-01")),
            Expr::lt(Expr::col(2), date_lit("1994-01-01")),
        ]),
    );
    // [l_ok, ep, disc, flag, o_ok(4), cust(5), odate(6)]
    let j1 = join(li, ord, vec![0], vec![0], JoinKind::Inner);
    let cust = scan(
        "customer",
        vec![
            c::C_CUSTKEY,
            c::C_NAME,
            c::C_ADDRESS,
            c::C_NATIONKEY,
            c::C_PHONE,
            c::C_ACCTBAL,
            c::C_COMMENT,
        ],
    );
    // + [c_ck(7), c_name(8), c_addr(9), c_nk(10), c_phone(11), c_bal(12), c_cmt(13)]
    let j2 = join(j1, cust, vec![5], vec![0], JoinKind::Inner);
    let nat = scan("nation", vec![n::N_NATIONKEY, n::N_NAME]);
    // + [n_nk(14), n_name(15)]
    let j3 = join(j2, nat, vec![10], vec![0], JoinKind::Inner);
    let pre = project(
        j3,
        vec![
            (Expr::col(7), "c_custkey"),
            (Expr::col(8), "c_name"),
            (Expr::col(12), "c_acctbal"),
            (Expr::col(11), "c_phone"),
            (Expr::col(15), "n_name"),
            (Expr::col(9), "c_address"),
            (Expr::col(13), "c_comment"),
            (disc_price(1, 2), "rev"),
        ],
    );
    let agg = aggregate(pre, vec![0, 1, 2, 3, 4, 5, 6], vec![AggFn::Sum(7)]);
    sort(agg, vec![(7, Dir::Desc)], Some(20))
}

/// Q11: important stock identification (GERMANY, 0.0001) — two-step.
fn q11() -> TpchQuery {
    let chain = || -> LogicalPlan {
        let psup = scan(
            "partsupp",
            vec![
                ps::PS_PARTKEY,
                ps::PS_SUPPKEY,
                ps::PS_AVAILQTY,
                ps::PS_SUPPLYCOST,
            ],
        );
        let sup = scan("supplier", vec![s::S_SUPPKEY, s::S_NATIONKEY]);
        // [ps_pk, ps_sk, qty, cost, s_sk(4), s_nk(5)]
        let j1 = join(psup, sup, vec![1], vec![0], JoinKind::Inner);
        let nat = select(
            scan("nation", vec![n::N_NATIONKEY, n::N_NAME]),
            Expr::eq(Expr::col(1), lit_s("GERMANY")),
        );
        let j2 = join(j1, nat, vec![5], vec![0], JoinKind::Inner);
        project(
            j2,
            vec![
                (Expr::col(0), "ps_partkey"),
                (Expr::mul(Expr::col(3), Expr::col(2)), "value"),
            ],
        )
    };
    let first = aggregate(chain(), vec![], vec![AggFn::Sum(1)]);
    let build = move |total: Value| -> LogicalPlan {
        let threshold = total.as_f64().unwrap_or(0.0) * 0.0001;
        let agg = aggregate(chain(), vec![0], vec![AggFn::Sum(1)]);
        let filtered = select(
            agg,
            Expr::gt(Expr::col(1), Expr::lit(Value::F64(threshold))),
        );
        sort(filtered, vec![(1, Dir::Desc)], None)
    };
    TpchQuery::TwoStep {
        first,
        build: Box::new(build),
    }
}

/// Q12: shipping modes and order priority (MAIL+SHIP, 1994).
fn q12() -> LogicalPlan {
    let li = select(
        scan(
            "lineitem",
            vec![
                l::L_ORDERKEY,
                l::L_SHIPDATE,
                l::L_COMMITDATE,
                l::L_RECEIPTDATE,
                l::L_SHIPMODE,
            ],
        ),
        Expr::and(vec![
            Expr::InList(
                Box::new(Expr::col(4)),
                vec![Value::Str("MAIL".into()), Value::Str("SHIP".into())],
            ),
            Expr::lt(Expr::col(2), Expr::col(3)),
            Expr::lt(Expr::col(1), Expr::col(2)),
            Expr::ge(Expr::col(3), date_lit("1994-01-01")),
            Expr::lt(Expr::col(3), date_lit("1995-01-01")),
        ]),
    );
    let ord = scan("orders", vec![o::O_ORDERKEY, o::O_ORDERPRIORITY]);
    // [l_ok, ship, commit, receipt, mode, o_ok(5), prio(6)]
    let j = join(li, ord, vec![0], vec![0], JoinKind::Inner);
    let urgent = Expr::InList(
        Box::new(Expr::col(6)),
        vec![Value::Str("1-URGENT".into()), Value::Str("2-HIGH".into())],
    );
    let pre = project(
        j,
        vec![
            (Expr::col(4), "l_shipmode"),
            (
                Expr::Case(vec![(urgent.clone(), lit_i(1))], Box::new(lit_i(0))),
                "high_line",
            ),
            (
                Expr::Case(vec![(urgent, lit_i(0))], Box::new(lit_i(1))),
                "low_line",
            ),
        ],
    );
    let agg = aggregate(pre, vec![0], vec![AggFn::Sum(1), AggFn::Sum(2)]);
    sort(agg, vec![(0, Dir::Asc)], None)
}

/// Q13: customer distribution (special requests).
fn q13() -> LogicalPlan {
    let cust = scan("customer", vec![c::C_CUSTKEY]);
    let ord = select(
        scan("orders", vec![o::O_ORDERKEY, o::O_CUSTKEY, o::O_COMMENT]),
        Expr::NotLike(Box::new(Expr::col(2)), "%special%requests%".into()),
    );
    // left outer: [c_ck, o_ok(1), o_ck(2), o_cmt(3), __matched(4)]
    let j = join(cust, ord, vec![0], vec![1], JoinKind::LeftOuter);
    // c_count per customer: count matched orders (NULL-safe via __matched)
    let per_cust = aggregate(j, vec![0], vec![AggFn::Sum(4)]);
    let dist = aggregate(
        project(per_cust, vec![(Expr::col(1), "c_count")]),
        vec![0],
        vec![AggFn::CountStar],
    );
    sort(dist, vec![(1, Dir::Desc), (0, Dir::Desc)], None)
}

/// Q14: promotion effect (1995-09).
fn q14() -> LogicalPlan {
    let li = select(
        scan(
            "lineitem",
            vec![
                l::L_PARTKEY,
                l::L_EXTENDEDPRICE,
                l::L_DISCOUNT,
                l::L_SHIPDATE,
            ],
        ),
        Expr::and(vec![
            Expr::ge(Expr::col(3), date_lit("1995-09-01")),
            Expr::lt(Expr::col(3), date_lit("1995-10-01")),
        ]),
    );
    let part = scan("part", vec![p::P_PARTKEY, p::P_TYPE]);
    // [l_pk, ep, disc, ship, p_pk(4), p_type(5)]
    let j = join(li, part, vec![0], vec![0], JoinKind::Inner);
    let pre = project(
        j,
        vec![
            (
                Expr::Case(
                    vec![(
                        Expr::Like(Box::new(Expr::col(5)), "PROMO%".into()),
                        disc_price(1, 2),
                    )],
                    Box::new(Expr::lit(dec("0", 2))),
                ),
                "promo",
            ),
            (disc_price(1, 2), "total"),
        ],
    );
    let agg = aggregate(pre, vec![], vec![AggFn::Sum(0), AggFn::Sum(1)]);
    project(
        agg,
        vec![(
            Expr::mul(
                Expr::lit(Value::F64(100.0)),
                Expr::div(Expr::col(0), Expr::col(1)),
            ),
            "promo_revenue",
        )],
    )
}

/// Q15: top supplier (1996-Q1) — two-step over the revenue view.
fn q15() -> TpchQuery {
    let revenue = || -> LogicalPlan {
        let li = select(
            scan(
                "lineitem",
                vec![
                    l::L_SUPPKEY,
                    l::L_EXTENDEDPRICE,
                    l::L_DISCOUNT,
                    l::L_SHIPDATE,
                ],
            ),
            Expr::and(vec![
                Expr::ge(Expr::col(3), date_lit("1996-01-01")),
                Expr::lt(Expr::col(3), date_lit("1996-04-01")),
            ]),
        );
        aggregate(
            project(
                li,
                vec![(Expr::col(0), "supplier_no"), (disc_price(1, 2), "rev")],
            ),
            vec![0],
            vec![AggFn::Sum(1)],
        )
    };
    let first = aggregate(revenue(), vec![], vec![AggFn::Max(1)]);
    let build = move |max_rev: Value| -> LogicalPlan {
        let best = select(
            revenue(),
            Expr::eq(Expr::col(1), Expr::Lit(max_rev.clone())),
        );
        let sup = scan(
            "supplier",
            vec![s::S_SUPPKEY, s::S_NAME, s::S_ADDRESS, s::S_PHONE],
        );
        // [supplier_no, total_rev, s_sk(2), s_name(3), s_addr(4), s_phone(5)]
        let j = join(best, sup, vec![0], vec![0], JoinKind::Inner);
        let out = project(
            j,
            vec![
                (Expr::col(2), "s_suppkey"),
                (Expr::col(3), "s_name"),
                (Expr::col(4), "s_address"),
                (Expr::col(5), "s_phone"),
                (Expr::col(1), "total_revenue"),
            ],
        );
        sort(out, vec![(0, Dir::Asc)], None)
    };
    TpchQuery::TwoStep {
        first,
        build: Box::new(build),
    }
}

/// Q16: parts/supplier relationship.
fn q16() -> LogicalPlan {
    let part = select(
        scan("part", vec![p::P_PARTKEY, p::P_BRAND, p::P_TYPE, p::P_SIZE]),
        Expr::and(vec![
            Expr::ne(Expr::col(1), lit_s("Brand#45")),
            Expr::NotLike(Box::new(Expr::col(2)), "MEDIUM POLISHED%".into()),
            Expr::InList(
                Box::new(Expr::col(3)),
                [49i64, 14, 23, 45, 19, 3, 36, 9]
                    .iter()
                    .map(|&v| Value::I64(v))
                    .collect(),
            ),
        ]),
    );
    let psup = scan("partsupp", vec![ps::PS_PARTKEY, ps::PS_SUPPKEY]);
    // [ps_pk, ps_sk, p_pk(2), brand(3), type(4), size(5)]
    let j = join(psup, part, vec![0], vec![0], JoinKind::Inner);
    // Exclude complaint suppliers (NOT IN → anti join).
    let bad = select(
        scan("supplier", vec![s::S_SUPPKEY, s::S_COMMENT]),
        Expr::Like(Box::new(Expr::col(1)), "%Customer%Complaints%".into()),
    );
    let cleaned = join(j, bad, vec![1], vec![0], JoinKind::Anti);
    let pre = project(
        cleaned,
        vec![
            (Expr::col(3), "p_brand"),
            (Expr::col(4), "p_type"),
            (Expr::col(5), "p_size"),
            (Expr::col(1), "ps_suppkey"),
        ],
    );
    let agg = aggregate(pre, vec![0, 1, 2], vec![AggFn::CountDistinct(3)]);
    sort(
        agg,
        vec![(3, Dir::Desc), (0, Dir::Asc), (1, Dir::Asc), (2, Dir::Asc)],
        None,
    )
}

/// Q17: small-quantity-order revenue (Brand#23, MED BOX).
fn q17() -> LogicalPlan {
    let avg_qty = aggregate(
        scan("lineitem", vec![l::L_PARTKEY, l::L_QUANTITY]),
        vec![0],
        vec![AggFn::Avg(1)],
    ); // [partkey, avg_qty(F64)]
    let part = select(
        scan("part", vec![p::P_PARTKEY, p::P_BRAND, p::P_CONTAINER]),
        Expr::and(vec![
            Expr::eq(Expr::col(1), lit_s("Brand#23")),
            Expr::eq(Expr::col(2), lit_s("MED BOX")),
        ]),
    );
    let li = scan(
        "lineitem",
        vec![l::L_PARTKEY, l::L_QUANTITY, l::L_EXTENDEDPRICE],
    );
    // [l_pk, qty, ep, p_pk(3), brand(4), cont(5)]
    let j1 = join(li, part, vec![0], vec![0], JoinKind::Inner);
    // + [a_pk(6), avg(7)]
    let j2 = join(j1, avg_qty, vec![0], vec![0], JoinKind::Inner);
    let small = select(
        j2,
        Expr::lt(
            Expr::col(1),
            Expr::mul(Expr::lit(Value::F64(0.2)), Expr::col(7)),
        ),
    );
    let agg = aggregate(
        project(small, vec![(Expr::col(2), "ep")]),
        vec![],
        vec![AggFn::Sum(0)],
    );
    project(
        agg,
        vec![(
            Expr::div(Expr::col(0), Expr::lit(Value::F64(7.0))),
            "avg_yearly",
        )],
    )
}

/// Q18: large volume customers (qty > 300).
fn q18() -> LogicalPlan {
    let big = select(
        aggregate(
            scan("lineitem", vec![l::L_ORDERKEY, l::L_QUANTITY]),
            vec![0],
            vec![AggFn::Sum(1)],
        ),
        Expr::gt(Expr::col(1), Expr::lit(dec("300", 2))),
    ); // [orderkey, sum_qty]
    let ord = scan(
        "orders",
        vec![o::O_ORDERKEY, o::O_CUSTKEY, o::O_ORDERDATE, o::O_TOTALPRICE],
    );
    let picked = join(ord, big, vec![0], vec![0], JoinKind::Semi);
    let cust = scan("customer", vec![c::C_CUSTKEY, c::C_NAME]);
    // [o_ok, cust, odate, price, c_ck(4), c_name(5)]
    let j1 = join(picked, cust, vec![1], vec![0], JoinKind::Inner);
    let li = scan("lineitem", vec![l::L_ORDERKEY, l::L_QUANTITY]);
    // + [l_ok(6), qty(7)]
    let j2 = join(j1, li, vec![0], vec![0], JoinKind::Inner);
    let pre = project(
        j2,
        vec![
            (Expr::col(5), "c_name"),
            (Expr::col(4), "c_custkey"),
            (Expr::col(0), "o_orderkey"),
            (Expr::col(2), "o_orderdate"),
            (Expr::col(3), "o_totalprice"),
            (Expr::col(7), "qty"),
        ],
    );
    let agg = aggregate(pre, vec![0, 1, 2, 3, 4], vec![AggFn::Sum(5)]);
    sort(agg, vec![(4, Dir::Desc), (3, Dir::Asc)], Some(100))
}

/// Q19: discounted revenue (three brand/container/quantity cases).
fn q19() -> LogicalPlan {
    let li = select(
        scan(
            "lineitem",
            vec![
                l::L_PARTKEY,
                l::L_QUANTITY,
                l::L_EXTENDEDPRICE,
                l::L_DISCOUNT,
                l::L_SHIPINSTRUCT,
                l::L_SHIPMODE,
            ],
        ),
        Expr::and(vec![
            Expr::InList(
                Box::new(Expr::col(5)),
                vec![Value::Str("AIR".into()), Value::Str("REG AIR".into())],
            ),
            Expr::eq(Expr::col(4), lit_s("DELIVER IN PERSON")),
        ]),
    );
    let part = scan(
        "part",
        vec![p::P_PARTKEY, p::P_BRAND, p::P_SIZE, p::P_CONTAINER],
    );
    // [l_pk, qty, ep, disc, instr, mode, p_pk(6), brand(7), size(8), cont(9)]
    let j = join(li, part, vec![0], vec![0], JoinKind::Inner);
    let case = |brand: &str, conts: [&str; 4], qlo: i64, qhi: i64, smax: i64| -> Expr {
        Expr::and(vec![
            Expr::eq(Expr::col(7), lit_s(brand)),
            Expr::InList(
                Box::new(Expr::col(9)),
                conts.iter().map(|s| Value::Str(s.to_string())).collect(),
            ),
            Expr::Between(
                Box::new(Expr::col(1)),
                Box::new(Expr::lit(dec(&qlo.to_string(), 2))),
                Box::new(Expr::lit(dec(&qhi.to_string(), 2))),
            ),
            Expr::Between(
                Box::new(Expr::col(8)),
                Box::new(lit_i(1)),
                Box::new(lit_i(smax)),
            ),
        ])
    };
    let filtered = select(
        j,
        Expr::or(vec![
            case(
                "Brand#12",
                ["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
                1,
                11,
                5,
            ),
            case(
                "Brand#23",
                ["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
                10,
                20,
                10,
            ),
            case(
                "Brand#34",
                ["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
                20,
                30,
                15,
            ),
        ]),
    );
    aggregate(
        project(filtered, vec![(disc_price(2, 3), "rev")]),
        vec![],
        vec![AggFn::Sum(0)],
    )
}

/// Q20: potential part promotion (forest, 1994, CANADA).
fn q20() -> LogicalPlan {
    // Half of 1994's shipped quantity per (part, supplier).
    let shipped = aggregate(
        select(
            scan(
                "lineitem",
                vec![l::L_PARTKEY, l::L_SUPPKEY, l::L_QUANTITY, l::L_SHIPDATE],
            ),
            Expr::and(vec![
                Expr::ge(Expr::col(3), date_lit("1994-01-01")),
                Expr::lt(Expr::col(3), date_lit("1995-01-01")),
            ]),
        ),
        vec![0, 1],
        vec![AggFn::Sum(2)],
    ); // [partkey, suppkey, sum_qty]
    let half = project(
        shipped,
        vec![
            (Expr::col(0), "partkey"),
            (Expr::col(1), "suppkey"),
            (
                Expr::mul(Expr::col(2), Expr::lit(dec("0.5", 2))),
                "half_qty",
            ),
        ],
    );
    let forest = select(
        scan("part", vec![p::P_PARTKEY, p::P_NAME]),
        Expr::Like(Box::new(Expr::col(1)), "forest%".into()),
    );
    let psup = scan(
        "partsupp",
        vec![ps::PS_PARTKEY, ps::PS_SUPPKEY, ps::PS_AVAILQTY],
    );
    let ps_forest = join(psup, forest, vec![0], vec![0], JoinKind::Semi);
    // [ps_pk, ps_sk, avail, h_pk(3), h_sk(4), half(5)]
    let j = join(ps_forest, half, vec![0, 1], vec![0, 1], JoinKind::Inner);
    let excess = select(j, Expr::gt(Expr::col(2), Expr::col(5)));
    let suppliers = project(excess, vec![(Expr::col(1), "suppkey")]);
    let sup = scan(
        "supplier",
        vec![s::S_SUPPKEY, s::S_NAME, s::S_ADDRESS, s::S_NATIONKEY],
    );
    let picked = join(sup, suppliers, vec![0], vec![0], JoinKind::Semi);
    let nat = select(
        scan("nation", vec![n::N_NATIONKEY, n::N_NAME]),
        Expr::eq(Expr::col(1), lit_s("CANADA")),
    );
    // [s_sk, s_name, s_addr, s_nk, n_nk(4), n_name(5)]
    let j2 = join(picked, nat, vec![3], vec![0], JoinKind::Inner);
    let out = project(
        j2,
        vec![(Expr::col(1), "s_name"), (Expr::col(2), "s_address")],
    );
    sort(out, vec![(0, Dir::Asc)], None)
}

/// Q21: suppliers who kept orders waiting (SAUDI ARABIA).
fn q21() -> LogicalPlan {
    // Orders with >1 distinct supplier.
    let multi = select(
        aggregate(
            scan("lineitem", vec![l::L_ORDERKEY, l::L_SUPPKEY]),
            vec![0],
            vec![AggFn::CountDistinct(1)],
        ),
        Expr::gt(Expr::col(1), lit_i(1)),
    ); // [orderkey, nsupp]
       // Late lines per order: distinct late suppliers.
    let late_counts = aggregate(
        select(
            scan(
                "lineitem",
                vec![
                    l::L_ORDERKEY,
                    l::L_SUPPKEY,
                    l::L_COMMITDATE,
                    l::L_RECEIPTDATE,
                ],
            ),
            Expr::gt(Expr::col(3), Expr::col(2)),
        ),
        vec![0],
        vec![AggFn::CountDistinct(1)],
    ); // [orderkey, n_late_supp]
    let l1 = select(
        scan(
            "lineitem",
            vec![
                l::L_ORDERKEY,
                l::L_SUPPKEY,
                l::L_COMMITDATE,
                l::L_RECEIPTDATE,
            ],
        ),
        Expr::gt(Expr::col(3), Expr::col(2)),
    );
    let ord = select(
        scan("orders", vec![o::O_ORDERKEY, o::O_ORDERSTATUS]),
        Expr::eq(Expr::col(1), lit_s("F")),
    );
    // [l_ok, l_sk, commit, receipt, o_ok(4), status(5)]
    let j1 = join(l1, ord, vec![0], vec![0], JoinKind::Inner);
    // EXISTS other supplier on the order.
    let j2 = join(j1, multi, vec![0], vec![0], JoinKind::Semi);
    // NOT EXISTS other *late* supplier: join late counts, require == 1.
    // + [lc_ok(6), n_late(7)]
    let j3 = join(j2, late_counts, vec![0], vec![0], JoinKind::Inner);
    let only_me = select(j3, Expr::eq(Expr::col(7), lit_i(1)));
    let sup = scan("supplier", vec![s::S_SUPPKEY, s::S_NAME, s::S_NATIONKEY]);
    // + [s_sk(8), s_name(9), s_nk(10)]
    let j4 = join(only_me, sup, vec![1], vec![0], JoinKind::Inner);
    let nat = select(
        scan("nation", vec![n::N_NATIONKEY, n::N_NAME]),
        Expr::eq(Expr::col(1), lit_s("SAUDI ARABIA")),
    );
    let j5 = join(j4, nat, vec![10], vec![0], JoinKind::Inner);
    let agg = aggregate(
        project(j5, vec![(Expr::col(9), "s_name")]),
        vec![0],
        vec![AggFn::CountStar],
    );
    sort(agg, vec![(1, Dir::Desc), (0, Dir::Asc)], Some(100))
}

/// Q22: global sales opportunity — two-step (avg acctbal scalar).
fn q22() -> TpchQuery {
    let codes: Vec<Value> = ["13", "31", "23", "29", "30", "18", "17"]
        .iter()
        .map(|s| Value::Str(s.to_string()))
        .collect();
    let cust_in_codes = {
        let codes = codes.clone();
        move || -> LogicalPlan {
            select(
                project(
                    scan("customer", vec![c::C_CUSTKEY, c::C_PHONE, c::C_ACCTBAL]),
                    vec![
                        (Expr::col(0), "custkey"),
                        (Expr::Substr(Box::new(Expr::col(1)), 1, 2), "cntrycode"),
                        (Expr::col(2), "acctbal"),
                    ],
                ),
                Expr::InList(Box::new(Expr::col(1)), codes.clone()),
            )
        }
    };
    let first = aggregate(
        select(
            cust_in_codes(),
            Expr::gt(Expr::col(2), Expr::lit(dec("0", 2))),
        ),
        vec![],
        vec![AggFn::Avg(2)],
    );
    let build = move |avg_bal: Value| -> LogicalPlan {
        let rich = select(
            cust_in_codes(),
            Expr::gt(Expr::col(2), Expr::Lit(avg_bal.clone())),
        );
        let ord = scan("orders", vec![o::O_ORDERKEY, o::O_CUSTKEY]);
        let no_orders = join(rich, ord, vec![0], vec![1], JoinKind::Anti);
        let agg = aggregate(
            project(
                no_orders,
                vec![(Expr::col(1), "cntrycode"), (Expr::col(2), "acctbal")],
            ),
            vec![0],
            vec![AggFn::CountStar, AggFn::Sum(1)],
        );
        sort(agg, vec![(0, Dir::Asc)], None)
    };
    TpchQuery::TwoStep {
        first,
        build: Box::new(build),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_planner::logical::{MemoryCatalog, TableMeta};

    /// A catalog with the TPC-H schemas (small row counts).
    fn catalog() -> MemoryCatalog {
        let vh = vectorh::VectorH::start(vectorh::ClusterConfig::default()).unwrap();
        crate::schema::create_tables(&vh, 4).unwrap();
        let mut mc = MemoryCatalog::new();
        for t in crate::schema::table_names() {
            let rt = vh.table(t).unwrap();
            mc.add(TableMeta {
                name: t.to_string(),
                schema: rt.def.schema.clone(),
                rows: 1000,
                partitioning: rt.def.partitioning.clone(),
                sort_order: rt.def.sort_order.clone(),
            });
        }
        mc
    }

    #[test]
    fn all_queries_typecheck_against_schema() {
        let cat = catalog();
        for qn in 1..=N_QUERIES {
            let q = build_query(qn).unwrap();
            match q {
                TpchQuery::Single(plan) => {
                    plan.schema(&cat).unwrap_or_else(|e| panic!("Q{qn}: {e}"));
                }
                TpchQuery::TwoStep { first, build } => {
                    first
                        .schema(&cat)
                        .unwrap_or_else(|e| panic!("Q{qn} step1: {e}"));
                    let plan2 = build(Value::F64(1.0));
                    plan2
                        .schema(&cat)
                        .unwrap_or_else(|e| panic!("Q{qn} step2: {e}"));
                }
            }
        }
        assert!(build_query(0).is_err());
        assert!(build_query(23).is_err());
    }

    #[test]
    fn all_queries_optimize() {
        use vectorh_planner::{ParallelRewriter, RewriterOptions};
        let cat = catalog();
        let rw = ParallelRewriter::new(&cat, RewriterOptions::default());
        for qn in 1..=N_QUERIES {
            match build_query(qn).unwrap() {
                TpchQuery::Single(plan) => {
                    rw.rewrite(&plan).unwrap_or_else(|e| panic!("Q{qn}: {e}"));
                }
                TpchQuery::TwoStep { first, build } => {
                    rw.rewrite(&first)
                        .unwrap_or_else(|e| panic!("Q{qn} step1: {e}"));
                    rw.rewrite(&build(Value::F64(1.0)))
                        .unwrap_or_else(|e| panic!("Q{qn} step2: {e}"));
                }
            }
        }
    }
}
