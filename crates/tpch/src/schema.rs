//! The paper's TPC-H physical design (§8) and data loading.
//!
//! "Clustered indexes are defined for region and part on their primary
//! keys; orders is clustered on o_orderdate, and lineitem, partsupp and
//! nation are clustered on their foreign keys l_orderkey, ps_partkey and
//! n_regionkey. We also partition lineitem and orders on l_orderkey and
//! o_orderkey ... part and partsupp on p_partkey and ps_partkey ... as well
//! as customer on c_custkey." — so lineitem⋈orders and part⋈partsupp are
//! co-located merge joins. The paper uses 180 partitions; scale the count
//! to the simulated cluster.

use vectorh::{TableBuilder, VectorH};
use vectorh_common::{DataType, Result};

use crate::gen::TpchData;

const DEC: DataType = DataType::Decimal { scale: 2 };

/// All table names in load order.
pub fn table_names() -> Vec<&'static str> {
    vec![
        "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
    ]
}

/// The eight table definitions with the paper's DDL, using `parts`
/// partitions for the big tables.
pub fn table_defs(parts: usize) -> Result<Vec<vectorh::TableDef>> {
    let defs = vec![
        builder_build(
            TableBuilder::new("region")
                .column("r_regionkey", DataType::I64)
                .column("r_name", DataType::Str)
                .column("r_comment", DataType::Str)
                .clustered_by(&["r_regionkey"]),
        )?,
        builder_build(
            TableBuilder::new("nation")
                .column("n_nationkey", DataType::I64)
                .column("n_name", DataType::Str)
                .column("n_regionkey", DataType::I64)
                .column("n_comment", DataType::Str)
                .clustered_by(&["n_regionkey"]),
        )?,
        builder_build(
            TableBuilder::new("supplier")
                .column("s_suppkey", DataType::I64)
                .column("s_name", DataType::Str)
                .column("s_address", DataType::Str)
                .column("s_nationkey", DataType::I64)
                .column("s_phone", DataType::Str)
                .column("s_acctbal", DEC)
                .column("s_comment", DataType::Str),
        )?,
        builder_build(
            TableBuilder::new("customer")
                .column("c_custkey", DataType::I64)
                .column("c_name", DataType::Str)
                .column("c_address", DataType::Str)
                .column("c_nationkey", DataType::I64)
                .column("c_phone", DataType::Str)
                .column("c_acctbal", DEC)
                .column("c_mktsegment", DataType::Str)
                .column("c_comment", DataType::Str)
                .partition_by(&["c_custkey"], parts),
        )?,
        builder_build(
            TableBuilder::new("part")
                .column("p_partkey", DataType::I64)
                .column("p_name", DataType::Str)
                .column("p_mfgr", DataType::Str)
                .column("p_brand", DataType::Str)
                .column("p_type", DataType::Str)
                .column("p_size", DataType::I64)
                .column("p_container", DataType::Str)
                .column("p_retailprice", DEC)
                .column("p_comment", DataType::Str)
                .partition_by(&["p_partkey"], parts)
                .clustered_by(&["p_partkey"]),
        )?,
        builder_build(
            TableBuilder::new("partsupp")
                .column("ps_partkey", DataType::I64)
                .column("ps_suppkey", DataType::I64)
                .column("ps_availqty", DataType::I64)
                .column("ps_supplycost", DEC)
                .column("ps_comment", DataType::Str)
                .partition_by(&["ps_partkey"], parts)
                .clustered_by(&["ps_partkey"]),
        )?,
        builder_build(
            TableBuilder::new("orders")
                .column("o_orderkey", DataType::I64)
                .column("o_custkey", DataType::I64)
                .column("o_orderstatus", DataType::Str)
                .column("o_totalprice", DEC)
                .column("o_orderdate", DataType::Date)
                .column("o_orderpriority", DataType::Str)
                .column("o_shippriority", DataType::I64)
                .column("o_comment", DataType::Str)
                .partition_by(&["o_orderkey"], parts)
                .clustered_by(&["o_orderdate"]),
        )?,
        builder_build(
            TableBuilder::new("lineitem")
                .column("l_orderkey", DataType::I64)
                .column("l_partkey", DataType::I64)
                .column("l_suppkey", DataType::I64)
                .column("l_linenumber", DataType::I64)
                .column("l_quantity", DEC)
                .column("l_extendedprice", DEC)
                .column("l_discount", DEC)
                .column("l_tax", DEC)
                .column("l_returnflag", DataType::Str)
                .column("l_linestatus", DataType::Str)
                .column("l_shipdate", DataType::Date)
                .column("l_commitdate", DataType::Date)
                .column("l_receiptdate", DataType::Date)
                .column("l_shipinstruct", DataType::Str)
                .column("l_shipmode", DataType::Str)
                .column("l_comment", DataType::Str)
                .partition_by(&["l_orderkey"], parts)
                .clustered_by(&["l_orderkey"]),
        )?,
    ];
    Ok(defs)
}

fn builder_build(b: TableBuilder) -> Result<vectorh::TableDef> {
    b.build()
}

/// Create the eight tables on an engine.
pub fn create_tables(vh: &VectorH, parts: usize) -> Result<()> {
    for def in table_defs(parts)? {
        vh.create_table_def(def)?;
    }
    Ok(())
}

/// Bulk-load generated data.
pub fn load(vh: &VectorH, data: TpchData) -> Result<()> {
    vh.insert_rows("region", data.region)?;
    vh.insert_rows("nation", data.nation)?;
    vh.insert_rows("supplier", data.supplier)?;
    vh.insert_rows("customer", data.customer)?;
    vh.insert_rows("part", data.part)?;
    vh.insert_rows("partsupp", data.partsupp)?;
    vh.insert_rows("orders", data.orders)?;
    vh.insert_rows("lineitem", data.lineitem)?;
    Ok(())
}

/// Create + generate + load a TPC-H database in one call.
pub fn setup(vh: &VectorH, sf: f64, parts: usize, seed: u64) -> Result<TpchData> {
    create_tables(vh, parts)?;
    let data = crate::gen::generate(sf, seed);
    let copy = clone_data(&data);
    load(vh, data)?;
    Ok(copy)
}

/// Clone a dataset (kept for baseline engines / refresh bookkeeping).
pub fn clone_data(d: &TpchData) -> TpchData {
    TpchData {
        region: d.region.clone(),
        nation: d.nation.clone(),
        supplier: d.supplier.clone(),
        customer: d.customer.clone(),
        part: d.part.clone(),
        partsupp: d.partsupp.clone(),
        orders: d.orders.clone(),
        lineitem: d.lineitem.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh::ClusterConfig;

    #[test]
    fn create_and_load_tiny() {
        let vh = VectorH::start(ClusterConfig {
            nodes: 3,
            rows_per_chunk: 128,
            ..Default::default()
        })
        .unwrap();
        let data = setup(&vh, 0.001, 4, 42).unwrap();
        assert_eq!(vh.table_rows("region").unwrap(), 5);
        assert_eq!(vh.table_rows("nation").unwrap(), 25);
        assert_eq!(
            vh.table_rows("lineitem").unwrap(),
            data.lineitem.len() as u64
        );
        assert_eq!(vh.table_rows("orders").unwrap(), data.orders.len() as u64);
        // Co-partitioned: lineitem and orders have the same partition count.
        assert_eq!(
            vh.table("lineitem").unwrap().n_partitions(),
            vh.table("orders").unwrap().n_partitions()
        );
        // Replicated small table: one partition.
        assert_eq!(vh.table("nation").unwrap().n_partitions(), 1);
    }
}
