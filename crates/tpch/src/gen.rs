//! A dbgen-style TPC-H data generator.
//!
//! Deterministic (seeded), scaled by SF, and faithful to the value
//! distributions the 22 queries depend on: date ranges and correlations
//! (receipt ≥ ship ≥ order date), the brand/type/container vocabularies,
//! phone-prefix ↔ nation correlation (Q22), priority/segment/mode domains,
//! and the comment patterns Q13 and Q16 grep for. Rows per table follow the
//! spec ratios: lineitem ≈ 4×orders, partsupp = 4×part, etc.

use vectorh_common::rng::SplitMix64;
use vectorh_common::types::date;
use vectorh_common::Value;

/// All eight tables, as rows.
pub struct TpchData {
    pub region: Vec<Vec<Value>>,
    pub nation: Vec<Vec<Value>>,
    pub supplier: Vec<Vec<Value>>,
    pub customer: Vec<Vec<Value>>,
    pub part: Vec<Vec<Value>>,
    pub partsupp: Vec<Vec<Value>>,
    pub orders: Vec<Vec<Value>>,
    pub lineitem: Vec<Vec<Value>>,
}

impl TpchData {
    pub fn total_rows(&self) -> usize {
        self.region.len()
            + self.nation.len()
            + self.supplier.len()
            + self.customer.len()
            + self.part.len()
            + self.partsupp.len()
            + self.orders.len()
            + self.lineitem.len()
    }
}

pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// (name, region index) — the 25 standard nations.
pub const NATIONS: [(&str, u32); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
pub const SHIP_INSTRUCT: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
pub const TYPE_1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
pub const TYPE_2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
pub const TYPE_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
pub const CONTAINER_1: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
pub const CONTAINER_2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
pub const COLORS: [&str; 12] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "blue",
    "chocolate",
    "forest",
    "green",
    "ivory",
    "lemon",
    "red",
];
const COMMENT_WORDS: [&str; 16] = [
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "express",
    "regular",
    "ironic",
    "final",
    "pending",
    "bold",
    "silent",
    "even",
    "packages",
    "deposits",
    "accounts",
    "requests",
];

fn comment(rng: &mut SplitMix64, words: usize) -> String {
    (0..words)
        .map(|_| *rng.choose(&COMMENT_WORDS).unwrap())
        .collect::<Vec<_>>()
        .join(" ")
}

fn dec2(rng: &mut SplitMix64, lo: i64, hi: i64) -> Value {
    Value::Decimal(rng.range_i64(lo, hi), 2)
}

/// Column index constants, so query builders read like the spec.
pub mod cols {
    pub mod region {
        pub const R_REGIONKEY: usize = 0;
        pub const R_NAME: usize = 1;
    }
    pub mod nation {
        pub const N_NATIONKEY: usize = 0;
        pub const N_NAME: usize = 1;
        pub const N_REGIONKEY: usize = 2;
    }
    pub mod supplier {
        pub const S_SUPPKEY: usize = 0;
        pub const S_NAME: usize = 1;
        pub const S_ADDRESS: usize = 2;
        pub const S_NATIONKEY: usize = 3;
        pub const S_PHONE: usize = 4;
        pub const S_ACCTBAL: usize = 5;
        pub const S_COMMENT: usize = 6;
    }
    pub mod customer {
        pub const C_CUSTKEY: usize = 0;
        pub const C_NAME: usize = 1;
        pub const C_ADDRESS: usize = 2;
        pub const C_NATIONKEY: usize = 3;
        pub const C_PHONE: usize = 4;
        pub const C_ACCTBAL: usize = 5;
        pub const C_MKTSEGMENT: usize = 6;
        pub const C_COMMENT: usize = 7;
    }
    pub mod part {
        pub const P_PARTKEY: usize = 0;
        pub const P_NAME: usize = 1;
        pub const P_MFGR: usize = 2;
        pub const P_BRAND: usize = 3;
        pub const P_TYPE: usize = 4;
        pub const P_SIZE: usize = 5;
        pub const P_CONTAINER: usize = 6;
        pub const P_RETAILPRICE: usize = 7;
    }
    pub mod partsupp {
        pub const PS_PARTKEY: usize = 0;
        pub const PS_SUPPKEY: usize = 1;
        pub const PS_AVAILQTY: usize = 2;
        pub const PS_SUPPLYCOST: usize = 3;
    }
    pub mod orders {
        pub const O_ORDERKEY: usize = 0;
        pub const O_CUSTKEY: usize = 1;
        pub const O_ORDERSTATUS: usize = 2;
        pub const O_TOTALPRICE: usize = 3;
        pub const O_ORDERDATE: usize = 4;
        pub const O_ORDERPRIORITY: usize = 5;
        pub const O_SHIPPRIORITY: usize = 6;
        pub const O_COMMENT: usize = 7;
    }
    pub mod lineitem {
        pub const L_ORDERKEY: usize = 0;
        pub const L_PARTKEY: usize = 1;
        pub const L_SUPPKEY: usize = 2;
        pub const L_LINENUMBER: usize = 3;
        pub const L_QUANTITY: usize = 4;
        pub const L_EXTENDEDPRICE: usize = 5;
        pub const L_DISCOUNT: usize = 6;
        pub const L_TAX: usize = 7;
        pub const L_RETURNFLAG: usize = 8;
        pub const L_LINESTATUS: usize = 9;
        pub const L_SHIPDATE: usize = 10;
        pub const L_COMMITDATE: usize = 11;
        pub const L_RECEIPTDATE: usize = 12;
        pub const L_SHIPINSTRUCT: usize = 13;
        pub const L_SHIPMODE: usize = 14;
    }
}

/// Table row counts at a scale factor.
pub fn sizes(sf: f64) -> (usize, usize, usize, usize, usize) {
    let supplier = ((sf * 10_000.0) as usize).max(10);
    let customer = ((sf * 150_000.0) as usize).max(30);
    let part = ((sf * 200_000.0) as usize).max(40);
    let orders = ((sf * 1_500_000.0) as usize).max(150);
    (supplier, customer, part, orders, part * 4)
}

/// Generate the full dataset.
pub fn generate(sf: f64, seed: u64) -> TpchData {
    let mut rng = SplitMix64::new(seed);
    let (n_supplier, n_customer, n_part, n_orders, _n_partsupp) = sizes(sf);

    let region: Vec<Vec<Value>> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                Value::I64(i as i64),
                Value::Str(name.to_string()),
                Value::Str(comment(&mut rng, 3)),
            ]
        })
        .collect();

    let nation: Vec<Vec<Value>> = NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, r))| {
            vec![
                Value::I64(i as i64),
                Value::Str(name.to_string()),
                Value::I64(*r as i64),
                Value::Str(comment(&mut rng, 4)),
            ]
        })
        .collect();

    let supplier: Vec<Vec<Value>> = (0..n_supplier)
        .map(|i| {
            let nationkey = rng.next_bounded(25) as i64;
            // ~1% of suppliers carry the Q16 complaint marker.
            let cmt = if rng.chance(0.01) {
                format!(
                    "{} Customer Complaints {}",
                    comment(&mut rng, 2),
                    comment(&mut rng, 2)
                )
            } else {
                comment(&mut rng, 5)
            };
            vec![
                Value::I64(i as i64 + 1),
                Value::Str(format!("Supplier#{:09}", i + 1)),
                Value::Str(format!("addr-{}", rng.next_bounded(100_000))),
                Value::I64(nationkey),
                Value::Str(format!(
                    "{}-{:07}",
                    nationkey + 10,
                    rng.next_bounded(9_999_999)
                )),
                dec2(&mut rng, -99_999, 999_999),
                Value::Str(cmt),
            ]
        })
        .collect();

    let customer: Vec<Vec<Value>> = (0..n_customer)
        .map(|i| {
            let nationkey = rng.next_bounded(25) as i64;
            vec![
                Value::I64(i as i64 + 1),
                Value::Str(format!("Customer#{:09}", i + 1)),
                Value::Str(format!("addr-{}", rng.next_bounded(100_000))),
                Value::I64(nationkey),
                Value::Str(format!(
                    "{}-{:07}",
                    nationkey + 10,
                    rng.next_bounded(9_999_999)
                )),
                dec2(&mut rng, -99_999, 999_999),
                Value::Str(rng.choose(&SEGMENTS).unwrap().to_string()),
                Value::Str(comment(&mut rng, 6)),
            ]
        })
        .collect();

    let part: Vec<Vec<Value>> = (0..n_part)
        .map(|i| {
            let name = format!(
                "{} {} {}",
                rng.choose(&COLORS).unwrap(),
                rng.choose(&COLORS).unwrap(),
                rng.choose(&COLORS).unwrap()
            );
            let mfgr = rng.next_bounded(5) + 1;
            let brand = format!("Brand#{}{}", mfgr, rng.next_bounded(5) + 1);
            let ptype = format!(
                "{} {} {}",
                rng.choose(&TYPE_1).unwrap(),
                rng.choose(&TYPE_2).unwrap(),
                rng.choose(&TYPE_3).unwrap()
            );
            let container = format!(
                "{} {}",
                rng.choose(&CONTAINER_1).unwrap(),
                rng.choose(&CONTAINER_2).unwrap()
            );
            vec![
                Value::I64(i as i64 + 1),
                Value::Str(name),
                Value::Str(format!("Manufacturer#{mfgr}")),
                Value::Str(brand),
                Value::Str(ptype),
                Value::I64(rng.range_i64(1, 50)),
                Value::Str(container),
                // spec-ish retail price around 900-2100
                dec2(&mut rng, 90_000, 210_000),
                Value::Str(comment(&mut rng, 3)),
            ]
        })
        .collect();

    let partsupp: Vec<Vec<Value>> = (0..n_part)
        .flat_map(|p| {
            let mut rows = Vec::with_capacity(4);
            for s in 0..4u64 {
                let suppkey =
                    ((p as u64 + s * (n_supplier as u64 / 4 + 1)) % n_supplier as u64) + 1;
                rows.push(vec![
                    Value::I64(p as i64 + 1),
                    Value::I64(suppkey as i64),
                    Value::I64(rng.range_i64(1, 9999)),
                    dec2(&mut rng, 100, 100_000),
                    Value::Str(comment(&mut rng, 4)),
                ]);
            }
            rows
        })
        .collect();

    let start = date::parse("1992-01-01").unwrap();
    let end = date::parse("1998-08-02").unwrap();
    let cutoff = date::parse("1995-06-17").unwrap();

    let mut orders = Vec::with_capacity(n_orders);
    let mut lineitem = Vec::new();
    for i in 0..n_orders {
        // Sparse orderkeys like dbgen (8 of every 32 keys used is the spec;
        // we use 4× spacing to keep keys sparse but simple).
        let orderkey = (i as i64) * 4 + 1;
        let custkey = rng.range_i64(1, n_customer as i64);
        let orderdate = rng.range_i64(start as i64, end as i64 - 121) as i32;
        let n_lines = rng.range_i64(1, 7) as usize;
        let mut total: i64 = 0;
        let mut all_filled = true;
        for ln in 0..n_lines {
            let partkey = rng.range_i64(1, n_part as i64);
            // one of the 4 suppliers of that part
            let s = rng.next_bounded(4);
            let suppkey =
                (((partkey - 1) as u64 + s * (n_supplier as u64 / 4 + 1)) % n_supplier as u64) + 1;
            let qty = rng.range_i64(1, 50);
            let price = rng.range_i64(90_000, 210_000); // raw cents ≈ p_retailprice
            let extended = qty * price / 100 * 100; // keep cents aligned
            let discount = rng.range_i64(0, 10); // 0.00 - 0.10
            let tax = rng.range_i64(0, 8);
            let shipdate = orderdate + rng.range_i64(1, 121) as i32;
            let commitdate = orderdate + rng.range_i64(30, 90) as i32;
            let receiptdate = shipdate + rng.range_i64(1, 30) as i32;
            let returnflag = if receiptdate <= cutoff {
                if rng.chance(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if shipdate > cutoff { "O" } else { "F" };
            if linestatus == "O" {
                all_filled = false;
            }
            total += extended;
            lineitem.push(vec![
                Value::I64(orderkey),
                Value::I64(partkey),
                Value::I64(suppkey as i64),
                Value::I64(ln as i64 + 1),
                Value::Decimal(qty * 100, 2),
                Value::Decimal(extended, 2),
                Value::Decimal(discount, 2),
                Value::Decimal(tax, 2),
                Value::Str(returnflag.to_string()),
                Value::Str(linestatus.to_string()),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
                Value::Str(rng.choose(&SHIP_INSTRUCT).unwrap().to_string()),
                Value::Str(rng.choose(&SHIP_MODES).unwrap().to_string()),
                Value::Str(comment(&mut rng, 3)),
            ]);
        }
        let status = if all_filled { "F" } else { "O" };
        // Q13 greps '%special%requests%': give ~1% of orders that comment.
        let cmt = if rng.chance(0.01) {
            format!(
                "{} special packages requests {}",
                comment(&mut rng, 1),
                comment(&mut rng, 1)
            )
        } else {
            comment(&mut rng, 5)
        };
        orders.push(vec![
            Value::I64(orderkey),
            Value::I64(custkey),
            Value::Str(status.to_string()),
            Value::Decimal(total, 2),
            Value::Date(orderdate),
            Value::Str(rng.choose(&PRIORITIES).unwrap().to_string()),
            Value::I64(0),
            Value::Str(cmt),
        ]);
    }

    TpchData {
        region,
        nation,
        supplier,
        customer,
        part,
        partsupp,
        orders,
        lineitem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = generate(0.001, 7);
        let b = generate(0.001, 7);
        assert_eq!(a.lineitem.len(), b.lineitem.len());
        assert_eq!(a.lineitem[0], b.lineitem[0]);
        let c = generate(0.001, 8);
        assert_ne!(a.lineitem[0], c.lineitem[0]);
    }

    #[test]
    fn sizes_follow_spec_ratios() {
        let d = generate(0.002, 1);
        assert_eq!(d.region.len(), 5);
        assert_eq!(d.nation.len(), 25);
        assert_eq!(d.partsupp.len(), d.part.len() * 4);
        // ~4 lineitems per order on average
        let ratio = d.lineitem.len() as f64 / d.orders.len() as f64;
        assert!((2.5..5.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn date_correlations_hold() {
        let d = generate(0.001, 3);
        use cols::lineitem::*;
        for row in &d.lineitem {
            let ship = match row[L_SHIPDATE] {
                Value::Date(d) => d,
                _ => panic!(),
            };
            let receipt = match row[L_RECEIPTDATE] {
                Value::Date(d) => d,
                _ => panic!(),
            };
            assert!(receipt > ship, "receipt after ship");
        }
        // Order dates in range.
        use cols::orders::*;
        let lo = date::parse("1992-01-01").unwrap();
        let hi = date::parse("1998-08-02").unwrap();
        for row in &d.orders {
            match row[O_ORDERDATE] {
                Value::Date(dt) => assert!(dt >= lo && dt <= hi),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn foreign_keys_resolve() {
        let d = generate(0.001, 5);
        let n_supplier = d.supplier.len() as i64;
        let n_part = d.part.len() as i64;
        let n_customer = d.customer.len() as i64;
        use cols::lineitem as l;
        for row in &d.lineitem {
            let pk = row[l::L_PARTKEY].as_i64().unwrap();
            let sk = row[l::L_SUPPKEY].as_i64().unwrap();
            assert!(pk >= 1 && pk <= n_part);
            assert!(sk >= 1 && sk <= n_supplier);
        }
        use cols::orders as o;
        for row in &d.orders {
            let ck = row[o::O_CUSTKEY].as_i64().unwrap();
            assert!(ck >= 1 && ck <= n_customer);
        }
        // lineitem FK into orders: every l_orderkey appears in orders.
        let keys: std::collections::HashSet<i64> = d
            .orders
            .iter()
            .map(|r| r[o::O_ORDERKEY].as_i64().unwrap())
            .collect();
        for row in &d.lineitem {
            assert!(keys.contains(&row[l::L_ORDERKEY].as_i64().unwrap()));
        }
    }

    #[test]
    fn query_relevant_patterns_exist() {
        let d = generate(0.05, 11);
        // Q16-style supplier complaints present but rare.
        let complaints = d
            .supplier
            .iter()
            .filter(|r| {
                r[cols::supplier::S_COMMENT]
                    .as_str()
                    .unwrap()
                    .contains("Customer Complaints")
            })
            .count();
        assert!(complaints > 0 && complaints < d.supplier.len() / 10);
        // Q13 comment pattern.
        let special = d
            .orders
            .iter()
            .filter(|r| {
                let c = r[cols::orders::O_COMMENT].as_str().unwrap();
                c.contains("special") && c.contains("requests")
            })
            .count();
        assert!(special > 0);
        // Q14 PROMO parts exist.
        let promo = d
            .part
            .iter()
            .filter(|r| r[cols::part::P_TYPE].as_str().unwrap().starts_with("PROMO"))
            .count();
        assert!(promo > 0);
    }
}
