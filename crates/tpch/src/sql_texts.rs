//! The 22 TPC-H queries as SQL text, in the dialect `vectorh_planner::sql`
//! accepts (explicit `JOIN ... ON` instead of comma-list FROM clauses).
//!
//! These are the conformance anchors: each text must plan through
//! `parse_query` and execute to the *byte-identical* result of the
//! hand-built plan in [`crate::queries`]. To keep that true, every text
//! mirrors its hand plan — same join order (joins are probe-order
//! preserving, so the final row order matches), same select-list order,
//! same aggregate order — while still exercising the full SQL surface:
//! scalar/IN/EXISTS subqueries, derived tables, LEFT OUTER JOIN, HAVING,
//! CASE WHEN, EXTRACT/date arithmetic, SUBSTRING and DISTINCT.

/// The front-door workload mix: Q1 (scan-heavy aggregation), Q6
/// (selective filter), Q12 (join + aggregation) — one query per class,
/// cycled by the load generator and the `frontdoor` chaos phase.
pub const FRONTDOOR_MIX: [usize; 3] = [1, 6, 12];

/// The SQL texts of [`FRONTDOOR_MIX`], in order.
pub fn frontdoor_mix_texts() -> [&'static str; 3] {
    [
        sql_text(FRONTDOOR_MIX[0]).unwrap(),
        sql_text(FRONTDOOR_MIX[1]).unwrap(),
        sql_text(FRONTDOOR_MIX[2]).unwrap(),
    ]
}

/// The SQL text of TPC-H query `n` (1-based), or `None` out of range.
pub fn sql_text(n: usize) -> Option<&'static str> {
    Some(match n {
        1 => Q1,
        2 => Q2,
        3 => Q3,
        4 => Q4,
        5 => Q5,
        6 => Q6,
        7 => Q7,
        8 => Q8,
        9 => Q9,
        10 => Q10,
        11 => Q11,
        12 => Q12,
        13 => Q13,
        14 => Q14,
        15 => Q15,
        16 => Q16,
        17 => Q17,
        18 => Q18,
        19 => Q19,
        20 => Q20,
        21 => Q21,
        22 => Q22,
        _ => return None,
    })
}

const Q1: &str = "\
SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, \
       sum(l_extendedprice) AS sum_base_price, \
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
       avg(l_quantity) AS avg_qty, avg(l_extendedprice) AS avg_price, \
       avg(l_discount) AS avg_disc, count(*) AS count_order \
FROM lineitem \
WHERE l_shipdate <= date '1998-12-01' - interval '90' day \
GROUP BY l_returnflag, l_linestatus \
ORDER BY l_returnflag, l_linestatus";

const Q2: &str = "\
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment \
FROM partsupp \
JOIN supplier ON s_suppkey = ps_suppkey \
JOIN nation ON n_nationkey = s_nationkey \
JOIN region ON r_regionkey = n_regionkey \
JOIN part ON p_partkey = ps_partkey \
WHERE r_name = 'EUROPE' AND p_size = 15 AND p_type LIKE '%BRASS' \
  AND ps_supplycost = (SELECT min(ps2.ps_supplycost) \
                       FROM partsupp ps2 \
                       JOIN supplier s2 ON s2.s_suppkey = ps2.ps_suppkey \
                       JOIN nation n2 ON n2.n_nationkey = s2.s_nationkey \
                       JOIN region r2 ON r2.r_regionkey = n2.n_regionkey \
                       WHERE r2.r_name = 'EUROPE' AND ps2.ps_partkey = p_partkey) \
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey \
LIMIT 100";

const Q3: &str = "\
SELECT l_orderkey, o_orderdate, o_shippriority, \
       sum(l_extendedprice * (1 - l_discount)) AS revenue \
FROM lineitem \
JOIN orders ON o_orderkey = l_orderkey \
JOIN customer ON c_custkey = o_custkey \
WHERE l_shipdate > date '1995-03-15' AND o_orderdate < date '1995-03-15' \
  AND c_mktsegment = 'BUILDING' \
GROUP BY l_orderkey, o_orderdate, o_shippriority \
ORDER BY revenue DESC, o_orderdate \
LIMIT 10";

const Q4: &str = "\
SELECT o_orderpriority, count(*) AS order_count \
FROM orders \
WHERE o_orderdate >= date '1993-07-01' AND o_orderdate < date '1993-10-01' \
  AND EXISTS (SELECT * FROM lineitem \
              WHERE l_commitdate < l_receiptdate AND l_orderkey = o_orderkey) \
GROUP BY o_orderpriority \
ORDER BY o_orderpriority";

const Q5: &str = "\
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue \
FROM lineitem \
JOIN orders ON o_orderkey = l_orderkey \
JOIN customer ON c_custkey = o_custkey \
JOIN supplier ON s_suppkey = l_suppkey AND s_nationkey = c_nationkey \
JOIN nation ON n_nationkey = s_nationkey \
JOIN region ON r_regionkey = n_regionkey \
WHERE o_orderdate >= date '1994-01-01' AND o_orderdate < date '1995-01-01' \
  AND r_name = 'ASIA' \
GROUP BY n_name \
ORDER BY revenue DESC";

const Q6: &str = "\
SELECT sum(l_extendedprice * l_discount) AS revenue \
FROM lineitem \
WHERE l_shipdate >= date '1994-01-01' AND l_shipdate < date '1995-01-01' \
  AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24";

const Q7: &str = "\
SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, \
       extract(year FROM l_shipdate) AS l_year, \
       sum(l_extendedprice * (1 - l_discount)) AS revenue \
FROM lineitem \
JOIN orders ON o_orderkey = l_orderkey \
JOIN supplier ON s_suppkey = l_suppkey \
JOIN customer ON c_custkey = o_custkey \
JOIN nation n1 ON n1.n_nationkey = s_nationkey \
JOIN nation n2 ON n2.n_nationkey = c_nationkey \
WHERE l_shipdate BETWEEN date '1995-01-01' AND date '1996-12-31' \
  AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') \
       OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) \
GROUP BY n1.n_name, n2.n_name, extract(year FROM l_shipdate) \
ORDER BY supp_nation, cust_nation, l_year";

const Q8: &str = "\
SELECT o_year, \
       sum(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0 END) / sum(volume) \
         AS mkt_share \
FROM (SELECT extract(year FROM o_orderdate) AS o_year, \
             l_extendedprice * (1 - l_discount) AS volume, \
             n2.n_name AS nation \
      FROM lineitem \
      JOIN part ON p_partkey = l_partkey \
      JOIN orders ON o_orderkey = l_orderkey \
      JOIN customer ON c_custkey = o_custkey \
      JOIN nation n1 ON n1.n_nationkey = c_nationkey \
      JOIN region ON r_regionkey = n1.n_regionkey \
      JOIN supplier ON s_suppkey = l_suppkey \
      JOIN nation n2 ON n2.n_nationkey = s_nationkey \
      WHERE p_type = 'ECONOMY ANODIZED STEEL' \
        AND o_orderdate BETWEEN date '1995-01-01' AND date '1996-12-31' \
        AND r_name = 'AMERICA') AS all_nations \
GROUP BY o_year \
ORDER BY o_year";

const Q9: &str = "\
SELECT nation, o_year, sum(amount) AS sum_profit \
FROM (SELECT n_name AS nation, extract(year FROM o_orderdate) AS o_year, \
             l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity \
               AS amount \
      FROM lineitem \
      JOIN part ON p_partkey = l_partkey \
      JOIN partsupp ON ps_partkey = l_partkey AND ps_suppkey = l_suppkey \
      JOIN supplier ON s_suppkey = l_suppkey \
      JOIN orders ON o_orderkey = l_orderkey \
      JOIN nation ON n_nationkey = s_nationkey \
      WHERE p_name LIKE '%green%') AS profit \
GROUP BY nation, o_year \
ORDER BY nation, o_year DESC";

const Q10: &str = "\
SELECT c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment, \
       sum(l_extendedprice * (1 - l_discount)) AS revenue \
FROM lineitem \
JOIN orders ON o_orderkey = l_orderkey \
JOIN customer ON c_custkey = o_custkey \
JOIN nation ON n_nationkey = c_nationkey \
WHERE l_returnflag = 'R' \
  AND o_orderdate >= date '1993-10-01' AND o_orderdate < date '1994-01-01' \
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment \
ORDER BY revenue DESC \
LIMIT 20";

const Q11: &str = "\
SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS value \
FROM partsupp \
JOIN supplier ON s_suppkey = ps_suppkey \
JOIN nation ON n_nationkey = s_nationkey \
WHERE n_name = 'GERMANY' \
GROUP BY ps_partkey \
HAVING sum(ps_supplycost * ps_availqty) > \
       (SELECT sum(ps2.ps_supplycost * ps2.ps_availqty) * 0.0001 \
        FROM partsupp ps2 \
        JOIN supplier s2 ON s2.s_suppkey = ps2.ps_suppkey \
        JOIN nation n2 ON n2.n_nationkey = s2.s_nationkey \
        WHERE n2.n_name = 'GERMANY') \
ORDER BY value DESC";

const Q12: &str = "\
SELECT l_shipmode, \
       sum(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 1 ELSE 0 END) \
         AS high_line_count, \
       sum(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 0 ELSE 1 END) \
         AS low_line_count \
FROM lineitem \
JOIN orders ON o_orderkey = l_orderkey \
WHERE l_shipmode IN ('MAIL', 'SHIP') AND l_commitdate < l_receiptdate \
  AND l_shipdate < l_commitdate \
  AND l_receiptdate >= date '1994-01-01' AND l_receiptdate < date '1995-01-01' \
GROUP BY l_shipmode \
ORDER BY l_shipmode";

const Q13: &str = "\
SELECT c_count, count(*) AS custdist \
FROM (SELECT c_custkey, count(o_orderkey) AS c_count \
      FROM customer \
      LEFT OUTER JOIN orders ON c_custkey = o_custkey \
                            AND o_comment NOT LIKE '%special%requests%' \
      GROUP BY c_custkey) AS c_orders \
GROUP BY c_count \
ORDER BY custdist DESC, c_count DESC";

const Q14: &str = "\
SELECT 100.00 * (sum(CASE WHEN p_type LIKE 'PROMO%' \
                          THEN l_extendedprice * (1 - l_discount) \
                          ELSE 0 END) \
                 / sum(l_extendedprice * (1 - l_discount))) AS promo_revenue \
FROM lineitem \
JOIN part ON p_partkey = l_partkey \
WHERE l_shipdate >= date '1995-09-01' AND l_shipdate < date '1995-10-01'";

const Q15: &str = "\
SELECT s_suppkey, s_name, s_address, s_phone, total_revenue \
FROM supplier \
JOIN (SELECT l_suppkey AS supplier_no, \
             sum(l_extendedprice * (1 - l_discount)) AS total_revenue \
      FROM lineitem \
      WHERE l_shipdate >= date '1996-01-01' AND l_shipdate < date '1996-04-01' \
      GROUP BY l_suppkey) AS revenue ON s_suppkey = supplier_no \
WHERE total_revenue = \
      (SELECT max(total_revenue2) \
       FROM (SELECT l_suppkey AS supplier_no2, \
                    sum(l_extendedprice * (1 - l_discount)) AS total_revenue2 \
             FROM lineitem \
             WHERE l_shipdate >= date '1996-01-01' \
               AND l_shipdate < date '1996-04-01' \
             GROUP BY l_suppkey) AS revenue2) \
ORDER BY s_suppkey";

const Q16: &str = "\
SELECT p_brand, p_type, p_size, count(DISTINCT ps_suppkey) AS supplier_cnt \
FROM partsupp \
JOIN part ON p_partkey = ps_partkey \
WHERE p_brand <> 'Brand#45' AND p_type NOT LIKE 'MEDIUM POLISHED%' \
  AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9) \
  AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier \
                         WHERE s_comment LIKE '%Customer%Complaints%') \
GROUP BY p_brand, p_type, p_size \
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size";

const Q17: &str = "\
SELECT sum(l_extendedprice) / 7.0 AS avg_yearly \
FROM lineitem \
JOIN part ON p_partkey = l_partkey \
WHERE p_brand = 'Brand#23' AND p_container = 'MED BOX' \
  AND l_quantity < (SELECT 0.2 * avg(l2.l_quantity) FROM lineitem l2 \
                    WHERE l2.l_partkey = p_partkey)";

const Q18: &str = "\
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, \
       sum(l_quantity) AS total_qty \
FROM orders \
JOIN customer ON c_custkey = o_custkey \
JOIN lineitem ON l_orderkey = o_orderkey \
WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem \
                     GROUP BY l_orderkey HAVING sum(l_quantity) > 300) \
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
ORDER BY o_totalprice DESC, o_orderdate \
LIMIT 100";

const Q19: &str = "\
SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue \
FROM lineitem \
JOIN part ON p_partkey = l_partkey \
WHERE l_shipmode IN ('AIR', 'REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON' \
  AND ((p_brand = 'Brand#12' \
        AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') \
        AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5) \
       OR (p_brand = 'Brand#23' \
           AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') \
           AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10) \
       OR (p_brand = 'Brand#34' \
           AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') \
           AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15))";

const Q20: &str = "\
SELECT s_name, s_address \
FROM supplier \
JOIN nation ON n_nationkey = s_nationkey \
WHERE n_name = 'CANADA' \
  AND s_suppkey IN \
      (SELECT ps_suppkey FROM partsupp \
       WHERE ps_partkey IN (SELECT p_partkey FROM part \
                            WHERE p_name LIKE 'forest%') \
         AND ps_availqty > (SELECT 0.5 * sum(l_quantity) FROM lineitem \
                            WHERE l_partkey = ps_partkey \
                              AND l_suppkey = ps_suppkey \
                              AND l_shipdate >= date '1994-01-01' \
                              AND l_shipdate < date '1995-01-01')) \
ORDER BY s_name";

const Q21: &str = "\
SELECT s_name, count(*) AS numwait \
FROM lineitem l1 \
JOIN orders ON o_orderkey = l1.l_orderkey \
JOIN supplier ON s_suppkey = l1.l_suppkey \
JOIN nation ON n_nationkey = s_nationkey \
WHERE o_orderstatus = 'F' AND l1.l_receiptdate > l1.l_commitdate \
  AND n_name = 'SAUDI ARABIA' \
  AND EXISTS (SELECT * FROM lineitem l2 \
              WHERE l2.l_orderkey = l1.l_orderkey \
                AND l2.l_suppkey <> l1.l_suppkey) \
  AND NOT EXISTS (SELECT * FROM lineitem l3 \
                  WHERE l3.l_receiptdate > l3.l_commitdate \
                    AND l3.l_orderkey = l1.l_orderkey \
                    AND l3.l_suppkey <> l1.l_suppkey) \
GROUP BY s_name \
ORDER BY numwait DESC, s_name \
LIMIT 100";

const Q22: &str = "\
SELECT cntrycode, count(*) AS numcust, sum(acctbal) AS totacctbal \
FROM (SELECT substring(c_phone FROM 1 FOR 2) AS cntrycode, c_acctbal AS acctbal \
      FROM customer \
      WHERE substring(c_phone FROM 1 FOR 2) IN \
            ('13', '31', '23', '29', '30', '18', '17') \
        AND c_acctbal > (SELECT avg(c2.c_acctbal) FROM customer c2 \
                         WHERE c2.c_acctbal > 0.00 \
                           AND substring(c2.c_phone FROM 1 FOR 2) IN \
                               ('13', '31', '23', '29', '30', '18', '17')) \
        AND NOT EXISTS (SELECT * FROM orders WHERE o_custkey = c_custkey)) \
     AS custsale \
GROUP BY cntrycode \
ORDER BY cntrycode";
