//! # vectorh-server — the concurrent SQL front door
//!
//! VectorH's workload-management story (paper §4) assumes queries arrive
//! from many concurrent clients while nodes come and go. This crate is the
//! robustness layer between those clients and the engine:
//!
//! * **Wire protocol** ([`wire`]) — length-prefixed, CRC-checked frames
//!   reusing the transport crate's framing: Hello/Welcome handshake,
//!   `Query`, `Prepare`/`Execute`, streamed `RowBatch`es, `Done`, typed
//!   `ErrorFrame`s carrying the stable [`VhError::code`] taxonomy,
//!   `Cancel`, `Goodbye`.
//! * **Sessions** ([`session`]) — per-connection state: the
//!   prepared-statement cache keyed by SQL text, the in-flight query's
//!   cancel hook, the pipelining depth, the snapshot epoch watermark.
//! * **Admission** ([`admission`]) — a bounded FIFO gate: `max_concurrent`
//!   execution slots, `max_queue` waiters, a queue timeout, and a
//!   per-session in-flight cap. Refusal is always a typed `ServerBusy`
//!   with seeded-jitter backoff guidance — never a dropped connection.
//! * **Transparent failover** — statements run through
//!   `VectorH::query_logical_ctl`, so a node dying mid-query is retried on
//!   the survivors inside the engine; the client sees a slightly slower
//!   answer and a nonzero `retries_absorbed` in the `Done` frame.
//!
//! [`VhError::code`]: vectorh_common::VhError::code

pub mod admission;
pub mod client;
pub mod server;
pub mod session;
pub mod wire;

pub use admission::{AdmissionConfig, BusyReason, Gate};
pub use client::{Canceller, Client, QueryOutcome};
pub use server::{Server, ServerConfig};
pub use session::Session;
