//! Payload codecs for the front-door client protocol.
//!
//! The protocol reuses the transport crate's framing verbatim — length
//! prefix, version, CRC trailer, [`FrameKind`] discriminants — so a torn or
//! corrupted client frame fails exactly like a torn exchange frame. This
//! module only defines what goes *inside* the payloads:
//!
//! ```text
//! Query / Prepare    [sql: utf-8]
//! Execute            [stmt_id: u64 LE]
//! Prepared           [stmt_id: u64 LE]
//! RowBatch           [n_rows: u32][row]*      row = [n_cols: u32][value]*
//! Done               [row_total: u64][retries_absorbed: u64]
//! ErrorFrame         [code: u16][retry_after_ms: u32][msg_len: u32][msg]
//! ```
//!
//! Values are tag-prefixed: the tag picks the arm, fixed-width arms are LE,
//! strings are length-prefixed. `retry_after_ms` is zero except on
//! `ServerBusy`, where it carries the server's seeded-jitter backoff hint.

use vectorh_common::{Result, Value, VhError};

fn bad(msg: &str) -> VhError {
    VhError::Net(format!("wire: {msg}"))
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(bad("truncated payload"));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

fn get_u16(buf: &mut &[u8]) -> Result<u16> {
    Ok(u16::from_le_bytes(take(buf, 2)?.try_into().unwrap()))
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    Ok(u32::from_le_bytes(take(buf, 4)?.try_into().unwrap()))
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    Ok(u64::from_le_bytes(take(buf, 8)?.try_into().unwrap()))
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::I32(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::I64(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Decimal(x, scale) => {
            out.push(3);
            out.extend_from_slice(&x.to_le_bytes());
            out.push(*scale);
        }
        Value::Date(x) => {
            out.push(4);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(5);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(6);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn get_value(buf: &mut &[u8]) -> Result<Value> {
    let tag = take(buf, 1)?[0];
    Ok(match tag {
        0 => Value::Null,
        1 => Value::I32(i32::from_le_bytes(take(buf, 4)?.try_into().unwrap())),
        2 => Value::I64(i64::from_le_bytes(take(buf, 8)?.try_into().unwrap())),
        3 => {
            let x = i64::from_le_bytes(take(buf, 8)?.try_into().unwrap());
            let scale = take(buf, 1)?[0];
            Value::Decimal(x, scale)
        }
        4 => Value::Date(i32::from_le_bytes(take(buf, 4)?.try_into().unwrap())),
        5 => Value::F64(f64::from_bits(u64::from_le_bytes(
            take(buf, 8)?.try_into().unwrap(),
        ))),
        6 => {
            let len = get_u32(buf)? as usize;
            let bytes = take(buf, len)?;
            Value::Str(
                std::str::from_utf8(bytes)
                    .map_err(|_| bad("non-utf8 string value"))?
                    .to_string(),
            )
        }
        other => return Err(bad(&format!("unknown value tag {other}"))),
    })
}

/// Encode one batch of result rows.
pub fn encode_rows(rows: &[Vec<Value>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        out.extend_from_slice(&(row.len() as u32).to_le_bytes());
        for v in row {
            put_value(&mut out, v);
        }
    }
    out
}

/// Decode one batch of result rows.
pub fn decode_rows(mut buf: &[u8]) -> Result<Vec<Vec<Value>>> {
    let n_rows = get_u32(&mut buf)? as usize;
    let mut rows = Vec::with_capacity(n_rows.min(1 << 20));
    for _ in 0..n_rows {
        let n_cols = get_u32(&mut buf)? as usize;
        let mut row = Vec::with_capacity(n_cols.min(1 << 10));
        for _ in 0..n_cols {
            row.push(get_value(&mut buf)?);
        }
        rows.push(row);
    }
    if !buf.is_empty() {
        return Err(bad("trailing bytes after row batch"));
    }
    Ok(rows)
}

/// Encode a `Done` payload: total rows streamed + failovers absorbed.
pub fn encode_done(row_total: u64, retries_absorbed: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&row_total.to_le_bytes());
    out.extend_from_slice(&retries_absorbed.to_le_bytes());
    out
}

/// Decode a `Done` payload into `(row_total, retries_absorbed)`.
pub fn decode_done(mut buf: &[u8]) -> Result<(u64, u64)> {
    Ok((get_u64(&mut buf)?, get_u64(&mut buf)?))
}

/// Encode a typed error reply. `retry_after_ms` is nonzero only for
/// `ServerBusy` backoff guidance.
pub fn encode_error(err: &VhError, retry_after_ms: u32) -> Vec<u8> {
    let msg = err.message().as_bytes();
    let mut out = Vec::with_capacity(10 + msg.len());
    out.extend_from_slice(&err.code().to_le_bytes());
    out.extend_from_slice(&retry_after_ms.to_le_bytes());
    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    out.extend_from_slice(msg);
    out
}

/// Decode a typed error reply into `(error, retry_after_ms)`.
pub fn decode_error(mut buf: &[u8]) -> Result<(VhError, u32)> {
    let code = get_u16(&mut buf)?;
    let retry_after_ms = get_u32(&mut buf)?;
    let len = get_u32(&mut buf)? as usize;
    let msg = std::str::from_utf8(take(&mut buf, len)?)
        .map_err(|_| bad("non-utf8 error message"))?
        .to_string();
    Ok((VhError::from_code(code, msg), retry_after_ms))
}

/// Encode a statement id (Execute requests and Prepared replies).
pub fn encode_stmt(stmt_id: u64) -> Vec<u8> {
    stmt_id.to_le_bytes().to_vec()
}

/// Decode a statement id.
pub fn decode_stmt(mut buf: &[u8]) -> Result<u64> {
    get_u64(&mut buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_roundtrip_every_value_kind() {
        let rows = vec![
            vec![
                Value::I32(-7),
                Value::I64(1 << 40),
                Value::Decimal(12345, 2),
                Value::Date(9000),
                Value::F64(2.5),
                Value::Str("héllo".into()),
                Value::Null,
            ],
            vec![],
            vec![Value::Str(String::new())],
        ];
        assert_eq!(decode_rows(&encode_rows(&rows)).unwrap(), rows);
    }

    #[test]
    fn error_roundtrip_preserves_code_and_hint() {
        let e = VhError::ServerBusy("queue full".into());
        let (back, hint) = decode_error(&encode_error(&e, 37)).unwrap();
        assert_eq!(back, e);
        assert_eq!(hint, 37);
        let e2 = VhError::NodeDown("node 2".into());
        let (back2, hint2) = decode_error(&encode_error(&e2, 0)).unwrap();
        assert_eq!(back2, e2);
        assert_eq!(hint2, 0);
    }

    #[test]
    fn done_and_stmt_roundtrip() {
        assert_eq!(decode_done(&encode_done(42, 3)).unwrap(), (42, 3));
        assert_eq!(decode_stmt(&encode_stmt(99)).unwrap(), 99);
    }

    #[test]
    fn truncated_and_trailing_payloads_are_errors() {
        let bytes = encode_rows(&[vec![Value::I64(1)]]);
        assert!(decode_rows(&bytes[..bytes.len() - 1]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_rows(&padded).is_err());
    }
}
