//! Per-connection session state.
//!
//! A session owns everything the server remembers between requests on one
//! connection: the prepared-statement cache (keyed by SQL text, so
//! re-preparing the same query is a cache hit, not a re-parse), the
//! control block of the in-flight query (the hook a `Cancel` frame pulls),
//! the pipelined-request count the per-session admission cap is enforced
//! against, and the snapshot watermark — the master epoch each statement
//! executed under, which the engine's snapshot-isolated reads pin per
//! statement.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use vectorh::{LogicalPlan, QueryCtl};
use vectorh_common::sync::Mutex;

pub struct Session {
    pub id: u64,
    /// SQL text → statement id (the cache key the issue prescribes).
    prepared_by_sql: Mutex<HashMap<String, u64>>,
    /// Statement id → parsed plan.
    plans: Mutex<HashMap<u64, Arc<LogicalPlan>>>,
    next_stmt: AtomicU64,
    /// Control block of the currently executing query, if any.
    current: Mutex<Option<Arc<QueryCtl>>>,
    /// Requests queued + executing on this session (pipelining depth).
    inflight: AtomicUsize,
    /// Master epoch the last statement ran under — the session's snapshot
    /// watermark, surfaced so clients can observe failover epochs move.
    epoch_watermark: AtomicU64,
}

impl Session {
    pub fn new(id: u64) -> Arc<Session> {
        Arc::new(Session {
            id,
            prepared_by_sql: Mutex::new(HashMap::new()),
            plans: Mutex::new(HashMap::new()),
            next_stmt: AtomicU64::new(1),
            current: Mutex::new(None),
            inflight: AtomicUsize::new(0),
            epoch_watermark: AtomicU64::new(0),
        })
    }

    /// Cache a parsed plan under its SQL text; idempotent per text.
    pub fn insert_prepared(&self, sql: &str, plan: Arc<LogicalPlan>) -> u64 {
        let mut by_sql = self.prepared_by_sql.lock();
        if let Some(&id) = by_sql.get(sql) {
            return id;
        }
        let id = self.next_stmt.fetch_add(1, Ordering::Relaxed);
        by_sql.insert(sql.to_string(), id);
        self.plans.lock().insert(id, plan);
        id
    }

    /// Plan by statement id (Execute path).
    pub fn plan(&self, stmt_id: u64) -> Option<Arc<LogicalPlan>> {
        self.plans.lock().get(&stmt_id).cloned()
    }

    /// Plan by SQL text, if this exact text was prepared (Query path reuse).
    pub fn plan_for_sql(&self, sql: &str) -> Option<Arc<LogicalPlan>> {
        let id = *self.prepared_by_sql.lock().get(sql)?;
        self.plan(id)
    }

    pub fn prepared_count(&self) -> usize {
        self.prepared_by_sql.lock().len()
    }

    /// Install the control block of the query about to execute.
    pub fn begin_query(&self, ctl: Arc<QueryCtl>) {
        *self.current.lock() = Some(ctl);
    }

    pub fn end_query(&self) {
        *self.current.lock() = None;
    }

    /// Cancel the in-flight query, if any. Returns whether one was hit.
    pub fn cancel_current(&self) -> bool {
        match self.current.lock().as_ref() {
            Some(ctl) => {
                ctl.cancel();
                true
            }
            None => false,
        }
    }

    /// Try to take one pipelining slot; refused once `cap` are in flight.
    pub fn try_take_inflight(&self, cap: usize) -> bool {
        let mut now = self.inflight.load(Ordering::Relaxed);
        loop {
            if now >= cap {
                return false;
            }
            match self
                .inflight
                .compare_exchange(now, now + 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return true,
                Err(cur) => now = cur,
            }
        }
    }

    pub fn release_inflight(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn set_epoch_watermark(&self, epoch: u64) {
        self.epoch_watermark.store(epoch, Ordering::Relaxed);
    }

    pub fn epoch_watermark(&self) -> u64 {
        self.epoch_watermark.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_plan() -> Arc<LogicalPlan> {
        Arc::new(LogicalPlan::Scan {
            table: "t".into(),
            cols: vec![0],
        })
    }

    #[test]
    fn prepared_cache_is_keyed_by_sql_text() {
        let s = Session::new(1);
        let plan = dummy_plan();
        let a = s.insert_prepared("SELECT 1", plan.clone());
        let b = s.insert_prepared("SELECT 1", plan.clone());
        let c = s.insert_prepared("SELECT 2", plan);
        assert_eq!(a, b, "same text, same statement");
        assert_ne!(a, c);
        assert_eq!(s.prepared_count(), 2);
        assert!(s.plan(a).is_some());
        assert!(s.plan_for_sql("SELECT 1").is_some());
        assert!(s.plan_for_sql("SELECT 3").is_none());
    }

    #[test]
    fn inflight_cap_is_enforced() {
        let s = Session::new(1);
        assert!(s.try_take_inflight(2));
        assert!(s.try_take_inflight(2));
        assert!(!s.try_take_inflight(2));
        s.release_inflight();
        assert!(s.try_take_inflight(2));
    }

    #[test]
    fn cancel_hits_only_an_inflight_query() {
        let s = Session::new(1);
        assert!(!s.cancel_current());
        let ctl = QueryCtl::new();
        s.begin_query(ctl.clone());
        assert!(s.cancel_current());
        assert!(ctl.is_cancelled());
        s.end_query();
        assert!(!s.cancel_current());
    }
}
