//! The threaded accept loop and per-connection protocol state machine.
//!
//! One OS thread accepts connections; each connection gets a *reader*
//! thread and an *executor* loop. The reader parses frames and enqueues
//! requests — except `Cancel`, which bypasses the queue and flips the
//! in-flight query's cancel flag immediately (that is the whole point of
//! cancellation), and requests beyond the per-session pipelining cap,
//! which are refused at the door with a typed `ServerBusy` before they
//! cost anything. The executor drains the queue FIFO, takes an admission
//! permit per statement, runs it through [`VectorH::query_logical_ctl`]
//! (failover retries absorbed inside), and streams result batches back.
//!
//! Every refusal and failure is a typed [`FrameKind::ErrorFrame`]; the
//! connection is never dropped in anger — only `Goodbye` or a broken
//! socket ends it.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use vectorh::{LogicalPlan, QueryCtl, VectorH};
use vectorh_common::channel::{bounded, Receiver, Sender};
use vectorh_common::sync::Mutex;
use vectorh_common::{Result, VhError};
use vectorh_net::ServerStats;
use vectorh_transport::frame::{read_frame, write_frame, DecodeError, Frame, FrameKind};

use crate::admission::{AdmissionConfig, Gate};
use crate::session::Session;
use crate::wire;

/// Front-door configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick.
    pub addr: String,
    pub admission: AdmissionConfig,
    /// Result rows per `RowBatch` frame.
    pub batch_rows: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            admission: AdmissionConfig::default(),
            batch_rows: 1024,
        }
    }
}

/// A running front door. Dropping it (or calling [`Server::stop`]) stops
/// accepting; established sessions run until their clients disconnect.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

/// One queued request, parsed by the reader thread.
enum Req {
    Query { req_id: u32, sql: String },
    Prepare { req_id: u32, sql: String },
    Execute { req_id: u32, stmt: u64 },
    Goodbye,
}

impl Server {
    /// Bind and start serving `vh` on `cfg.addr`.
    pub fn start(vh: Arc<VectorH>, cfg: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| VhError::Net(format!("server bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| VhError::Net(format!("server local_addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(Gate::new(cfg.admission.clone()));
        let next_session = Arc::new(AtomicU64::new(1));
        let accept = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let vh = vh.clone();
                    let gate = gate.clone();
                    let cfg = cfg.clone();
                    let session_id = next_session.fetch_add(1, Ordering::Relaxed);
                    std::thread::spawn(move || {
                        // A connection failing its handshake or dying is
                        // its own problem; the accept loop keeps serving.
                        let _ = handle_conn(vh, gate, cfg, stream, session_id);
                    });
                }
            })
        };
        Ok(Server {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting new connections (idempotent).
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Build a response frame. `channel` carries the request id the response
/// answers; `epoch` carries the engine's current master epoch so clients
/// can watch failovers move the fencing epoch.
fn resp(kind: FrameKind, req_id: u32, seq: u64, epoch: u64, payload: Vec<u8>) -> Frame {
    Frame {
        kind,
        from: 0,
        channel: req_id,
        seq,
        epoch,
        payload,
    }
}

struct ConnShared {
    vh: Arc<VectorH>,
    stats: Arc<ServerStats>,
    session: Arc<Session>,
    writer: Mutex<TcpStream>,
    seq: AtomicU64,
}

impl ConnShared {
    fn send(&self, kind: FrameKind, req_id: u32, payload: Vec<u8>) -> Result<()> {
        let frame = resp(
            kind,
            req_id,
            self.seq.fetch_add(1, Ordering::Relaxed),
            self.vh.master_epoch(),
            payload,
        );
        write_frame(&mut *self.writer.lock(), &frame, None)
    }

    fn send_error(&self, req_id: u32, err: &VhError, retry_after_ms: u32) -> Result<()> {
        self.send(
            FrameKind::ErrorFrame,
            req_id,
            wire::encode_error(err, retry_after_ms),
        )
    }
}

fn handle_conn(
    vh: Arc<VectorH>,
    gate: Arc<Gate>,
    cfg: ServerConfig,
    stream: TcpStream,
    session_id: u64,
) -> Result<()> {
    let mut read_half = stream
        .try_clone()
        .map_err(|e| VhError::Net(format!("server clone stream: {e}")))?;
    // Handshake: exactly one Hello, answered with Welcome carrying the
    // session id in `epoch`. Anything else is rejected and the connection
    // closed — pre-handshake peers have no session to keep alive.
    let hello = read_frame(&mut read_half).map_err(DecodeError::into_vh)?;
    let stats = vh.server_stats().clone();
    let shared = Arc::new(ConnShared {
        vh,
        stats,
        session: Session::new(session_id),
        writer: Mutex::new(stream),
        seq: AtomicU64::new(0),
    });
    if hello.kind != FrameKind::Hello {
        let frame = resp(FrameKind::Reject, 0, 0, 0, Vec::new());
        return write_frame(&mut *shared.writer.lock(), &frame, None);
    }
    {
        let frame = resp(FrameKind::Welcome, 0, 0, session_id, Vec::new());
        write_frame(&mut *shared.writer.lock(), &frame, None)?;
    }

    let (tx, rx) = bounded::<Req>(cfg.admission.max_queue.max(1) * 2);
    let reader = {
        let shared = shared.clone();
        let gate = gate.clone();
        let cap = cfg.admission.per_session_inflight.max(1);
        std::thread::spawn(move || reader_loop(&shared, &gate, cap, &mut read_half, &tx))
    };
    executor_loop(&shared, &gate, &cfg, &rx);
    let _ = reader.join();
    Ok(())
}

/// Parse frames off the socket. Cancel acts immediately; admission of
/// pipelined requests beyond the per-session cap is refused here, before
/// the request costs a queue slot.
fn reader_loop(
    shared: &ConnShared,
    gate: &Gate,
    inflight_cap: usize,
    read_half: &mut TcpStream,
    tx: &Sender<Req>,
) {
    loop {
        let frame = match read_frame(read_half) {
            Ok(f) => f,
            // Closed, torn, or garbage: either way the session is over.
            Err(_) => {
                let _ = tx.send(Req::Goodbye);
                return;
            }
        };
        let req = match frame.kind {
            FrameKind::Cancel => {
                shared.session.cancel_current();
                continue;
            }
            FrameKind::Goodbye => {
                let _ = tx.send(Req::Goodbye);
                return;
            }
            FrameKind::Query | FrameKind::Prepare => {
                let Ok(sql) = String::from_utf8(frame.payload) else {
                    let _ = shared.send_error(
                        frame.channel,
                        &VhError::InvalidArg("non-utf8 sql".into()),
                        0,
                    );
                    continue;
                };
                if frame.kind == FrameKind::Query {
                    Req::Query {
                        req_id: frame.channel,
                        sql,
                    }
                } else {
                    Req::Prepare {
                        req_id: frame.channel,
                        sql,
                    }
                }
            }
            FrameKind::Execute => match wire::decode_stmt(&frame.payload) {
                Ok(stmt) => Req::Execute {
                    req_id: frame.channel,
                    stmt,
                },
                Err(e) => {
                    let _ = shared.send_error(frame.channel, &e, 0);
                    continue;
                }
            },
            // Transport-internal kinds have no meaning on a client
            // connection; ignore rather than kill the session.
            _ => continue,
        };
        let req_id = match &req {
            Req::Query { req_id, .. }
            | Req::Prepare { req_id, .. }
            | Req::Execute { req_id, .. } => *req_id,
            Req::Goodbye => unreachable!(),
        };
        if !shared.session.try_take_inflight(inflight_cap) {
            shared.stats.record_rejected_busy(shared.session.id);
            let busy =
                VhError::ServerBusy(format!("session pipelining cap ({inflight_cap}) reached"));
            let _ = shared.send_error(req_id, &busy, gate.backoff_hint());
            continue;
        }
        if tx.send(req).is_err() {
            return;
        }
    }
}

fn executor_loop(shared: &ConnShared, gate: &Gate, cfg: &ServerConfig, rx: &Receiver<Req>) {
    while let Ok(req) = rx.recv() {
        let ok = match req {
            Req::Goodbye => break,
            Req::Query { req_id, sql } => {
                let r = serve_sql(shared, gate, cfg, req_id, &sql);
                shared.session.release_inflight();
                r
            }
            Req::Prepare { req_id, sql } => {
                let r = serve_prepare(shared, req_id, &sql);
                shared.session.release_inflight();
                r
            }
            Req::Execute { req_id, stmt } => {
                let r = match shared.session.plan(stmt) {
                    Some(plan) => serve_plan(shared, gate, cfg, req_id, &plan),
                    None => shared.send_error(
                        req_id,
                        &VhError::InvalidArg(format!("unknown statement id {stmt}")),
                        0,
                    ),
                };
                shared.session.release_inflight();
                r
            }
        };
        // A write failure means the client is gone; stop executing for it.
        if ok.is_err() {
            break;
        }
    }
}

fn serve_prepare(shared: &ConnShared, req_id: u32, sql: &str) -> Result<()> {
    match shared.vh.parse(sql) {
        Ok(plan) => {
            let stmt = shared.session.insert_prepared(sql, Arc::new(plan));
            shared.send(FrameKind::Prepared, req_id, wire::encode_stmt(stmt))
        }
        Err(e) => shared.send_error(req_id, &e, 0),
    }
}

/// Query path: reuse the session's prepared plan when this exact SQL text
/// was prepared before, otherwise parse fresh.
fn serve_sql(
    shared: &ConnShared,
    gate: &Gate,
    cfg: &ServerConfig,
    req_id: u32,
    sql: &str,
) -> Result<()> {
    let plan = match shared.session.plan_for_sql(sql) {
        Some(p) => p,
        None => match shared.vh.parse(sql) {
            Ok(p) => Arc::new(p),
            Err(e) => return shared.send_error(req_id, &e, 0),
        },
    };
    serve_plan(shared, gate, cfg, req_id, &plan)
}

fn serve_plan(
    shared: &ConnShared,
    gate: &Gate,
    cfg: &ServerConfig,
    req_id: u32,
    plan: &LogicalPlan,
) -> Result<()> {
    let session_id = shared.session.id;
    let permit = match gate.admit() {
        Ok(p) => p,
        Err(busy) => {
            shared
                .stats
                .record_queue_wait(session_id, busy.queue_wait.as_micros() as u64);
            shared.stats.record_rejected_busy(session_id);
            let e = VhError::ServerBusy(format!(
                "admission refused ({:?}); retry after the hint",
                busy.reason
            ));
            return shared.send_error(req_id, &e, busy.retry_after_ms);
        }
    };
    shared
        .stats
        .record_queue_wait(session_id, permit.queue_wait.as_micros() as u64);
    let ctl = QueryCtl::new();
    shared.session.begin_query(ctl.clone());
    let result = shared.vh.query_logical_ctl(plan, Some(&ctl));
    shared.session.end_query();
    drop(permit);
    shared
        .stats
        .record_retries_absorbed(session_id, ctl.retries());
    match result {
        Ok(rows) => {
            for chunk in rows.chunks(cfg.batch_rows.max(1)) {
                shared.send(FrameKind::RowBatch, req_id, wire::encode_rows(chunk))?;
            }
            shared.stats.record_query_served(session_id);
            shared.session.set_epoch_watermark(shared.vh.master_epoch());
            shared.send(
                FrameKind::Done,
                req_id,
                wire::encode_done(rows.len() as u64, ctl.retries()),
            )
        }
        Err(e) => shared.send_error(req_id, &e, 0),
    }
}
