//! Synchronous wire-protocol client.
//!
//! One [`Client`] drives one session: it sends a request, then drains the
//! response stream (row batches until `Done`, or a typed error frame).
//! Cancellation comes from a [`Canceller`] — a cloned write handle another
//! thread uses to fire a `Cancel` frame while the client thread is blocked
//! reading results.

use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use vectorh_common::{Result, Value, VhError};
use vectorh_transport::frame::{read_frame, write_frame, DecodeError, Frame, FrameKind};

use crate::wire;

/// Everything a finished query reports besides its rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    pub rows: Vec<Vec<Value>>,
    /// Failover retries the server absorbed while this query ran — the
    /// "you never noticed the node die" counter.
    pub retries_absorbed: u64,
    /// `RowBatch` frames the result arrived in.
    pub batches: u64,
    /// Master epoch the server reported with the final frame.
    pub epoch: u64,
}

/// A connected front-door session.
pub struct Client {
    stream: TcpStream,
    session_id: u64,
    next_req: u32,
    seq: u64,
    /// Backoff hint from the most recent `ServerBusy` refusal.
    last_busy_hint_ms: u32,
    /// Partially received results of pipelined requests, by request id.
    partial: HashMap<u32, (Vec<Vec<Value>>, u64)>,
}

/// Write half used to cancel from another thread.
pub struct Canceller {
    stream: TcpStream,
}

impl Canceller {
    /// Fire a `Cancel` at the in-flight query. Best effort by design.
    pub fn cancel(&mut self) -> Result<()> {
        let frame = Frame::control(FrameKind::Cancel, 0, 0, 0, 0);
        write_frame(&mut self.stream, &frame, None)
    }
}

impl Client {
    /// Connect and complete the Hello/Welcome handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let mut stream =
            TcpStream::connect(addr).map_err(|e| VhError::Net(format!("client connect: {e}")))?;
        let hello = Frame::control(FrameKind::Hello, 0, 0, 0, 0);
        write_frame(&mut stream, &hello, None)?;
        let welcome = read_frame(&mut stream).map_err(DecodeError::into_vh)?;
        if welcome.kind != FrameKind::Welcome {
            return Err(VhError::Net(format!(
                "handshake refused ({:?})",
                welcome.kind
            )));
        }
        Ok(Client {
            stream,
            session_id: welcome.epoch,
            next_req: 1,
            seq: 0,
            last_busy_hint_ms: 0,
            partial: HashMap::new(),
        })
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Backoff guidance carried by the most recent `ServerBusy` refusal.
    pub fn last_busy_hint_ms(&self) -> u32 {
        self.last_busy_hint_ms
    }

    /// A cancellation handle usable from another thread.
    pub fn canceller(&self) -> Result<Canceller> {
        Ok(Canceller {
            stream: self
                .stream
                .try_clone()
                .map_err(|e| VhError::Net(format!("client clone: {e}")))?,
        })
    }

    fn send(&mut self, kind: FrameKind, payload: Vec<u8>) -> Result<u32> {
        let req_id = self.next_req;
        self.next_req = self.next_req.wrapping_add(1).max(1);
        let frame = Frame {
            kind,
            from: 0,
            channel: req_id,
            seq: self.seq,
            epoch: 0,
            payload,
        };
        self.seq += 1;
        write_frame(&mut self.stream, &frame, None)?;
        Ok(req_id)
    }

    /// Block until *some* pipelined request completes; returns its request
    /// id and outcome. Row batches of other in-flight requests are
    /// buffered until their own completion frame arrives.
    pub fn wait_any(&mut self) -> Result<(u32, Result<QueryOutcome>)> {
        loop {
            let frame = read_frame(&mut self.stream).map_err(DecodeError::into_vh)?;
            let req_id = frame.channel;
            match frame.kind {
                FrameKind::RowBatch => {
                    let batch = wire::decode_rows(&frame.payload)?;
                    let entry = self.partial.entry(req_id).or_default();
                    entry.0.extend(batch);
                    entry.1 += 1;
                }
                FrameKind::Done => {
                    let (rows, batches) = self.partial.remove(&req_id).unwrap_or_default();
                    let (total, retries_absorbed) = wire::decode_done(&frame.payload)?;
                    if total != rows.len() as u64 {
                        return Err(VhError::Net(format!(
                            "row total mismatch: streamed {}, Done said {total}",
                            rows.len()
                        )));
                    }
                    return Ok((
                        req_id,
                        Ok(QueryOutcome {
                            rows,
                            retries_absorbed,
                            batches,
                            epoch: frame.epoch,
                        }),
                    ));
                }
                FrameKind::ErrorFrame => {
                    self.partial.remove(&req_id);
                    let (err, hint) = wire::decode_error(&frame.payload)?;
                    if matches!(err, VhError::ServerBusy(_)) {
                        self.last_busy_hint_ms = hint;
                    }
                    return Ok((req_id, Err(err)));
                }
                _ => continue,
            }
        }
    }

    /// Drain the response stream for `req_id` (buffering any pipelined
    /// siblings that complete first).
    fn collect(&mut self, req_id: u32) -> Result<QueryOutcome> {
        loop {
            let (done_id, outcome) = self.wait_any()?;
            if done_id == req_id {
                return outcome;
            }
            // A different pipelined request finished; its outcome was not
            // asked for through this path — drop it.
        }
    }

    /// Fire a query without waiting; pair with [`Self::wait_any`] to
    /// pipeline several requests on one session.
    pub fn send_query(&mut self, sql: &str) -> Result<u32> {
        self.send(FrameKind::Query, sql.as_bytes().to_vec())
    }

    /// Run a query, returning just its rows.
    pub fn query(&mut self, sql: &str) -> Result<Vec<Vec<Value>>> {
        self.query_detailed(sql).map(|o| o.rows)
    }

    /// Run a query, returning rows plus stream metadata.
    pub fn query_detailed(&mut self, sql: &str) -> Result<QueryOutcome> {
        let req = self.send(FrameKind::Query, sql.as_bytes().to_vec())?;
        self.collect(req)
    }

    /// Run a query, retrying `ServerBusy` refusals up to `max_attempts`
    /// times, sleeping the server's jitter hint between attempts. Any
    /// other error (and exhaustion) surfaces to the caller.
    pub fn query_with_retry(&mut self, sql: &str, max_attempts: usize) -> Result<QueryOutcome> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.query_detailed(sql) {
                Err(VhError::ServerBusy(m)) if attempt < max_attempts => {
                    let ms = self.last_busy_hint_ms.max(1) as u64;
                    std::thread::sleep(Duration::from_millis(ms));
                    let _ = m;
                }
                other => return other,
            }
        }
    }

    /// Prepare a statement; returns its server-side id. Preparing the same
    /// text twice returns the same id.
    pub fn prepare(&mut self, sql: &str) -> Result<u64> {
        let req = self.send(FrameKind::Prepare, sql.as_bytes().to_vec())?;
        loop {
            let frame = read_frame(&mut self.stream).map_err(DecodeError::into_vh)?;
            if frame.channel != req {
                continue;
            }
            match frame.kind {
                FrameKind::Prepared => return wire::decode_stmt(&frame.payload),
                FrameKind::ErrorFrame => {
                    let (err, hint) = wire::decode_error(&frame.payload)?;
                    if matches!(err, VhError::ServerBusy(_)) {
                        self.last_busy_hint_ms = hint;
                    }
                    return Err(err);
                }
                _ => continue,
            }
        }
    }

    /// Execute a prepared statement.
    pub fn execute_prepared(&mut self, stmt: u64) -> Result<QueryOutcome> {
        let req = self.send(FrameKind::Execute, wire::encode_stmt(stmt))?;
        self.collect(req)
    }

    /// Orderly session end.
    pub fn goodbye(mut self) -> Result<()> {
        let frame = Frame::control(FrameKind::Goodbye, 0, 0, self.seq, 0);
        write_frame(&mut self.stream, &frame, None)
    }
}
