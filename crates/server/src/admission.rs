//! Admission control: a bounded, FIFO, semaphore-style gate in front of
//! the engine.
//!
//! The policy has three knobs and one promise:
//!
//! * `max_concurrent` — queries allowed to execute at once (the worker
//!   pool width).
//! * `max_queue` — callers allowed to *wait* for a slot; arrival number
//!   `max_concurrent + max_queue + 1` is refused immediately.
//! * `queue_timeout_ms` — a queued caller that cannot get a slot in time
//!   is refused instead of waiting forever.
//!
//! The promise: refusal is always a typed [`VhError::ServerBusy`] reply
//! carrying seeded-jitter backoff guidance — never a dropped connection.
//! FIFO order is enforced with ticket numbers so a timing-lucky late
//! arrival cannot starve an early one.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use vectorh_common::rng::SplitMix64;
use vectorh_common::sync::Mutex as VhMutex;

/// Gate configuration; `seed` feeds the backoff-jitter stream.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    pub max_concurrent: usize,
    pub max_queue: usize,
    pub queue_timeout_ms: u64,
    /// Requests a single session may have queued + executing at once;
    /// excess requests are refused at the door without touching the gate.
    pub per_session_inflight: usize,
    pub seed: u64,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent: 8,
            max_queue: 16,
            queue_timeout_ms: 1000,
            per_session_inflight: 4,
            seed: 0xF207_D007,
        }
    }
}

#[derive(Debug, Default)]
struct GateState {
    running: usize,
    /// Tickets waiting for a slot, in arrival order.
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// Why an admission was refused; both arms become `ServerBusy` on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyReason {
    /// The wait queue was already at `max_queue`.
    QueueFull,
    /// A slot did not free up within `queue_timeout_ms`.
    Timeout,
}

/// A granted admission: holds one execution slot, released on drop.
pub struct Permit<'a> {
    gate: &'a Gate,
    /// Time spent queued before the slot was granted.
    pub queue_wait: Duration,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.state.lock().unwrap();
        st.running -= 1;
        drop(st);
        self.gate.cv.notify_all();
    }
}

/// Refused admission: the typed reply's ingredients.
#[derive(Debug, Clone, Copy)]
pub struct Busy {
    pub reason: BusyReason,
    /// Seeded-jitter backoff hint for the client's retry loop.
    pub retry_after_ms: u32,
    /// Time spent queued before giving up (zero for `QueueFull`).
    pub queue_wait: Duration,
}

/// The shared admission gate.
pub struct Gate {
    cfg: AdmissionConfig,
    state: Mutex<GateState>,
    cv: Condvar,
    jitter: VhMutex<SplitMix64>,
}

impl Gate {
    pub fn new(cfg: AdmissionConfig) -> Gate {
        let jitter = VhMutex::new(SplitMix64::new(cfg.seed ^ 0x6A1E_ADC0));
        Gate {
            cfg,
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            jitter,
        }
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Backoff guidance for a refusal: half the queue timeout as the base,
    /// plus a seeded jitter of up to the same again, so a herd of refused
    /// clients retries spread out rather than in lockstep.
    pub(crate) fn backoff_hint(&self) -> u32 {
        let base = (self.cfg.queue_timeout_ms / 2).max(5);
        let j = self.jitter.lock().next_bounded(base);
        (base + j) as u32
    }

    /// Wait for an execution slot, FIFO, bounded by queue depth and
    /// timeout.
    pub fn admit(&self) -> Result<Permit<'_>, Busy> {
        let start = Instant::now();
        let mut st = self.state.lock().unwrap();
        if st.running < self.cfg.max_concurrent && st.queue.is_empty() {
            st.running += 1;
            return Ok(Permit {
                gate: self,
                queue_wait: Duration::ZERO,
            });
        }
        if st.queue.len() >= self.cfg.max_queue {
            return Err(Busy {
                reason: BusyReason::QueueFull,
                retry_after_ms: self.backoff_hint(),
                queue_wait: Duration::ZERO,
            });
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        let deadline = start + Duration::from_millis(self.cfg.queue_timeout_ms);
        loop {
            let now = Instant::now();
            if st.queue.front() == Some(&ticket) && st.running < self.cfg.max_concurrent {
                st.queue.pop_front();
                st.running += 1;
                drop(st);
                // The next waiter may also be eligible (multiple slots can
                // free before the front waiter wakes).
                self.cv.notify_all();
                return Ok(Permit {
                    gate: self,
                    queue_wait: now - start,
                });
            }
            if now >= deadline {
                st.queue.retain(|&t| t != ticket);
                drop(st);
                self.cv.notify_all();
                return Err(Busy {
                    reason: BusyReason::Timeout,
                    retry_after_ms: self.backoff_hint(),
                    queue_wait: Instant::now() - start,
                });
            }
            let (guard, _) = self.cv.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn gate(max_concurrent: usize, max_queue: usize, timeout_ms: u64) -> Arc<Gate> {
        Arc::new(Gate::new(AdmissionConfig {
            max_concurrent,
            max_queue,
            queue_timeout_ms: timeout_ms,
            per_session_inflight: 4,
            seed: 7,
        }))
    }

    #[test]
    fn grants_up_to_capacity_then_queues_then_refuses() {
        let g = gate(2, 1, 50);
        let p1 = g.admit().unwrap();
        let p2 = g.admit().unwrap();
        // Third caller queues and times out; fourth would exceed the queue.
        let g2 = g.clone();
        let waiter = std::thread::spawn(move || g2.admit().map(|_| ()).unwrap_err());
        // Give the waiter time to enqueue, then overflow the queue.
        std::thread::sleep(Duration::from_millis(10));
        let refused = g.admit().map(|_| ()).unwrap_err();
        assert_eq!(refused.reason, BusyReason::QueueFull);
        assert!(refused.retry_after_ms > 0);
        let timed_out = waiter.join().unwrap();
        assert_eq!(timed_out.reason, BusyReason::Timeout);
        drop(p1);
        drop(p2);
        // Capacity is back.
        assert!(g.admit().is_ok());
    }

    #[test]
    fn released_slot_reaches_fifo_waiter() {
        let g = gate(1, 8, 2000);
        let p = g.admit().unwrap();
        let order = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..3 {
            let g = g.clone();
            let order = order.clone();
            handles.push(std::thread::spawn(move || {
                // Stagger arrivals so ticket order is deterministic.
                std::thread::sleep(Duration::from_millis(20 * (i as u64 + 1)));
                let permit = g.admit().unwrap();
                let rank = order.fetch_add(1, Ordering::SeqCst);
                drop(permit);
                (i, rank)
            }));
        }
        std::thread::sleep(Duration::from_millis(120));
        drop(p);
        let mut got: Vec<(usize, usize)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        // Arrival order == grant order.
        assert_eq!(got, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn queue_wait_is_measured() {
        let g = gate(1, 4, 2000);
        let p = g.admit().unwrap();
        let g2 = g.clone();
        let h = std::thread::spawn(move || g2.admit().map(|p| p.queue_wait).unwrap());
        std::thread::sleep(Duration::from_millis(30));
        drop(p);
        let waited = h.join().unwrap();
        assert!(waited >= Duration::from_millis(20), "waited {waited:?}");
    }
}
