//! Lightweight columnar compression for VectorH-rs.
//!
//! Implements the Vectorwise compression family the paper describes (§2,
//! Zukowski et al., ICDE 2006):
//!
//! * **PFOR** ([`pfor`]) — *Patched Frame Of Reference*: values are coded as
//!   thin fixed-bitwidth deltas from a block-dependent base; infrequent
//!   outliers become *exceptions* stored uncompressed after the codes, with
//!   their code slots repurposed as "distance to next exception" pointers so
//!   decompression is a branch-free inflate pass followed by a short patch
//!   walk.
//! * **PFOR-DELTA** ([`pfor`]) — PFOR over deltas of consecutive values;
//!   ideal for sorted/clustered columns (and adopted by Lucene).
//! * **PDICT** ([`pdict`]) — patched dictionary coding: frequent values get
//!   thin codes, infrequent ones become exceptions.
//! * A byte-oriented LZ codec ([`lz`]) standing in for LZ4/Snappy: VectorH
//!   uses it *only* for non-dictionary string columns, whereas the Hadoop
//!   formats run it over everything — that difference is measurable in the
//!   Figure 1 benches.
//! * **Baselines** ([`baseline`]) — "ORC-like" and "Parquet-like" codecs that
//!   decode value-at-a-time through varint/RLE plus a general-purpose pass,
//!   reproducing why those readers are slower (§2 micro-benchmarks, [25]).
//!
//! The entry point for the storage layer is [`codec`]: it picks the best
//! scheme per block and gives byte-exact roundtrips.

pub mod baseline;
pub mod bitpack;
pub mod codec;
pub mod lz;
pub mod pdict;
pub mod pfor;
pub mod simd;

pub use codec::{decode_column, encode_column, CodecStats, EncodedBlock, Scheme};
