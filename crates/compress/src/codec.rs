//! Per-block scheme selection and wire format.
//!
//! Vectorwise chooses a compression scheme per block based on the data it
//! sees (§2). [`encode_column`] does the same: it tries every applicable
//! scheme and keeps the smallest encoding, returning a self-describing byte
//! block that [`decode_column`] can decode without external context.

use vectorh_common::{ColumnData, Result, VhError};

use crate::lz;
use crate::pdict::{PdictI64, PdictStr};
use crate::pfor::{Pfor, PforDelta};

/// Compression scheme tags (also the on-wire discriminator byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    Pfor = 0,
    PforDelta = 1,
    PdictI64 = 2,
    PdictStr = 3,
    LzStr = 4,
    PlainF64 = 5,
}

impl Scheme {
    fn from_tag(tag: u8) -> Result<Scheme> {
        Ok(match tag {
            0 => Scheme::Pfor,
            1 => Scheme::PforDelta,
            2 => Scheme::PdictI64,
            3 => Scheme::PdictStr,
            4 => Scheme::LzStr,
            5 => Scheme::PlainF64,
            t => return Err(VhError::Codec(format!("unknown scheme tag {t}"))),
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            Scheme::Pfor => "PFOR",
            Scheme::PforDelta => "PFOR-DELTA",
            Scheme::PdictI64 => "PDICT",
            Scheme::PdictStr => "PDICT-STR",
            Scheme::LzStr => "LZ-STR",
            Scheme::PlainF64 => "PLAIN-F64",
        }
    }
}

/// An encoded block plus bookkeeping for the benchmark harnesses.
#[derive(Debug, Clone)]
pub struct EncodedBlock {
    pub scheme: Scheme,
    pub bytes: Vec<u8>,
}

/// Compression statistics for reporting (Figure 1c).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecStats {
    pub scheme: Scheme,
    pub raw_bytes: usize,
    pub encoded_bytes: usize,
}

impl CodecStats {
    pub fn ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            f64::INFINITY
        } else {
            self.raw_bytes as f64 / self.encoded_bytes as f64
        }
    }
}

// --- tiny wire helpers -----------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(tag: Scheme) -> Writer {
        Writer {
            buf: vec![tag as u8],
        }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
    fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| VhError::Codec("truncated block".into()))?;
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }
    fn str(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| VhError::Codec("invalid utf8".into()))
    }
}

// --- per-scheme serialization ----------------------------------------------

fn write_pfor_body(w: &mut Writer, p: &Pfor) {
    w.i64(p.base);
    w.u8(p.width);
    w.u32(p.n);
    w.u32(p.first_exc);
    w.bytes(&p.codes);
    w.u32(p.exceptions.len() as u32);
    for &e in &p.exceptions {
        w.i64(e);
    }
}

fn read_pfor_body(r: &mut Reader) -> Result<Pfor> {
    let base = r.i64()?;
    let width = r.u8()?;
    let n = r.u32()?;
    let first_exc = r.u32()?;
    let codes = r.bytes()?.to_vec();
    let exc_n = r.u32()? as usize;
    let mut exceptions = Vec::with_capacity(exc_n);
    for _ in 0..exc_n {
        exceptions.push(r.i64()?);
    }
    Ok(Pfor {
        base,
        width,
        n,
        first_exc,
        codes,
        exceptions,
    })
}

fn encode_pfor(p: &Pfor) -> Vec<u8> {
    let mut w = Writer::new(Scheme::Pfor);
    write_pfor_body(&mut w, p);
    w.buf
}

fn encode_pfor_delta(p: &PforDelta) -> Vec<u8> {
    let mut w = Writer::new(Scheme::PforDelta);
    w.i64(p.seed);
    write_pfor_body(&mut w, &p.inner);
    w.buf
}

fn encode_pdict_i64(p: &PdictI64) -> Vec<u8> {
    let mut w = Writer::new(Scheme::PdictI64);
    w.u32(p.dict.len() as u32);
    for &d in &p.dict {
        w.i64(d);
    }
    w.u8(p.width);
    w.u32(p.n);
    w.u32(p.first_exc);
    w.bytes(&p.codes);
    w.u32(p.exceptions.len() as u32);
    for &e in &p.exceptions {
        w.i64(e);
    }
    w.buf
}

fn encode_pdict_str(p: &PdictStr) -> Vec<u8> {
    let mut w = Writer::new(Scheme::PdictStr);
    w.u32(p.dict.len() as u32);
    for d in &p.dict {
        w.str(d);
    }
    w.u8(p.width);
    w.u32(p.n);
    w.u32(p.first_exc);
    w.bytes(&p.codes);
    w.u32(p.exceptions.len() as u32);
    for e in &p.exceptions {
        w.str(e);
    }
    w.buf
}

fn encode_lz_str(values: &[String]) -> Vec<u8> {
    let mut raw = Vec::new();
    for v in values {
        raw.extend_from_slice(&(v.len() as u32).to_le_bytes());
        raw.extend_from_slice(v.as_bytes());
    }
    let mut w = Writer::new(Scheme::LzStr);
    w.u32(values.len() as u32);
    let mut compressed = Vec::new();
    lz::compress(&raw, &mut compressed);
    w.bytes(&compressed);
    w.buf
}

fn encode_plain_f64(values: &[f64]) -> Vec<u8> {
    let mut w = Writer::new(Scheme::PlainF64);
    w.u32(values.len() as u32);
    for &v in values {
        w.f64(v);
    }
    w.buf
}

// --- public API --------------------------------------------------------------

/// Encode a column buffer, choosing the smallest applicable scheme.
pub fn encode_column(col: &ColumnData) -> EncodedBlock {
    match col {
        ColumnData::I32(v) => {
            let wide: Vec<i64> = v.iter().map(|&x| x as i64).collect();
            encode_ints(&wide, true)
        }
        ColumnData::I64(v) => encode_ints(v, false),
        ColumnData::F64(v) => EncodedBlock {
            scheme: Scheme::PlainF64,
            bytes: encode_plain_f64(v),
        },
        ColumnData::Str(v) => {
            let dict = PdictStr::encode(v);
            let dict_bytes = encode_pdict_str(&dict);
            let lz_bytes = encode_lz_str(v);
            if dict_bytes.len() <= lz_bytes.len() {
                EncodedBlock {
                    scheme: Scheme::PdictStr,
                    bytes: dict_bytes,
                }
            } else {
                EncodedBlock {
                    scheme: Scheme::LzStr,
                    bytes: lz_bytes,
                }
            }
        }
    }
}

/// Integer scheme contest: PFOR vs PFOR-DELTA vs PDICT.
///
/// The narrow flag is carried in the block so i32 columns decode back to i32.
fn encode_ints(values: &[i64], narrow: bool) -> EncodedBlock {
    let pfor = Pfor::encode(values);
    let pfor_bytes = encode_pfor(&pfor);
    let delta = PforDelta::encode(values);
    let delta_bytes = encode_pfor_delta(&delta);
    let pdict = PdictI64::encode(values);
    let pdict_bytes = encode_pdict_i64(&pdict);
    let (scheme, mut bytes) = [
        (Scheme::Pfor, pfor_bytes),
        (Scheme::PforDelta, delta_bytes),
        (Scheme::PdictI64, pdict_bytes),
    ]
    .into_iter()
    .min_by_key(|(_, b)| b.len())
    .expect("three candidates");
    // Narrowness marker byte appended at the end (read by decode_column).
    bytes.push(narrow as u8);
    EncodedBlock { scheme, bytes }
}

/// Decode a block produced by [`encode_column`].
pub fn decode_column(bytes: &[u8]) -> Result<ColumnData> {
    if bytes.is_empty() {
        return Err(VhError::Codec("empty block".into()));
    }
    let scheme = Scheme::from_tag(bytes[0])?;
    let mut r = Reader::new(&bytes[1..]);
    match scheme {
        Scheme::Pfor | Scheme::PforDelta | Scheme::PdictI64 => {
            let narrow = *bytes.last().unwrap() == 1;
            let body = &bytes[1..bytes.len() - 1];
            let mut r = Reader::new(body);
            let mut out: Vec<i64> = Vec::new();
            match scheme {
                Scheme::Pfor => read_pfor_body(&mut r)?.decode(&mut out),
                Scheme::PforDelta => {
                    let seed = r.i64()?;
                    let inner = read_pfor_body(&mut r)?;
                    PforDelta { seed, inner }.decode(&mut out);
                }
                Scheme::PdictI64 => {
                    let dict_n = r.u32()? as usize;
                    let mut dict = Vec::with_capacity(dict_n);
                    for _ in 0..dict_n {
                        dict.push(r.i64()?);
                    }
                    let width = r.u8()?;
                    let n = r.u32()?;
                    let first_exc = r.u32()?;
                    let codes = r.bytes()?.to_vec();
                    let exc_n = r.u32()? as usize;
                    let mut exceptions = Vec::with_capacity(exc_n);
                    for _ in 0..exc_n {
                        exceptions.push(r.i64()?);
                    }
                    PdictI64 {
                        dict,
                        width,
                        n,
                        first_exc,
                        codes,
                        exceptions,
                    }
                    .decode(&mut out);
                }
                _ => unreachable!(),
            }
            if narrow {
                Ok(ColumnData::I32(out.into_iter().map(|v| v as i32).collect()))
            } else {
                Ok(ColumnData::I64(out))
            }
        }
        Scheme::PdictStr => {
            let dict_n = r.u32()? as usize;
            let mut dict = Vec::with_capacity(dict_n);
            for _ in 0..dict_n {
                dict.push(r.str()?);
            }
            let width = r.u8()?;
            let n = r.u32()?;
            let first_exc = r.u32()?;
            let codes = r.bytes()?.to_vec();
            let exc_n = r.u32()? as usize;
            let mut exceptions = Vec::with_capacity(exc_n);
            for _ in 0..exc_n {
                exceptions.push(r.str()?);
            }
            let mut out = Vec::new();
            PdictStr {
                dict,
                width,
                n,
                first_exc,
                codes,
                exceptions,
            }
            .decode(&mut out);
            Ok(ColumnData::Str(out))
        }
        Scheme::LzStr => {
            let n = r.u32()? as usize;
            let compressed = r.bytes()?;
            let mut raw = Vec::new();
            lz::decompress(compressed, &mut raw)
                .ok_or_else(|| VhError::Codec("lz stream corrupt".into()))?;
            let mut out = Vec::with_capacity(n);
            let mut rr = Reader::new(&raw);
            for _ in 0..n {
                out.push(rr.str()?);
            }
            Ok(ColumnData::Str(out))
        }
        Scheme::PlainF64 => {
            let n = r.u32()? as usize;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(r.f64()?);
            }
            Ok(ColumnData::F64(out))
        }
    }
}

/// Encode and report statistics.
pub fn encode_with_stats(col: &ColumnData) -> (EncodedBlock, CodecStats) {
    let raw = col.byte_size();
    let block = encode_column(col);
    let stats = CodecStats {
        scheme: block.scheme,
        raw_bytes: raw,
        encoded_bytes: block.bytes.len(),
    };
    (block, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::rng::SplitMix64;

    fn roundtrip(col: &ColumnData) -> EncodedBlock {
        let enc = encode_column(col);
        let dec = decode_column(&enc.bytes).expect("decode");
        assert_eq!(&dec, col);
        enc
    }

    #[test]
    fn i32_stays_i32() {
        let col = ColumnData::I32(vec![1, -5, 1000, 7]);
        let enc = roundtrip(&col);
        assert!(matches!(
            decode_column(&enc.bytes).unwrap(),
            ColumnData::I32(_)
        ));
    }

    #[test]
    fn sorted_picks_delta() {
        let col = ColumnData::I64((0..5000).map(|i| 1_000_000 + i * 7).collect());
        let enc = roundtrip(&col);
        assert_eq!(enc.scheme, Scheme::PforDelta);
    }

    #[test]
    fn low_cardinality_picks_pdict() {
        // Large spread but few distinct values: PDICT should win over PFOR.
        let col = ColumnData::I64((0..5000).map(|i| [0i64, 1 << 60, -42][i % 3]).collect());
        let enc = roundtrip(&col);
        assert_eq!(enc.scheme, Scheme::PdictI64);
    }

    #[test]
    fn small_range_unsorted_picks_pfor() {
        let mut rng = SplitMix64::new(8);
        let col = ColumnData::I64((0..5000).map(|_| rng.range_i64(0, 100_000)).collect());
        let enc = roundtrip(&col);
        assert_eq!(enc.scheme, Scheme::Pfor);
    }

    #[test]
    fn strings_roundtrip_both_schemes() {
        // Low cardinality in random order (periodic order would let LZ win
        // by matching whole repeating stretches) → PDICT-STR.
        let mut rng = SplitMix64::new(21);
        let col = ColumnData::Str(
            (0..1000)
                .map(|_| format!("category-{}", rng.next_bounded(5)))
                .collect(),
        );
        let enc = roundtrip(&col);
        assert_eq!(enc.scheme, Scheme::PdictStr);
        // High cardinality but LZ-compressible prefixes → LZ-STR.
        let col = ColumnData::Str(
            (0..1000)
                .map(|i| format!("customer-comment-text-number-{i:08}"))
                .collect(),
        );
        let enc = roundtrip(&col);
        assert_eq!(enc.scheme, Scheme::LzStr);
    }

    #[test]
    fn floats_roundtrip() {
        roundtrip(&ColumnData::F64(vec![
            1.5,
            -0.25,
            f64::MAX,
            f64::MIN_POSITIVE,
        ]));
    }

    #[test]
    fn empty_columns_roundtrip() {
        roundtrip(&ColumnData::I64(vec![]));
        roundtrip(&ColumnData::I32(vec![]));
        roundtrip(&ColumnData::Str(vec![]));
        roundtrip(&ColumnData::F64(vec![]));
    }

    #[test]
    fn stats_report_compression() {
        let col = ColumnData::I64((0..10_000).map(|i| i % 50).collect());
        let (_, stats) = encode_with_stats(&col);
        assert!(stats.ratio() > 4.0, "ratio {}", stats.ratio());
        assert_eq!(stats.raw_bytes, 80_000);
    }

    #[test]
    fn corrupt_blocks_rejected() {
        assert!(decode_column(&[]).is_err());
        assert!(decode_column(&[99, 0, 0]).is_err());
        let enc = encode_column(&ColumnData::I64(vec![1, 2, 3]));
        assert!(decode_column(&enc.bytes[..3]).is_err());
    }

    #[test]
    fn prop_codec_roundtrip_ints() {
        let mut meta = SplitMix64::new(0xC0DEC);
        for case in 0..60 {
            let seed = meta.next_u64();
            let n = meta.next_bounded(1200) as usize;
            let mut rng = SplitMix64::new(seed);
            let vals: Vec<i64> = match case % 3 {
                0 => (0..n).map(|_| rng.next_u64() as i64).collect(),
                1 => {
                    let mut acc = 0i64;
                    (0..n)
                        .map(|_| {
                            acc += rng.range_i64(0, 9);
                            acc
                        })
                        .collect()
                }
                _ => (0..n)
                    .map(|_| rng.next_bounded(5) as i64 * 1_000_000_007)
                    .collect(),
            };
            let col = ColumnData::I64(vals);
            let enc = encode_column(&col);
            assert_eq!(decode_column(&enc.bytes).unwrap(), col, "seed {seed}");
        }
    }

    #[test]
    fn prop_codec_roundtrip_strings() {
        let mut meta = SplitMix64::new(0x57C0DEC);
        for _ in 0..40 {
            let seed = meta.next_u64();
            let n = meta.next_bounded(400) as usize;
            let mut rng = SplitMix64::new(seed);
            let vals: Vec<String> = (0..n)
                .map(|_| {
                    let len = rng.next_bounded(20) as usize;
                    (0..len)
                        .map(|_| (b'a' + rng.next_bounded(26) as u8) as char)
                        .collect()
                })
                .collect();
            let col = ColumnData::Str(vals);
            let enc = encode_column(&col);
            assert_eq!(decode_column(&enc.bytes).unwrap(), col, "seed {seed}");
        }
    }
}
