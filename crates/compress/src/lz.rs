//! A byte-oriented LZ77 codec.
//!
//! Stands in for LZ4/Snappy. VectorH applies it only to string data that
//! dictionary compression cannot handle (the paper: "VectorH uses LZ4 in
//! this case"), while the ORC/Parquet baselines in [`crate::baseline`] run it
//! over *all* data — the "routine use of expensive general-purpose
//! compression" the paper criticises. Reproducing both behaviours needs a
//! real working codec, so this is one: greedy hash-table matching, token
//! format `[0..=127]` = literal run of `t+1` bytes, `[128..=255]` = match of
//! length `t-124` at a 16-bit back-offset.

const HASH_BITS: u32 = 14;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 131; // (255-128) + MIN_MATCH
const MAX_LITERAL: usize = 128;
const MAX_OFFSET: usize = u16::MAX as usize;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let w = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (w.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`, appending to `out`. Returns compressed length.
pub fn compress(input: &[u8], out: &mut Vec<u8>) -> usize {
    let start_len = out.len();
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut lit_start = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut p = from;
        while p < to {
            let run = (to - p).min(MAX_LITERAL);
            out.push((run - 1) as u8);
            out.extend_from_slice(&input[p..p + run]);
            p += run;
        }
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let cand = table[h];
        table[h] = i;
        if cand != usize::MAX
            && i - cand <= MAX_OFFSET
            && input[cand..cand + MIN_MATCH] == input[i..i + MIN_MATCH]
        {
            // Extend the match.
            let mut len = MIN_MATCH;
            let limit = (input.len() - i).min(MAX_MATCH);
            while len < limit && input[cand + len] == input[i + len] {
                len += 1;
            }
            flush_literals(out, lit_start, i);
            out.push((128 + (len - MIN_MATCH)) as u8);
            out.extend_from_slice(&((i - cand) as u16).to_le_bytes());
            i += len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(out, lit_start, input.len());
    out.len() - start_len
}

/// Decompress `input` (must be a full compressed stream), appending to `out`.
///
/// Returns `None` on malformed input.
pub fn decompress(input: &[u8], out: &mut Vec<u8>) -> Option<usize> {
    let start_len = out.len();
    let mut i = 0usize;
    while i < input.len() {
        let t = input[i];
        i += 1;
        if t < 128 {
            let run = t as usize + 1;
            if i + run > input.len() {
                return None;
            }
            out.extend_from_slice(&input[i..i + run]);
            i += run;
        } else {
            let len = (t as usize - 128) + MIN_MATCH;
            if i + 2 > input.len() {
                return None;
            }
            let offset = u16::from_le_bytes([input[i], input[i + 1]]) as usize;
            i += 2;
            let produced = out.len() - start_len;
            if offset == 0 || offset > produced {
                return None;
            }
            // Byte-by-byte copy: offsets smaller than the length implement
            // run repetition, as in LZ4.
            let from = out.len() - offset;
            for k in 0..len {
                let b = out[from + k];
                out.push(b);
            }
        }
    }
    Some(out.len() - start_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::rng::SplitMix64;

    fn roundtrip(data: &[u8]) -> usize {
        let mut c = Vec::new();
        compress(data, &mut c);
        let mut d = Vec::new();
        assert_eq!(decompress(&c, &mut d), Some(data.len()));
        assert_eq!(d, data);
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        assert_eq!(roundtrip(b""), 0);
        roundtrip(b"a");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_data_compresses() {
        let data = b"abcdabcdabcdabcdabcdabcdabcdabcd".repeat(32);
        let csize = roundtrip(&data);
        assert!(csize < data.len() / 4, "{csize} vs {}", data.len());
    }

    #[test]
    fn run_of_single_byte() {
        let data = vec![7u8; 10_000];
        // Match tokens cover at most MAX_MATCH bytes each (3 bytes per token).
        let csize = roundtrip(&data);
        assert!(csize < 10_000 * 3 / MAX_MATCH + 16, "csize = {csize}");
    }

    #[test]
    fn incompressible_data_grows_bounded() {
        let mut rng = SplitMix64::new(5);
        let data: Vec<u8> = (0..4096).map(|_| rng.next_u64() as u8).collect();
        let csize = roundtrip(&data);
        // Worst case literal overhead: 1 control byte per 128 literals.
        assert!(csize <= data.len() + data.len() / 128 + 2);
    }

    #[test]
    fn text_like_data() {
        let text = "the quick brown fox jumps over the lazy dog; \
                    the quick brown fox jumps again and again and again. "
            .repeat(40);
        let csize = roundtrip(text.as_bytes());
        assert!(csize < text.len() / 2);
    }

    #[test]
    fn long_matches_split_correctly() {
        // Longer than MAX_MATCH forces multiple match tokens.
        let mut data = Vec::new();
        data.extend_from_slice(b"0123456789abcdef");
        for _ in 0..100 {
            data.extend_from_slice(b"0123456789abcdef");
        }
        roundtrip(&data);
    }

    #[test]
    fn rejects_malformed() {
        let mut out = Vec::new();
        // match token with no produced bytes
        assert_eq!(decompress(&[200, 1, 0], &mut out), None);
        // literal run past end
        assert_eq!(decompress(&[10, 1, 2], &mut out), None);
        // truncated offset
        assert_eq!(decompress(&[0, b'x', 130, 1], &mut out), None);
    }

    #[test]
    fn prop_roundtrip_structured() {
        let mut meta = SplitMix64::new(0x1_2277);
        for _ in 0..40 {
            let seed = meta.next_u64();
            let n = meta.next_bounded(5000) as usize;
            let alphabet = 1 + meta.next_bounded(19);
            let mut rng = SplitMix64::new(seed);
            let data: Vec<u8> = (0..n)
                .map(|_| b'a' + rng.next_bounded(alphabet) as u8)
                .collect();
            let mut c = Vec::new();
            compress(&data, &mut c);
            let mut d = Vec::new();
            assert_eq!(decompress(&c, &mut d), Some(data.len()), "seed {seed}");
            assert_eq!(d, data, "seed {seed}");
        }
    }

    #[test]
    fn prop_roundtrip_random() {
        let mut meta = SplitMix64::new(0x1_24A2);
        for _ in 0..40 {
            let seed = meta.next_u64();
            let n = meta.next_bounded(3000) as usize;
            let mut rng = SplitMix64::new(seed);
            let data: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            let mut c = Vec::new();
            compress(&data, &mut c);
            let mut d = Vec::new();
            assert_eq!(decompress(&c, &mut d), Some(data.len()), "seed {seed}");
            assert_eq!(d, data, "seed {seed}");
        }
    }
}
