//! PFOR and PFOR-DELTA: patched frame-of-reference coding.
//!
//! Values are represented as unsigned deltas from a per-block *base* (the
//! block minimum), packed at a fixed bit width chosen to make most values
//! fit. Values that do not fit become **exceptions**: their original value is
//! appended uncompressed after the code section, and their code slot instead
//! holds the distance to the *next* exception, forming a linked chain
//! starting at `first_exc`. Decompression therefore has two phases, exactly
//! as the paper describes: a branch-free inflate of all codes, then a short
//! data-dependent patch walk that "hops over the decompressed codes treating
//! them as next pointers".
//!
//! When exceptions are further apart than the chain can express at the
//! chosen width, the encoder inserts *forced exceptions* to keep the chain
//! connected (standard PFOR practice).

use crate::bitpack;

/// An encoded PFOR block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pfor {
    /// Frame of reference: decoded value = base + code (wrapping).
    pub base: i64,
    /// Bits per packed code.
    pub width: u8,
    /// Number of values.
    pub n: u32,
    /// Index of the first exception, or `u32::MAX` when there are none.
    pub first_exc: u32,
    /// Bit-packed code section.
    pub codes: Vec<u8>,
    /// Exception values (originals), in position order.
    pub exceptions: Vec<i64>,
}

/// Size in bytes an encoding with these parameters will occupy on disk
/// (excluding the fixed header the storage layer adds).
fn body_size(n: usize, width: u8, exceptions: usize) -> usize {
    bitpack::packed_size(n, width) + exceptions * 8
}

/// Pick the code width minimizing encoded size.
///
/// Natural exceptions per width come from a bit-width histogram; forced
/// exceptions (chain gaps) are charged pessimistically as `n >> width`.
fn choose_width(deltas: &[u64]) -> u8 {
    if deltas.is_empty() {
        return 0;
    }
    let mut hist = [0usize; 65];
    for &d in deltas {
        hist[vectorh_common::util::bits_needed(d) as usize] += 1;
    }
    // suffix[w] = number of values needing more than w bits = natural exceptions at width w.
    let mut best_w = 64u8;
    let mut best_size = usize::MAX;
    let mut exceptions = 0usize;
    for w in (0..=64u8).rev() {
        // Forced exceptions only arise between natural ones; charge the
        // chain-density bound only when natural exceptions exist at all.
        let forced = if exceptions == 0 || w == 0 || w >= 32 {
            0
        } else {
            (deltas.len() >> w).saturating_sub(exceptions)
        };
        let exc = exceptions + forced;
        // width 0 cannot host an exception chain.
        if !(w == 0 && exc > 0) {
            let size = body_size(deltas.len(), w, exc);
            if size < best_size {
                best_size = size;
                best_w = w;
            }
        }
        exceptions += hist[w as usize];
    }
    best_w
}

impl Pfor {
    /// Encode a slice of values.
    pub fn encode(values: &[i64]) -> Pfor {
        let n = values.len();
        if n == 0 {
            return Pfor {
                base: 0,
                width: 0,
                n: 0,
                first_exc: u32::MAX,
                codes: vec![],
                exceptions: vec![],
            };
        }
        let base = *values.iter().min().expect("non-empty");
        let deltas: Vec<u64> = values
            .iter()
            .map(|&v| v.wrapping_sub(base) as u64)
            .collect();
        let width = choose_width(&deltas);
        Self::encode_with_width(values, base, width, &deltas)
    }

    fn encode_with_width(values: &[i64], base: i64, width: u8, deltas: &[u64]) -> Pfor {
        let n = values.len();
        let mask = if width == 0 {
            0u64
        } else if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        // Max expressible chain hop: a code slot holds (next_idx - this_idx - 1).
        let max_gap = mask as usize; // hop of mask means next exception is mask+1 slots away

        // First pass: decide which positions are exceptions (natural + forced).
        let mut exc_pos: Vec<usize> = Vec::new();
        let mut last_exc: Option<usize> = None;
        for (i, &d) in deltas.iter().enumerate() {
            let natural = width < 64 && d > mask;
            let forced = match last_exc {
                Some(j) => {
                    !exc_pos.is_empty() && i - j > max_gap && {
                        // Force only when the *next* natural exception would be
                        // unreachable; conservatively force at the horizon.
                        i - j - 1 == max_gap && has_later_exception(deltas, i, mask, width)
                    }
                }
                None => false,
            };
            if natural || forced {
                exc_pos.push(i);
                last_exc = Some(i);
            }
        }
        debug_assert!(width > 0 || exc_pos.is_empty());

        // Second pass: build the code stream with chain pointers in exception slots.
        let mut slots: Vec<u64> = Vec::with_capacity(n);
        let mut exceptions: Vec<i64> = Vec::with_capacity(exc_pos.len());
        let mut next_exc_iter = exc_pos.iter().copied().peekable();
        let mut exc_idx = 0usize;
        for (i, &d) in deltas.iter().enumerate() {
            if next_exc_iter.peek() == Some(&i) {
                next_exc_iter.next();
                // chain pointer: distance to the following exception - 1
                let hop = match exc_pos.get(exc_idx + 1) {
                    Some(&nj) => (nj - i - 1) as u64,
                    None => 0, // terminal hop value is unused; count bounds the walk
                };
                debug_assert!(hop <= mask);
                slots.push(hop & mask);
                exceptions.push(values[i]);
                exc_idx += 1;
            } else {
                slots.push(d);
            }
        }
        let mut codes = Vec::with_capacity(bitpack::packed_size(n, width));
        bitpack::pack(&slots, width, &mut codes);
        Pfor {
            base,
            width,
            n: n as u32,
            first_exc: exc_pos.first().map(|&i| i as u32).unwrap_or(u32::MAX),
            codes,
            exceptions,
        }
    }

    /// Decode into `out` (appended). Two phases: inflate, then patch.
    ///
    /// Codes are unpacked by the SIMD kernels straight into the output
    /// buffer (no staging vector); the exception chain is walked over the
    /// raw slots *before* the vectorized frame-of-reference add, so the
    /// inflate stays branch-free and the patch is a short scatter.
    pub fn decode(&self, out: &mut Vec<i64>) {
        let n = self.n as usize;
        let start = out.len();
        out.resize(start + n, 0);
        let dst = &mut out[start..];
        crate::simd::unpack_into(&self.codes, self.width, crate::simd::i64_as_u64_mut(dst));
        // Walk the next-pointer chain while slots are still raw hops.
        let mut exc_at: Vec<usize> = Vec::with_capacity(self.exceptions.len());
        if self.first_exc != u32::MAX {
            let mut j = self.first_exc as usize;
            for k in 0..self.exceptions.len() {
                exc_at.push(j);
                if k + 1 < self.exceptions.len() {
                    j += dst[j] as usize + 1;
                }
            }
        }
        // Phase 1: branch-free inflate of every slot.
        crate::simd::add_base_i64(dst, self.base);
        // Phase 2: patch exceptions at the recorded positions.
        for (&j, &e) in exc_at.iter().zip(&self.exceptions) {
            dst[j] = e;
        }
    }

    /// Encoded body size in bytes.
    pub fn body_size(&self) -> usize {
        body_size(self.n as usize, self.width, self.exceptions.len())
    }
}

fn has_later_exception(deltas: &[u64], from: usize, mask: u64, width: u8) -> bool {
    width < 64 && deltas[from..].iter().any(|&d| d > mask)
}

/// PFOR-DELTA: PFOR applied to consecutive differences.
///
/// `seed` is the first value; slot `i` holds `v[i] - v[i-1]` (slot 0 holds 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PforDelta {
    pub seed: i64,
    pub inner: Pfor,
}

impl PforDelta {
    pub fn encode(values: &[i64]) -> PforDelta {
        if values.is_empty() {
            return PforDelta {
                seed: 0,
                inner: Pfor::encode(&[]),
            };
        }
        let seed = values[0];
        let mut diffs = Vec::with_capacity(values.len());
        diffs.push(0i64);
        for w in values.windows(2) {
            diffs.push(w[1].wrapping_sub(w[0]));
        }
        PforDelta {
            seed,
            inner: Pfor::encode(&diffs),
        }
    }

    pub fn decode(&self, out: &mut Vec<i64>) {
        let start = out.len();
        self.inner.decode(out);
        // Log-step SIMD scan reconstructs the running sums from the deltas.
        crate::simd::prefix_sum_i64(&mut out[start..], self.seed);
    }

    pub fn body_size(&self) -> usize {
        8 + self.inner.body_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::rng::SplitMix64;

    fn roundtrip(values: &[i64]) -> Pfor {
        let enc = Pfor::encode(values);
        let mut out = Vec::new();
        enc.decode(&mut out);
        assert_eq!(out, values, "pfor roundtrip failed");
        enc
    }

    fn roundtrip_delta(values: &[i64]) -> PforDelta {
        let enc = PforDelta::encode(values);
        let mut out = Vec::new();
        enc.decode(&mut out);
        assert_eq!(out, values, "pfor-delta roundtrip failed");
        enc
    }

    #[test]
    fn empty_and_singleton() {
        roundtrip(&[]);
        roundtrip(&[42]);
        roundtrip_delta(&[]);
        roundtrip_delta(&[42]);
    }

    #[test]
    fn constant_column_is_nearly_free() {
        let vals = vec![7i64; 5000];
        let enc = roundtrip(&vals);
        assert_eq!(enc.width, 0);
        assert_eq!(enc.body_size(), 0);
    }

    #[test]
    fn small_range_packs_thin() {
        let vals: Vec<i64> = (0..4096).map(|i| 1_000_000 + (i % 16)).collect();
        let enc = roundtrip(&vals);
        assert_eq!(enc.width, 4);
        assert!(enc.exceptions.is_empty());
        assert_eq!(enc.body_size(), 4096 * 4 / 8);
    }

    #[test]
    fn skewed_with_outliers_uses_exceptions() {
        // 99% small values, 1% huge outliers: the paper's motivating case.
        let mut rng = SplitMix64::new(1);
        let vals: Vec<i64> = (0..8192)
            .map(|_| {
                if rng.chance(0.01) {
                    rng.range_i64(1 << 40, 1 << 41)
                } else {
                    rng.range_i64(0, 255)
                }
            })
            .collect();
        let enc = roundtrip(&vals);
        assert!(enc.width <= 16, "width {} should stay thin", enc.width);
        assert!(!enc.exceptions.is_empty());
        // Must beat raw 8-byte storage comfortably.
        assert!(enc.body_size() < vals.len() * 8 / 3);
    }

    #[test]
    fn negative_values_and_extremes() {
        roundtrip(&[i64::MIN, i64::MAX, 0, -1, 1]);
        roundtrip(&[-5, -4, -3, -100, -5]);
    }

    #[test]
    fn adjacent_exceptions() {
        // Exceptions in consecutive slots exercise hop=0.
        let mut vals = vec![1i64; 100];
        vals[50] = 1 << 50;
        vals[51] = 1 << 51;
        vals[52] = 1 << 52;
        let enc = roundtrip(&vals);
        assert_eq!(enc.exceptions.len(), 3);
    }

    #[test]
    fn exception_at_block_edges() {
        let mut vals = vec![3i64; 64];
        vals[0] = i64::MAX;
        vals[63] = i64::MIN;
        roundtrip(&vals);
    }

    #[test]
    fn sorted_data_much_smaller_with_delta() {
        let vals: Vec<i64> = (0..10_000).map(|i| i * 3 + (i % 2)).collect();
        let plain = Pfor::encode(&vals);
        let delta = roundtrip_delta(&vals);
        assert!(
            delta.body_size() < plain.body_size(),
            "delta {} should beat plain {}",
            delta.body_size(),
            plain.body_size()
        );
    }

    #[test]
    fn distant_exceptions_forced_chain() {
        // Two outliers separated by far more than 2^width slots at thin width.
        let mut vals = vec![0i64; 40_000];
        vals[10] = 1 << 60;
        vals[39_990] = 1 << 60;
        roundtrip(&vals);
    }

    #[test]
    fn prop_pfor_roundtrip() {
        let mut meta = SplitMix64::new(0x9F02);
        for _ in 0..48 {
            let seed = meta.next_u64();
            let n = meta.next_bounded(2000) as usize;
            let spread = meta.next_bounded(60) as u32;
            let mut rng = SplitMix64::new(seed);
            let bound = 1i64 << spread;
            let vals: Vec<i64> = (0..n)
                .map(|_| {
                    if rng.chance(0.05) {
                        rng.next_u64() as i64
                    } else {
                        rng.range_i64(-bound, bound)
                    }
                })
                .collect();
            let enc = Pfor::encode(&vals);
            let mut out = Vec::new();
            enc.decode(&mut out);
            assert_eq!(out, vals, "seed {seed}");
        }
    }

    #[test]
    fn prop_pfordelta_roundtrip() {
        let mut meta = SplitMix64::new(0x9F02_DE17A);
        for _ in 0..48 {
            let seed = meta.next_u64();
            let n = meta.next_bounded(2000) as usize;
            let mut rng = SplitMix64::new(seed);
            let mut acc = rng.next_u64() as i64;
            let vals: Vec<i64> = (0..n)
                .map(|_| {
                    acc = acc.wrapping_add(rng.range_i64(-1000, 1000));
                    acc
                })
                .collect();
            let enc = PforDelta::encode(&vals);
            let mut out = Vec::new();
            enc.decode(&mut out);
            assert_eq!(out, vals, "seed {seed}");
        }
    }
}
