//! PDICT: patched dictionary compression.
//!
//! Frequent values get thin fixed-width dictionary codes; infrequent values
//! are *exceptions* stored verbatim after the code section, linked through
//! their code slots exactly like PFOR (see [`crate::pfor`]). This keeps the
//! hot decode path a branch-free inflate + dictionary gather even for skewed
//! value distributions — the property the paper credits for VectorH's
//! decompression speed.

use std::collections::HashMap;
use vectorh_common::util::bits_needed;

use crate::bitpack;

/// Plan exception positions given per-position "codeable" flags and the code
/// mask. Inserts forced exceptions so consecutive exceptions are never more
/// than `mask + 1` slots apart (the chain-hop limit).
fn plan_exceptions(codeable: &[bool], mask: u64) -> Vec<usize> {
    let max_gap = mask as usize;
    let mut exc = Vec::new();
    let mut last: Option<usize> = None;
    let mut later_natural: Vec<bool> = vec![false; codeable.len() + 1];
    for i in (0..codeable.len()).rev() {
        later_natural[i] = later_natural[i + 1] || !codeable[i];
    }
    for i in 0..codeable.len() {
        let natural = !codeable[i];
        let forced = match last {
            Some(j) => i - j - 1 == max_gap && later_natural[i],
            None => false,
        };
        if natural || forced {
            exc.push(i);
            last = Some(i);
        }
    }
    exc
}

/// Walk the patch chain to recover exception positions.
fn exception_positions(slots: &[u64], first_exc: u32, count: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(count);
    if first_exc == u32::MAX {
        return out;
    }
    let mut j = first_exc as usize;
    for k in 0..count {
        out.push(j);
        if k + 1 < count {
            j += slots[j] as usize + 1;
        }
    }
    out
}

/// PDICT over 64-bit integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdictI64 {
    pub dict: Vec<i64>,
    pub width: u8,
    pub n: u32,
    pub first_exc: u32,
    pub codes: Vec<u8>,
    pub exceptions: Vec<i64>,
}

/// PDICT over strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdictStr {
    pub dict: Vec<String>,
    pub width: u8,
    pub n: u32,
    pub first_exc: u32,
    pub codes: Vec<u8>,
    pub exceptions: Vec<String>,
}

/// Shared encode: given per-value dictionary codes (`None` = not in dict),
/// produce the packed slot stream and exception position list.
fn encode_slots(codes_opt: &[Option<u64>], width: u8) -> (Vec<u8>, u32, Vec<usize>) {
    let mask = if width == 0 {
        0
    } else if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let codeable: Vec<bool> = codes_opt.iter().map(|c| c.is_some()).collect();
    let exc_pos = plan_exceptions(&codeable, mask);
    let mut slots = Vec::with_capacity(codes_opt.len());
    let mut exc_iter = exc_pos.iter().copied().enumerate().peekable();
    for (i, c) in codes_opt.iter().enumerate() {
        if let Some(&(k, pos)) = exc_iter.peek() {
            if pos == i {
                exc_iter.next();
                let hop = match exc_pos.get(k + 1) {
                    Some(&nj) => (nj - i - 1) as u64,
                    None => 0,
                };
                slots.push(hop & mask);
                continue;
            }
        }
        slots.push(c.expect("non-exception slot must be codeable"));
    }
    let mut packed = Vec::new();
    bitpack::pack(&slots, width, &mut packed);
    let first = exc_pos.first().map(|&i| i as u32).unwrap_or(u32::MAX);
    (packed, first, exc_pos)
}

/// Choose how many dictionary entries to keep, minimizing
/// `n*width/8 + dict_cost + exceptions*exc_cost`.
///
/// `freqs` must be sorted descending by frequency; `entry_cost(i)` is the
/// dictionary-storage cost of entry `i`.
fn choose_dict_size(
    freqs: &[usize],
    n: usize,
    entry_costs: &[usize],
    exc_cost_per_value: usize,
) -> usize {
    let mut best_k = 0usize;
    let mut best_size = usize::MAX;
    let mut dict_cost = 0usize;
    let mut covered = 0usize;
    // k = 0 means "dictionary useless"; caller falls back to another scheme.
    for k in 1..=freqs.len() {
        dict_cost += entry_costs[k - 1];
        covered += freqs[k - 1];
        let width = bits_needed((k - 1) as u64).max(1);
        let size = bitpack::packed_size(n, width) + dict_cost + (n - covered) * exc_cost_per_value;
        if size < best_size {
            best_size = size;
            best_k = k;
        }
    }
    best_k
}

impl PdictI64 {
    pub fn encode(values: &[i64]) -> PdictI64 {
        if values.is_empty() {
            return PdictI64 {
                dict: vec![],
                width: 0,
                n: 0,
                first_exc: u32::MAX,
                codes: vec![],
                exceptions: vec![],
            };
        }
        let mut freq: HashMap<i64, usize> = HashMap::new();
        for &v in values {
            *freq.entry(v).or_insert(0) += 1;
        }
        let mut by_freq: Vec<(i64, usize)> = freq.into_iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let freqs: Vec<usize> = by_freq.iter().map(|&(_, f)| f).collect();
        let costs: Vec<usize> = vec![8; by_freq.len()];
        let k = choose_dict_size(&freqs, values.len(), &costs, 8).max(1);
        let dict: Vec<i64> = by_freq[..k].iter().map(|&(v, _)| v).collect();
        let width = bits_needed((k - 1) as u64).max(1);
        let index: HashMap<i64, u64> = dict
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u64))
            .collect();
        let codes_opt: Vec<Option<u64>> = values.iter().map(|v| index.get(v).copied()).collect();
        let (codes, first_exc, exc_pos) = encode_slots(&codes_opt, width);
        let exceptions = exc_pos.iter().map(|&i| values[i]).collect();
        PdictI64 {
            dict,
            width,
            n: values.len() as u32,
            first_exc,
            codes,
            exceptions,
        }
    }

    pub fn decode(&self, out: &mut Vec<i64>) {
        let n = self.n as usize;
        if n == 0 {
            return;
        }
        let start = out.len();
        out.resize(start + n, 0);
        let dst = &mut out[start..];
        // Unpack codes straight into the output buffer (u64 slot view).
        crate::simd::unpack_into(&self.codes, self.width, crate::simd::i64_as_u64_mut(dst));
        // Walk the patch chain while slots are raw, then gather in place.
        let mut exc_pos: Vec<usize> = Vec::with_capacity(self.exceptions.len());
        if self.first_exc != u32::MAX {
            let mut j = self.first_exc as usize;
            for k in 0..self.exceptions.len() {
                exc_pos.push(j);
                if k + 1 < self.exceptions.len() {
                    j += dst[j] as usize + 1;
                }
            }
        }
        // Phase 1: dictionary gather. Exception slots hold chain hops which
        // may exceed the dictionary; the unsigned clamp keeps the gather
        // in-bounds (they get patched in phase 2).
        crate::simd::pdict_gather_inplace_i64(&self.dict, dst);
        // Phase 2: patch.
        for (&pos, e) in exc_pos.iter().zip(&self.exceptions) {
            dst[pos] = *e;
        }
    }

    pub fn body_size(&self) -> usize {
        self.dict.len() * 8 + self.codes.len() + self.exceptions.len() * 8
    }
}

impl PdictStr {
    pub fn encode(values: &[String]) -> PdictStr {
        if values.is_empty() {
            return PdictStr {
                dict: vec![],
                width: 0,
                n: 0,
                first_exc: u32::MAX,
                codes: vec![],
                exceptions: vec![],
            };
        }
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for v in values {
            *freq.entry(v.as_str()).or_insert(0) += 1;
        }
        let mut by_freq: Vec<(&str, usize)> = freq.into_iter().collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let freqs: Vec<usize> = by_freq.iter().map(|&(_, f)| f).collect();
        let costs: Vec<usize> = by_freq.iter().map(|&(s, _)| s.len() + 4).collect();
        let avg_len = values.iter().map(|s| s.len() + 4).sum::<usize>() / values.len().max(1);
        let k = choose_dict_size(&freqs, values.len(), &costs, avg_len).max(1);
        let dict: Vec<String> = by_freq[..k].iter().map(|&(v, _)| v.to_string()).collect();
        let width = bits_needed((k - 1) as u64).max(1);
        let index: HashMap<&str, u64> = dict
            .iter()
            .enumerate()
            .map(|(i, v)| (v.as_str(), i as u64))
            .collect();
        let codes_opt: Vec<Option<u64>> = values
            .iter()
            .map(|v| index.get(v.as_str()).copied())
            .collect();
        let (codes, first_exc, exc_pos) = encode_slots(&codes_opt, width);
        let exceptions = exc_pos.iter().map(|&i| values[i].clone()).collect();
        PdictStr {
            dict,
            width,
            n: values.len() as u32,
            first_exc,
            codes,
            exceptions,
        }
    }

    pub fn decode(&self, out: &mut Vec<String>) {
        let n = self.n as usize;
        let start = out.len();
        let mut slots = Vec::with_capacity(n);
        bitpack::unpack(&self.codes, n, self.width, &mut slots);
        let dmax = self.dict.len().saturating_sub(1);
        out.extend(
            slots
                .iter()
                .map(|&c| self.dict[(c as usize).min(dmax)].clone()),
        );
        let exc_pos = exception_positions(&slots, self.first_exc, self.exceptions.len());
        for (&pos, e) in exc_pos.iter().zip(&self.exceptions) {
            out[start + pos] = e.clone();
        }
    }

    pub fn body_size(&self) -> usize {
        self.dict.iter().map(|s| s.len() + 4).sum::<usize>()
            + self.codes.len()
            + self.exceptions.iter().map(|s| s.len() + 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::rng::SplitMix64;

    fn roundtrip_i64(values: &[i64]) -> PdictI64 {
        let enc = PdictI64::encode(values);
        let mut out = Vec::new();
        enc.decode(&mut out);
        assert_eq!(out, values);
        enc
    }

    fn roundtrip_str(values: &[String]) -> PdictStr {
        let enc = PdictStr::encode(values);
        let mut out = Vec::new();
        enc.decode(&mut out);
        assert_eq!(out, values);
        enc
    }

    #[test]
    fn empty_and_single() {
        roundtrip_i64(&[]);
        roundtrip_i64(&[99]);
        roundtrip_str(&[]);
        roundtrip_str(&["x".to_string()]);
    }

    #[test]
    fn low_cardinality_ints_pack_thin() {
        let vals: Vec<i64> = (0..4096).map(|i| [10i64, 20, 30, 40][i % 4]).collect();
        let enc = roundtrip_i64(&vals);
        assert_eq!(enc.dict.len(), 4);
        assert_eq!(enc.width, 2);
        assert!(enc.exceptions.is_empty());
        assert!(enc.body_size() < vals.len()); // ~0.25 B/value + dict
    }

    #[test]
    fn skewed_strings_use_exceptions() {
        let mut rng = SplitMix64::new(7);
        let vals: Vec<String> = (0..2000)
            .map(|_| {
                if rng.chance(0.02) {
                    format!("rare-{}", rng.next_u64())
                } else {
                    format!("common-{}", rng.next_bounded(8))
                }
            })
            .collect();
        let enc = roundtrip_str(&vals);
        assert!(
            enc.dict.len() <= 16 + 40,
            "dict stays small: {}",
            enc.dict.len()
        );
        assert!(!enc.exceptions.is_empty());
        let raw: usize = vals.iter().map(|s| s.len() + 4).sum();
        assert!(enc.body_size() < raw / 2);
    }

    #[test]
    fn all_distinct_strings_still_roundtrip() {
        let vals: Vec<String> = (0..500).map(|i| format!("v{i}")).collect();
        roundtrip_str(&vals);
    }

    #[test]
    fn plan_exceptions_inserts_forced_patches() {
        // naturals at 0 and 20, mask 3 => max hop 3 slots between exceptions
        let mut codeable = vec![true; 21];
        codeable[0] = false;
        codeable[20] = false;
        let exc = plan_exceptions(&codeable, 3);
        assert_eq!(exc.first(), Some(&0));
        assert_eq!(exc.last(), Some(&20));
        for w in exc.windows(2) {
            assert!(w[1] - w[0] - 1 <= 3, "gap too wide: {exc:?}");
        }
    }

    #[test]
    fn no_forced_patch_after_last_natural() {
        let mut codeable = vec![true; 100];
        codeable[1] = false;
        let exc = plan_exceptions(&codeable, 1);
        assert_eq!(exc, vec![1], "no trailing forced exceptions");
    }

    #[test]
    fn prop_pdict_i64_roundtrip() {
        let mut meta = SplitMix64::new(0x0D1C_7164);
        for _ in 0..48 {
            let seed = meta.next_u64();
            let n = meta.next_bounded(1500) as usize;
            let card = 1 + meta.next_bounded(39);
            let mut rng = SplitMix64::new(seed);
            let vals: Vec<i64> = (0..n)
                .map(|_| {
                    if rng.chance(0.03) {
                        rng.next_u64() as i64
                    } else {
                        rng.next_bounded(card) as i64
                    }
                })
                .collect();
            let enc = PdictI64::encode(&vals);
            let mut out = Vec::new();
            enc.decode(&mut out);
            assert_eq!(out, vals, "seed {seed}");
        }
    }

    #[test]
    fn prop_pdict_str_roundtrip() {
        let mut meta = SplitMix64::new(0x0D1C_7572);
        for _ in 0..48 {
            let seed = meta.next_u64();
            let n = meta.next_bounded(800) as usize;
            let mut rng = SplitMix64::new(seed);
            let vals: Vec<String> = (0..n)
                .map(|_| {
                    if rng.chance(0.05) {
                        format!("unique-{}", rng.next_u64())
                    } else {
                        format!("tag{}", rng.next_bounded(6))
                    }
                })
                .collect();
            let enc = PdictStr::encode(&vals);
            let mut out = Vec::new();
            enc.decode(&mut out);
            assert_eq!(out, vals, "seed {seed}");
        }
    }
}
