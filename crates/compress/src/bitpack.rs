//! Fixed-bitwidth packing kernels.
//!
//! PFOR and PDICT represent values as thin codes of `width` bits packed
//! back-to-back. The unpack path is the hot loop of every scan, so it is
//! written to process values in groups of 32 with no per-value branches —
//! the scalar analogue of the AVX2 kernels the paper mentions (which
//! decompress "64 or 128 consecutive values in typically less than half a
//! CPU cycle per value").

/// Pack `values` (each `< 2^width`) into `out` at `width` bits per value.
///
/// `width == 0` encodes a run of zeros and emits no bytes.
/// Panics in debug builds if a value does not fit.
pub fn pack(values: &[u64], width: u8, out: &mut Vec<u8>) {
    assert!(width as usize <= 64);
    if width == 0 {
        return;
    }
    let width = width as u32;
    let mut acc: u128 = 0;
    let mut acc_bits: u32 = 0;
    for &v in values {
        debug_assert!(
            width == 64 || v < (1u64 << width),
            "value {v} exceeds width {width}"
        );
        acc |= (v as u128) << acc_bits;
        acc_bits += width;
        while acc_bits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out.push(acc as u8);
    }
}

/// Unpack `count` values of `width` bits from `bytes` into `out`.
///
/// Returns the number of bytes consumed.
///
/// `out` is pre-sized once from the count hint and the kernels write
/// through the resulting chunk — no per-value `Vec` growth checks in the
/// hot loop. The actual decode dispatches to the AVX2 / SWAR / scalar arms
/// in [`crate::simd`].
pub fn unpack(bytes: &[u8], count: usize, width: u8, out: &mut Vec<u64>) -> usize {
    assert!(width as usize <= 64);
    let start = out.len();
    out.resize(start + count, 0);
    crate::simd::unpack_into(bytes, width, &mut out[start..])
}

/// Bytes needed to pack `count` values at `width` bits.
pub fn packed_size(count: usize, width: u8) -> usize {
    (count * width as usize).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u64], width: u8) {
        let mut bytes = Vec::new();
        pack(values, width, &mut bytes);
        assert_eq!(bytes.len(), packed_size(values.len(), width));
        let mut out = Vec::new();
        let consumed = unpack(&bytes, values.len(), width, &mut out);
        assert_eq!(consumed, bytes.len());
        assert_eq!(out, values);
    }

    #[test]
    fn zero_width_is_free() {
        roundtrip(&[0, 0, 0, 0, 0], 0);
        assert_eq!(packed_size(1000, 0), 0);
    }

    #[test]
    fn narrow_widths() {
        roundtrip(&[1, 0, 1, 1, 0, 0, 1, 0, 1], 1);
        roundtrip(&[3, 1, 2, 0, 3, 3], 2);
        roundtrip(&[7, 0, 5], 3);
    }

    #[test]
    fn widths_crossing_byte_boundaries() {
        let vals: Vec<u64> = (0..100).map(|i| (i * 37) % (1 << 13)).collect();
        roundtrip(&vals, 13);
        let vals: Vec<u64> = (0..100).map(|i| (i * 97) % (1 << 23)).collect();
        roundtrip(&vals, 23);
    }

    #[test]
    fn full_width() {
        roundtrip(&[u64::MAX, 0, 42, u64::MAX - 1], 64);
    }

    #[test]
    fn group_boundary_counts() {
        // counts around the 32-value group boundary
        for n in [31usize, 32, 33, 63, 64, 65, 96] {
            let vals: Vec<u64> = (0..n as u64).collect();
            roundtrip(&vals, 7);
        }
    }

    #[test]
    fn prop_roundtrip_any_width() {
        let mut meta = vectorh_common::rng::SplitMix64::new(0xB17);
        // Sweep every width; draw random lengths/payloads per width.
        for width in 0u8..=64 {
            let seed = meta.next_u64();
            let n = meta.next_bounded(300) as usize;
            let mut rng = vectorh_common::rng::SplitMix64::new(seed);
            let mask = if width == 0 {
                0
            } else if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let vals: Vec<u64> = (0..n).map(|_| rng.next_u64() & mask).collect();
            let mut bytes = Vec::new();
            pack(&vals, width, &mut bytes);
            let mut out = Vec::new();
            unpack(&bytes, vals.len(), width, &mut out);
            assert_eq!(out, vals, "width {width} seed {seed}");
        }
    }
}
