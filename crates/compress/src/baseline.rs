//! "ORC-like" and "Parquet-like" baseline codecs.
//!
//! The Figure 1 micro-benchmarks of the paper compare VectorH's storage
//! against ORC and Parquet and attribute the gap to three properties of the
//! Hadoop formats, all reproduced here:
//!
//! 1. **Value-at-a-time decoding** — the decoders below materialize one value
//!    per loop iteration through a varint/RLE state machine, instead of the
//!    branch-free group-wise inflate PFOR uses.
//! 2. **Routine general-purpose compression** — every encoded stream gets an
//!    extra LZ ("snappy") pass that must be undone on every read.
//! 3. **Weak 64-bit integer handling** (Parquet) — `i64` columns are stored
//!    as plain fixed-width bytes, which is why the paper's Figure 1c shows
//!    Parquet losing on `l_ep`/`l_ok`-style columns.
//!
//! These are *honest* codecs: they roundtrip byte-exactly, so the baseline
//! engines built on them produce correct query answers — just more slowly
//! and with more bytes touched.

use vectorh_common::ColumnData;

use crate::lz;

/// Zigzag-encode a signed value so small magnitudes get small varints.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// LEB128 varint append.
fn put_varint(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

/// LEB128 varint read; returns `(value, bytes_consumed)`.
fn get_varint(bytes: &[u8], pos: usize) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    let mut i = pos;
    loop {
        let b = *bytes.get(i)?;
        i += 1;
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Some((v, i - pos));
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

// ---------------------------------------------------------------------------
// ORC-like: RLE-v2-style runs of zigzag varints, then a snappy-like pass.
// ---------------------------------------------------------------------------

const RUN_TOKEN: u8 = 0;
const LITERAL_TOKEN: u8 = 1;
/// Minimum length for a (base, delta) run to pay off.
const MIN_RUN: usize = 3;

/// Encode integers ORC-style (before the general-purpose pass).
fn orc_encode_ints_raw(values: &[i64], out: &mut Vec<u8>) {
    put_varint(values.len() as u64, out);
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i < values.len() {
        // Detect a constant-delta run starting at i.
        let mut run_len = 1usize;
        if i + 1 < values.len() {
            let delta = values[i + 1].wrapping_sub(values[i]);
            run_len = 2;
            while i + run_len < values.len()
                && values[i + run_len].wrapping_sub(values[i + run_len - 1]) == delta
            {
                run_len += 1;
            }
            if run_len < MIN_RUN {
                run_len = 1;
            }
        }
        if run_len >= MIN_RUN {
            // Flush pending literals, then emit the run.
            if lit_start < i {
                out.push(LITERAL_TOKEN);
                put_varint((i - lit_start) as u64, out);
                for &v in &values[lit_start..i] {
                    put_varint(zigzag(v), out);
                }
            }
            let delta = values[i + 1].wrapping_sub(values[i]);
            out.push(RUN_TOKEN);
            put_varint(run_len as u64, out);
            put_varint(zigzag(values[i]), out);
            put_varint(zigzag(delta), out);
            i += run_len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    if lit_start < values.len() {
        out.push(LITERAL_TOKEN);
        put_varint((values.len() - lit_start) as u64, out);
        for &v in &values[lit_start..] {
            put_varint(zigzag(v), out);
        }
    }
}

fn orc_decode_ints_raw(bytes: &[u8]) -> Option<Vec<i64>> {
    let (n, mut pos) = get_varint(bytes, 0)?;
    let mut out = Vec::with_capacity(n as usize);
    // Deliberately value-at-a-time: each value goes through the token state
    // machine and a varint decode.
    while (out.len() as u64) < n {
        let token = *bytes.get(pos)?;
        pos += 1;
        let (len, c) = get_varint(bytes, pos)?;
        pos += c;
        match token {
            RUN_TOKEN => {
                let (base, c) = get_varint(bytes, pos)?;
                pos += c;
                let (delta, c) = get_varint(bytes, pos)?;
                pos += c;
                let mut v = unzigzag(base);
                let d = unzigzag(delta);
                for k in 0..len {
                    if k > 0 {
                        v = v.wrapping_add(d);
                    }
                    out.push(v);
                }
            }
            LITERAL_TOKEN => {
                for _ in 0..len {
                    let (z, c) = get_varint(bytes, pos)?;
                    pos += c;
                    out.push(unzigzag(z));
                }
            }
            _ => return None,
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Parquet-like: plain fixed-width (64-bit weakness!) / varint32, then LZ.
// ---------------------------------------------------------------------------

fn parquet_encode_ints_raw(values: &[i64], wide: bool, out: &mut Vec<u8>) {
    put_varint(values.len() as u64, out);
    if wide {
        // PLAIN encoding: the 64-bit ints go out uncompressed, as real
        // Parquet writers of the era did.
        for &v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
    } else {
        for &v in values {
            put_varint(zigzag(v), out);
        }
    }
}

fn parquet_decode_ints_raw(bytes: &[u8], wide: bool) -> Option<Vec<i64>> {
    let (n, mut pos) = get_varint(bytes, 0)?;
    let mut out = Vec::with_capacity(n as usize);
    if wide {
        for _ in 0..n {
            let chunk = bytes.get(pos..pos + 8)?;
            out.push(i64::from_le_bytes(chunk.try_into().ok()?));
            pos += 8;
        }
    } else {
        for _ in 0..n {
            let (z, c) = get_varint(bytes, pos)?;
            pos += c;
            out.push(unzigzag(z));
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// Strings: length-prefixed plain for both formats.
// ---------------------------------------------------------------------------

fn encode_strings_raw(values: &[String], out: &mut Vec<u8>) {
    put_varint(values.len() as u64, out);
    for v in values {
        put_varint(v.len() as u64, out);
        out.extend_from_slice(v.as_bytes());
    }
}

fn decode_strings_raw(bytes: &[u8]) -> Option<Vec<String>> {
    let (n, mut pos) = get_varint(bytes, 0)?;
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let (len, c) = get_varint(bytes, pos)?;
        pos += c;
        let s = bytes.get(pos..pos + len as usize)?;
        pos += len as usize;
        out.push(String::from_utf8(s.to_vec()).ok()?);
    }
    Some(out)
}

/// Which Hadoop-format baseline to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineFormat {
    OrcLike,
    ParquetLike,
}

/// Encode a column in the baseline format (including the general-purpose
/// "snappy" pass both real formats routinely apply).
pub fn encode(format: BaselineFormat, col: &ColumnData) -> Vec<u8> {
    let mut raw = Vec::new();
    let tag: u8;
    match col {
        ColumnData::I32(v) => {
            tag = 0;
            let wide: Vec<i64> = v.iter().map(|&x| x as i64).collect();
            match format {
                BaselineFormat::OrcLike => orc_encode_ints_raw(&wide, &mut raw),
                BaselineFormat::ParquetLike => parquet_encode_ints_raw(&wide, false, &mut raw),
            }
        }
        ColumnData::I64(v) => {
            tag = 1;
            match format {
                BaselineFormat::OrcLike => orc_encode_ints_raw(v, &mut raw),
                BaselineFormat::ParquetLike => parquet_encode_ints_raw(v, true, &mut raw),
            }
        }
        ColumnData::F64(v) => {
            tag = 2;
            // Both formats store doubles plain.
            put_varint(v.len() as u64, &mut raw);
            for &x in v {
                raw.extend_from_slice(&x.to_le_bytes());
            }
        }
        ColumnData::Str(v) => {
            tag = 3;
            encode_strings_raw(v, &mut raw);
        }
    }
    let mut out = vec![tag];
    lz::compress(&raw, &mut out);
    out
}

/// Decode a baseline-format column (value-at-a-time, with the mandatory
/// general-purpose decompression pass first).
pub fn decode(format: BaselineFormat, bytes: &[u8]) -> Option<ColumnData> {
    let tag = *bytes.first()?;
    let mut raw = Vec::new();
    lz::decompress(&bytes[1..], &mut raw)?;
    match tag {
        0 => {
            let wide = match format {
                BaselineFormat::OrcLike => orc_decode_ints_raw(&raw)?,
                BaselineFormat::ParquetLike => parquet_decode_ints_raw(&raw, false)?,
            };
            Some(ColumnData::I32(
                wide.into_iter().map(|x| x as i32).collect(),
            ))
        }
        1 => {
            let v = match format {
                BaselineFormat::OrcLike => orc_decode_ints_raw(&raw)?,
                BaselineFormat::ParquetLike => parquet_decode_ints_raw(&raw, true)?,
            };
            Some(ColumnData::I64(v))
        }
        2 => {
            let (n, mut pos) = get_varint(&raw, 0)?;
            let mut out = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let chunk = raw.get(pos..pos + 8)?;
                out.push(f64::from_le_bytes(chunk.try_into().ok()?));
                pos += 8;
            }
            Some(ColumnData::F64(out))
        }
        3 => Some(ColumnData::Str(decode_strings_raw(&raw)?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::rng::SplitMix64;

    fn roundtrip(format: BaselineFormat, col: &ColumnData) -> usize {
        let enc = encode(format, col);
        let dec = decode(format, &enc).expect("decode");
        assert_eq!(&dec, col);
        enc.len()
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX, 1 << 35] {
            let mut b = Vec::new();
            put_varint(v, &mut b);
            assert_eq!(get_varint(&b, 0), Some((v, b.len())));
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -9876] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn orc_run_detection() {
        // Sequential data becomes one run.
        let vals: Vec<i64> = (100..200).collect();
        let mut raw = Vec::new();
        orc_encode_ints_raw(&vals, &mut raw);
        assert!(
            raw.len() < 12,
            "one run token expected, got {} bytes",
            raw.len()
        );
        assert_eq!(orc_decode_ints_raw(&raw).unwrap(), vals);
    }

    #[test]
    fn all_formats_roundtrip_all_types() {
        let mut rng = SplitMix64::new(3);
        let i32c = ColumnData::I32(
            (0..500)
                .map(|_| rng.range_i64(-1000, 1000) as i32)
                .collect(),
        );
        let i64c = ColumnData::I64((0..500).map(|_| rng.next_u64() as i64).collect());
        let f64c = ColumnData::F64((0..100).map(|_| rng.next_f64()).collect());
        let strc = ColumnData::Str((0..100).map(|i| format!("value-{}", i % 7)).collect());
        for f in [BaselineFormat::OrcLike, BaselineFormat::ParquetLike] {
            roundtrip(f, &i32c);
            roundtrip(f, &i64c);
            roundtrip(f, &f64c);
            roundtrip(f, &strc);
        }
    }

    #[test]
    fn parquet_weak_on_random_i64() {
        // The paper's Fig 1c: Parquet's 64-bit handling is inefficient.
        let mut rng = SplitMix64::new(4);
        // Moderate-range values: varints (ORC) beat plain 8-byte (Parquet).
        let col = ColumnData::I64((0..2000).map(|_| rng.range_i64(0, 1 << 20)).collect());
        let orc = roundtrip(BaselineFormat::OrcLike, &col);
        let parquet = roundtrip(BaselineFormat::ParquetLike, &col);
        assert!(orc < parquet, "orc {orc} should beat parquet {parquet}");
    }

    #[test]
    fn empty_columns() {
        for f in [BaselineFormat::OrcLike, BaselineFormat::ParquetLike] {
            roundtrip(f, &ColumnData::I64(vec![]));
            roundtrip(f, &ColumnData::Str(vec![]));
        }
    }

    #[test]
    fn prop_orc_ints_roundtrip() {
        let mut meta = SplitMix64::new(0x06C5);
        for _ in 0..64 {
            let seed = meta.next_u64();
            let n = meta.next_bounded(1000) as usize;
            let mut rng = SplitMix64::new(seed);
            let vals: Vec<i64> = (0..n)
                .map(|_| {
                    if rng.chance(0.3) {
                        rng.range_i64(0, 10)
                    } else {
                        rng.next_u64() as i64
                    }
                })
                .collect();
            let mut raw = Vec::new();
            orc_encode_ints_raw(&vals, &mut raw);
            assert_eq!(orc_decode_ints_raw(&raw), Some(vals), "seed {seed}");
        }
    }

    #[test]
    fn prop_baseline_column_roundtrip() {
        let mut meta = SplitMix64::new(0xBA5E);
        for case in 0..64 {
            let seed = meta.next_u64();
            let n = meta.next_bounded(500) as usize;
            let format = if case % 2 == 0 {
                BaselineFormat::OrcLike
            } else {
                BaselineFormat::ParquetLike
            };
            let mut rng = SplitMix64::new(seed);
            let col = ColumnData::I64((0..n).map(|_| rng.range_i64(-50, 50)).collect());
            let enc = encode(format, &col);
            assert_eq!(decode(format, &enc), Some(col), "seed {seed}");
        }
    }
}
