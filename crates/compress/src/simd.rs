//! Hand-vectorized scan-side kernels: bit-unpacking, frame-of-reference
//! base addition, delta prefix-sum reconstruction and dictionary gather.
//!
//! This is the layer the paper's §2 speed claim lives in: AVX2 bit-unpacking
//! that "decompresses 64 or 128 consecutive values in typically less than
//! half a CPU cycle per value". Every kernel ships three arms selected by
//! [`vectorh_common::simd::simd_mode`]:
//!
//! * **AVX2** (`std::arch::x86_64`, runtime-detected): widths ≤ 16 unpack
//!   through per-width shuffle/shift tables — 8 values per iteration with a
//!   16-byte broadcast load, one byte shuffle, one variable shift and one
//!   mask; wider widths fall through to SWAR. Prefix sums use a log-step
//!   scan (shift-by-one-lane add, shift-by-two-lanes add, carry broadcast),
//!   dictionary gathers use `vpgatherqq` with an unsigned clamp.
//! * **SWAR** (portable): groups of eight values share one fixed
//!   offset/shift pattern per width — eight values of width `w` always span
//!   exactly `w` bytes, so group starts are byte-aligned and each value is
//!   one unaligned little-endian word load, one shift and one mask, no
//!   accumulator dependency chain.
//! * **Scalar**: the original accumulator loops, kept bit-identical as the
//!   property-test oracle and the "before" arm of `BENCH_*.json`.
//!
//! All arms are **bit-identical** on every input; `tests/simd_equivalence.rs`
//! enforces this across widths, counts and alignments. The dispatcher reads
//! one relaxed atomic, so the per-block cost is a predictable branch.

use vectorh_common::simd::{simd_mode, SimdMode};

/// Bytes occupied by `count` packed values of `width` bits (same formula as
/// [`crate::bitpack::packed_size`], local to keep this module dependency-free).
#[inline]
fn packed_len(count: usize, width: u8) -> usize {
    (count * width as usize).div_ceil(8)
}

/// Reinterpret an `i64` slice as `u64` (identical layout; used to unpack
/// codes straight into a decode output buffer without a staging vector).
#[inline]
pub fn i64_as_u64_mut(v: &mut [i64]) -> &mut [u64] {
    // SAFETY: i64 and u64 have identical size/alignment and all bit
    // patterns are valid for both.
    unsafe { std::slice::from_raw_parts_mut(v.as_mut_ptr() as *mut u64, v.len()) }
}

/// Unaligned little-endian u64 load.
///
/// # Safety
/// `at + 8 <= bytes.len()` must hold.
#[inline]
unsafe fn read_u64_le(bytes: &[u8], at: usize) -> u64 {
    debug_assert!(at + 8 <= bytes.len());
    u64::from_le_bytes(*(bytes.as_ptr().add(at) as *const [u8; 8]))
}

/// Unaligned little-endian u128 load.
///
/// # Safety
/// `at + 16 <= bytes.len()` must hold.
#[inline]
unsafe fn read_u128_le(bytes: &[u8], at: usize) -> u128 {
    debug_assert!(at + 16 <= bytes.len());
    u128::from_le_bytes(*(bytes.as_ptr().add(at) as *const [u8; 16]))
}

// ---------------------------------------------------------------------------
// unpack: `out.len()` values of `width` bits from `bytes`
// ---------------------------------------------------------------------------

/// Dispatching unpack: fills `out` with `out.len()` values of `width` bits
/// read from the start of `bytes`; returns the bytes consumed.
#[inline]
pub fn unpack_into(bytes: &[u8], width: u8, out: &mut [u64]) -> usize {
    match simd_mode() {
        SimdMode::Avx2 => unpack_avx2(bytes, width, out),
        SimdMode::Swar => unpack_swar(bytes, width, out),
        SimdMode::Scalar => unpack_scalar(bytes, width, out),
    }
}

/// Scalar oracle arm: the original shift-accumulator loop.
pub fn unpack_scalar(bytes: &[u8], width: u8, out: &mut [u64]) -> usize {
    assert!(width as usize <= 64);
    if width == 0 {
        out.fill(0);
        return 0;
    }
    let width = width as u32;
    let mask: u128 = if width == 64 {
        u128::MAX >> 64
    } else {
        (1u128 << width) - 1
    };
    let mut acc: u128 = 0;
    let mut acc_bits: u32 = 0;
    let mut pos = 0usize;
    for o in out.iter_mut() {
        while acc_bits < width {
            acc |= (bytes[pos] as u128) << acc_bits;
            pos += 1;
            acc_bits += 8;
        }
        *o = (acc & mask) as u64;
        acc >>= width;
        acc_bits -= width;
    }
    pos
}

/// Portable SWAR arm: multi-value-per-u64 group decode.
///
/// Eight values of width `w` occupy exactly `w` bytes, so every group of 8
/// starts on a byte boundary and value `i` of a group lives at a *fixed*
/// byte offset `i*w/8` and bit shift `(i*w)%8` — one unaligned word load,
/// one shift, one mask per value, no cross-value dependency.
pub fn unpack_swar(bytes: &[u8], width: u8, out: &mut [u64]) -> usize {
    assert!(width as usize <= 64);
    let count = out.len();
    let w = width as usize;
    if width == 0 {
        out.fill(0);
        return 0;
    }
    if width == 64 {
        for (i, o) in out.iter_mut().enumerate() {
            // SAFETY: caller provides >= count*8 bytes (enforced by the
            // bounds check the debug_assert documents); release path reads
            // through the checked slice below.
            *o = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        return count * 8;
    }
    let mask = (1u64 << width) - 1;
    let mut off = [0usize; 8];
    let mut sh = [0u32; 8];
    for i in 0..8 {
        off[i] = i * w / 8;
        sh[i] = ((i * w) % 8) as u32;
    }
    let mut produced = 0usize;
    let mut pos = 0usize;
    if w <= 57 {
        // shift + width <= 7 + 57 = 64: one u64 read per value.
        let group_read = off[7] + 8;
        while produced + 8 <= count && pos + group_read <= bytes.len() {
            for i in 0..8 {
                // SAFETY: pos + off[7] + 8 <= bytes.len() and off[i] <= off[7].
                let word = unsafe { read_u64_le(bytes, pos + off[i]) };
                out[produced + i] = (word >> sh[i]) & mask;
            }
            produced += 8;
            pos += w;
        }
    } else {
        // widths 58..=63 can straddle 9 bytes: two-word (u128) reads.
        let group_read = off[7] + 16;
        while produced + 8 <= count && pos + group_read <= bytes.len() {
            for i in 0..8 {
                // SAFETY: pos + off[7] + 16 <= bytes.len().
                let word = unsafe { read_u128_le(bytes, pos + off[i]) };
                out[produced + i] = ((word >> sh[i]) as u64) & mask;
            }
            produced += 8;
            pos += w;
        }
    }
    if produced < count {
        // `produced` is a multiple of 8, so the remainder starts on a byte
        // boundary at `pos`.
        unpack_scalar(&bytes[pos..], width, &mut out[produced..]);
    }
    packed_len(count, width)
}

/// AVX2 arm (safe wrapper): shuffle-table unpack for widths ≤ 16, SWAR for
/// wider. Falls back to SWAR when AVX2 is compiled out or not detected, so
/// tests may call it unconditionally.
pub fn unpack_avx2(bytes: &[u8], width: u8, out: &mut [u64]) -> usize {
    #[cfg(all(target_arch = "x86_64", not(vectorh_force_swar)))]
    {
        if (1..=16).contains(&width) && vectorh_common::simd::avx2_available() {
            // SAFETY: AVX2 presence checked at runtime.
            return unsafe { avx2::unpack_narrow(bytes, width, out) };
        }
    }
    unpack_swar(bytes, width, out)
}

// ---------------------------------------------------------------------------
// frame-of-reference base addition (PFOR inflate phase)
// ---------------------------------------------------------------------------

/// `v[i] = base.wrapping_add(v[i])` for every element — the PFOR inflate
/// after codes were unpacked in place.
pub fn add_base_i64(vals: &mut [i64], base: i64) {
    if base == 0 {
        return;
    }
    #[cfg(all(target_arch = "x86_64", not(vectorh_force_swar)))]
    {
        if simd_mode() == SimdMode::Avx2 {
            // SAFETY: mode Avx2 implies runtime detection succeeded.
            unsafe { avx2::add_base_i64(vals, base) };
            return;
        }
    }
    for v in vals {
        *v = base.wrapping_add(*v);
    }
}

// ---------------------------------------------------------------------------
// prefix sum (PFOR-DELTA reconstruction)
// ---------------------------------------------------------------------------

/// In-place inclusive prefix sum with carry-in: `v[i] = seed + v[0] + ... +
/// v[i]` (wrapping). Returns the final running sum.
pub fn prefix_sum_i64(vals: &mut [i64], seed: i64) -> i64 {
    #[cfg(all(target_arch = "x86_64", not(vectorh_force_swar)))]
    {
        if simd_mode() == SimdMode::Avx2 {
            // SAFETY: mode Avx2 implies runtime detection succeeded.
            return unsafe { avx2::prefix_sum_i64(vals, seed) };
        }
    }
    let mut acc = seed;
    for v in vals {
        acc = acc.wrapping_add(*v);
        *v = acc;
    }
    acc
}

// ---------------------------------------------------------------------------
// dictionary gather (PDICT inflate phase)
// ---------------------------------------------------------------------------

/// `out[i] = dict[min(slots[i], dict.len()-1)]` — the PDICT code→value
/// gather. Slots holding exception-chain hops may exceed the dictionary;
/// the unsigned clamp keeps the gather in bounds (those positions get
/// patched afterwards). `dict` must be non-empty.
pub fn pdict_gather_i64(dict: &[i64], slots: &[u64], out: &mut [i64]) {
    assert!(!dict.is_empty(), "gather through an empty dictionary");
    assert_eq!(slots.len(), out.len());
    // SAFETY: distinct borrows, equal lengths checked above.
    unsafe { gather_raw(dict, slots.as_ptr(), out.as_mut_ptr(), out.len()) }
}

/// In-place [`pdict_gather_i64`]: on entry `buf` holds raw slot bit
/// patterns (as produced by unpacking into the output buffer), on exit it
/// holds the gathered dictionary values. Saves the staging vector the
/// two-buffer variant needs.
pub fn pdict_gather_inplace_i64(dict: &[i64], buf: &mut [i64]) {
    assert!(!dict.is_empty(), "gather through an empty dictionary");
    // SAFETY: source and destination alias exactly; the kernel reads each
    // position before writing it (per element or per 4-lane chunk).
    unsafe {
        gather_raw(
            dict,
            buf.as_ptr() as *const u64,
            buf.as_mut_ptr(),
            buf.len(),
        )
    }
}

/// Gather core. `src` and `dst` may alias exactly (same pointer); each
/// chunk is fully loaded before it is stored.
///
/// # Safety
/// `src` and `dst` must each be valid for `n` elements; if they alias they
/// must alias exactly. `dict` must be non-empty.
unsafe fn gather_raw(dict: &[i64], src: *const u64, dst: *mut i64, n: usize) {
    let dmax = dict.len() - 1;
    #[cfg(all(target_arch = "x86_64", not(vectorh_force_swar)))]
    {
        if simd_mode() == SimdMode::Avx2 {
            avx2::gather_raw(dict, src, dst, n);
            return;
        }
    }
    for i in 0..n {
        let c = *src.add(i) as usize;
        *dst.add(i) = dict[c.min(dmax)];
    }
}

// ---------------------------------------------------------------------------
// AVX2 arms
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", not(vectorh_force_swar)))]
mod avx2 {
    use std::arch::x86_64::*;

    /// Per-width shuffle controls and shift counts for widths 1..=16.
    ///
    /// For a group of 8 values of width `w` (which spans exactly `w` bytes),
    /// value `i` starts at byte `i*w/8` with bit offset `(i*w)%8` and never
    /// spans more than 3 bytes (`7 + 16 - 1 < 24`). Each 32-bit output lane
    /// gets the value's source bytes shuffled in (absent bytes zeroed),
    /// then a per-lane right shift and mask isolate the value. The same 16
    /// source bytes are broadcast to both 128-bit halves, so shuffle
    /// indices stay within each half's 16-byte window (max index `w-1 ≤ 15`).
    const fn tables() -> ([[i8; 32]; 17], [[u32; 8]; 17]) {
        let mut shuf = [[0i8; 32]; 17];
        let mut shifts = [[0u32; 8]; 17];
        let mut w = 1usize;
        while w <= 16 {
            let mut i = 0usize;
            while i < 8 {
                let bit = i * w;
                let first = bit / 8;
                let last = (bit + w - 1) / 8;
                shifts[w][i] = (bit % 8) as u32;
                let base = (i / 4) * 16 + (i % 4) * 4;
                let mut k = 0usize;
                while k < 4 {
                    shuf[w][base + k] = if first + k <= last {
                        (first + k) as i8
                    } else {
                        -1 // high bit set: shuffle_epi8 zeroes the byte
                    };
                    k += 1;
                }
                i += 1;
            }
            w += 1;
        }
        (shuf, shifts)
    }

    const TABLES: ([[i8; 32]; 17], [[u32; 8]; 17]) = tables();

    /// Unpack widths 1..=16: 8 values per iteration.
    ///
    /// # Safety
    /// AVX2 must be available; `1 <= width <= 16`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn unpack_narrow(bytes: &[u8], width: u8, out: &mut [u64]) -> usize {
        let w = width as usize;
        debug_assert!((1..=16).contains(&w));
        let count = out.len();
        let shuf = _mm256_loadu_si256(TABLES.0[w].as_ptr() as *const __m256i);
        let shifts = _mm256_loadu_si256(TABLES.1[w].as_ptr() as *const __m256i);
        let mask = _mm256_set1_epi32(((1u32 << w) - 1) as i32);
        let mut produced = 0usize;
        let mut pos = 0usize;
        // Each iteration loads 16 bytes but consumes only `w`; the guard
        // keeps the load inside `bytes`, the scalar tail finishes the rest.
        while produced + 8 <= count && pos + 16 <= bytes.len() {
            let src = _mm_loadu_si128(bytes.as_ptr().add(pos) as *const __m128i);
            let v = _mm256_broadcastsi128_si256(src);
            let words = _mm256_shuffle_epi8(v, shuf);
            let vals = _mm256_and_si256(_mm256_srlv_epi32(words, shifts), mask);
            let lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(vals));
            let hi = _mm256_cvtepu32_epi64(_mm256_extracti128_si256(vals, 1));
            _mm256_storeu_si256(out.as_mut_ptr().add(produced) as *mut __m256i, lo);
            _mm256_storeu_si256(out.as_mut_ptr().add(produced + 4) as *mut __m256i, hi);
            produced += 8;
            pos += w;
        }
        if produced < count {
            super::unpack_scalar(&bytes[pos..], width, &mut out[produced..]);
        }
        super::packed_len(count, width)
    }

    /// # Safety
    /// AVX2 must be available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_base_i64(vals: &mut [i64], base: i64) {
        let b = _mm256_set1_epi64x(base);
        let chunks = vals.len() / 4;
        let p = vals.as_mut_ptr();
        for c in 0..chunks {
            let ptr = p.add(c * 4) as *mut __m256i;
            let v = _mm256_loadu_si256(ptr);
            _mm256_storeu_si256(ptr, _mm256_add_epi64(v, b));
        }
        for v in &mut vals[chunks * 4..] {
            *v = base.wrapping_add(*v);
        }
    }

    /// Log-step inclusive scan: within each 4-lane vector, add the vector
    /// shifted by one lane, then by two lanes, then the running carry; the
    /// carry is the broadcast last lane.
    ///
    /// # Safety
    /// AVX2 must be available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn prefix_sum_i64(vals: &mut [i64], seed: i64) -> i64 {
        let zero = _mm256_setzero_si256();
        let mut carry = _mm256_set1_epi64x(seed);
        let chunks = vals.len() / 4;
        let p = vals.as_mut_ptr();
        for c in 0..chunks {
            let ptr = p.add(c * 4) as *mut __m256i;
            let v = _mm256_loadu_si256(ptr);
            // [0, a, b, c]: rotate lanes left then zero lane 0.
            let s1 = _mm256_blend_epi32(_mm256_permute4x64_epi64(v, 0x93), zero, 0x03);
            let v1 = _mm256_add_epi64(v, s1);
            // [0, 0, v1_0, v1_1]: low half of v1 moved to the high half.
            let s2 = _mm256_permute2x128_si256(v1, v1, 0x08);
            let v2 = _mm256_add_epi64(v1, s2);
            let o = _mm256_add_epi64(v2, carry);
            _mm256_storeu_si256(ptr, o);
            carry = _mm256_permute4x64_epi64(o, 0xFF); // broadcast last lane
        }
        let mut acc = _mm_cvtsi128_si64(_mm256_castsi256_si128(carry));
        for v in &mut vals[chunks * 4..] {
            acc = acc.wrapping_add(*v);
            *v = acc;
        }
        acc
    }

    /// Clamped `vpgatherqq` dictionary gather. `src`/`dst` may alias
    /// exactly — every chunk is loaded in full before its store.
    ///
    /// # Safety
    /// AVX2 must be available; `dict` non-empty; `src` and `dst` valid for
    /// `n` elements.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_raw(dict: &[i64], src: *const u64, dst: *mut i64, n: usize) {
        let dmax = (dict.len() - 1) as i64;
        let vmax = _mm256_set1_epi64x(dmax);
        // Unsigned 64-bit clamp via sign-bit flip + signed compare.
        let sign = _mm256_set1_epi64x(i64::MIN);
        let vmax_s = _mm256_xor_si256(vmax, sign);
        let chunks = n / 4;
        for c in 0..chunks {
            let s = _mm256_loadu_si256(src.add(c * 4) as *const __m256i);
            let s_flip = _mm256_xor_si256(s, sign);
            let over = _mm256_cmpgt_epi64(s_flip, vmax_s);
            let idx = _mm256_blendv_epi8(s, vmax, over);
            let g = _mm256_i64gather_epi64::<8>(dict.as_ptr(), idx);
            _mm256_storeu_si256(dst.add(c * 4) as *mut __m256i, g);
        }
        let dmax = dmax as usize;
        for i in chunks * 4..n {
            let cde = *src.add(i) as usize;
            *dst.add(i) = dict[cde.min(dmax)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vectorh_common::rng::SplitMix64;

    fn pack(values: &[u64], width: u8) -> Vec<u8> {
        let mut out = Vec::new();
        crate::bitpack::pack(values, width, &mut out);
        out
    }

    #[test]
    fn all_arms_agree_on_every_width() {
        let mut meta = SplitMix64::new(0x51D0);
        for width in 0u8..=64 {
            let n = 8 + meta.next_bounded(200) as usize;
            let mask = if width == 0 {
                0
            } else if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let vals: Vec<u64> = (0..n).map(|_| meta.next_u64() & mask).collect();
            let bytes = pack(&vals, width);
            let mut scalar = vec![0u64; n];
            let mut swar = vec![1u64; n];
            let mut avx = vec![2u64; n];
            let c0 = unpack_scalar(&bytes, width, &mut scalar);
            let c1 = unpack_swar(&bytes, width, &mut swar);
            let c2 = unpack_avx2(&bytes, width, &mut avx);
            assert_eq!(scalar, vals, "scalar w={width}");
            assert_eq!(swar, vals, "swar w={width}");
            assert_eq!(avx, vals, "avx2 w={width}");
            assert_eq!(c0, c1);
            assert_eq!(c1, c2);
        }
    }

    #[test]
    fn prefix_sum_matches_scalar_reference() {
        let mut rng = SplitMix64::new(0x5CAB);
        for n in [0usize, 1, 3, 4, 5, 8, 100, 1001] {
            let vals: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64).collect();
            let seed = rng.next_u64() as i64;
            let mut want = vals.clone();
            let mut acc = seed;
            for v in &mut want {
                acc = acc.wrapping_add(*v);
                *v = acc;
            }
            let mut got = vals.clone();
            let last = prefix_sum_i64(&mut got, seed);
            assert_eq!(got, want, "n={n}");
            assert_eq!(last, if n == 0 { seed } else { want[n - 1] });
        }
    }

    #[test]
    fn gather_clamps_out_of_range_slots() {
        let dict = vec![10i64, 20, 30];
        let slots = vec![0u64, 2, 1, u64::MAX, 5, 2, 0, 1, 2];
        let mut out = vec![0i64; slots.len()];
        pdict_gather_i64(&dict, &slots, &mut out);
        assert_eq!(out, vec![10, 30, 20, 30, 30, 30, 10, 20, 30]);
    }

    #[test]
    fn base_add_wraps() {
        let mut v = vec![i64::MAX, 0, -1, 5, i64::MIN, 7, 8, 9, 10];
        let want: Vec<i64> = v.iter().map(|x| x.wrapping_add(3)).collect();
        add_base_i64(&mut v, 3);
        assert_eq!(v, want);
    }
}
