//! SIMD-vs-scalar oracle: every vectorized kernel arm must be
//! bit-identical to the scalar reference on adversarial inputs.
//!
//! The scalar arms in `vectorh_compress::simd` are the originals the AVX2
//! and SWAR arms replaced; this suite drives all three through the same
//! SplitMix64-generated inputs and asserts byte equality — across every
//! width 0..=64, counts from empty through non-multiple-of-8 tails,
//! misaligned source slices, and exception-dense PFOR/PDICT blocks.
//!
//! Mode forcing (`force_mode`) flips a process-global dispatch override, so
//! every test that uses it serializes on [`mode_lock`] and restores
//! auto-detection on drop. When the crate is compiled with
//! `--cfg vectorh_force_swar` (the CI fallback leg), forcing AVX2 degrades
//! to SWAR and the same assertions cover the portable arm.

use std::sync::{Mutex, MutexGuard, OnceLock};

use vectorh_common::rng::SplitMix64;
use vectorh_common::simd::{avx2_available, force_mode, simd_mode, SimdMode};
use vectorh_compress::pdict::PdictI64;
use vectorh_compress::pfor::{Pfor, PforDelta};
use vectorh_compress::{bitpack, simd};

/// Serialize tests that flip the global dispatch mode; restores
/// auto-detection when dropped.
struct ModeGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

fn mode_lock() -> ModeGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    ModeGuard(guard)
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        force_mode(None);
    }
}

const MODES: [SimdMode; 3] = [SimdMode::Scalar, SimdMode::Swar, SimdMode::Avx2];

fn mask_of(width: u8) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[test]
fn unpack_matches_scalar_on_every_width_count_and_alignment() {
    let _g = mode_lock();
    let mut rng = SplitMix64::new(0x51D0_0001);
    let counts = [
        0usize, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 33, 63, 64, 65, 127, 129, 255, 257, 1000,
    ];
    for width in 0u8..=64 {
        let mask = mask_of(width);
        for &count in &counts {
            let values: Vec<u64> = (0..count).map(|_| rng.next_u64() & mask).collect();
            let mut packed = Vec::new();
            bitpack::pack(&values, width, &mut packed);
            // Offset the packed bytes inside a larger buffer so the kernels
            // see every unaligned start address.
            for offset in 0..8usize {
                let mut buf = vec![0u8; offset];
                buf.extend_from_slice(&packed);
                // Trailing slack: kernels must not rely on padding, but give
                // some on odd offsets so both exact-fit and slack paths run.
                if offset % 2 == 1 {
                    buf.extend_from_slice(&[0xAB; 5]);
                }
                let mut want = vec![0u64; count];
                let consumed = simd::unpack_scalar(&buf[offset..], width, &mut want);
                assert_eq!(want, values, "scalar oracle wrong? w={width} n={count}");
                for mode in MODES {
                    force_mode(Some(mode));
                    let mut got = vec![u64::MAX; count];
                    let used = simd::unpack_into(&buf[offset..], width, &mut got);
                    assert_eq!(used, consumed, "consumed bytes w={width} n={count}");
                    assert_eq!(
                        got,
                        want,
                        "w={width} n={count} off={offset} mode={}",
                        simd_mode().name()
                    );
                }
            }
        }
    }
}

#[test]
fn unpack_exact_fit_buffer_no_overread() {
    // Buffers sized exactly to packed_size: any kernel that reads a full
    // word past the last value would fault or (under miri-like checks)
    // read garbage. Equality with the oracle proves the tail path engages.
    let _g = mode_lock();
    let mut rng = SplitMix64::new(0x0EAD_BEEF);
    for width in 1u8..=64 {
        let mask = mask_of(width);
        for count in [1usize, 7, 8, 9, 100] {
            let values: Vec<u64> = (0..count).map(|_| rng.next_u64() & mask).collect();
            let mut packed = Vec::new();
            bitpack::pack(&values, width, &mut packed);
            assert_eq!(packed.len(), bitpack::packed_size(count, width));
            for mode in MODES {
                force_mode(Some(mode));
                let mut out = Vec::new();
                bitpack::unpack(&packed, count, width, &mut out);
                assert_eq!(
                    out,
                    values,
                    "w={width} n={count} mode={}",
                    simd_mode().name()
                );
            }
        }
    }
}

/// Decode `codec` under every mode and demand bit-identical output.
fn assert_decode_identical<T: Eq + std::fmt::Debug + Clone>(
    label: &str,
    want: &[T],
    decode: impl Fn() -> Vec<T>,
) {
    for mode in MODES {
        force_mode(Some(mode));
        let got = decode();
        assert_eq!(got, want, "{label} mode={}", simd_mode().name());
    }
}

#[test]
fn pfor_exception_dense_blocks_roundtrip_on_all_arms() {
    let _g = mode_lock();
    let mut rng = SplitMix64::new(0x9F0E);
    // Exception densities from none to "every other value is an outlier",
    // plus wide gaps that force filler exceptions in the patch chain.
    for density in [0.0, 0.01, 0.1, 0.3, 0.5, 0.9] {
        for n in [1usize, 8, 63, 64, 500, 4096] {
            let values: Vec<i64> = (0..n)
                .map(|_| {
                    if rng.chance(density) {
                        rng.next_u64() as i64 // full-range outlier
                    } else {
                        1000 + rng.range_i64(0, 255)
                    }
                })
                .collect();
            let block = Pfor::encode(&values);
            assert_decode_identical(&format!("pfor d={density} n={n}"), &values, || {
                let mut out = Vec::new();
                block.decode(&mut out);
                out
            });
        }
    }
    // All-exception worst case: alternating extremes defeat any base/width.
    let values: Vec<i64> = (0..256)
        .map(|i| {
            if i % 2 == 0 {
                i64::MIN + i
            } else {
                i64::MAX - i
            }
        })
        .collect();
    let block = Pfor::encode(&values);
    assert_decode_identical("pfor alternating extremes", &values, || {
        let mut out = Vec::new();
        block.decode(&mut out);
        out
    });
}

#[test]
fn pfor_delta_prefix_sum_matches_on_all_arms() {
    let _g = mode_lock();
    let mut rng = SplitMix64::new(0xDE17A);
    for n in [0usize, 1, 3, 4, 5, 100, 1023, 4096] {
        // Mostly-ascending with occasional large jumps (delta exceptions).
        let mut v = rng.range_i64(-1_000_000, 1_000_000);
        let values: Vec<i64> = (0..n)
            .map(|_| {
                v += if rng.chance(0.05) {
                    rng.range_i64(-1_000_000_000, 1_000_000_000)
                } else {
                    rng.range_i64(0, 100)
                };
                v
            })
            .collect();
        let block = PforDelta::encode(&values);
        assert_decode_identical(&format!("pfor-delta n={n}"), &values, || {
            let mut out = Vec::new();
            block.decode(&mut out);
            out
        });
    }
}

#[test]
fn pdict_gather_matches_on_all_arms() {
    let _g = mode_lock();
    let mut rng = SplitMix64::new(0x9D1C7);
    for (distinct, n) in [(1u64, 50usize), (7, 300), (250, 4096), (5000, 2000)] {
        // Skewed distribution plus rare full-range outliers → dictionary
        // codes with a live exception chain.
        let values: Vec<i64> = (0..n)
            .map(|_| {
                if rng.chance(0.05) {
                    rng.next_u64() as i64
                } else {
                    rng.next_bounded(distinct) as i64
                }
            })
            .collect();
        let block = PdictI64::encode(&values);
        assert_decode_identical(&format!("pdict distinct={distinct} n={n}"), &values, || {
            let mut out = Vec::new();
            block.decode(&mut out);
            out
        });
    }
}

#[test]
fn prefix_sum_and_base_add_match_scalar_reference() {
    let _g = mode_lock();
    let mut rng = SplitMix64::new(0x50F7);
    for n in [0usize, 1, 4, 5, 8, 100, 1000] {
        let vals: Vec<i64> = (0..n).map(|_| rng.next_u64() as i64).collect();
        let seed = rng.next_u64() as i64;
        let base = rng.next_u64() as i64;
        // Scalar wrapping references.
        let mut want_ps = vals.clone();
        let mut acc = seed;
        for v in &mut want_ps {
            acc = acc.wrapping_add(*v);
            *v = acc;
        }
        let want_last = acc;
        let want_base: Vec<i64> = vals.iter().map(|v| v.wrapping_add(base)).collect();
        for mode in MODES {
            force_mode(Some(mode));
            let mut ps = vals.clone();
            let last = simd::prefix_sum_i64(&mut ps, seed);
            assert_eq!(ps, want_ps, "prefix n={n} mode={}", simd_mode().name());
            assert_eq!(last, want_last);
            let mut ba = vals.clone();
            simd::add_base_i64(&mut ba, base);
            assert_eq!(ba, want_base, "base n={n} mode={}", simd_mode().name());
        }
    }
}

#[test]
fn forced_fallback_dispatch_arms_behave() {
    let _g = mode_lock();
    // Forcing SWAR/Scalar always sticks; forcing AVX2 sticks only where the
    // instruction set is actually usable (it is compiled out entirely under
    // --cfg vectorh_force_swar) and degrades to SWAR otherwise — so this
    // test is meaningful on both CI legs.
    force_mode(Some(SimdMode::Scalar));
    assert_eq!(simd_mode(), SimdMode::Scalar);
    force_mode(Some(SimdMode::Swar));
    assert_eq!(simd_mode(), SimdMode::Swar);
    force_mode(Some(SimdMode::Avx2));
    if avx2_available() {
        assert_eq!(simd_mode(), SimdMode::Avx2);
    } else {
        assert_eq!(simd_mode(), SimdMode::Swar);
    }
    force_mode(None);
    // Auto-detection must land on a mode that the build can execute.
    if !avx2_available() {
        assert_ne!(simd_mode(), SimdMode::Avx2);
    }
}
