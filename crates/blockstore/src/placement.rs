//! Block placement policies.
//!
//! HDFS lets a system register a `BlockPlacementPolicy` class whose
//! `chooseTarget()` receives the file name and returns the datanodes that
//! should store the replicas; it is consulted on appends and during
//! namenode-driven re-replication/rebalancing (§3). [`BlockPlacementPolicy`]
//! is the Rust equivalent. Two implementations ship:
//!
//! * [`DefaultPolicy`] — stock HDFS behaviour: first replica on the writer,
//!   remaining replicas on random distinct nodes. Under failures this
//!   degrades data affinity, which is exactly what the paper shows.
//! * [`AffinityPolicy`] — VectorH's instrumented policy: table-partition
//!   directories are registered with a target node list (the *partition
//!   affinity map*, Figure 2) and every chunk file under such a directory
//!   gets all replicas on exactly those nodes.

use std::collections::HashMap;

use vectorh_common::rng::SplitMix64;
use vectorh_common::sync::RwLock;
use vectorh_common::NodeId;

/// What a policy may inspect when choosing targets — the namenode's view.
#[derive(Debug, Clone)]
pub struct ClusterView {
    /// Nodes currently alive (failed/decommissioned nodes excluded).
    pub alive: Vec<NodeId>,
    /// Bytes currently stored per node (for balance-aware choices).
    pub used_bytes: HashMap<NodeId, u64>,
    /// Replica locations that already exist and must not be duplicated
    /// (non-empty during re-replication).
    pub existing: Vec<NodeId>,
}

impl ClusterView {
    /// Alive nodes that do not already hold a replica.
    pub fn candidates(&self) -> Vec<NodeId> {
        self.alive
            .iter()
            .copied()
            .filter(|n| !self.existing.contains(n))
            .collect()
    }
}

/// The pluggable placement hook (HDFS `BlockPlacementPolicy::chooseTarget`).
pub trait BlockPlacementPolicy: Send + Sync {
    /// Choose up to `wanted` *additional* replica targets for a block of
    /// `path`. `writer` is the datanode issuing the append, when the writer
    /// is a datanode at all. Must not return nodes in `view.existing`, nor
    /// duplicates.
    fn choose_targets(
        &self,
        path: &str,
        writer: Option<NodeId>,
        wanted: usize,
        view: &ClusterView,
    ) -> Vec<NodeId>;

    /// Name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Stock HDFS: writer-local first replica, the rest spread randomly.
pub struct DefaultPolicy {
    rng: RwLock<SplitMix64>,
}

impl DefaultPolicy {
    pub fn new(seed: u64) -> Self {
        DefaultPolicy {
            rng: RwLock::new(SplitMix64::new(seed)),
        }
    }
}

impl BlockPlacementPolicy for DefaultPolicy {
    fn choose_targets(
        &self,
        _path: &str,
        writer: Option<NodeId>,
        wanted: usize,
        view: &ClusterView,
    ) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(wanted);
        let mut candidates = view.candidates();
        if let Some(w) = writer {
            if candidates.contains(&w) && !out.contains(&w) {
                out.push(w);
                candidates.retain(|&n| n != w);
            }
        }
        let mut rng = self.rng.write();
        rng.shuffle(&mut candidates);
        out.extend(
            candidates
                .into_iter()
                .take(wanted.saturating_sub(out.len())),
        );
        out.truncate(wanted);
        out
    }

    fn name(&self) -> &'static str {
        "default"
    }
}

/// VectorH's instrumented policy: directory-prefix → target-node-list map.
///
/// VectorH registers every table-partition directory (e.g.
/// `/vectorh/db/orders/p07/`) with the R nodes of the current partition
/// affinity map. Any file under a registered prefix gets its replicas on
/// exactly those nodes (as many as are alive); unregistered files fall back
/// to default placement.
pub struct AffinityPolicy {
    affinities: RwLock<HashMap<String, Vec<NodeId>>>,
    fallback: DefaultPolicy,
}

impl AffinityPolicy {
    pub fn new(seed: u64) -> Self {
        AffinityPolicy {
            affinities: RwLock::new(HashMap::new()),
            fallback: DefaultPolicy::new(seed),
        }
    }

    /// Register (or update) the target nodes for a directory prefix.
    pub fn set_affinity(&self, dir_prefix: impl Into<String>, nodes: Vec<NodeId>) {
        self.affinities.write().insert(dir_prefix.into(), nodes);
    }

    pub fn clear_affinity(&self, dir_prefix: &str) {
        self.affinities.write().remove(dir_prefix);
    }

    /// The registered target list for `path`, by longest-prefix match.
    pub fn affinity_of(&self, path: &str) -> Option<Vec<NodeId>> {
        let map = self.affinities.read();
        map.iter()
            .filter(|(prefix, _)| path.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map(|(_, nodes)| nodes.clone())
    }

    /// All registered prefixes (for inspection in tests/benches).
    pub fn registered(&self) -> Vec<(String, Vec<NodeId>)> {
        self.affinities
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

impl BlockPlacementPolicy for AffinityPolicy {
    fn choose_targets(
        &self,
        path: &str,
        writer: Option<NodeId>,
        wanted: usize,
        view: &ClusterView,
    ) -> Vec<NodeId> {
        if let Some(targets) = self.affinity_of(path) {
            let mut out: Vec<NodeId> = targets
                .into_iter()
                .filter(|n| view.alive.contains(n) && !view.existing.contains(n))
                .take(wanted)
                .collect();
            if out.len() < wanted {
                // Not enough registered nodes alive: top up via fallback so
                // the block still reaches the requested replication.
                let mut inner_view = view.clone();
                inner_view.existing.extend(out.iter().copied());
                let extra =
                    self.fallback
                        .choose_targets(path, writer, wanted - out.len(), &inner_view);
                out.extend(extra);
            }
            out
        } else {
            self.fallback.choose_targets(path, writer, wanted, view)
        }
    }

    fn name(&self) -> &'static str {
        "vectorh-affinity"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(n: usize) -> ClusterView {
        ClusterView {
            alive: (0..n as u32).map(NodeId).collect(),
            used_bytes: HashMap::new(),
            existing: vec![],
        }
    }

    #[test]
    fn default_policy_puts_writer_first() {
        let p = DefaultPolicy::new(1);
        let t = p.choose_targets("/f", Some(NodeId(2)), 3, &view(5));
        assert_eq!(t[0], NodeId(2));
        assert_eq!(t.len(), 3);
        let unique: std::collections::HashSet<_> = t.iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn default_policy_handles_small_cluster() {
        let p = DefaultPolicy::new(1);
        let t = p.choose_targets("/f", Some(NodeId(0)), 3, &view(2));
        assert_eq!(t.len(), 2, "can only place on alive nodes");
    }

    #[test]
    fn default_policy_respects_existing() {
        let p = DefaultPolicy::new(1);
        let mut v = view(4);
        v.existing = vec![NodeId(0), NodeId(1)];
        let t = p.choose_targets("/f", Some(NodeId(0)), 2, &v);
        assert!(!t.contains(&NodeId(0)) && !t.contains(&NodeId(1)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn affinity_policy_longest_prefix_wins() {
        let p = AffinityPolicy::new(2);
        p.set_affinity("/db/", vec![NodeId(0)]);
        p.set_affinity("/db/orders/p1/", vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(
            p.affinity_of("/db/orders/p1/chunk-0"),
            Some(vec![NodeId(1), NodeId(2), NodeId(3)])
        );
        assert_eq!(p.affinity_of("/db/other"), Some(vec![NodeId(0)]));
        assert_eq!(p.affinity_of("/elsewhere"), None);
    }

    #[test]
    fn affinity_policy_places_on_registered_nodes() {
        let p = AffinityPolicy::new(3);
        p.set_affinity("/db/r/p0/", vec![NodeId(3), NodeId(1), NodeId(2)]);
        let t = p.choose_targets("/db/r/p0/chunk-1", Some(NodeId(0)), 3, &view(5));
        assert_eq!(t, vec![NodeId(3), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn affinity_policy_tops_up_when_targets_dead() {
        let p = AffinityPolicy::new(4);
        p.set_affinity("/db/r/p0/", vec![NodeId(7), NodeId(1)]); // node7 not alive
        let t = p.choose_targets("/db/r/p0/chunk-1", None, 3, &view(4));
        assert_eq!(t.len(), 3);
        assert!(t.contains(&NodeId(1)));
        assert!(!t.contains(&NodeId(7)));
        let unique: std::collections::HashSet<_> = t.iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn affinity_policy_falls_back_for_unregistered() {
        let p = AffinityPolicy::new(5);
        let t = p.choose_targets("/tmp/spill", Some(NodeId(1)), 1, &view(3));
        assert_eq!(t, vec![NodeId(1)]);
    }

    #[test]
    fn rereplication_excludes_existing() {
        let p = AffinityPolicy::new(6);
        p.set_affinity("/db/r/p0/", vec![NodeId(0), NodeId(1), NodeId(2)]);
        let mut v = view(4);
        v.existing = vec![NodeId(0), NodeId(2)];
        let t = p.choose_targets("/db/r/p0/chunk-9", None, 1, &v);
        assert_eq!(t, vec![NodeId(1)]);
    }
}
