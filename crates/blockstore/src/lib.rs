//! Pluggable block storage for VectorH-rs.
//!
//! The paper's storage layer (§3) talks to HDFS through a narrow surface:
//! append-only files split into replicated fixed-size blocks, placement
//! delegated to a pluggable `BlockPlacementPolicy` (`chooseTarget`),
//! short-circuit local reads, and namenode-driven re-replication. This crate
//! lifts exactly that surface into the [`BlockStore`] trait so backends can
//! slot in behind `Arc<dyn BlockStore>`:
//!
//! * `SimHdfs` (crate `vectorh-simhdfs`) — the original in-memory simulation,
//!   now the first trait implementor with unchanged behaviour;
//! * [`FileStore`] (this crate) — real files in a root directory, one
//!   subdirectory per datanode, buffered appends with explicit fsync at
//!   commit points ([`BlockStore::sync`]) and mmap-served reads.
//!
//! Shared infrastructure lives here too: [`IoStats`] accounting, the
//! placement policies ([`DefaultPolicy`], [`AffinityPolicy`]), and the
//! fault-hook retry loop ([`consult_hook`]) that every backend consults at
//! its read/append sites so chaos schedules behave identically on both.

pub mod filestore;
pub mod mmap;
pub mod placement;
pub mod stats;
pub mod store;
pub mod types;

pub use filestore::FileStore;
pub use mmap::Mmap;
pub use placement::{AffinityPolicy, BlockPlacementPolicy, ClusterView, DefaultPolicy};
pub use stats::{IoSnapshot, IoStats, UsageReport};
pub use store::{consult_hook, BlockStore, StoreRef, MAX_IO_ATTEMPTS};
pub use types::{BlockLocation, BlockStoreConfig, FileStatus};
