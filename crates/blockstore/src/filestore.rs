//! [`FileStore`]: the real-file [`BlockStore`] backend.
//!
//! Layout: one subdirectory per datanode under a root directory, each
//! holding that node's replica of every file placed on it —
//!
//! ```text
//! <root>/node-0000/db/t/p0/chunk-0
//! <root>/node-0001/db/t/p0/chunk-0      (replica)
//! <root>/node-0001/db/t/p0/wal
//! ```
//!
//! Replication is **per file** (matching SimHdfs, where every block of a
//! file shares one target set): a replica is a byte-identical copy of the
//! whole file in another node's directory. `block_locations` still reports
//! fixed-size logical blocks so locality accounting, `fully_local`, and the
//! affinity rebalancer behave identically on both backends.
//!
//! The namenode state (file → length/targets, alive set, per-node usage) is
//! kept in memory and **rebuilt by scanning the root directory** on
//! [`FileStore::new`], which is what makes restart-after-crash recovery
//! testable: drop the store, re-open the same root, and the surviving bytes
//! are the database.
//!
//! Durability: `append` writes through a buffered writer and flushes to the
//! OS before returning (survives process crash); [`BlockStore::sync`] fsyncs
//! every live replica and advances the file's `synced_len` watermark
//! (survives OS crash). [`FileStore::simulate_os_crash`] truncates every
//! file back to that watermark — the directed torn-tail recovery test runs
//! on exactly this.
//!
//! Reads are served from cached read-only mmaps ([`crate::mmap::Mmap`]);
//! a mapping covers the file length at map time and is transparently
//! remapped when the file has grown past it. See `mmap.rs` for the safety
//! argument; the store upholds it by never truncating a path that may be
//! mapped without dropping its cache entry first, and by rewriting files
//! only via delete + re-create (fresh inode).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vectorh_common::fault::{FaultSite, SharedFaultHook};
use vectorh_common::sync::RwLock;
use vectorh_common::{NodeId, Result, VhError};

use crate::mmap::Mmap;
use crate::placement::{BlockPlacementPolicy, ClusterView};
use crate::stats::{IoStats, UsageReport};
use crate::store::BlockStore;
use crate::types::{BlockLocation, BlockStoreConfig, FileStatus};

/// Namenode entry for one file.
#[derive(Debug, Clone)]
struct FileMeta {
    len: u64,
    /// Bytes guaranteed on stable storage (advanced by `sync`).
    synced_len: u64,
    replication: usize,
    /// Per-file placement target set (fixed at first append, adjusted by
    /// failures / rebalancing). Empty after data loss: reads error.
    targets: Vec<NodeId>,
}

struct Inner {
    files: BTreeMap<String, FileMeta>,
    alive: BTreeSet<NodeId>,
    all_nodes: BTreeSet<NodeId>,
    used: HashMap<NodeId, u64>,
}

/// Real-file block store rooted at a directory.
pub struct FileStore {
    root: PathBuf,
    /// Auto-created temp roots are removed on drop.
    owns_root: bool,
    inner: RwLock<Inner>,
    maps: RwLock<HashMap<PathBuf, Arc<Mmap>>>,
    policy: Arc<dyn BlockPlacementPolicy>,
    stats: Arc<IoStats>,
    config: BlockStoreConfig,
    hook: RwLock<Option<SharedFaultHook>>,
}

/// Distinguishes concurrently auto-created temp roots within one process.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl FileStore {
    /// Open (or create) a store of `nodes` datanodes rooted at `root`.
    /// An empty `root` auto-creates a unique directory under the system
    /// temp dir, removed when the store is dropped. A non-empty root that
    /// already holds data is **rescanned**: namenode metadata is rebuilt
    /// from the files on disk (replica lengths reconciled to the shortest
    /// copy), which is the restart-after-crash path.
    pub fn new(
        nodes: usize,
        config: BlockStoreConfig,
        policy: Arc<dyn BlockPlacementPolicy>,
        root: &str,
    ) -> Result<Self> {
        let (root, owns_root) = if root.is_empty() {
            let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("vh-filestore-{}-{seq}", std::process::id()));
            (dir, true)
        } else {
            (PathBuf::from(root), false)
        };
        fs::create_dir_all(&root)
            .map_err(|e| VhError::Hdfs(format!("create store root {}: {e}", root.display())))?;

        let mut all_nodes: BTreeSet<NodeId> = (0..nodes as u32).map(NodeId).collect();
        // Rescan: every node-NNNN subdirectory contributes its replicas.
        let mut replicas: BTreeMap<String, Vec<(NodeId, PathBuf, u64)>> = BTreeMap::new();
        for entry in fs::read_dir(&root)
            .map_err(|e| VhError::Hdfs(format!("scan store root {}: {e}", root.display())))?
        {
            let entry = entry.map_err(|e| VhError::Hdfs(format!("scan store root: {e}")))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(id) = name
                .strip_prefix("node-")
                .and_then(|s| s.parse::<u32>().ok())
            else {
                continue;
            };
            let node = NodeId(id);
            all_nodes.insert(node);
            let node_dir = entry.path();
            walk_files(&node_dir, &mut |file| {
                let rel = file.strip_prefix(&node_dir).unwrap();
                let logical = format!("/{}", rel.to_string_lossy().replace('\\', "/"));
                let len = fs::metadata(file).map(|m| m.len()).unwrap_or(0);
                replicas
                    .entry(logical)
                    .or_default()
                    .push((node, file.to_path_buf(), len));
            });
        }

        let mut files = BTreeMap::new();
        let mut used: HashMap<NodeId, u64> = HashMap::new();
        for (logical, reps) in replicas {
            // The durable length is what every replica agrees on: the
            // shortest copy. Longer replicas carry bytes whose replication
            // write was interrupted — trim them so copies stay identical.
            let len = reps.iter().map(|(_, _, l)| *l).min().unwrap_or(0);
            let mut targets = Vec::new();
            for (node, path, plen) in &reps {
                if *plen > len {
                    if let Ok(f) = fs::OpenOptions::new().write(true).open(path) {
                        f.set_len(len).ok();
                    }
                }
                targets.push(*node);
                *used.entry(*node).or_insert(0) += len;
            }
            targets.sort_unstable();
            files.insert(
                logical,
                FileMeta {
                    len,
                    // Everything that survived to disk is, by definition of
                    // a restart, the durable prefix.
                    synced_len: len,
                    replication: config.default_replication,
                    targets,
                },
            );
        }

        Ok(FileStore {
            root,
            owns_root,
            inner: RwLock::new(Inner {
                files,
                alive: all_nodes.clone(),
                all_nodes,
                used,
            }),
            maps: RwLock::new(HashMap::new()),
            policy,
            stats: Arc::new(IoStats::default()),
            config,
            hook: RwLock::new(None),
        })
    }

    /// The root directory holding the node subdirectories.
    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn policy(&self) -> &Arc<dyn BlockPlacementPolicy> {
        &self.policy
    }

    /// Durable byte count of `path` (advanced by `sync`); test observability.
    pub fn synced_len(&self, path: &str) -> Result<u64> {
        self.inner
            .read()
            .files
            .get(path)
            .map(|f| f.synced_len)
            .ok_or_else(|| VhError::Hdfs(format!("no such file: {path}")))
    }

    /// Test hook: simulate an OS crash by discarding every byte not yet
    /// covered by a [`BlockStore::sync`] — all replicas are truncated back
    /// to the file's `synced_len` watermark. Mapping cache entries are
    /// dropped *before* truncating (mmap invariant 3).
    pub fn simulate_os_crash(&self) {
        self.maps.write().clear();
        let mut inner = self.inner.write();
        let root = self.root.clone();
        let trims: Vec<(String, u64, Vec<NodeId>, u64)> = inner
            .files
            .iter()
            .filter(|(_, m)| m.len > m.synced_len)
            .map(|(p, m)| (p.clone(), m.synced_len, m.targets.clone(), m.len))
            .collect();
        for (path, synced, targets, len) in trims {
            for node in &targets {
                let phys = phys_path(&root, *node, &path);
                if let Ok(f) = fs::OpenOptions::new().write(true).open(&phys) {
                    f.set_len(synced).ok();
                }
                if let Some(u) = inner.used.get_mut(node) {
                    *u = u.saturating_sub(len - synced);
                }
            }
            inner.files.get_mut(&path).unwrap().len = synced;
        }
    }

    fn view(inner: &Inner) -> ClusterView {
        ClusterView {
            alive: inner.alive.iter().copied().collect(),
            used_bytes: inner.used.clone(),
            existing: vec![],
        }
    }

    /// The cached mapping of `phys`, remapped if shorter than `need` bytes.
    fn mapping(&self, phys: &Path, need: u64) -> Result<Arc<Mmap>> {
        if let Some(m) = self.maps.read().get(phys) {
            if m.len() as u64 >= need {
                return Ok(m.clone());
            }
        }
        let file = fs::File::open(phys)
            .map_err(|e| VhError::Hdfs(format!("open replica {}: {e}", phys.display())))?;
        let flen = file
            .metadata()
            .map_err(|e| VhError::Hdfs(format!("stat replica {}: {e}", phys.display())))?
            .len();
        let map = Arc::new(
            Mmap::map(&file, flen as usize)
                .map_err(|e| VhError::Hdfs(format!("mmap replica {}: {e}", phys.display())))?,
        );
        self.maps.write().insert(phys.to_path_buf(), map.clone());
        Ok(map)
    }

    fn drop_mapping(&self, phys: &Path) {
        self.maps.write().remove(phys);
    }

    /// Copy `path`'s bytes from the replica at `src` into `dst`'s directory.
    fn copy_replica(&self, path: &str, src: NodeId, dst: NodeId) -> Result<u64> {
        let from = phys_path(&self.root, src, path);
        let to = phys_path(&self.root, dst, path);
        if let Some(parent) = to.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| VhError::Hdfs(format!("mkdir for replica of {path}: {e}")))?;
        }
        // Rewrites go through remove + copy so a stale mapping of the
        // destination (possible after rebalance ping-pong) keeps its inode.
        self.drop_mapping(&to);
        fs::remove_file(&to).ok();
        fs::copy(&from, &to).map_err(|e| VhError::Hdfs(format!("copy replica of {path}: {e}")))
    }
}

/// `<root>/node-NNNN/<logical path minus leading slash>`.
fn phys_path(root: &Path, node: NodeId, logical: &str) -> PathBuf {
    root.join(format!("node-{:04}", node.0))
        .join(logical.trim_start_matches('/'))
}

fn walk_files(dir: &Path, f: &mut impl FnMut(&Path)) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            walk_files(&p, f);
        } else {
            f(&p);
        }
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        if self.owns_root {
            self.maps.write().clear();
            fs::remove_dir_all(&self.root).ok();
        }
    }
}

impl BlockStore for FileStore {
    fn backend(&self) -> &'static str {
        "file"
    }

    fn config(&self) -> &BlockStoreConfig {
        &self.config
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn set_fault_hook(&self, hook: Option<SharedFaultHook>) {
        *self.hook.write() = hook;
    }

    fn fault_hook(&self) -> Option<SharedFaultHook> {
        self.hook.read().clone()
    }

    fn alive_nodes(&self) -> Vec<NodeId> {
        self.inner.read().alive.iter().copied().collect()
    }

    fn all_nodes(&self) -> Vec<NodeId> {
        self.inner.read().all_nodes.iter().copied().collect()
    }

    fn create(&self, path: &str, replication: Option<usize>) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.files.contains_key(path) {
            return Err(VhError::Hdfs(format!("file exists: {path}")));
        }
        let replication = replication.unwrap_or(self.config.default_replication);
        inner.files.insert(
            path.to_string(),
            FileMeta {
                len: 0,
                synced_len: 0,
                replication,
                targets: vec![],
            },
        );
        Ok(())
    }

    fn append(&self, path: &str, data: &[u8], writer: Option<NodeId>) -> Result<()> {
        self.consult_fault(FaultSite::HdfsAppend, path)?;
        let mut inner = self.inner.write();
        if !inner.files.contains_key(path) {
            let replication = self.config.default_replication;
            inner.files.insert(
                path.to_string(),
                FileMeta {
                    len: 0,
                    synced_len: 0,
                    replication,
                    targets: vec![],
                },
            );
        }
        // Fix placement targets on first append.
        if inner.files[path].targets.is_empty() {
            let wanted = inner.files[path].replication;
            let view = Self::view(&inner);
            let targets = self.policy.choose_targets(path, writer, wanted, &view);
            if targets.is_empty() {
                return Err(VhError::Hdfs(format!("no alive datanodes to place {path}")));
            }
            inner.files.get_mut(path).unwrap().targets = targets;
        }
        let targets = inner.files[path].targets.clone();
        let live_targets: Vec<NodeId> = targets
            .iter()
            .copied()
            .filter(|n| inner.alive.contains(n))
            .collect();
        if live_targets.is_empty() {
            return Err(VhError::Hdfs(format!(
                "all replica targets of {path} are dead"
            )));
        }
        for node in &live_targets {
            let phys = phys_path(&self.root, *node, path);
            if let Some(parent) = phys.parent() {
                fs::create_dir_all(parent)
                    .map_err(|e| VhError::Hdfs(format!("mkdir for {path}: {e}")))?;
            }
            let file = fs::OpenOptions::new()
                .append(true)
                .create(true)
                .open(&phys)
                .map_err(|e| VhError::Hdfs(format!("open {path} for append: {e}")))?;
            // Buffered write, flushed to the OS page cache before the append
            // returns: durable against process crash, not yet against OS
            // crash — that is what `sync` is for.
            let mut w = BufWriter::new(file);
            w.write_all(data)
                .and_then(|()| w.flush())
                .map_err(|e| VhError::Hdfs(format!("append to {path}: {e}")))?;
            *inner.used.entry(*node).or_insert(0) += data.len() as u64;
        }
        inner.files.get_mut(path).unwrap().len += data.len() as u64;
        self.stats
            .record_write(data.len() as u64 * live_targets.len() as u64);
        Ok(())
    }

    fn sync(&self, path: &str) -> Result<()> {
        let mut inner = self.inner.write();
        let meta = inner
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| VhError::Hdfs(format!("no such file: {path}")))?;
        for node in meta.targets.iter().filter(|n| inner.alive.contains(n)) {
            let phys = phys_path(&self.root, *node, path);
            match fs::File::open(&phys) {
                Ok(f) => f
                    .sync_all()
                    .map_err(|e| VhError::Hdfs(format!("fsync {path}: {e}")))?,
                // Zero-length files may not exist physically yet.
                Err(_) if meta.len == 0 => {}
                Err(e) => return Err(VhError::Hdfs(format!("fsync {path}: {e}"))),
            }
        }
        inner.files.get_mut(path).unwrap().synced_len = meta.len;
        self.stats.record_fsync();
        Ok(())
    }

    fn read(&self, path: &str, offset: u64, len: usize, reader: Option<NodeId>) -> Result<Vec<u8>> {
        self.consult_fault(FaultSite::HdfsRead, path)?;
        let inner = self.inner.read();
        // A dead node cannot issue reads: surfacing this as `NodeDown` (not
        // a generic Hdfs error) lets the query layer fail over by
        // re-planning on the surviving worker set.
        if let Some(r) = reader {
            if !inner.alive.contains(&r) {
                return Err(VhError::NodeDown(format!(
                    "reader {r} is dead (reading {path})"
                )));
            }
        }
        let meta = inner
            .files
            .get(path)
            .ok_or_else(|| VhError::Hdfs(format!("no such file: {path}")))?;
        let end = (offset + len as u64).min(meta.len);
        if offset >= end {
            return Ok(vec![]);
        }
        let live: Vec<NodeId> = meta
            .targets
            .iter()
            .copied()
            .filter(|n| inner.alive.contains(n))
            .collect();
        let block_size = self.config.block_size as u64;
        if live.is_empty() {
            let bi = (offset / block_size) as usize;
            return Err(VhError::Hdfs(format!(
                "block {bi} of {path} has no live replica"
            )));
        }
        let local = reader.map(|r| live.contains(&r)).unwrap_or(false);
        let serving = if local { reader.unwrap() } else { live[0] };
        let phys = phys_path(&self.root, serving, path);
        let map = self.mapping(&phys, end)?;
        let bytes = map
            .slice(offset as usize, (end - offset) as usize)
            .ok_or_else(|| {
                VhError::Hdfs(format!(
                    "replica of {path} on {serving} is short ({} < {end})",
                    map.len()
                ))
            })?;
        // Account block-by-block like the namenode would serve it, so IO-op
        // counters match the simulated backend.
        let mut pos = offset;
        while pos < end {
            let take = (block_size - pos % block_size).min(end - pos);
            self.stats.record_read(take, local);
            pos += take;
        }
        Ok(bytes.to_vec())
    }

    fn delete(&self, path: &str) -> Result<()> {
        let mut inner = self.inner.write();
        let meta = inner
            .files
            .remove(path)
            .ok_or_else(|| VhError::Hdfs(format!("no such file: {path}")))?;
        for node in &meta.targets {
            let phys = phys_path(&self.root, *node, path);
            self.drop_mapping(&phys);
            fs::remove_file(&phys).ok();
            if let Some(u) = inner.used.get_mut(node) {
                *u = u.saturating_sub(meta.len);
            }
        }
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.read().files.contains_key(path)
    }

    fn len(&self, path: &str) -> Result<u64> {
        self.inner
            .read()
            .files
            .get(path)
            .map(|f| f.len)
            .ok_or_else(|| VhError::Hdfs(format!("no such file: {path}")))
    }

    fn list(&self, prefix: &str) -> Vec<FileStatus> {
        let block_size = self.config.block_size as u64;
        self.inner
            .read()
            .files
            .range(prefix.to_string()..)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(p, f)| FileStatus {
                path: p.clone(),
                len: f.len,
                replication: f.replication,
                block_count: f.len.div_ceil(block_size) as usize,
            })
            .collect()
    }

    fn block_locations(&self, path: &str) -> Result<Vec<BlockLocation>> {
        let inner = self.inner.read();
        let meta = inner
            .files
            .get(path)
            .ok_or_else(|| VhError::Hdfs(format!("no such file: {path}")))?;
        let block_size = self.config.block_size as u64;
        let n_blocks = meta.len.div_ceil(block_size);
        let mut out = Vec::with_capacity(n_blocks as usize);
        for i in 0..n_blocks {
            let offset = i * block_size;
            out.push(BlockLocation {
                offset,
                len: (meta.len - offset).min(block_size),
                nodes: meta.targets.clone(),
            });
        }
        Ok(out)
    }

    fn kill_node(&self, node: NodeId) -> Result<()> {
        let mut inner = self.inner.write();
        if !inner.alive.remove(&node) {
            return Err(VhError::Hdfs(format!("{node} is not alive")));
        }
        // Drop the dead node's usage; its replicas are gone.
        inner.used.remove(&node);
        let paths: Vec<String> = inner.files.keys().cloned().collect();
        let mut rerep_total = 0u64;
        for path in paths {
            let meta = inner.files[&path].clone();
            if !meta.targets.contains(&node) {
                continue;
            }
            let mut targets: Vec<NodeId> = meta
                .targets
                .iter()
                .copied()
                .filter(|&n| n != node)
                .collect();
            // Re-replication copies from a surviving replica; a file with no
            // survivors is lost (read() will error on its blocks).
            let survivor = targets.iter().copied().find(|n| inner.alive.contains(n));
            if meta.len > 0 && targets.len() < meta.replication {
                if let Some(src) = survivor {
                    let mut view = Self::view(&inner);
                    view.existing = targets.clone();
                    if let Some(t) = self
                        .policy
                        .choose_targets(&path, None, 1, &view)
                        .first()
                        .copied()
                    {
                        self.copy_replica(&path, src, t)?;
                        targets.push(t);
                        *inner.used.entry(t).or_insert(0) += meta.len;
                        rerep_total += meta.len;
                    }
                }
            }
            inner.files.get_mut(&path).unwrap().targets = targets;
        }
        // Discard the dead node's physical replicas, like a datanode whose
        // disk is gone: revival brings it back empty.
        let node_dir = self.root.join(format!("node-{:04}", node.0));
        self.maps
            .write()
            .retain(|phys, _| !phys.starts_with(&node_dir));
        fs::remove_dir_all(&node_dir).ok();
        if rerep_total > 0 {
            self.stats.record_rereplication(rerep_total);
        }
        Ok(())
    }

    fn revive_node(&self, node: NodeId) -> Result<()> {
        let mut inner = self.inner.write();
        if !inner.all_nodes.contains(&node) {
            return Err(VhError::Hdfs(format!("{node} was never in the cluster")));
        }
        if !inner.alive.insert(node) {
            return Err(VhError::Hdfs(format!("{node} is already alive")));
        }
        Ok(())
    }

    fn add_node(&self) -> NodeId {
        let mut inner = self.inner.write();
        let id = NodeId(inner.all_nodes.iter().map(|n| n.0 + 1).max().unwrap_or(0));
        inner.all_nodes.insert(id);
        inner.alive.insert(id);
        id
    }

    fn conform_to_policy(&self) -> u64 {
        let mut inner = self.inner.write();
        let paths: Vec<String> = inner.files.keys().cloned().collect();
        let mut moved = 0u64;
        for path in paths {
            let meta = inner.files[&path].clone();
            let view = Self::view(&inner);
            let desired = self
                .policy
                .choose_targets(&path, None, meta.replication, &view);
            if desired.is_empty() || meta.targets == desired {
                continue;
            }
            if meta.len > 0 {
                let Some(src) = meta
                    .targets
                    .iter()
                    .copied()
                    .find(|n| inner.alive.contains(n))
                else {
                    continue; // lost file: nothing to copy from
                };
                for n in desired.iter().filter(|n| !meta.targets.contains(n)) {
                    self.copy_replica(&path, src, *n).ok();
                    *inner.used.entry(*n).or_insert(0) += meta.len;
                    moved += meta.len;
                }
                for n in meta.targets.iter().filter(|n| !desired.contains(n)) {
                    let phys = phys_path(&self.root, *n, &path);
                    self.drop_mapping(&phys);
                    fs::remove_file(&phys).ok();
                    if let Some(u) = inner.used.get_mut(n) {
                        *u = u.saturating_sub(meta.len);
                    }
                }
            }
            inner.files.get_mut(&path).unwrap().targets = desired;
        }
        if moved > 0 {
            self.stats.record_rereplication(moved);
        }
        moved
    }

    fn usage(&self) -> UsageReport {
        let inner = self.inner.read();
        UsageReport {
            per_node_bytes: inner.used.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{AffinityPolicy, DefaultPolicy};
    use vectorh_common::fault::{FaultAction, FaultHook};

    fn small_fs(nodes: usize) -> FileStore {
        FileStore::new(
            nodes,
            BlockStoreConfig {
                block_size: 64,
                default_replication: 3,
            },
            Arc::new(DefaultPolicy::new(42)),
            "",
        )
        .unwrap()
    }

    #[test]
    fn append_read_roundtrip_on_disk() {
        let fs = small_fs(4);
        let data: Vec<u8> = (0..1000u32).map(|i| i as u8).collect();
        fs.append("/f", &data, Some(NodeId(0))).unwrap();
        assert_eq!(fs.read_all("/f", Some(NodeId(0))).unwrap(), data);
        assert_eq!(fs.len("/f").unwrap(), 1000);
        assert_eq!(fs.block_locations("/f").unwrap().len(), 16);
        // The bytes really are on disk, replicated R times.
        let mut phys_copies = 0;
        for node in fs.all_nodes() {
            let p = phys_path(fs.root(), node, "/f");
            if p.exists() {
                assert_eq!(fs::read(&p).unwrap(), data);
                phys_copies += 1;
            }
        }
        assert_eq!(phys_copies, 3);
    }

    #[test]
    fn partial_reads_and_growth_remap() {
        let fs = small_fs(3);
        let data: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        fs.append("/f", &data, None).unwrap();
        assert_eq!(fs.read("/f", 10, 5, None).unwrap(), &data[10..15]);
        assert_eq!(fs.read("/f", 60, 10, None).unwrap(), &data[60..70]);
        assert_eq!(fs.read("/f", 195, 100, None).unwrap(), &data[195..]);
        assert_eq!(fs.read("/f", 500, 10, None).unwrap(), Vec::<u8>::new());
        // Grow after mapping: reads past the old mapping length remap.
        fs.append("/f", &[0xEE; 300], None).unwrap();
        let tail = fs.read("/f", 200, 300, None).unwrap();
        assert_eq!(tail, vec![0xEE; 300]);
        // And the already-mapped prefix still serves.
        assert_eq!(fs.read("/f", 0, 200, None).unwrap(), data);
    }

    #[test]
    fn locality_accounting_matches_simhdfs_shape() {
        let fs = small_fs(5);
        fs.append("/f", &[9u8; 256], Some(NodeId(2))).unwrap();
        let before = fs.stats().snapshot();
        fs.read_all("/f", Some(NodeId(2))).unwrap();
        let after = fs.stats().snapshot().since(&before);
        assert_eq!(after.remote_read_bytes, 0);
        assert_eq!(after.local_read_bytes, 256);
        // External clients read remote.
        let before = fs.stats().snapshot();
        fs.read_all("/f", None).unwrap();
        let after = fs.stats().snapshot().since(&before);
        assert_eq!(after.local_read_bytes, 0);
        assert_eq!(after.remote_read_bytes, 256);
    }

    #[test]
    fn delete_frees_space_and_disk() {
        let fs = small_fs(3);
        fs.append("/f", &[1u8; 100], Some(NodeId(0))).unwrap();
        let used: u64 = fs.usage().per_node_bytes.values().sum();
        assert_eq!(used, 300);
        fs.delete("/f").unwrap();
        let used: u64 = fs.usage().per_node_bytes.values().sum();
        assert_eq!(used, 0);
        assert!(!fs.exists("/f"));
        assert!(fs.read_all("/f", None).is_err());
        for node in fs.all_nodes() {
            assert!(!phys_path(fs.root(), node, "/f").exists());
        }
    }

    #[test]
    fn node_failure_rereplicates_real_files() {
        let fs = small_fs(4);
        fs.append("/f", &[7u8; 128], Some(NodeId(0))).unwrap();
        fs.kill_node(NodeId(0)).unwrap();
        let locs = fs.block_locations("/f").unwrap();
        for b in &locs {
            assert_eq!(b.nodes.len(), 3, "re-replicated back to R=3");
            assert!(!b.nodes.contains(&NodeId(0)));
        }
        assert!(fs.stats().snapshot().rereplicated_bytes >= 128);
        assert_eq!(fs.read_all("/f", None).unwrap(), vec![7u8; 128]);
        // The new replica is a real on-disk copy.
        for n in &locs[0].nodes {
            assert_eq!(
                fs::read(phys_path(fs.root(), *n, "/f")).unwrap(),
                vec![7u8; 128]
            );
        }
        // The dead node's directory is gone.
        assert!(!fs.root().join("node-0000").exists());
    }

    #[test]
    fn lost_file_reads_error() {
        let policy = Arc::new(AffinityPolicy::new(9));
        let fs = FileStore::new(
            4,
            BlockStoreConfig {
                block_size: 32,
                default_replication: 1,
            },
            policy.clone(),
            "",
        )
        .unwrap();
        policy.set_affinity("/solo/", vec![NodeId(2)]);
        fs.append("/solo/f", &[1u8; 10], None).unwrap();
        fs.kill_node(NodeId(2)).unwrap();
        assert!(fs.read_all("/solo/f", None).is_err());
    }

    #[test]
    fn affinity_rebalance_moves_real_replicas() {
        let policy = Arc::new(AffinityPolicy::new(7));
        let fs = FileStore::new(
            4,
            BlockStoreConfig {
                block_size: 32,
                default_replication: 2,
            },
            policy.clone(),
            "",
        )
        .unwrap();
        policy.set_affinity("/db/r/p0/", vec![NodeId(1), NodeId(3)]);
        fs.append("/db/r/p0/chunk0", &[5u8; 100], Some(NodeId(0)))
            .unwrap();
        assert!(fs.fully_local("/db/r/p0/chunk0", NodeId(1)).unwrap());
        policy.set_affinity("/db/r/p0/", vec![NodeId(0), NodeId(2)]);
        let moved = fs.conform_to_policy();
        assert!(moved >= 100);
        for b in fs.block_locations("/db/r/p0/chunk0").unwrap() {
            assert_eq!(b.nodes, vec![NodeId(0), NodeId(2)]);
        }
        assert_eq!(
            fs.read_all("/db/r/p0/chunk0", None).unwrap(),
            vec![5u8; 100]
        );
        // Old replicas physically removed, new ones physically present.
        assert!(!phys_path(fs.root(), NodeId(1), "/db/r/p0/chunk0").exists());
        assert!(phys_path(fs.root(), NodeId(0), "/db/r/p0/chunk0").exists());
    }

    #[test]
    fn revive_comes_back_empty_then_rebalance_repopulates() {
        let policy = Arc::new(AffinityPolicy::new(11));
        let fs = FileStore::new(
            3,
            BlockStoreConfig {
                block_size: 32,
                default_replication: 2,
            },
            policy.clone(),
            "",
        )
        .unwrap();
        policy.set_affinity("/db/t/p0/", vec![NodeId(1), NodeId(2)]);
        fs.append("/db/t/p0/chunk0", &[4u8; 96], Some(NodeId(1)))
            .unwrap();
        fs.kill_node(NodeId(1)).unwrap();
        fs.revive_node(NodeId(1)).unwrap();
        assert_eq!(fs.alive_nodes().len(), 3);
        assert!(!fs.fully_local("/db/t/p0/chunk0", NodeId(1)).unwrap());
        assert!(fs.conform_to_policy() >= 96);
        assert!(fs.fully_local("/db/t/p0/chunk0", NodeId(1)).unwrap());
        assert_eq!(
            fs.read_all("/db/t/p0/chunk0", Some(NodeId(1))).unwrap(),
            vec![4u8; 96]
        );
        assert!(fs.revive_node(NodeId(1)).is_err());
        assert!(fs.revive_node(NodeId(9)).is_err());
    }

    #[test]
    fn restart_rescans_root_and_serves_same_bytes() {
        let root = std::env::temp_dir().join(format!("vh-fstest-restart-{}", std::process::id()));
        fs::remove_dir_all(&root).ok();
        let data: Vec<u8> = (0..5000u32).map(|i| (i * 7) as u8).collect();
        {
            let fs = FileStore::new(
                3,
                BlockStoreConfig {
                    block_size: 64,
                    default_replication: 2,
                },
                Arc::new(DefaultPolicy::new(1)),
                root.to_str().unwrap(),
            )
            .unwrap();
            fs.append("/db/t/p0/chunk-0", &data, Some(NodeId(1)))
                .unwrap();
            fs.append("/db/t/p0/wal", b"wal-bytes", Some(NodeId(1)))
                .unwrap();
            fs.sync("/db/t/p0/chunk-0").unwrap();
        }
        // Process "restarted": fresh store over the same root.
        let fs = FileStore::new(
            3,
            BlockStoreConfig {
                block_size: 64,
                default_replication: 2,
            },
            Arc::new(DefaultPolicy::new(1)),
            root.to_str().unwrap(),
        )
        .unwrap();
        assert_eq!(fs.len("/db/t/p0/chunk-0").unwrap(), data.len() as u64);
        assert_eq!(fs.read_all("/db/t/p0/chunk-0", None).unwrap(), data);
        assert_eq!(fs.read_all("/db/t/p0/wal", None).unwrap(), b"wal-bytes");
        assert_eq!(fs.list("/db/t/p0/").len(), 2);
        // Replicas were discovered on both nodes that held them.
        let locs = fs.block_locations("/db/t/p0/chunk-0").unwrap();
        assert_eq!(locs[0].nodes.len(), 2);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn sync_watermark_gates_os_crash_survival() {
        let fs = small_fs(3);
        fs.append("/wal", b"committed.", None).unwrap();
        fs.sync("/wal").unwrap();
        fs.append("/wal", b"torn-tail", None).unwrap();
        assert_eq!(fs.len("/wal").unwrap(), 19);
        assert_eq!(fs.synced_len("/wal").unwrap(), 10);
        assert!(fs.stats().snapshot().fsync_ops >= 1);
        fs.simulate_os_crash();
        assert_eq!(fs.len("/wal").unwrap(), 10);
        assert_eq!(fs.read_all("/wal", None).unwrap(), b"committed.");
        // Appends keep working after the crash.
        fs.append("/wal", b"+more", None).unwrap();
        assert_eq!(fs.read_all("/wal", None).unwrap(), b"committed.+more");
    }

    #[test]
    fn dead_reader_surfaces_node_down() {
        let fs = small_fs(4);
        fs.append("/f", &[1u8; 64], Some(NodeId(0))).unwrap();
        fs.kill_node(NodeId(2)).unwrap();
        let err = fs.read_all("/f", Some(NodeId(2))).unwrap_err();
        assert!(matches!(err, VhError::NodeDown(_)), "{err}");
        assert!(fs.read_all("/f", Some(NodeId(0))).is_ok());
        assert!(fs.read_all("/f", None).is_ok());
    }

    #[test]
    fn create_twice_fails_and_list_by_prefix() {
        let fs = small_fs(3);
        fs.create("/f", None).unwrap();
        assert!(fs.create("/f", None).is_err());
        fs.append("/db/t/p0/c0", &[0], None).unwrap();
        fs.append("/db/t/p0/c1", &[0], None).unwrap();
        fs.append("/db/t/p1/c0", &[0], None).unwrap();
        assert_eq!(fs.list("/db/t/p0/").len(), 2);
        assert_eq!(fs.list("/db/").len(), 3);
        assert_eq!(fs.list("/zzz").len(), 0);
    }

    /// Scripted hook acting on paths containing a marker substring.
    #[derive(Debug)]
    struct ScriptedHook {
        site: FaultSite,
        marker: &'static str,
        action: FaultAction,
        clears_after: u32,
    }

    impl FaultHook for ScriptedHook {
        fn decide(&self, site: FaultSite, detail: &str, attempt: u32) -> FaultAction {
            if site != self.site || !detail.contains(self.marker) {
                return FaultAction::None;
            }
            if self.action == FaultAction::TransientError && attempt >= self.clears_after {
                return FaultAction::None;
            }
            self.action
        }
    }

    #[test]
    fn fault_sites_fire_on_real_file_paths() {
        let fs = small_fs(3);
        fs.append("/flaky/f", &[3u8; 32], Some(NodeId(0))).unwrap();
        fs.set_fault_hook(Some(Arc::new(ScriptedHook {
            site: FaultSite::HdfsRead,
            marker: "/flaky/",
            action: FaultAction::TransientError,
            clears_after: 2,
        })));
        assert_eq!(
            fs.read_all("/flaky/f", Some(NodeId(0))).unwrap(),
            vec![3u8; 32]
        );
        let snap = fs.stats().snapshot();
        assert_eq!(snap.injected_faults, 2);
        assert_eq!(snap.read_retries, 2);
        // Permanent append fault: nothing is written to any replica.
        fs.set_fault_hook(Some(Arc::new(ScriptedHook {
            site: FaultSite::HdfsAppend,
            marker: "/flaky/",
            action: FaultAction::PermanentError,
            clears_after: 0,
        })));
        assert!(fs.append("/flaky/f", &[9u8; 8], Some(NodeId(0))).is_err());
        fs.set_fault_hook(None);
        assert_eq!(fs.len("/flaky/f").unwrap(), 32);
    }
}
