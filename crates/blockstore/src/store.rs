//! The [`BlockStore`] trait: the storage surface VectorH's engine, WAL,
//! propagation, and scan layers are written against.
//!
//! The contract mirrors what HDFS gives VectorH (§3):
//!
//! * Files are **append-only**; there is no writing in the middle of a file.
//! * Files are split into fixed-size blocks replicated on `R` datanodes,
//!   with placement decided **per file** by a pluggable
//!   [`BlockPlacementPolicy`](crate::placement::BlockPlacementPolicy) when
//!   the first byte is appended.
//! * Reads are **short-circuit** (counted local) when the reading node holds
//!   a replica, remote otherwise.
//! * Datanode failure triggers namenode-driven re-replication; a revived
//!   node comes back *empty* and is repopulated by
//!   [`conform_to_policy`](BlockStore::conform_to_policy).
//!
//! **Durability contract** (the part real filesystems force us to design):
//! [`append`](BlockStore::append) hands bytes to the backend such that they
//! survive a *process* crash (on the file backend they are written and
//! flushed to the OS page cache before the call returns). They are only
//! guaranteed to survive an *OS/machine* crash after a subsequent
//! [`sync`](BlockStore::sync) of the same path — that is the fsync point the
//! WAL invokes on commit-bearing batches and the chunk writer invokes when a
//! chunk is sealed. The simulation has no OS to crash, so `sync` is
//! accounting-only there; both backends count it in
//! [`IoSnapshot::fsync_ops`](crate::stats::IoSnapshot).

use std::sync::Arc;

use vectorh_common::fault::{FaultAction, FaultSite, SharedFaultHook};
use vectorh_common::{NodeId, Result, VhError};

use crate::stats::{IoStats, UsageReport};
use crate::types::{BlockLocation, BlockStoreConfig, FileStatus};

/// Bounded retry budget for injected transient I/O errors: the first
/// attempt plus up to three retries with (simulated) exponential backoff.
pub const MAX_IO_ATTEMPTS: u32 = 4;

/// Shared handle the engine threads clone freely.
pub type StoreRef = Arc<dyn BlockStore>;

/// Consult `hook` at `site` for `detail`, honouring transient-error retries
/// with exponential backoff and recording every outcome into `stats`.
/// `Ok(())` means proceed; transient errors that exhaust [`MAX_IO_ATTEMPTS`]
/// and permanent errors surface as typed `Err`s. Free-standing so every
/// backend (and layers built on top, like WAL replay) runs the identical
/// retry discipline.
pub fn consult_hook(
    hook: Option<SharedFaultHook>,
    stats: &IoStats,
    site: FaultSite,
    detail: &str,
) -> Result<()> {
    let hook = match hook {
        Some(h) => h,
        None => return Ok(()),
    };
    let mut attempt = 0u32;
    loop {
        match hook.decide(site, detail, attempt) {
            FaultAction::None => return Ok(()),
            FaultAction::SlowRead => {
                stats.record_slow_read();
                std::thread::sleep(std::time::Duration::from_micros(50));
                return Ok(());
            }
            FaultAction::TransientError => {
                stats.record_injected_fault();
                attempt += 1;
                if attempt >= MAX_IO_ATTEMPTS {
                    return Err(VhError::Hdfs(format!(
                        "injected transient {site} error on {detail} \
                         (gave up after {attempt} attempts)"
                    )));
                }
                stats.record_read_retry();
                std::thread::sleep(std::time::Duration::from_micros(20 << attempt));
            }
            FaultAction::PermanentError => {
                stats.record_injected_fault();
                return Err(VhError::Hdfs(format!(
                    "injected permanent {site} error on {detail}"
                )));
            }
            // Exchange/WAL-specific actions are meaningless for plain
            // filesystem I/O; treat them as "no fault here".
            _ => return Ok(()),
        }
    }
}

/// The pluggable storage backend surface.
pub trait BlockStore: Send + Sync {
    /// Backend name for diagnostics ("sim", "file").
    fn backend(&self) -> &'static str;

    fn config(&self) -> &BlockStoreConfig;

    fn stats(&self) -> &IoStats;

    /// Install (or clear) the fault hook consulted on every read/append.
    /// Shared across all handles to the same store.
    fn set_fault_hook(&self, hook: Option<SharedFaultHook>);

    /// The currently installed fault hook, if any.
    fn fault_hook(&self) -> Option<SharedFaultHook>;

    fn alive_nodes(&self) -> Vec<NodeId>;

    fn all_nodes(&self) -> Vec<NodeId>;

    /// Create an empty file. Errors if it already exists.
    fn create(&self, path: &str, replication: Option<usize>) -> Result<()>;

    /// Append bytes to a file (creating it if needed), issued from `writer`.
    /// The only write primitive — files cannot be modified in the middle.
    /// Durable against process crash on return; see the module docs for the
    /// OS-crash contract.
    fn append(&self, path: &str, data: &[u8], writer: Option<NodeId>) -> Result<()>;

    /// Durability point: make everything appended to `path` so far survive
    /// an OS crash (fsync on real files). No-op (accounting only) on
    /// backends without a physical medium.
    fn sync(&self, path: &str) -> Result<()>;

    /// Read `len` bytes at `offset`, issued from `reader` (None = external
    /// client, always remote). Short reads at EOF return what exists.
    fn read(&self, path: &str, offset: u64, len: usize, reader: Option<NodeId>) -> Result<Vec<u8>>;

    /// Delete a file. Frees space on all replicas.
    fn delete(&self, path: &str) -> Result<()>;

    fn exists(&self, path: &str) -> bool;

    fn len(&self, path: &str) -> Result<u64>;

    /// List files whose path starts with `prefix`, sorted.
    fn list(&self, prefix: &str) -> Vec<FileStatus>;

    /// Block locations of a file (namenode metadata query).
    fn block_locations(&self, path: &str) -> Result<Vec<BlockLocation>>;

    /// Kill a datanode; the namenode re-replicates every block that lost a
    /// replica, asking the placement policy for new targets.
    fn kill_node(&self, node: NodeId) -> Result<()>;

    /// Revive a previously killed datanode. It comes back *empty*;
    /// [`conform_to_policy`](Self::conform_to_policy) repopulates it once
    /// the placement policy prescribes replicas there again.
    fn revive_node(&self, node: NodeId) -> Result<()>;

    /// Add a fresh (empty) datanode to the cluster.
    fn add_node(&self) -> NodeId;

    /// Background rebalancer: migrate every file's replicas to what the
    /// placement policy currently prescribes. Returns bytes moved.
    fn conform_to_policy(&self) -> u64;

    /// Per-node stored bytes.
    fn usage(&self) -> UsageReport;

    /// Read a whole file.
    fn read_all(&self, path: &str, reader: Option<NodeId>) -> Result<Vec<u8>> {
        let len = self.len(path)?;
        self.read(path, 0, len as usize, reader)
    }

    /// Does `node` hold a replica of every block of `path`?
    fn fully_local(&self, path: &str, node: NodeId) -> Result<bool> {
        Ok(self
            .block_locations(path)?
            .iter()
            .all(|b| b.nodes.contains(&node)))
    }

    /// Consult the installed hook at `site` for `detail` with the shared
    /// retry discipline. Public so layers built on the store (WAL replay)
    /// can gate their own sites on the same hook.
    fn consult_fault(&self, site: FaultSite, detail: &str) -> Result<()> {
        consult_hook(self.fault_hook(), self.stats(), site, detail)
    }
}

/// Smart-pointer passthrough: lets a `&StoreRef` (i.e. `&Arc<dyn BlockStore>`)
/// coerce wherever a `&dyn BlockStore` is expected, so call sites read the
/// same whether they hold the store by value, by `Arc`, or behind the trait.
impl<T: BlockStore + ?Sized> BlockStore for Arc<T> {
    fn backend(&self) -> &'static str {
        (**self).backend()
    }
    fn config(&self) -> &BlockStoreConfig {
        (**self).config()
    }
    fn stats(&self) -> &IoStats {
        (**self).stats()
    }
    fn set_fault_hook(&self, hook: Option<SharedFaultHook>) {
        (**self).set_fault_hook(hook)
    }
    fn fault_hook(&self) -> Option<SharedFaultHook> {
        (**self).fault_hook()
    }
    fn alive_nodes(&self) -> Vec<NodeId> {
        (**self).alive_nodes()
    }
    fn all_nodes(&self) -> Vec<NodeId> {
        (**self).all_nodes()
    }
    fn create(&self, path: &str, replication: Option<usize>) -> Result<()> {
        (**self).create(path, replication)
    }
    fn append(&self, path: &str, data: &[u8], writer: Option<NodeId>) -> Result<()> {
        (**self).append(path, data, writer)
    }
    fn sync(&self, path: &str) -> Result<()> {
        (**self).sync(path)
    }
    fn read(&self, path: &str, offset: u64, len: usize, reader: Option<NodeId>) -> Result<Vec<u8>> {
        (**self).read(path, offset, len, reader)
    }
    fn delete(&self, path: &str) -> Result<()> {
        (**self).delete(path)
    }
    fn exists(&self, path: &str) -> bool {
        (**self).exists(path)
    }
    fn len(&self, path: &str) -> Result<u64> {
        (**self).len(path)
    }
    fn list(&self, prefix: &str) -> Vec<FileStatus> {
        (**self).list(prefix)
    }
    fn block_locations(&self, path: &str) -> Result<Vec<BlockLocation>> {
        (**self).block_locations(path)
    }
    fn kill_node(&self, node: NodeId) -> Result<()> {
        (**self).kill_node(node)
    }
    fn revive_node(&self, node: NodeId) -> Result<()> {
        (**self).revive_node(node)
    }
    fn add_node(&self) -> NodeId {
        (**self).add_node()
    }
    fn conform_to_policy(&self) -> u64 {
        (**self).conform_to_policy()
    }
    fn usage(&self) -> UsageReport {
        (**self).usage()
    }
    fn read_all(&self, path: &str, reader: Option<NodeId>) -> Result<Vec<u8>> {
        (**self).read_all(path, reader)
    }
    fn fully_local(&self, path: &str, node: NodeId) -> Result<bool> {
        (**self).fully_local(path, node)
    }
    fn consult_fault(&self, site: FaultSite, detail: &str) -> Result<()> {
        (**self).consult_fault(site, detail)
    }
}
