//! Backend-independent metadata types shared by every [`crate::BlockStore`].

use vectorh_common::NodeId;

/// Configuration common to every block-store backend.
#[derive(Debug, Clone)]
pub struct BlockStoreConfig {
    /// HDFS block size in bytes (real clusters: 128 MB – 1 GB; tests use KBs).
    pub block_size: usize,
    /// Default replication degree (HDFS default R=3).
    pub default_replication: usize,
}

impl Default for BlockStoreConfig {
    fn default() -> Self {
        BlockStoreConfig {
            block_size: 4 * 1024 * 1024,
            default_replication: 3,
        }
    }
}

/// Externally visible file metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStatus {
    pub path: String,
    pub len: u64,
    pub replication: usize,
    pub block_count: usize,
}

/// Location information for one block (what the namenode reports to clients
/// such as VectorH's dbAgent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockLocation {
    pub offset: u64,
    pub len: u64,
    pub nodes: Vec<NodeId>,
}
