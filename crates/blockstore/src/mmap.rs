//! A minimal read-only `mmap` wrapper, hand-rolled over raw syscalls to
//! keep the workspace zero-dependency (no `libc`, no `memmap2`).
//!
//! # Safety argument
//!
//! The wrapper is only ever used by [`crate::FileStore`] under these
//! invariants, which together make the exposed `&[u8]` sound:
//!
//! 1. **Append-only files.** Chunk and WAL files are never written in the
//!    middle; bytes below a mapping's length never change after the map is
//!    taken, so no writer mutates memory we hand out as `&[u8]`.
//! 2. **Mapped length is captured at map time** and only offsets inside
//!    `[0, len)` are exposed ([`Mmap::slice`] is bounds-checked); a file that
//!    grew since mapping is *remapped*, never read past the captured length.
//! 3. **Files are never truncated while mapped.** Shrinking a mapped file
//!    would turn in-bounds accesses into SIGBUS; every FileStore path that
//!    truncates or rewrites (WAL repair, crash simulation, replica trim)
//!    drops the mapping cache entry for the file *first* and recreates the
//!    file under a new inode (`delete` + re-append), so live maps keep
//!    referring to the old, unchanged inode.
//! 4. **Unlink-while-mapped is safe on unix**: the inode stays alive until
//!    the last mapping is gone, so a reader holding a map of a deleted chunk
//!    still sees stable bytes.
//! 5. The mapping is `PROT_READ`/`MAP_SHARED`; we never write through it,
//!    and `Drop` unmaps exactly the `(ptr, len)` pair returned by `mmap`.
//!
//! On non-unix targets the "map" degrades to reading the file into a heap
//! buffer — same interface, no `unsafe`.

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_SHARED: i32 = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A read-only mapping of the first `len` bytes of a file.
#[cfg(unix)]
pub struct Mmap {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

// SAFETY: the mapping is immutable for its lifetime (see module invariants);
// a raw pointer to immutable, never-freed-while-alive memory is safe to
// share and send across threads.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
impl Mmap {
    /// Map `len` bytes of `file` read-only. `len == 0` yields an empty map
    /// without touching the syscall (POSIX rejects zero-length mappings).
    pub fn map(file: &File, len: usize) -> io::Result<Mmap> {
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::null_mut(),
                len: 0,
            });
        }
        use std::os::unix::io::AsRawFd;
        // SAFETY: fd is a valid open file descriptor for the duration of the
        // call; PROT_READ/MAP_SHARED with offset 0 has no preconditions on
        // our memory. The result is checked against MAP_FAILED below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped bytes `[offset, offset + len)`, or `None` when out of
    /// bounds of the mapped region.
    pub fn slice(&self, offset: usize, len: usize) -> Option<&[u8]> {
        let end = offset.checked_add(len)?;
        if end > self.len {
            return None;
        }
        if len == 0 {
            return Some(&[]);
        }
        // SAFETY: offset+len <= self.len was just checked; the region
        // [ptr, ptr+self.len) is a live PROT_READ mapping whose bytes never
        // change (module invariants 1–3), so a shared slice is sound.
        Some(unsafe { std::slice::from_raw_parts((self.ptr as *const u8).add(offset), len) })
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: (ptr, len) is exactly what mmap returned and has not
            // been unmapped before (Drop runs once).
            unsafe {
                sys::munmap(self.ptr, self.len);
            }
        }
    }
}

/// Portable fallback: "map" by reading into a heap buffer.
#[cfg(not(unix))]
pub struct Mmap {
    buf: Vec<u8>,
}

#[cfg(not(unix))]
impl Mmap {
    pub fn map(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut buf = vec![0u8; len];
        let mut f = file.try_clone()?;
        use std::io::Seek;
        f.seek(io::SeekFrom::Start(0))?;
        f.read_exact(&mut buf)?;
        Ok(Mmap { buf })
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn slice(&self, offset: usize, len: usize) -> Option<&[u8]> {
        let end = offset.checked_add(len)?;
        self.buf.get(offset..end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpfile(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("vh-mmap-test-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync_all().unwrap();
        path
    }

    #[test]
    fn maps_and_slices() {
        let data: Vec<u8> = (0..4096u32).map(|i| i as u8).collect();
        let path = tmpfile("basic", &data);
        let f = File::open(&path).unwrap();
        let m = Mmap::map(&f, data.len()).unwrap();
        assert_eq!(m.len(), data.len());
        assert_eq!(m.slice(0, data.len()).unwrap(), &data[..]);
        assert_eq!(m.slice(100, 32).unwrap(), &data[100..132]);
        assert_eq!(m.slice(data.len(), 0).unwrap(), &[] as &[u8]);
        assert!(m.slice(data.len(), 1).is_none());
        assert!(m.slice(usize::MAX, 2).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = tmpfile("empty", &[]);
        let f = File::open(&path).unwrap();
        let m = Mmap::map(&f, 0).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.slice(0, 0).unwrap(), &[] as &[u8]);
        assert!(m.slice(0, 1).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_shorter_than_file_is_capped() {
        let data = vec![7u8; 1000];
        let path = tmpfile("short", &data);
        let f = File::open(&path).unwrap();
        // Map only a prefix: the captured length gates all slices.
        let m = Mmap::map(&f, 100).unwrap();
        assert_eq!(m.len(), 100);
        assert!(m.slice(0, 101).is_none());
        assert_eq!(m.slice(0, 100).unwrap(), &data[..100]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unlink_while_mapped_keeps_bytes_readable() {
        let data = vec![0xABu8; 512];
        let path = tmpfile("unlink", &data);
        let f = File::open(&path).unwrap();
        let m = Mmap::map(&f, data.len()).unwrap();
        drop(f);
        std::fs::remove_file(&path).unwrap();
        assert_eq!(m.slice(0, 512).unwrap(), &data[..]);
    }
}
