//! IO accounting.
//!
//! Every read and write is attributed to the issuing node and classified as
//! *local* (a replica lives on that node — HDFS "short-circuit read") or
//! *remote*. The Figure-1/Figure-2 harnesses read these counters to show
//! bytes touched and locality percentages. The counters are backend-neutral:
//! SimHdfs and FileStore record through the same [`IoStats`] so locality and
//! fault accounting stay comparable across backends.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use vectorh_common::NodeId;

/// Cluster-wide IO counters. All methods are thread-safe.
#[derive(Debug, Default)]
pub struct IoStats {
    local_read_bytes: AtomicU64,
    remote_read_bytes: AtomicU64,
    write_bytes: AtomicU64,
    local_read_ops: AtomicU64,
    remote_read_ops: AtomicU64,
    write_ops: AtomicU64,
    rereplicated_bytes: AtomicU64,
    injected_faults: AtomicU64,
    slow_read_ops: AtomicU64,
    read_retries: AtomicU64,
    fsync_ops: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    pub local_read_bytes: u64,
    pub remote_read_bytes: u64,
    pub write_bytes: u64,
    pub local_read_ops: u64,
    pub remote_read_ops: u64,
    pub write_ops: u64,
    pub rereplicated_bytes: u64,
    /// I/O errors injected by a fault hook (transient and permanent).
    pub injected_faults: u64,
    /// Reads that completed but were accounted as slowed by a fault hook.
    pub slow_read_ops: u64,
    /// Retries performed after injected transient errors.
    pub read_retries: u64,
    /// Explicit durability points: `BlockStore::sync` calls (fsync on the
    /// file backend, accounting-only on the simulation).
    pub fsync_ops: u64,
}

impl IoSnapshot {
    /// Total bytes read.
    pub fn read_bytes(&self) -> u64 {
        self.local_read_bytes + self.remote_read_bytes
    }

    /// Fraction of read bytes served locally (1.0 when nothing was read).
    pub fn locality(&self) -> f64 {
        let total = self.read_bytes();
        if total == 0 {
            1.0
        } else {
            self.local_read_bytes as f64 / total as f64
        }
    }

    /// Counter delta since `earlier`.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            local_read_bytes: self.local_read_bytes - earlier.local_read_bytes,
            remote_read_bytes: self.remote_read_bytes - earlier.remote_read_bytes,
            write_bytes: self.write_bytes - earlier.write_bytes,
            local_read_ops: self.local_read_ops - earlier.local_read_ops,
            remote_read_ops: self.remote_read_ops - earlier.remote_read_ops,
            write_ops: self.write_ops - earlier.write_ops,
            rereplicated_bytes: self.rereplicated_bytes - earlier.rereplicated_bytes,
            injected_faults: self.injected_faults - earlier.injected_faults,
            slow_read_ops: self.slow_read_ops - earlier.slow_read_ops,
            read_retries: self.read_retries - earlier.read_retries,
            fsync_ops: self.fsync_ops - earlier.fsync_ops,
        }
    }
}

impl IoStats {
    pub fn record_read(&self, bytes: u64, local: bool) {
        if local {
            self.local_read_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.local_read_ops.fetch_add(1, Ordering::Relaxed);
        } else {
            self.remote_read_bytes.fetch_add(bytes, Ordering::Relaxed);
            self.remote_read_ops.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn record_write(&self, bytes: u64) {
        self.write_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.write_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_rereplication(&self, bytes: u64) {
        self.rereplicated_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub fn record_injected_fault(&self) {
        self.injected_faults.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_slow_read(&self) {
        self.slow_read_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_read_retry(&self) {
        self.read_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_fsync(&self) {
        self.fsync_ops.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            local_read_bytes: self.local_read_bytes.load(Ordering::Relaxed),
            remote_read_bytes: self.remote_read_bytes.load(Ordering::Relaxed),
            write_bytes: self.write_bytes.load(Ordering::Relaxed),
            local_read_ops: self.local_read_ops.load(Ordering::Relaxed),
            remote_read_ops: self.remote_read_ops.load(Ordering::Relaxed),
            write_ops: self.write_ops.load(Ordering::Relaxed),
            rereplicated_bytes: self.rereplicated_bytes.load(Ordering::Relaxed),
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
            slow_read_ops: self.slow_read_ops.load(Ordering::Relaxed),
            read_retries: self.read_retries.load(Ordering::Relaxed),
            fsync_ops: self.fsync_ops.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.local_read_bytes.store(0, Ordering::Relaxed);
        self.remote_read_bytes.store(0, Ordering::Relaxed);
        self.write_bytes.store(0, Ordering::Relaxed);
        self.local_read_ops.store(0, Ordering::Relaxed);
        self.remote_read_ops.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.rereplicated_bytes.store(0, Ordering::Relaxed);
        self.injected_faults.store(0, Ordering::Relaxed);
        self.slow_read_ops.store(0, Ordering::Relaxed);
        self.read_retries.store(0, Ordering::Relaxed);
        self.fsync_ops.store(0, Ordering::Relaxed);
    }
}

/// Per-node storage usage report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UsageReport {
    pub per_node_bytes: HashMap<NodeId, u64>,
}

impl UsageReport {
    /// Max/min stored bytes across nodes: a balance measure for the
    /// rebalancer tests.
    pub fn imbalance(&self) -> f64 {
        if self.per_node_bytes.is_empty() {
            return 1.0;
        }
        let max = *self.per_node_bytes.values().max().unwrap() as f64;
        let min = *self.per_node_bytes.values().min().unwrap() as f64;
        if min == 0.0 {
            if max == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max / min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::default();
        s.record_read(100, true);
        s.record_read(50, false);
        s.record_write(30);
        let snap = s.snapshot();
        assert_eq!(snap.local_read_bytes, 100);
        assert_eq!(snap.remote_read_bytes, 50);
        assert_eq!(snap.read_bytes(), 150);
        assert_eq!(snap.write_bytes, 30);
        assert_eq!(snap.local_read_ops, 1);
        assert_eq!(snap.remote_read_ops, 1);
        assert!((snap.locality() - 100.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn locality_of_idle_cluster_is_one() {
        assert_eq!(IoStats::default().snapshot().locality(), 1.0);
    }

    #[test]
    fn since_computes_delta() {
        let s = IoStats::default();
        s.record_read(10, true);
        let a = s.snapshot();
        s.record_read(5, false);
        s.record_fsync();
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.local_read_bytes, 0);
        assert_eq!(d.remote_read_bytes, 5);
        assert_eq!(d.fsync_ops, 1);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::default();
        s.record_write(7);
        s.record_fsync();
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn imbalance_measure() {
        let mut r = UsageReport::default();
        r.per_node_bytes.insert(NodeId(0), 100);
        r.per_node_bytes.insert(NodeId(1), 50);
        assert_eq!(r.imbalance(), 2.0);
        r.per_node_bytes.insert(NodeId(2), 0);
        assert!(r.imbalance().is_infinite());
    }
}
