//! The chaos schedule: one seed → one reproducible fault campaign.
//!
//! [`run_schedule`] builds a small TPC-H cluster and drives four phases,
//! each with its own [`SplitMix64`] derived from `(seed, phase index)`:
//!
//! 1. **Faulty I/O queries** (`io`) — a rate-based [`FaultPlan`] injects
//!    transient HDFS read errors, slow reads and exchange
//!    drop/duplicate/delay while TPC-H queries run; every answer must match
//!    the row-store baseline.
//! 2. **Transaction crash storm** (`txn`) — scripted [`DirectedFault`]s
//!    crash the WAL append and both 2PC phases across a shuffled sequence
//!    of distributed commits; the engine's recovery entry point
//!    ([`vectorh::recovery::recover_partition`]) must resurrect exactly the
//!    committed transactions, identically on every participant.
//! 3. **Mid-query node kill** (`kill`) — a watcher thread kills a worker
//!    once the query has read enough bytes; the query must still return
//!    baseline-correct rows, and a follow-up scan must be fully
//!    short-circuit local (zero remote reads).
//! 4. **Crash, detect, recover, rejoin** (`rejoin`) — the node responsible
//!    for a trickle-updated partition crashes mid-commit; the heartbeat
//!    detector (with one beat dropped in flight) declares it dead, takeover
//!    recovery resurrects exactly the durably committed transactions, and
//!    after [`VectorH::rejoin_node`] locality and replicated state converge
//!    back.
//! 5. **Master kill mid-2PC** (`master`) — the session master dies at a
//!    seed-chosen 2PC decide crash point; detection and the election run
//!    entirely from inside ordinary query traffic (the background health
//!    plane), the new master resolves the in-doubt transaction exactly once
//!    under a bumped epoch, a stale-epoch commit is fenced, a
//!    replicated-table commit storm pushes the bounded ship log past its
//!    truncation horizon, and the rejoining old master converges via
//!    full-image bootstrap — without reclaiming the master role.
//! 6. **Transport faults** (`transport`) — a framed TCP fabric carries a
//!    seed-sized burst of messages while scripted [`DirectedFault`]s refuse
//!    dials, tear frames on the wire and drop the connection between
//!    frames; reconnect-with-retransmission plus receiver dedup must still
//!    deliver every payload exactly once, in order, and after an epoch bump
//!    a peer redialling with the stale epoch must be fenced at the
//!    handshake.
//! 7. **Front-door kill under concurrent clients** (`frontdoor`) — a wire
//!    [`Server`](vectorh_server::Server) fronts the engine while a
//!    seed-sized pack of concurrent TCP clients streams a Q1/Q6/Q12 mix;
//!    once every client is mid-run, a seed-chosen worker dies. Every query
//!    must still return baseline-correct rows — failover is absorbed
//!    inside `query_logical`, never surfaced to a client — and the
//!    admission gate must report zero rejections for a closed-loop pack
//!    this size.
//! 8. **HTAP soak** (`htap`) — a private cluster with background
//!    chunk-level update propagation enabled runs a seeded mixed workload
//!    (trickle inserts, key deletes, updates, Q1/Q6/Q12 probes, a node
//!    kill) for 64 rounds against an exact in-memory model; scripted
//!    [`DirectedFault`]s crash propagation at seed-chosen WAL protocol
//!    steps (directed and from inside the background tick), after which
//!    the partition must still reconcile and a clean retry must succeed;
//!    untouched chunks stay byte-identical on disk across a tail-append
//!    propagation and scans are byte-stable across the image swap.
//!
//! Phases run selectively via `CHAOS_PHASES` (comma-separated names from
//! [`ALL_PHASES`], default all) so CI can split a schedule across parallel
//! jobs; per-phase RNGs keep each enabled phase's schedule identical
//! regardless of which other phases run. Every decision the harness itself
//! makes (cluster size, query choice, fault rates, txn script order, victim
//! node) comes from the seed, and every injected fault comes from
//! set-deterministic hooks, so the resulting [`ScheduleReport`] — steps,
//! per-site fired counters, and the master-epoch history — is identical
//! run-to-run. Failures embed the seed; rerun just that schedule with
//! `CHAOS_SEED=<seed>`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vectorh::{ClusterConfig, Expr, TableBuilder, VectorH};
use vectorh_common::fault::{FaultAction, FaultSite, SharedFaultHook};
use vectorh_common::rng::SplitMix64;
use vectorh_common::{DataType, NodeId, PartitionId, Result, Value, VhError};
use vectorh_server::{AdmissionConfig, Client, Server, ServerConfig};
use vectorh_tpch::baseline::{canonical, BaselineDb, BaselineKind};
use vectorh_tpch::queries::{build_query, run_with};
use vectorh_tpch::sql_texts::{frontdoor_mix_texts, FRONTDOOR_MIX};
use vectorh_transport::{Fabric, RxKind, SharedEpoch, TcpFabric};
use vectorh_txn::manager::{TransactionManager, TxnConfig};
use vectorh_txn::twophase::{CrashPoint, Outcome, TwoPhaseCoordinator};
use vectorh_txn::wal::{LogRecord, Wal};

use crate::plan::{site_index, DirectedFault, DirectedSet, FaultPlan, N_SITES};

/// Seeds per default corpus (CI runs all of them).
pub const DEFAULT_CORPUS_LEN: usize = 16;

/// Phase names, in execution order. `CHAOS_PHASES` selects a subset.
pub const ALL_PHASES: [&str; 8] = [
    "io",
    "txn",
    "kill",
    "rejoin",
    "master",
    "transport",
    "frontdoor",
    "htap",
];

/// Phases enabled by the environment: `CHAOS_PHASES=io,txn` runs just
/// those two (CI splits the corpus this way); unset runs all of them.
pub fn enabled_phases() -> Vec<&'static str> {
    phases_from(std::env::var("CHAOS_PHASES").ok().as_deref())
}

/// Testable core of [`enabled_phases`].
pub fn phases_from(env: Option<&str>) -> Vec<&'static str> {
    match env {
        None => ALL_PHASES.to_vec(),
        Some(s) => {
            let req: Vec<&str> = s
                .split(',')
                .map(|p| p.trim())
                .filter(|p| !p.is_empty())
                .collect();
            for r in &req {
                assert!(
                    ALL_PHASES.contains(r),
                    "CHAOS_PHASES names unknown phase {r:?} (known: {ALL_PHASES:?})"
                );
            }
            ALL_PHASES
                .iter()
                .copied()
                .filter(|p| req.contains(p))
                .collect()
        }
    }
}

/// Per-phase RNG: derived from `(seed, phase index)` so an enabled phase's
/// schedule is identical whether or not the other phases run.
fn phase_rng(seed: u64, phase: u64) -> SplitMix64 {
    SplitMix64::new(seed ^ phase.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// What one schedule did, in deterministic order. Two runs of the same
/// seed must produce byte-identical reports — the determinism test relies
/// on `Eq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleReport {
    pub seed: u64,
    /// Human-readable narration of each step taken.
    pub steps: Vec<String>,
    /// Faults fired per site, indexed like [`FaultSite::ALL`].
    pub fired: [u64; N_SITES],
    /// Every (epoch, master) in force across the schedule, oldest first —
    /// the election audit trail (epoch 1 is the initial master).
    pub epochs: Vec<(u64, NodeId)>,
}

/// The seed corpus: `CHAOS_SEED` (decimal or `0x`-hex) replays a single
/// schedule; otherwise a fixed [`DEFAULT_CORPUS_LEN`]-seed corpus runs.
pub fn corpus() -> Vec<u64> {
    corpus_from(std::env::var("CHAOS_SEED").ok().as_deref())
}

/// Testable core of [`corpus`].
pub fn corpus_from(env: Option<&str>) -> Vec<u64> {
    match env {
        Some(s) => {
            let s = s.trim();
            let seed = s
                .strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| s.parse::<u64>())
                .unwrap_or_else(|_| {
                    panic!("CHAOS_SEED must be a u64 (decimal or 0x-hex), got {s:?}")
                });
            vec![seed]
        }
        None => (0..DEFAULT_CORPUS_LEN as u64)
            .map(|i| 0x56EC_7040 + i)
            .collect(),
    }
}

/// Run one complete chaos schedule with the phases selected by the
/// environment (`CHAOS_PHASES`). `Err` means an engine invariant broke (or
/// the cluster failed to come up); the message embeds the seed.
pub fn run_schedule(seed: u64) -> Result<ScheduleReport> {
    run_schedule_with_phases(seed, &enabled_phases())
}

/// [`run_schedule`] with an explicit phase selection — what the
/// election-determinism tests use to replay just the `master` phase without
/// touching the process environment.
pub fn run_schedule_with_phases(seed: u64, phases: &[&str]) -> Result<ScheduleReport> {
    let mut rng = SplitMix64::new(seed);
    let mut report = ScheduleReport {
        seed,
        steps: Vec::new(),
        fired: [0; N_SITES],
        epochs: Vec::new(),
    };

    // Cluster shape: ≥4 nodes so replication 3 survives a node kill.
    // Arc because the front-door phase hands the engine to a wire server.
    let nodes = 4 + rng.next_bounded(2) as usize;
    let vh = Arc::new(VectorH::start(ClusterConfig {
        nodes,
        rows_per_chunk: 256,
        hdfs_block_size: 32 * 1024,
        streams_per_node: 2,
        replication: 3,
        // Bounded ship-log retention, fixed (not from the environment) so
        // the `master` phase's horizon storm is seed-deterministic.
        ship_retention: vectorh_txn::twophase::ShipRetention {
            max_bytes: None,
            max_records: Some(8),
        },
        ..Default::default()
    })?);
    let data = vectorh_tpch::schema::setup(&vh, 0.001, 4, 20260807)?;
    let db = BaselineDb::load(&data)?;
    report
        .steps
        .push(format!("cluster: {nodes} nodes, 4 partitions, sf 0.001"));

    if phases.contains(&"io") {
        phase_faulty_io(&vh, &db, &mut phase_rng(seed, 1), &mut report)?;
    }
    if phases.contains(&"txn") {
        phase_txn_crashes(&vh, &mut phase_rng(seed, 2), &mut report)?;
    }
    if phases.contains(&"kill") {
        phase_kill_node(&vh, &db, &mut phase_rng(seed, 3), &mut report)?;
    }
    if phases.contains(&"rejoin") {
        phase_rejoin(&vh, &db, &mut phase_rng(seed, 4), &mut report)?;
    }
    if phases.contains(&"master") {
        phase_master_kill(&vh, &db, &mut phase_rng(seed, 5), &mut report)?;
    }
    if phases.contains(&"transport") {
        phase_transport(&mut phase_rng(seed, 6), &mut report)?;
    }
    if phases.contains(&"frontdoor") {
        phase_frontdoor(&vh, &db, &mut phase_rng(seed, 7), &mut report)?;
    }
    if phases.contains(&"htap") {
        phase_htap(&db, &mut phase_rng(seed, 8), &mut report)?;
    }
    report.epochs = vh.master_history();
    Ok(report)
}

/// Run query `qn` on the engine and compare against the row-store
/// baseline; returns the row count.
fn checked_query(vh: &VectorH, db: &BaselineDb, qn: usize, ctx: &str, seed: u64) -> Result<usize> {
    let got = canonical(run_with(&build_query(qn)?, |p| vh.query_logical(p))?);
    let want = canonical(db.run_query(&build_query(qn)?, BaselineKind::RowStore)?);
    if got != want {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: Q{qn} diverged from row-store baseline {ctx} \
             ({} vs {} rows)",
            got.len(),
            want.len()
        )));
    }
    Ok(got.len())
}

/// Phase 1: queries under a rate-based I/O + exchange fault plan.
///
/// The plan's palettes are chosen so queries must still *succeed*: HDFS
/// errors are transient (cleared by the engine's bounded retry), slow reads
/// only add simulated latency, and exchange drop/duplicate/delay are
/// absorbed by the reliable-transport semantics (retransmit, receiver
/// dedup, bounded reorder).
fn phase_faulty_io(
    vh: &VectorH,
    db: &BaselineDb,
    rng: &mut SplitMix64,
    report: &mut ScheduleReport,
) -> Result<()> {
    let plan = std::sync::Arc::new(
        FaultPlan::new(rng.next_u64())
            .with_site(
                FaultSite::HdfsRead,
                40 + rng.next_bounded(120) as u16,
                &[FaultAction::TransientError, FaultAction::SlowRead],
            )
            .with_site(
                FaultSite::XchgSend,
                20 + rng.next_bounded(80) as u16,
                &[
                    FaultAction::Drop,
                    FaultAction::Duplicate,
                    FaultAction::Delay,
                ],
            ),
    );
    vh.install_fault_hook(Some(plan.clone() as SharedFaultHook));
    let mut pool = vec![1usize, 3, 5, 6, 10, 12, 14, 19];
    rng.shuffle(&mut pool);
    let result = (|| {
        for &qn in pool.iter().take(3) {
            let rows = checked_query(vh, db, qn, "under the I/O fault plan", report.seed)?;
            report
                .steps
                .push(format!("faulty-io Q{qn}: {rows} rows ok"));
        }
        Ok(())
    })();
    vh.install_fault_hook(None);
    result?;
    for (total, fired) in report.fired.iter_mut().zip(plan.fired_counts()) {
        *total += fired;
    }
    Ok(())
}

/// Phase 2: distributed commits under scripted crash faults, then a
/// simulated restart whose recovery must agree with the acknowledged
/// outcomes.
fn phase_txn_crashes(
    vh: &VectorH,
    rng: &mut SplitMix64,
    report: &mut ScheduleReport,
) -> Result<()> {
    let seed = report.seed;
    let fs = vh.fs().clone();
    let dir = format!("/chaos/{seed:016x}");
    let coord = TwoPhaseCoordinator::new(Wal::new(fs.clone(), format!("{dir}/global.wal"), None));
    let pa = PartitionId(9000);
    let pb = PartitionId(9001);
    let wa = Wal::new(fs.clone(), format!("{dir}/pa.wal"), None);
    let wb = Wal::new(fs.clone(), format!("{dir}/pb.wal"), None);
    // The manager that each simulated restart recovers into.
    let mgr = TransactionManager::new(TxnConfig::default());
    mgr.register_partition(pa, 0);
    mgr.register_partition(pb, 0);

    // One transaction per scripted fault (plus clean controls), in
    // seed-shuffled order. Every crash-capable txn site appears.
    let mut script: Vec<Option<(FaultSite, FaultAction)>> = vec![
        None,
        Some((FaultSite::HdfsAppend, FaultAction::TransientError)),
        Some((FaultSite::WalAppend, FaultAction::CrashBefore)),
        Some((FaultSite::WalAppend, FaultAction::CrashMid)),
        Some((FaultSite::WalAppend, FaultAction::CrashAfter)),
        Some((FaultSite::TwoPhasePrepare, FaultAction::CrashBefore)),
        Some((FaultSite::TwoPhaseDecide, FaultAction::CrashBefore)),
        Some((FaultSite::TwoPhaseDecide, FaultAction::CrashAfter)),
        None,
    ];
    rng.shuffle(&mut script);

    let mut acked: Vec<u64> = Vec::new();
    let mut unresolved: Vec<u64> = Vec::new();
    for (i, fault) in script.iter().enumerate() {
        let txn_id = 100 + i as u64;
        let recs = |part: u64| {
            vec![
                LogRecord::TxnBegin { txn: txn_id },
                LogRecord::Insert {
                    txn: txn_id,
                    rid: 0,
                    tag: txn_id * 10 + part,
                    values: vec![vectorh_common::Value::I64(txn_id as i64)],
                },
            ]
        };
        let (ra, rb) = (recs(0), recs(1));
        let directed = fault.map(|(site, action)| DirectedFault::new(site, action, 1));
        vh.install_fault_hook(directed.clone().map(|d| d as SharedFaultHook));
        let out =
            coord.commit_distributed(txn_id, &[(pa, &wa, &ra), (pb, &wb, &rb)], CrashPoint::None);
        vh.install_fault_hook(None);
        if let Some(d) = &directed {
            report.fired[site_index(d.site())] += d.fired();
        }
        let label = match fault {
            Some((site, action)) => format!("{site}/{action:?}"),
            None => "clean".to_string(),
        };
        match out {
            Ok(Outcome::Committed) => {
                acked.push(txn_id);
                report
                    .steps
                    .push(format!("txn{txn_id} [{label}]: committed"));
            }
            Ok(Outcome::InDoubt) => {
                unresolved.push(txn_id);
                report
                    .steps
                    .push(format!("txn{txn_id} [{label}]: in doubt"));
            }
            Err(e) => {
                unresolved.push(txn_id);
                report
                    .steps
                    .push(format!("txn{txn_id} [{label}]: crashed ({e})"));
                // The "crashed" coordinator restarts through the engine's
                // recovery entry point: each partition WAL's torn tail is
                // repaired, in-doubt transactions resolve against the
                // global WAL, and exactly the committed state is
                // reinstalled before the logs are appended to again.
                coord.global_wal().repair()?;
                for (pid, wal) in [(pa, &wa), (pb, &wb)] {
                    vectorh::recovery::recover_partition(&coord, &mgr, pid, 0, wal)?;
                }
            }
        }
    }

    // Simulated restart. The first recovery read itself suffers a
    // transient fault, which the WAL's retry loop must absorb.
    let replay_fault = DirectedFault::new(FaultSite::WalReplay, FaultAction::TransientError, 1);
    vh.install_fault_hook(Some(replay_fault.clone() as SharedFaultHook));
    let committed_a = coord.committed_txns_of(&wa)?;
    vh.install_fault_hook(None);
    report.fired[site_index(FaultSite::WalReplay)] += replay_fault.fired();
    let committed_b = coord.committed_txns_of(&wb)?;

    if committed_a != committed_b {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: 2PC atomicity violated — participants \
             recover different commit sets ({committed_a:?} vs {committed_b:?})"
        )));
    }
    for txn in &acked {
        if !committed_a.contains(txn) {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: acknowledged txn{txn} lost across recovery"
            )));
        }
    }
    for txn in &unresolved {
        // In-doubt resolution must follow the global WAL's decision.
        if committed_a.contains(txn) != coord.recover_decision(*txn)? {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: in-doubt txn{txn} resolved against the \
                 global decision"
            )));
        }
    }

    // Final restart through the engine recovery path: each participant's
    // recovered commit set must match the log scan above, and exactly one
    // row per committed txn becomes visible — nothing from uncommitted
    // ones.
    for (pid, wal) in [(pa, &wa), (pb, &wb)] {
        let rep = vectorh::recovery::recover_partition(&coord, &mgr, pid, 0, wal)?;
        let recovered: std::collections::BTreeSet<u64> = rep.committed.iter().copied().collect();
        let scanned: std::collections::BTreeSet<u64> = committed_a.iter().copied().collect();
        if recovered != scanned {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: recovery of {pid} resolved {recovered:?} \
                 as committed, log scan says {committed_a:?}"
            )));
        }
        let visible = mgr.visible_rows(pid)?;
        if visible != committed_a.len() as u64 {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: recovery of {pid} shows {visible} rows, \
                 expected {} (one per committed txn)",
                committed_a.len()
            )));
        }
    }
    report.steps.push(format!(
        "recovery: {} committed of {} attempted, replay verified on both partitions",
        committed_a.len(),
        script.len()
    ));
    Ok(())
}

/// Phase 3: kill a worker mid-query; the query must return baseline-correct
/// rows via failover, and a follow-up scan must be fully local again.
fn phase_kill_node(
    vh: &VectorH,
    db: &BaselineDb,
    rng: &mut SplitMix64,
    report: &mut ScheduleReport,
) -> Result<()> {
    let seed = report.seed;
    let master = vh.session_master();
    let pool: Vec<NodeId> = vh.workers().into_iter().filter(|w| *w != master).collect();
    let victim = pool[rng.next_bounded(pool.len() as u64) as usize];
    let qn = [3usize, 5, 10][rng.next_bounded(3) as usize];
    let q = build_query(qn)?;
    let want = canonical(db.run_query(&build_query(qn)?, BaselineKind::RowStore)?);
    let threshold = vh.fs().stats().snapshot().read_bytes() + 2048 + rng.next_bounded(16 * 1024);

    let done = AtomicBool::new(false);
    let (got, killed_mid) = std::thread::scope(|s| {
        let killer = s.spawn(|| {
            while !done.load(Ordering::Acquire) {
                if vh.fs().stats().snapshot().read_bytes() >= threshold {
                    return vh.kill_node(victim).is_ok();
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            false
        });
        let got = run_with(&q, |p| vh.query_logical(p));
        done.store(true, Ordering::Release);
        (got, killer.join().unwrap_or(false))
    });
    let got = canonical(got?);
    if got != want {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: Q{qn} diverged from baseline across a \
             mid-query node kill ({} vs {} rows)",
            got.len(),
            want.len()
        )));
    }
    if !killed_mid {
        // Tiny queries can finish before the watcher crosses the read
        // threshold; the failover invariants below still apply.
        vh.kill_node(victim)?;
    }
    if vh.workers().contains(&victim) {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: {victim} still in the worker set after kill"
        )));
    }

    // Locality fully restored: a fresh scan does zero remote reads.
    let before = vh.fs().stats().snapshot();
    checked_query(vh, db, 6, "after the node kill", seed)?;
    let delta = vh.fs().stats().snapshot().since(&before);
    if delta.remote_read_bytes != 0 {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: locality not restored after killing \
             {victim} — {} remote bytes read",
            delta.remote_read_bytes
        )));
    }
    report.steps.push(format!(
        "killed {victim} during Q{qn}; post-failure Q6 fully local"
    ));
    Ok(())
}

/// Phase 4: the responsible node crashes mid-commit, the heartbeat monitor
/// detects it (with one beat dropped in flight), takeover recovery
/// resurrects exactly the durably committed transactions, and after rejoin
/// the node's replica state and cluster locality converge back.
fn phase_rejoin(
    vh: &VectorH,
    db: &BaselineDb,
    rng: &mut SplitMix64,
    report: &mut ScheduleReport,
) -> Result<()> {
    let seed = report.seed;
    // Fresh side tables so the expected contents are exactly modelled: a
    // single-partition table whose responsibility will move across the
    // crash, and a replicated table for shipped-log catch-up.
    vh.create_table(
        TableBuilder::new("rejoin_part")
            .column("id", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["id"], 1)
            .clustered_by(&["id"]),
    )?;
    vh.create_table(
        TableBuilder::new("rejoin_repl")
            .column("id", DataType::I64)
            .column("v", DataType::I64),
    )?;
    let part = vh.table("rejoin_part")?;
    let pid = part.pids[0];
    let mut next_id = 0i64;
    let mut two_rows = move || {
        let rows = vec![
            vec![Value::I64(next_id), Value::I64(next_id * 7)],
            vec![Value::I64(next_id + 1), Value::I64((next_id + 1) * 7)],
        ];
        next_id += 2;
        rows
    };

    // Three acknowledged commits — these must survive the takeover.
    let mut acked = 0u64;
    for _ in 0..3 {
        vh.trickle_insert("rejoin_part", two_rows())?;
        acked += 1;
    }

    // The responsible node crashes mid-commit: a budget-1 WAL-append crash
    // at a seed-chosen point tears the 4th transaction, and the process
    // dies without the engine noticing — detection is the heartbeat
    // monitor's job, not ours.
    let victim = vh.responsible(pid);
    let crash = [
        FaultAction::CrashBefore,
        FaultAction::CrashMid,
        FaultAction::CrashAfter,
    ][rng.next_bounded(3) as usize];
    let fault = DirectedFault::new(FaultSite::WalAppend, crash, 1);
    vh.install_fault_hook(Some(fault.clone() as SharedFaultHook));
    let out = vh.trickle_insert("rejoin_part", two_rows());
    vh.install_fault_hook(None);
    report.fired[site_index(FaultSite::WalAppend)] += fault.fired();
    if out.is_ok() {
        acked += 1;
    }
    vh.fs().kill_node(victim)?;
    vh.rm().node_lost(victim);

    // Heartbeat detection, with one live node's beat dropped along the way
    // — a drop may only delay detection, never false-kill a healthy node.
    let hb = DirectedFault::new(FaultSite::Heartbeat, FaultAction::Drop, 1);
    vh.install_fault_hook(Some(hb.clone() as SharedFaultHook));
    let mut detected_at = 0u64;
    for tick in 1..=8u64 {
        if vh.health_tick()?.contains(&victim) {
            detected_at = tick;
            break;
        }
    }
    vh.install_fault_hook(None);
    report.fired[site_index(FaultSite::Heartbeat)] += hb.fired();
    if detected_at == 0 {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: heartbeat monitor never declared {victim} dead"
        )));
    }
    if vh.workers().contains(&victim) {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: {victim} still in the worker set after detection"
        )));
    }

    // Takeover ran inside the detection tick. The recovered partition must
    // hold exactly the resolved transactions: every acknowledged one, plus
    // a crash survivor only if its commit record is durable — and no
    // uncommitted record ever becomes visible (each txn wrote 2 rows, so
    // any torn partial state would break the 2×C row count).
    let committed = vh
        .coordinator
        .recoverable_txns(&part.wals[0])?
        .iter()
        .filter(|t| t.resolution.is_committed())
        .count() as u64;
    if committed < acked {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: acknowledged txn lost across takeover \
             ({acked} acked, {committed} recovered)"
        )));
    }
    let visible = vh.table_rows("rejoin_part")?;
    if visible != 2 * committed {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: takeover of {pid} shows {visible} rows, \
             expected {} (2 per committed txn, atomically)",
            2 * committed
        )));
    }

    // While the victim is down, replicated-table commits pile up in the
    // shipped log.
    vh.trickle_insert("rejoin_repl", two_rows())?;
    vh.trickle_insert("rejoin_repl", two_rows())?;

    // Rejoin: the worker set, the victim's replica state and full scan
    // locality all converge back.
    vh.rejoin_node(victim)?;
    if !vh.workers().contains(&victim) {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: {victim} not re-admitted by rejoin"
        )));
    }
    let repl = vh.table("rejoin_repl")?;
    let check_replica = |ctx: &str| -> Result<()> {
        let caught_up = vh.replica_rows(victim, repl.pids[0])?;
        let expect = vh.table_rows("rejoin_repl")?;
        if caught_up != expect {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: {victim} replica has {caught_up} rows \
                 {ctx}, primary has {expect}"
            )));
        }
        Ok(())
    };
    check_replica("after rejoin catch-up")?;
    // A post-rejoin commit must reach the rejoined replica live.
    vh.trickle_insert("rejoin_repl", two_rows())?;
    check_replica("after a post-rejoin commit")?;
    let before = vh.fs().stats().snapshot();
    checked_query(vh, db, 6, "after the node rejoin", seed)?;
    let delta = vh.fs().stats().snapshot().since(&before);
    if delta.remote_read_bytes != 0 {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: locality not restored after rejoining \
             {victim} — {} remote bytes read",
            delta.remote_read_bytes
        )));
    }
    report.steps.push(format!(
        "rejoin: crashed {victim} mid-commit [{crash:?}], detected at tick \
         {detected_at}, {committed}/4 txns recovered, replica caught up, \
         post-rejoin Q6 fully local"
    ));
    Ok(())
}

/// Phase 5: the session master dies mid-2PC. Unlike phase 4, nothing drives
/// detection by hand — ordinary query traffic advances the background
/// health plane, which declares the master dead, elects the lowest live
/// NodeId under a bumped epoch, and resolves the in-doubt transaction
/// exactly once. A stale-epoch commit is fenced, a replicated-table commit
/// storm pushes the bounded ship log past its truncation horizon, and the
/// rejoining old master converges via full-image bootstrap without taking
/// the master role back.
fn phase_master_kill(
    vh: &VectorH,
    db: &BaselineDb,
    rng: &mut SplitMix64,
    report: &mut ScheduleReport,
) -> Result<()> {
    let seed = report.seed;
    vh.create_table(
        TableBuilder::new("master_part")
            .column("id", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["id"], 2)
            .clustered_by(&["id"]),
    )?;
    vh.create_table(
        TableBuilder::new("master_repl")
            .column("id", DataType::I64)
            .column("v", DataType::I64),
    )?;
    let part = vh.table("master_part")?;
    let repl = vh.table("master_repl")?;
    let mut next_id = 1000i64;
    let mut two_rows = move || {
        let rows = vec![
            vec![Value::I64(next_id), Value::I64(next_id * 3)],
            vec![Value::I64(next_id + 1), Value::I64((next_id + 1) * 3)],
        ];
        next_id += 2;
        rows
    };

    // Two acknowledged commits — the baseline that must survive everything.
    let mut acked = 0u64;
    for _ in 0..2 {
        vh.trickle_insert("master_part", two_rows())?;
        acked += 1;
    }
    let master0 = vh.session_master();
    let epoch0 = vh.master_epoch();

    // The master dies at the 2PC commit point: a budget-1 crash at the
    // decide site at a seed-chosen moment — before the decision (presumed
    // abort) or after it became durable (commit survives the master).
    let crash = [FaultAction::CrashBefore, FaultAction::CrashAfter][rng.next_bounded(2) as usize];
    let fault = DirectedFault::new(FaultSite::TwoPhaseDecide, crash, 1);
    vh.install_fault_hook(Some(fault.clone() as SharedFaultHook));
    let out = vh.trickle_insert("master_part", two_rows());
    vh.install_fault_hook(None);
    report.fired[site_index(FaultSite::TwoPhaseDecide)] += fault.fired();
    if out.is_ok() {
        acked += 1;
    }
    vh.fs().kill_node(master0)?;
    vh.rm().node_lost(master0);

    // Detection, election, takeover and in-doubt resolution all run from
    // inside ordinary traffic: just keep querying. One surviving node's
    // heartbeat is dropped along the way — it may delay detection, never
    // false-kill the survivor.
    let survivors: Vec<NodeId> = vh.workers().into_iter().filter(|w| *w != master0).collect();
    let lucky = survivors[rng.next_bounded(survivors.len() as u64) as usize];
    let hb = DirectedFault::matching(
        FaultSite::Heartbeat,
        FaultAction::Drop,
        1,
        &format!("{lucky}@"),
    );
    vh.install_fault_hook(Some(hb.clone() as SharedFaultHook));
    let mut queries = 0u64;
    let detect = (|| {
        while vh.workers().contains(&master0) {
            queries += 1;
            if queries > 12 {
                return Err(VhError::Internal(format!(
                    "chaos seed {seed:#x}: background health plane never \
                     removed the dead master {master0}"
                )));
            }
            checked_query(vh, db, 6, "while the dead master goes undetected", seed)?;
        }
        Ok(())
    })();
    vh.install_fault_hook(None);
    report.fired[site_index(FaultSite::Heartbeat)] += hb.fired();
    detect?;
    if !vh.workers().contains(&lucky) {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: {lucky} false-killed over one dropped heartbeat"
        )));
    }

    // Election: lowest live NodeId, epoch bumped exactly once, durably
    // logged in the global WAL.
    let master1 = vh.session_master();
    let epoch1 = vh.master_epoch();
    if master1 != vh.workers()[0] || master1 == master0 {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: elected {master1}, expected lowest live \
             node {}",
            vh.workers()[0]
        )));
    }
    if epoch1 != epoch0 + 1 {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: epoch went {epoch0} -> {epoch1}, expected \
             exactly one bump"
        )));
    }
    let logged = vh.coordinator.global_wal().read_all()?.iter().any(
        |r| matches!(r, LogRecord::MasterEpoch { epoch, node } if *epoch == epoch1 && *node == master1.0 as u64),
    );
    if !logged {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: election (epoch {epoch1}, {master1}) not \
             logged in the global WAL"
        )));
    }
    // Fencing: the deposed master's epoch must be rejected at the commit
    // point with the typed error.
    match vh.coordinator.check_epoch(epoch0) {
        Err(VhError::StaleMaster(_)) => {}
        other => {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: stale epoch {epoch0} not fenced \
                 (got {other:?})"
            )));
        }
    }

    // Exactly-once: across both partition WALs, every acknowledged
    // transaction is committed, the in-doubt one resolved exactly one way,
    // and the visible image holds 2 rows per committed transaction — no
    // loss, no duplicates.
    let mut committed = std::collections::BTreeSet::new();
    for wal in &part.wals {
        for v in vh.coordinator.recoverable_txns(wal)? {
            if v.resolution.is_committed() {
                committed.insert(v.txn);
            }
        }
    }
    let c = committed.len() as u64;
    if c < acked || c > acked + 1 {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: {acked} acked but {c} committed across \
             the election — in-doubt resolution lost or duplicated a txn"
        )));
    }
    let visible = vh.table_rows("master_part")?;
    if visible != 2 * c {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: master_part shows {visible} rows, \
             expected {} (2 per committed txn, exactly once)",
            2 * c
        )));
    }
    // Liveness under the new master: a fresh commit at the new epoch.
    vh.trickle_insert("master_part", two_rows())?;
    if vh.table_rows("master_part")? != 2 * (c + 1) {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: post-election commit not visible"
        )));
    }

    // Replicated commit storm past the retention horizon (max_records = 8,
    // 3 records per commit): the old master's watermark is now unreachable
    // from the retained log.
    let rpid = repl.pids[0];
    for _ in 0..3 {
        vh.trickle_insert("master_repl", two_rows())?;
    }
    if vh.shipper.horizon(rpid) == 0 {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: ship-log horizon never advanced under \
             bounded retention"
        )));
    }
    if vh.shipper.reclaimed_bytes() == 0 {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: retention truncated nothing"
        )));
    }

    // The old master rejoins behind the horizon: full-image bootstrap must
    // converge its replica, and the master role must NOT fail back.
    vh.rejoin_node(master0)?;
    let caught_up = vh.replica_rows(master0, rpid)?;
    let expect = vh.table_rows("master_repl")?;
    if caught_up != expect {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: bootstrap left {master0} at {caught_up} \
             rows, primary has {expect}"
        )));
    }
    vh.trickle_insert("master_repl", two_rows())?;
    if vh.replica_rows(master0, rpid)? != vh.table_rows("master_repl")? {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: {master0} replica diverged on the first \
             live commit after bootstrap"
        )));
    }
    if vh.session_master() != master1 || vh.master_epoch() != epoch1 {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: master role failed back to {} after \
             rejoin",
            vh.session_master()
        )));
    }
    report.steps.push(format!(
        "master: killed {master0} mid-2PC [{crash:?}], detected after \
         {queries} queries, elected {master1} at epoch {epoch1}, \
         {c}/{} txns exactly-once, stale epoch fenced, horizon bootstrap \
         converged {master0}",
        acked + 1
    ));
    Ok(())
}

/// Phase 6: the framed TCP transport under scripted connection faults.
///
/// A two-node loopback [`TcpFabric`] carries a seed-sized burst of frames
/// while a [`DirectedSet`] refuses the first dial attempts
/// ([`FaultSite::ConnRefused`]), drops the connection between frames
/// ([`FaultSite::Disconnect`]) and tears frames on the wire
/// ([`FaultSite::PartialFrame`]). The reliable-stream machinery —
/// reconnect, full retransmission of unacked frames, CRC discard of torn
/// frames, receiver dedup by watermark — must deliver every payload
/// exactly once, in order. Then an election bumps the epoch: a peer
/// redialling with the stale epoch must be fenced at the handshake with
/// [`VhError::StaleMaster`], while a current-epoch dialer still gets
/// through.
fn phase_transport(rng: &mut SplitMix64, report: &mut ScheduleReport) -> Result<()> {
    let seed = report.seed;
    let disconnects = 1 + rng.next_bounded(3);
    let partials = 1 + rng.next_bounded(3);
    // Strictly fewer refusals than the dial loop's retry budget, so the
    // connection always comes up after backing off.
    let refusals = 1 + rng.next_bounded(2);
    let n = 96 + rng.next_bounded(160);
    let window = 4 + rng.next_bounded(12) as u32;

    let budgets = [disconnects, partials, refusals];
    let faults = [
        DirectedFault::new(
            FaultSite::Disconnect,
            FaultAction::TransientError,
            disconnects,
        ),
        DirectedFault::new(
            FaultSite::PartialFrame,
            FaultAction::TransientError,
            partials,
        ),
        DirectedFault::new(
            FaultSite::ConnRefused,
            FaultAction::TransientError,
            refusals,
        ),
    ];
    let hook: SharedFaultHook = DirectedSet::new(&faults);
    let epoch = Arc::new(SharedEpoch::new(1));
    let fabric = TcpFabric::loopback(&[NodeId(0), NodeId(1)], epoch.clone(), Some(hook))?;
    let ch = fabric.alloc_channel();
    let mut rx = fabric.endpoint(NodeId(1))?.bind(ch, window)?;
    let mut tx = fabric.endpoint(NodeId(0))?.sender(NodeId(1), ch)?;

    let sender = std::thread::spawn(move || -> Result<()> {
        for i in 0..n {
            tx.send(&i.to_le_bytes())?;
        }
        tx.finish()
    });
    let mut got = Vec::new();
    loop {
        match rx.recv()? {
            Some(item) if item.kind == RxKind::Fin => break,
            Some(item) => {
                let bytes: [u8; 8] = item.payload.as_slice().try_into().map_err(|_| {
                    VhError::Internal(format!(
                        "chaos seed {seed:#x}: transport frame payload was torn \
                         ({} bytes reached the application)",
                        item.payload.len()
                    ))
                })?;
                got.push(u64::from_le_bytes(bytes));
            }
            None => break,
        }
    }
    sender.join().map_err(|_| {
        VhError::Internal(format!("chaos seed {seed:#x}: transport sender panicked"))
    })??;

    let want: Vec<u64> = (0..n).collect();
    if got != want {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: transport delivered {} of {n} frames \
             (loss, duplication or reorder survived the reliable stream)",
            got.len()
        )));
    }
    // Every scripted fault must have fired its full budget: the burst is
    // far larger than any budget, so anything unspent means the fabric
    // never consulted that site.
    for (f, budget) in faults.iter().zip(budgets) {
        if f.fired() != budget {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: {} fired {} of {budget} scripted faults",
                f.site(),
                f.fired()
            )));
        }
        report.fired[site_index(f.site())] += f.fired();
    }

    // An election bumps the cluster epoch; a peer that redials still
    // announcing the old epoch is exactly the zombie the handshake fences.
    epoch.set(2);
    let stale = fabric.dialer(NodeId(0), Arc::new(SharedEpoch::new(1)));
    let mut stale_tx = stale.sender(NodeId(1), ch)?;
    match stale_tx.send(b"stale epoch write") {
        Err(VhError::StaleMaster(_)) => {}
        Ok(()) => {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: stale-epoch dialer was accepted after \
                 the election"
            )))
        }
        Err(e) => {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: stale-epoch dialer failed with {e:?} \
                 instead of the fencing error"
            )))
        }
    }
    // A current-epoch peer still gets through (fresh stream: one live
    // sender per (from, to, channel)).
    let ch2 = fabric.alloc_channel();
    let mut rx2 = fabric.endpoint(NodeId(1))?.bind(ch2, 4)?;
    let fresh = fabric.dialer(NodeId(0), Arc::new(SharedEpoch::new(2)));
    let mut fresh_tx = fresh.sender(NodeId(1), ch2)?;
    fresh_tx.send(b"post-election")?;
    let first = rx2.recv()?.ok_or_else(|| {
        VhError::Internal(format!(
            "chaos seed {seed:#x}: post-election stream closed without data"
        ))
    })?;
    if first.payload != b"post-election" {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: post-election frame corrupted"
        )));
    }

    report.steps.push(format!(
        "transport: {n} frames exactly-once over tcp (window {window}) \
         through {disconnects} disconnects, {partials} torn frames, \
         {refusals} refused dials; stale-epoch redial fenced at epoch 2"
    ));
    Ok(())
}

/// Phase 7: a node dies while N concurrent wire clients are streaming
/// results through the SQL front door.
///
/// A [`Server`] fronts the engine; a seed-sized pack of closed-loop TCP
/// clients runs the Q1/Q6/Q12 mix. Once every client is warm (has at least
/// one completed query), a seed-chosen non-master worker is killed.
/// Invariants: **zero client-visible failures** (every in-flight casualty
/// is absorbed by `query_logical`'s pinned-budget retry loop), every
/// answer baseline-correct, every query served exactly once per the
/// engine's own [`server_stats`](VectorH::server_stats) probe, and zero
/// admission rejections — the gate is sized so a closed-loop pack can
/// never be refused, which keeps the report timing-independent.
fn phase_frontdoor(
    vh: &Arc<VectorH>,
    db: &BaselineDb,
    rng: &mut SplitMix64,
    report: &mut ScheduleReport,
) -> Result<()> {
    let seed = report.seed;
    let n_clients = 4 + rng.next_bounded(3) as usize;
    let per_client = 3usize;
    let master = vh.session_master();
    let pool: Vec<NodeId> = vh.workers().into_iter().filter(|w| *w != master).collect();
    let victim = pool[rng.next_bounded(pool.len() as u64) as usize];

    let server = Server::start(
        vh.clone(),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            admission: AdmissionConfig {
                max_concurrent: 16,
                max_queue: 32,
                queue_timeout_ms: 30_000,
                per_session_inflight: 4,
                seed,
            },
            batch_rows: 512,
        },
    )?;
    let before = vh.server_stats().totals();

    let mut baselines: Vec<Vec<Vec<Value>>> = Vec::new();
    for qn in FRONTDOOR_MIX {
        baselines.push(canonical(
            db.run_query(&build_query(qn)?, BaselineKind::RowStore)?,
        ));
    }
    let texts = frontdoor_mix_texts();
    let completed = AtomicUsize::new(0);
    let addr = server.addr();

    let mut failures: Vec<String> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..n_clients {
            let (completed, baselines, texts) = (&completed, &baselines, &texts);
            handles.push(s.spawn(move || -> std::result::Result<(), String> {
                let mut client =
                    Client::connect(addr).map_err(|e| format!("client {c} connect: {e}"))?;
                for i in 0..per_client {
                    let qi = (c + i) % texts.len();
                    let rows = client.query(texts[qi]).map_err(|e| {
                        format!("client {c} Q{}: visible failure {e}", FRONTDOOR_MIX[qi])
                    })?;
                    if canonical(rows) != baselines[qi] {
                        return Err(format!(
                            "client {c} Q{} diverged from baseline",
                            FRONTDOOR_MIX[qi]
                        ));
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                }
                Ok(())
            }));
        }
        // The drill: kill once every client is mid-run.
        while completed.load(Ordering::SeqCst) < n_clients {
            std::thread::yield_now();
        }
        let kill = vh.kill_node(victim);
        let mut failures: Vec<String> = handles
            .into_iter()
            .filter_map(|h| h.join().expect("client thread panicked").err())
            .collect();
        if let Err(e) = kill {
            failures.push(format!("kill {victim}: {e}"));
        }
        failures
    });
    failures.sort();
    if !failures.is_empty() {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: front door leaked failures to clients: {}",
            failures.join("; ")
        )));
    }
    if vh.workers().contains(&victim) {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: {victim} still in the worker set after kill"
        )));
    }

    let totals = vh.server_stats().totals();
    let served = totals.queries_served - before.queries_served;
    let rejected = totals.rejected_busy - before.rejected_busy;
    let want = (n_clients * per_client) as u64;
    if served != want {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: server_stats counted {served} served, \
             clients completed {want}"
        )));
    }
    if rejected != 0 {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: admission refused {rejected} queries from \
             a closed-loop pack the gate is sized for"
        )));
    }
    drop(server);
    report.steps.push(format!(
        "frontdoor: killed {victim} under {n_clients} streaming clients \
         (q1/q6/q12 × {per_client}); {want}/{want} served over the wire, \
         zero client-visible failures"
    ));
    Ok(())
}

/// Phase 8: HTAP soak — chunk-level background update propagation under a
/// sustained mixed workload, with crashes injected at the propagation WAL
/// protocol's own fault sites.
///
/// Runs on a *private* cluster (background propagation enabled via
/// `propagate_every`) so the shared cluster's health clock — which other
/// phases' fired counters depend on — stays untouched. The workload is an
/// exact-model soak: every trickle insert, key delete and update is
/// mirrored into a `BTreeMap`, and a full `SELECT k, v` scan must equal the
/// model at every reconcile point — across background propagation ticks, a
/// node kill, directed propagation crashes, and a crash fired from inside
/// the background tick itself (which must self-repair without failing the
/// DML call that drove the clock). TPC-H Q1/Q6/Q12 probes interleave as the
/// OLAP half. The phase closes with the two §6 byte-level invariants:
/// untouched chunks stay byte-identical on disk across a tail-append
/// propagation, and scans are byte-stable across the image swap.
fn phase_htap(db: &BaselineDb, rng: &mut SplitMix64, report: &mut ScheduleReport) -> Result<()> {
    let seed = report.seed;
    let propagate_every = 2 + rng.next_bounded(3); // a tick every 2–4 DML/query calls
    let chunks_per_tick = 2 + rng.next_bounded(3) as usize;
    let vh = VectorH::start(ClusterConfig {
        nodes: 4,
        rows_per_chunk: 64,
        hdfs_block_size: 32 * 1024,
        streams_per_node: 2,
        replication: 3,
        propagate_every,
        propagate_chunks_per_tick: chunks_per_tick,
        ..Default::default()
    })?;
    // Same generator parameters as the shared cluster, so the shared
    // row-store baseline answers this cluster's TPC-H probes too.
    vectorh_tpch::schema::setup(&vh, 0.001, 4, 20260807)?;
    vh.create_table(
        TableBuilder::new("htap_t")
            .column("k", DataType::I64)
            .column("v", DataType::I64)
            .partition_by(&["k"], 2),
    )?;

    // Seed a propagated stable image (96 rows ≈ 1½ chunks per partition):
    // the fraction-based propagation trigger needs stable rows to compare
    // against, and the crash injections need stable chunks to dirty.
    let mut model: BTreeMap<i64, i64> = BTreeMap::new();
    let mut next_k: i64 = 0;
    let seed_rows: Vec<Vec<Value>> = (0..96)
        .map(|_| {
            let k = next_k;
            next_k += 1;
            model.insert(k, k * 7);
            vec![Value::I64(k), Value::I64(k * 7)]
        })
        .collect();
    vh.trickle_insert("htap_t", seed_rows)?;
    vh.propagate_table("htap_t", true)?;

    let reconcile = |ctx: &str, model: &BTreeMap<i64, i64>| -> Result<Vec<Vec<Value>>> {
        let got = canonical(vh.query("SELECT k, v FROM htap_t")?);
        let want = canonical(
            model
                .iter()
                .map(|(k, v)| vec![Value::I64(*k), Value::I64(*v)])
                .collect(),
        );
        if got != want {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: htap_t diverged from the model {ctx} \
                 ({} vs {} rows)",
                got.len(),
                want.len()
            )));
        }
        Ok(got)
    };
    // Keys from the upper half of the model — deletes and soak updates stay
    // away from the minimum key, which the crash injections use as a probe
    // into a propagated (stable) chunk.
    let upper_key = |model: &BTreeMap<i64, i64>, rng: &mut SplitMix64| -> Option<i64> {
        if model.len() < 8 {
            return None;
        }
        let lo = model.len() / 2;
        let idx = lo + rng.next_bounded((model.len() - lo) as u64) as usize;
        model.keys().nth(idx).copied()
    };
    let key_eq = |k: i64| Expr::InList(Box::new(Expr::Col(0)), vec![Value::I64(k)]);

    // Directed crash: dirty a stable chunk (the minimum key was propagated
    // at seed time and is never deleted), then force propagation with a
    // one-shot crash armed at a seed-chosen protocol step. The crash must
    // fire, surface as an error, lose nothing, and leave the partition
    // retryable. `#append` is excluded: it is only reached when tail rows
    // overflow the rewritten last chunk, which the workload can't
    // guarantee at every injection point.
    const CRASH_STEPS: [&str; 6] = [
        "#begin",
        "#rewrite-begin:",
        "#rewrite-data:",
        "#rewritten:",
        "#checkpoint",
        "#gc",
    ];
    const CRASH_KINDS: [FaultAction; 3] = [
        FaultAction::CrashBefore,
        FaultAction::CrashMid,
        FaultAction::CrashAfter,
    ];
    let mut crash_log: Vec<String> = Vec::new();
    let mut fired_total = 0u64;
    let mut inject = |model: &mut BTreeMap<i64, i64>, rng: &mut SplitMix64| -> Result<()> {
        let probe = *model.keys().next().expect("model never empties");
        let bumped = model[&probe] + 1;
        if vh.update_where("htap_t", &key_eq(probe), 1, Value::I64(bumped))? != 1 {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: probe key {probe} not found for update"
            )));
        }
        model.insert(probe, bumped);
        let step = CRASH_STEPS[rng.next_bounded(CRASH_STEPS.len() as u64) as usize];
        let kind = CRASH_KINDS[rng.next_bounded(CRASH_KINDS.len() as u64) as usize];
        let fault = DirectedFault::matching(FaultSite::Propagation, kind, 1, step);
        vh.install_fault_hook(Some(fault.clone() as SharedFaultHook));
        let out = vh.propagate_table("htap_t", true);
        vh.install_fault_hook(None);
        if fault.fired() != 1 {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: propagation never reached crash point \
                 {step} (fired {})",
                fault.fired()
            )));
        }
        if out.is_ok() {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: crash at {step} [{kind:?}] did not \
                 surface from propagate_table"
            )));
        }
        fired_total += 1;
        // Nothing acknowledged may be lost, whether the crash landed before
        // or after the commit point — and a clean retry must go through.
        reconcile(&format!("after a propagation crash at {step}"), model)?;
        vh.propagate_table("htap_t", true)?;
        reconcile(&format!("after retrying past the {step} crash"), model)?;
        crash_log.push(format!("{step}[{kind:?}]"));
        Ok(())
    };

    // The soak: 64 seeded rounds of mixed DML + OLAP probes. DML and query
    // traffic advance the virtual health clock, so background propagation
    // runs *because of* this workload, not beside it.
    let mut dml_calls = 0u64;
    let mut victim = None;
    for round in 0..64u64 {
        match rng.next_bounded(8) {
            0..=4 => {
                let n = 2 + rng.next_bounded(4);
                let rows: Vec<Vec<Value>> = (0..n)
                    .map(|_| {
                        let k = next_k;
                        next_k += 1;
                        let v = k * 7 + round as i64;
                        model.insert(k, v);
                        vec![Value::I64(k), Value::I64(v)]
                    })
                    .collect();
                vh.trickle_insert("htap_t", rows)?;
                dml_calls += 1;
            }
            5 => {
                let keys: std::collections::BTreeSet<i64> =
                    (0..3).filter_map(|_| upper_key(&model, rng)).collect();
                if !keys.is_empty() {
                    let vals: Vec<Value> = keys.iter().map(|k| Value::I64(*k)).collect();
                    let deleted = vh.delete_by_keys("htap_t", 0, &vals)?;
                    if deleted != keys.len() as u64 {
                        return Err(VhError::Internal(format!(
                            "chaos seed {seed:#x}: deleted {deleted} of \
                             {} keys in round {round}",
                            keys.len()
                        )));
                    }
                    for k in keys {
                        model.remove(&k);
                    }
                    dml_calls += 1;
                }
            }
            6 => {
                if let Some(k) = upper_key(&model, rng) {
                    let nv = model[&k] + 13;
                    if vh.update_where("htap_t", &key_eq(k), 1, Value::I64(nv))? != 1 {
                        return Err(VhError::Internal(format!(
                            "chaos seed {seed:#x}: update of key {k} in round \
                             {round} touched the wrong row count"
                        )));
                    }
                    model.insert(k, nv);
                    dml_calls += 1;
                }
            }
            _ => {
                let qn = [1usize, 6, 12][rng.next_bounded(3) as usize];
                checked_query(&vh, db, qn, &format!("in htap round {round}"), seed)?;
            }
        }
        if round % 16 == 7 {
            reconcile(&format!("at the round-{round} checkpoint"), &model)?;
        }
        if round == 20 || round == 44 {
            inject(&mut model, rng)?;
        }
        if round == 31 {
            // Mid-soak node kill: takeover must keep both the OLTP and the
            // propagation machinery working on the survivors.
            let master = vh.session_master();
            let pool: Vec<NodeId> = vh.workers().into_iter().filter(|w| *w != master).collect();
            let v = pool[rng.next_bounded(pool.len() as u64) as usize];
            vh.kill_node(v)?;
            victim = Some(v);
            reconcile("after the mid-soak node kill", &model)?;
        }
    }

    // A propagation crash fired from *inside* the background tick: the DML
    // call that advanced the clock must still succeed — the tick repairs
    // the partition in place instead of poisoning the foreground.
    let bg = DirectedFault::matching(FaultSite::Propagation, FaultAction::CrashMid, 1, "#");
    vh.install_fault_hook(Some(bg.clone() as SharedFaultHook));
    for _ in 0..48 {
        if bg.fired() > 0 {
            break;
        }
        let rows: Vec<Vec<Value>> = (0..4)
            .map(|_| {
                let k = next_k;
                next_k += 1;
                model.insert(k, k * 7);
                vec![Value::I64(k), Value::I64(k * 7)]
            })
            .collect();
        vh.trickle_insert("htap_t", rows)?;
        dml_calls += 1;
    }
    vh.install_fault_hook(None);
    if bg.fired() != 1 {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: background propagation never ran into the \
             armed crash (fired {})",
            bg.fired()
        )));
    }
    fired_total += 1;
    reconcile("after the background-tick crash self-repaired", &model)?;

    // §6 byte-level invariants. Settle to a clean propagated image, freeze
    // every full chunk's bytes, then push tail-only inserts through another
    // propagation: the full chunks must be kept — same path, same bytes —
    // and a scan must be byte-stable across the image swap (the snapshot a
    // reader holds is never mutated, only superseded).
    vh.propagate_table("htap_t", true)?;
    let rt = vh.table("htap_t")?;
    let mut frozen: Vec<(String, Vec<u8>)> = Vec::new();
    for store in &rt.stores {
        let store = store.read();
        // The last chunk is fair game: a partial tail chunk absorbs
        // appended rows and is legitimately rewritten.
        for c in 0..store.n_chunks().saturating_sub(1) {
            let path = store.chunk_meta(c).path.clone();
            let bytes = vh.fs().read(&path, 0, 1 << 24, None)?;
            frozen.push((path, bytes));
        }
    }
    if frozen.is_empty() {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: soak left no full chunks to freeze — \
             workload too small to prove the keep path"
        )));
    }
    let before_stats = vh.propagation_stats().snapshot();
    let tail_rows: Vec<Vec<Value>> = (0..8)
        .map(|_| {
            let k = next_k;
            next_k += 1;
            model.insert(k, k * 7);
            vec![Value::I64(k), Value::I64(k * 7)]
        })
        .collect();
    vh.trickle_insert("htap_t", tail_rows)?;
    dml_calls += 1;
    let pre_swap = reconcile("before the tail-append propagation", &model)?;
    vh.propagate_table("htap_t", true)?;
    let post_swap = reconcile("after the tail-append propagation", &model)?;
    if pre_swap != post_swap {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: scan not byte-stable across the \
             propagation image swap"
        )));
    }
    for (path, bytes) in &frozen {
        let now = vh.fs().read(path, 0, 1 << 24, None)?;
        if &now != bytes {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: kept chunk {path} changed on disk \
                 across a tail-append propagation"
            )));
        }
    }
    let live: std::collections::BTreeSet<String> = rt
        .stores
        .iter()
        .flat_map(|s| {
            let s = s.read();
            (0..s.n_chunks())
                .map(|c| s.chunk_meta(c).path.clone())
                .collect::<Vec<_>>()
        })
        .collect();
    for (path, _) in &frozen {
        if !live.contains(path) {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: full chunk {path} was rewritten \
                 instead of kept across a tail-append propagation"
            )));
        }
    }

    // Counter reconciliation: the background plane must have actually run,
    // tail appends are a subset of runs, the directed + retry cycles
    // rewrote chunks, and exactly the one background crash self-repaired.
    let ps = vh.propagation_stats().snapshot();
    if ps.propagation_runs == 0
        || ps.tail_appends > ps.propagation_runs
        || ps.chunks_rewritten == 0
        || ps.crashes_recovered != 1
    {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: propagation counters off: {ps:?}"
        )));
    }
    if ps.tail_appends <= before_stats.tail_appends {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: tail-only inserts did not take the \
             append path ({} -> {})",
            before_stats.tail_appends, ps.tail_appends
        )));
    }
    report.fired[site_index(FaultSite::Propagation)] += fired_total;
    report.steps.push(format!(
        "htap: every={propagate_every} budget={chunks_per_tick}, 64 rounds, \
         {dml_calls} dml calls, {} live rows, killed {}, crashes [{}] + 1 \
         in-tick, stats runs={} tail={} kept={} rewritten={} recovered={}",
        model.len(),
        victim.expect("round 31 always kills"),
        crash_log.join(", "),
        ps.propagation_runs,
        ps.tail_appends,
        ps.chunks_kept,
        ps.chunks_rewritten,
        ps.crashes_recovered
    ));
    Ok(())
}
