//! The chaos schedule: one seed → one reproducible fault campaign.
//!
//! [`run_schedule`] builds a small TPC-H cluster and drives three phases,
//! each derived from the seed via [`SplitMix64`]:
//!
//! 1. **Faulty I/O queries** — a rate-based [`FaultPlan`] injects transient
//!    HDFS read errors, slow reads and exchange drop/duplicate/delay while
//!    TPC-H queries run; every answer must match the row-store baseline.
//! 2. **Transaction crash storm** — scripted [`DirectedFault`]s crash the
//!    WAL append and both 2PC phases across a shuffled sequence of
//!    distributed commits; recovery (with a transient replay fault of its
//!    own) must resurrect exactly the committed transactions, identically
//!    on every participant.
//! 3. **Mid-query node kill** — a watcher thread kills a worker once the
//!    query has read enough bytes; the query must still return
//!    baseline-correct rows, and a follow-up scan must be fully
//!    short-circuit local (zero remote reads).
//!
//! Every decision the harness itself makes (cluster size, query choice,
//! fault rates, txn script order, victim node) comes from the seed, and
//! every injected fault comes from set-deterministic hooks, so the
//! resulting [`ScheduleReport`] — steps and per-site fired counters — is
//! identical run-to-run. Failures embed the seed; rerun just that schedule
//! with `CHAOS_SEED=<seed>`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use vectorh::{ClusterConfig, VectorH};
use vectorh_common::fault::{FaultAction, FaultSite, SharedFaultHook};
use vectorh_common::rng::SplitMix64;
use vectorh_common::{NodeId, PartitionId, Result, VhError};
use vectorh_tpch::baseline::{canonical, BaselineDb, BaselineKind};
use vectorh_tpch::queries::{build_query, run_with};
use vectorh_txn::manager::{TransactionManager, TxnConfig};
use vectorh_txn::twophase::{CrashPoint, Outcome, TwoPhaseCoordinator};
use vectorh_txn::wal::{LogRecord, Wal};

use crate::plan::{site_index, DirectedFault, FaultPlan, N_SITES};

/// Seeds per default corpus (CI runs all of them).
pub const DEFAULT_CORPUS_LEN: usize = 16;

/// What one schedule did, in deterministic order. Two runs of the same
/// seed must produce byte-identical reports — the determinism test relies
/// on `Eq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleReport {
    pub seed: u64,
    /// Human-readable narration of each step taken.
    pub steps: Vec<String>,
    /// Faults fired per site, indexed like [`FaultSite::ALL`].
    pub fired: [u64; N_SITES],
}

/// The seed corpus: `CHAOS_SEED` (decimal or `0x`-hex) replays a single
/// schedule; otherwise a fixed [`DEFAULT_CORPUS_LEN`]-seed corpus runs.
pub fn corpus() -> Vec<u64> {
    corpus_from(std::env::var("CHAOS_SEED").ok().as_deref())
}

/// Testable core of [`corpus`].
pub fn corpus_from(env: Option<&str>) -> Vec<u64> {
    match env {
        Some(s) => {
            let s = s.trim();
            let seed = s
                .strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| s.parse::<u64>())
                .unwrap_or_else(|_| {
                    panic!("CHAOS_SEED must be a u64 (decimal or 0x-hex), got {s:?}")
                });
            vec![seed]
        }
        None => (0..DEFAULT_CORPUS_LEN as u64)
            .map(|i| 0x56EC_7040 + i)
            .collect(),
    }
}

/// Run one complete chaos schedule. `Err` means an engine invariant broke
/// (or the cluster failed to come up); the message embeds the seed.
pub fn run_schedule(seed: u64) -> Result<ScheduleReport> {
    let mut rng = SplitMix64::new(seed);
    let mut report = ScheduleReport {
        seed,
        steps: Vec::new(),
        fired: [0; N_SITES],
    };

    // Cluster shape: ≥4 nodes so replication 3 survives a node kill.
    let nodes = 4 + rng.next_bounded(2) as usize;
    let vh = VectorH::start(ClusterConfig {
        nodes,
        rows_per_chunk: 256,
        hdfs_block_size: 32 * 1024,
        streams_per_node: 2,
        replication: 3,
        ..Default::default()
    })?;
    let data = vectorh_tpch::schema::setup(&vh, 0.001, 4, 20260807)?;
    let db = BaselineDb::load(&data)?;
    report
        .steps
        .push(format!("cluster: {nodes} nodes, 4 partitions, sf 0.001"));

    phase_faulty_io(&vh, &db, &mut rng, &mut report)?;
    phase_txn_crashes(&vh, &mut rng, &mut report)?;
    phase_kill_node(&vh, &db, &mut rng, &mut report)?;
    Ok(report)
}

/// Run query `qn` on the engine and compare against the row-store
/// baseline; returns the row count.
fn checked_query(vh: &VectorH, db: &BaselineDb, qn: usize, ctx: &str, seed: u64) -> Result<usize> {
    let got = canonical(run_with(&build_query(qn)?, |p| vh.query_logical(p))?);
    let want = canonical(db.run_query(&build_query(qn)?, BaselineKind::RowStore)?);
    if got != want {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: Q{qn} diverged from row-store baseline {ctx} \
             ({} vs {} rows)",
            got.len(),
            want.len()
        )));
    }
    Ok(got.len())
}

/// Phase 1: queries under a rate-based I/O + exchange fault plan.
///
/// The plan's palettes are chosen so queries must still *succeed*: HDFS
/// errors are transient (cleared by the engine's bounded retry), slow reads
/// only add simulated latency, and exchange drop/duplicate/delay are
/// absorbed by the reliable-transport semantics (retransmit, receiver
/// dedup, bounded reorder).
fn phase_faulty_io(
    vh: &VectorH,
    db: &BaselineDb,
    rng: &mut SplitMix64,
    report: &mut ScheduleReport,
) -> Result<()> {
    let plan = std::sync::Arc::new(
        FaultPlan::new(rng.next_u64())
            .with_site(
                FaultSite::HdfsRead,
                40 + rng.next_bounded(120) as u16,
                &[FaultAction::TransientError, FaultAction::SlowRead],
            )
            .with_site(
                FaultSite::XchgSend,
                20 + rng.next_bounded(80) as u16,
                &[
                    FaultAction::Drop,
                    FaultAction::Duplicate,
                    FaultAction::Delay,
                ],
            ),
    );
    vh.install_fault_hook(Some(plan.clone() as SharedFaultHook));
    let mut pool = vec![1usize, 3, 5, 6, 10, 12, 14, 19];
    rng.shuffle(&mut pool);
    let result = (|| {
        for &qn in pool.iter().take(3) {
            let rows = checked_query(vh, db, qn, "under the I/O fault plan", report.seed)?;
            report
                .steps
                .push(format!("faulty-io Q{qn}: {rows} rows ok"));
        }
        Ok(())
    })();
    vh.install_fault_hook(None);
    result?;
    for (total, fired) in report.fired.iter_mut().zip(plan.fired_counts()) {
        *total += fired;
    }
    Ok(())
}

/// Phase 2: distributed commits under scripted crash faults, then a
/// simulated restart whose recovery must agree with the acknowledged
/// outcomes.
fn phase_txn_crashes(
    vh: &VectorH,
    rng: &mut SplitMix64,
    report: &mut ScheduleReport,
) -> Result<()> {
    let seed = report.seed;
    let fs = vh.fs().clone();
    let dir = format!("/chaos/{seed:016x}");
    let coord = TwoPhaseCoordinator::new(Wal::new(fs.clone(), format!("{dir}/global.wal"), None));
    let pa = PartitionId(9000);
    let pb = PartitionId(9001);
    let wa = Wal::new(fs.clone(), format!("{dir}/pa.wal"), None);
    let wb = Wal::new(fs.clone(), format!("{dir}/pb.wal"), None);

    // One transaction per scripted fault (plus clean controls), in
    // seed-shuffled order. Every crash-capable txn site appears.
    let mut script: Vec<Option<(FaultSite, FaultAction)>> = vec![
        None,
        Some((FaultSite::HdfsAppend, FaultAction::TransientError)),
        Some((FaultSite::WalAppend, FaultAction::CrashBefore)),
        Some((FaultSite::WalAppend, FaultAction::CrashMid)),
        Some((FaultSite::WalAppend, FaultAction::CrashAfter)),
        Some((FaultSite::TwoPhasePrepare, FaultAction::CrashBefore)),
        Some((FaultSite::TwoPhaseDecide, FaultAction::CrashBefore)),
        Some((FaultSite::TwoPhaseDecide, FaultAction::CrashAfter)),
        None,
    ];
    rng.shuffle(&mut script);

    let mut acked: Vec<u64> = Vec::new();
    let mut unresolved: Vec<u64> = Vec::new();
    for (i, fault) in script.iter().enumerate() {
        let txn_id = 100 + i as u64;
        let recs = |part: u64| {
            vec![
                LogRecord::TxnBegin { txn: txn_id },
                LogRecord::Insert {
                    txn: txn_id,
                    rid: 0,
                    tag: txn_id * 10 + part,
                    values: vec![vectorh_common::Value::I64(txn_id as i64)],
                },
            ]
        };
        let (ra, rb) = (recs(0), recs(1));
        let directed = fault.map(|(site, action)| DirectedFault::new(site, action, 1));
        vh.install_fault_hook(directed.clone().map(|d| d as SharedFaultHook));
        let out =
            coord.commit_distributed(txn_id, &[(pa, &wa, &ra), (pb, &wb, &rb)], CrashPoint::None);
        vh.install_fault_hook(None);
        if let Some(d) = &directed {
            report.fired[site_index(d.site())] += d.fired();
        }
        let label = match fault {
            Some((site, action)) => format!("{site}/{action:?}"),
            None => "clean".to_string(),
        };
        match out {
            Ok(Outcome::Committed) => {
                acked.push(txn_id);
                report
                    .steps
                    .push(format!("txn{txn_id} [{label}]: committed"));
            }
            Ok(Outcome::InDoubt) => {
                unresolved.push(txn_id);
                report
                    .steps
                    .push(format!("txn{txn_id} [{label}]: in doubt"));
            }
            Err(e) => {
                unresolved.push(txn_id);
                report
                    .steps
                    .push(format!("txn{txn_id} [{label}]: crashed ({e})"));
                // The "crashed" coordinator restarts: recovery repairs any
                // torn WAL tails before the logs are appended to again.
                for wal in [&wa, &wb, coord.global_wal()] {
                    wal.repair()?;
                }
            }
        }
    }

    // Simulated restart. The first recovery read itself suffers a
    // transient fault, which the WAL's retry loop must absorb.
    let replay_fault = DirectedFault::new(FaultSite::WalReplay, FaultAction::TransientError, 1);
    vh.install_fault_hook(Some(replay_fault.clone() as SharedFaultHook));
    let committed_a = coord.committed_txns_of(&wa)?;
    vh.install_fault_hook(None);
    report.fired[site_index(FaultSite::WalReplay)] += replay_fault.fired();
    let committed_b = coord.committed_txns_of(&wb)?;

    if committed_a != committed_b {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: 2PC atomicity violated — participants \
             recover different commit sets ({committed_a:?} vs {committed_b:?})"
        )));
    }
    for txn in &acked {
        if !committed_a.contains(txn) {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: acknowledged txn{txn} lost across recovery"
            )));
        }
    }
    for txn in &unresolved {
        // In-doubt resolution must follow the global WAL's decision.
        if committed_a.contains(txn) != coord.recover_decision(*txn)? {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: in-doubt txn{txn} resolved against the \
                 global decision"
            )));
        }
    }

    // Replay into a fresh manager: exactly one row per committed txn
    // becomes visible, nothing from uncommitted ones.
    let mgr = TransactionManager::new(TxnConfig::default());
    for (pid, wal) in [(pa, &wa), (pb, &wb)] {
        mgr.register_partition(pid, 0);
        for txn in &committed_a {
            mgr.replay(pid, &TwoPhaseCoordinator::records_of(wal, *txn)?)?;
        }
        let visible = mgr.visible_rows(pid)?;
        if visible != committed_a.len() as u64 {
            return Err(VhError::Internal(format!(
                "chaos seed {seed:#x}: replay of {pid} shows {visible} rows, \
                 expected {} (one per committed txn)",
                committed_a.len()
            )));
        }
    }
    report.steps.push(format!(
        "recovery: {} committed of {} attempted, replay verified on both partitions",
        committed_a.len(),
        script.len()
    ));
    Ok(())
}

/// Phase 3: kill a worker mid-query; the query must return baseline-correct
/// rows via failover, and a follow-up scan must be fully local again.
fn phase_kill_node(
    vh: &VectorH,
    db: &BaselineDb,
    rng: &mut SplitMix64,
    report: &mut ScheduleReport,
) -> Result<()> {
    let seed = report.seed;
    let master = vh.session_master();
    let pool: Vec<NodeId> = vh.workers().into_iter().filter(|w| *w != master).collect();
    let victim = pool[rng.next_bounded(pool.len() as u64) as usize];
    let qn = [3usize, 5, 10][rng.next_bounded(3) as usize];
    let q = build_query(qn)?;
    let want = canonical(db.run_query(&build_query(qn)?, BaselineKind::RowStore)?);
    let threshold = vh.fs().stats().snapshot().read_bytes() + 2048 + rng.next_bounded(16 * 1024);

    let done = AtomicBool::new(false);
    let (got, killed_mid) = std::thread::scope(|s| {
        let killer = s.spawn(|| {
            while !done.load(Ordering::Acquire) {
                if vh.fs().stats().snapshot().read_bytes() >= threshold {
                    return vh.kill_node(victim).is_ok();
                }
                std::thread::sleep(Duration::from_micros(100));
            }
            false
        });
        let got = run_with(&q, |p| vh.query_logical(p));
        done.store(true, Ordering::Release);
        (got, killer.join().unwrap_or(false))
    });
    let got = canonical(got?);
    if got != want {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: Q{qn} diverged from baseline across a \
             mid-query node kill ({} vs {} rows)",
            got.len(),
            want.len()
        )));
    }
    if !killed_mid {
        // Tiny queries can finish before the watcher crosses the read
        // threshold; the failover invariants below still apply.
        vh.kill_node(victim)?;
    }
    if vh.workers().contains(&victim) {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: {victim} still in the worker set after kill"
        )));
    }

    // Locality fully restored: a fresh scan does zero remote reads.
    let before = vh.fs().stats().snapshot();
    checked_query(vh, db, 6, "after the node kill", seed)?;
    let delta = vh.fs().stats().snapshot().since(&before);
    if delta.remote_read_bytes != 0 {
        return Err(VhError::Internal(format!(
            "chaos seed {seed:#x}: locality not restored after killing \
             {victim} — {} remote bytes read",
            delta.remote_read_bytes
        )));
    }
    report.steps.push(format!(
        "killed {victim} during Q{qn}; post-failure Q6 fully local"
    ));
    Ok(())
}
