//! Seeded chaos harness for the VectorH engine.
//!
//! The paper's robustness story (§3–§4 locality restoration after node
//! failure, §6 durability of trickle updates) is exercised here as
//! *reproducible* fault schedules: one `u64` seed determines every injected
//! fault — transient/slow HDFS I/O, dropped/duplicated/delayed exchange
//! buffers, WAL and 2PC crash points, and a mid-query node kill — and the
//! harness checks the engine's invariants after each phase:
//!
//! 1. Query answers under fault injection match the single-node row-engine
//!    baseline exactly.
//! 2. Acknowledged (committed) transactions survive crash + recovery; no
//!    uncommitted transaction's data is ever replayed.
//! 3. After a node kill, queries still answer correctly and scan locality
//!    is fully restored (zero remote reads).
//! 4. A responsible-node crash mid-commit is detected by the heartbeat
//!    monitor, takeover recovery resurrects exactly the durably committed
//!    transactions, and after rejoin the node's replica state and cluster
//!    locality converge back to the fault-free picture.
//! 5. A session-master kill mid-2PC is detected by the *background* health
//!    plane (ordinary query traffic — nothing drives ticks by hand), a new
//!    master is elected under a bumped, fenced epoch, the in-doubt
//!    transaction resolves exactly once, and a node that rejoins behind the
//!    bounded ship-log's truncation horizon converges via full-image
//!    bootstrap.
//! 6. The framed TCP transport delivers every message exactly once, in
//!    order, while scripted faults refuse dials, tear frames on the wire
//!    and drop connections mid-stream — and after an epoch bump, a peer
//!    redialling with the stale epoch is fenced at the handshake.
//! 7. Background chunk-level update propagation survives an HTAP soak: a
//!    seeded mixed workload reconciles against an exact model while
//!    propagation runs off the virtual health clock, crashes injected at
//!    every propagation WAL step recover losslessly (including from inside
//!    the background tick), untouched chunks stay byte-identical on disk,
//!    and scans are byte-stable across the image swap.
//!
//! `CHAOS_PHASES=io,txn` (any comma-separated subset of
//! [`harness::ALL_PHASES`]) runs only those phases — CI splits a schedule
//! across parallel jobs this way; per-phase RNGs keep each phase's
//! schedule identical regardless of the split.
//!
//! Determinism rests on the [`vectorh_common::fault`] contract: rate-based
//! plans ([`FaultPlan`]) decide purely from `(site, detail, attempt)`
//! coordinates, so the *set* of fired faults is identical run-to-run even
//! though subsystems are multi-threaded. Failures print the seed; replay a
//! red schedule with `CHAOS_SEED=<seed> cargo test -p vectorh-chaos`.

pub mod harness;
pub mod plan;

pub use harness::{
    corpus, corpus_from, enabled_phases, phases_from, run_schedule, run_schedule_with_phases,
    ScheduleReport, ALL_PHASES, DEFAULT_CORPUS_LEN,
};
pub use plan::{site_index, DirectedFault, DirectedSet, FaultPlan, N_SITES};
