//! Fault-plan hooks: the [`FaultHook`] implementations the harness installs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vectorh_common::fault::{mix_site, FaultAction, FaultHook, FaultSite};

/// Number of named injection sites (indexes into per-site arrays).
pub const N_SITES: usize = FaultSite::ALL.len();

/// Stable index of a site within [`FaultSite::ALL`].
pub fn site_index(site: FaultSite) -> usize {
    FaultSite::ALL
        .iter()
        .position(|s| *s == site)
        .expect("every FaultSite appears in FaultSite::ALL")
}

#[derive(Debug, Default, Clone)]
struct SiteCfg {
    rate_permille: u16,
    palette: Vec<FaultAction>,
}

/// A rate-based fault plan: at each configured site, a fault fires with the
/// given per-mille probability, with the action drawn from the site's
/// palette. Both decisions hash the call coordinates through
/// [`mix_site`], so the plan is a pure function of
/// `(site, detail, attempt)` — the fired-fault set cannot depend on thread
/// interleaving (set-determinism). The per-site counters are observational
/// only; they never feed back into decisions.
///
/// Error-class actions fire only at `attempt == 0`, which guarantees that
/// any subsystem with a bounded retry loop (SimHdfs reads/appends, WAL
/// replay) recovers internally: chaos queries must still produce
/// baseline-correct answers.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    sites: [SiteCfg; N_SITES],
    fired: [AtomicU64; N_SITES],
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            sites: Default::default(),
            fired: Default::default(),
        }
    }

    /// Arm `site` with a fire rate (0..=1000 per mille) and an action
    /// palette. Builder-style; unarmed sites never fire.
    pub fn with_site(
        mut self,
        site: FaultSite,
        rate_permille: u16,
        palette: &[FaultAction],
    ) -> FaultPlan {
        self.sites[site_index(site)] = SiteCfg {
            rate_permille: rate_permille.min(1000),
            palette: palette.to_vec(),
        };
        self
    }

    /// How many faults fired at `site` so far.
    pub fn fired(&self, site: FaultSite) -> u64 {
        self.fired[site_index(site)].load(Ordering::Relaxed)
    }

    /// Per-site fired counters, indexed like [`FaultSite::ALL`].
    pub fn fired_counts(&self) -> [u64; N_SITES] {
        std::array::from_fn(|i| self.fired[i].load(Ordering::Relaxed))
    }
}

impl FaultHook for FaultPlan {
    fn decide(&self, site: FaultSite, detail: &str, attempt: u32) -> FaultAction {
        let cfg = &self.sites[site_index(site)];
        if cfg.rate_permille == 0 || cfg.palette.is_empty() {
            return FaultAction::None;
        }
        let h = mix_site(self.seed, site, detail, attempt);
        if h % 1000 >= cfg.rate_permille as u64 {
            return FaultAction::None;
        }
        let action = cfg.palette[((h >> 32) as usize) % cfg.palette.len()];
        if attempt > 0 && action.is_error() {
            // Transient by construction: retries always clear.
            return FaultAction::None;
        }
        self.fired[site_index(site)].fetch_add(1, Ordering::Relaxed);
        action
    }
}

/// A scripted one-shot fault: fires `action` at `site` until the budget is
/// exhausted, then stays quiet. Unlike [`FaultPlan`] this hook *is*
/// stateful (the budget), so it is only installed around single-threaded
/// sequences — the harness's transaction phase — where consult order is
/// deterministic.
#[derive(Debug)]
pub struct DirectedFault {
    site: FaultSite,
    action: FaultAction,
    budget: AtomicU64,
    fired: AtomicU64,
    /// Optional detail filter: when set, the fault fires only at calls whose
    /// detail string contains this needle (e.g. `"txn7"` to hit one specific
    /// transaction's decide, or `"node2@"` to drop one node's heartbeats).
    needle: Option<String>,
}

impl DirectedFault {
    pub fn new(site: FaultSite, action: FaultAction, budget: u64) -> Arc<DirectedFault> {
        Arc::new(DirectedFault {
            site,
            action,
            budget: AtomicU64::new(budget),
            fired: AtomicU64::new(0),
            needle: None,
        })
    }

    /// A directed fault that fires only when the call's detail string
    /// contains `needle` — for aiming at one transaction, node or file
    /// instead of the first `budget` calls to reach the site.
    pub fn matching(
        site: FaultSite,
        action: FaultAction,
        budget: u64,
        needle: &str,
    ) -> Arc<DirectedFault> {
        Arc::new(DirectedFault {
            site,
            action,
            budget: AtomicU64::new(budget),
            fired: AtomicU64::new(0),
            needle: Some(needle.to_string()),
        })
    }

    pub fn site(&self) -> FaultSite {
        self.site
    }

    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }
}

/// Several [`DirectedFault`]s behind one hook: the first fault whose site
/// (and needle) matches claims the call. Subsystems that accept a single
/// hook — the transport fabric — get multi-site campaigns this way
/// (refused dials + torn frames + disconnects in one schedule).
#[derive(Debug)]
pub struct DirectedSet {
    faults: Vec<Arc<DirectedFault>>,
}

impl DirectedSet {
    pub fn new(faults: &[Arc<DirectedFault>]) -> Arc<DirectedSet> {
        Arc::new(DirectedSet {
            faults: faults.to_vec(),
        })
    }
}

impl FaultHook for DirectedSet {
    fn decide(&self, site: FaultSite, detail: &str, attempt: u32) -> FaultAction {
        for f in &self.faults {
            let action = f.decide(site, detail, attempt);
            if action != FaultAction::None {
                return action;
            }
        }
        FaultAction::None
    }
}

impl FaultHook for DirectedFault {
    fn decide(&self, site: FaultSite, detail: &str, _attempt: u32) -> FaultAction {
        if site != self.site {
            return FaultAction::None;
        }
        if let Some(n) = &self.needle {
            if !detail.contains(n.as_str()) {
                return FaultAction::None;
            }
        }
        let mut b = self.budget.load(Ordering::Relaxed);
        loop {
            if b == 0 {
                return FaultAction::None;
            }
            match self
                .budget
                .compare_exchange_weak(b, b - 1, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(cur) => b = cur,
            }
        }
        self.fired.fetch_add(1, Ordering::Relaxed);
        self.action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_pure_in_its_coordinates() {
        let mk = || {
            FaultPlan::new(7).with_site(
                FaultSite::HdfsRead,
                500,
                &[FaultAction::TransientError, FaultAction::SlowRead],
            )
        };
        let a = mk();
        let b = mk();
        for i in 0..200 {
            let d = format!("/t/p{}/c0", i % 9);
            assert_eq!(
                a.decide(FaultSite::HdfsRead, &d, 0),
                b.decide(FaultSite::HdfsRead, &d, 0)
            );
        }
        // Each instance saw every coordinate exactly once.
        assert_eq!(a.fired_counts(), b.fired_counts());
        // Re-asking the same coordinates gives the same answer.
        let c = mk();
        assert_eq!(
            c.decide(FaultSite::HdfsRead, "/t/p0/c0", 0),
            c.decide(FaultSite::HdfsRead, "/t/p0/c0", 0)
        );
    }

    #[test]
    fn unarmed_sites_never_fire() {
        let p = FaultPlan::new(3).with_site(FaultSite::XchgSend, 1000, &[FaultAction::Drop]);
        for i in 0..100 {
            assert_eq!(
                p.decide(FaultSite::HdfsRead, &format!("f{i}"), 0),
                FaultAction::None
            );
        }
        assert_eq!(p.fired(FaultSite::HdfsRead), 0);
        assert!(p.fired(FaultSite::XchgSend) == 0); // decide not called yet
        assert_eq!(
            p.decide(FaultSite::XchgSend, "x:w0->d1#1", 0),
            FaultAction::Drop
        );
        assert_eq!(p.fired(FaultSite::XchgSend), 1);
    }

    #[test]
    fn error_actions_clear_on_retry() {
        let p =
            FaultPlan::new(11).with_site(FaultSite::HdfsRead, 1000, &[FaultAction::TransientError]);
        assert_eq!(
            p.decide(FaultSite::HdfsRead, "/f", 0),
            FaultAction::TransientError
        );
        for attempt in 1..4 {
            assert_eq!(
                p.decide(FaultSite::HdfsRead, "/f", attempt),
                FaultAction::None
            );
        }
    }

    #[test]
    fn rate_roughly_honoured() {
        let p = FaultPlan::new(99).with_site(FaultSite::HdfsRead, 250, &[FaultAction::SlowRead]);
        let fired = (0..4000)
            .filter(|i| p.decide(FaultSite::HdfsRead, &format!("/f{i}"), 0) != FaultAction::None)
            .count();
        // 250‰ of 4000 = 1000 expected; allow generous slack.
        assert!(
            (700..1300).contains(&fired),
            "fired {fired} of 4000 at 250‰"
        );
    }

    #[test]
    fn directed_fault_respects_budget_and_site() {
        let d = DirectedFault::new(FaultSite::WalAppend, FaultAction::CrashMid, 2);
        assert_eq!(d.decide(FaultSite::HdfsRead, "x", 0), FaultAction::None);
        assert_eq!(
            d.decide(FaultSite::WalAppend, "a", 0),
            FaultAction::CrashMid
        );
        assert_eq!(
            d.decide(FaultSite::WalAppend, "b", 0),
            FaultAction::CrashMid
        );
        assert_eq!(d.decide(FaultSite::WalAppend, "c", 0), FaultAction::None);
        assert_eq!(d.fired(), 2);
    }

    #[test]
    fn directed_set_routes_to_the_matching_member() {
        let a = DirectedFault::new(FaultSite::Disconnect, FaultAction::TransientError, 1);
        let b = DirectedFault::new(FaultSite::ConnRefused, FaultAction::TransientError, 1);
        let set = DirectedSet::new(&[a.clone(), b.clone()]);
        assert_eq!(
            set.decide(FaultSite::ConnRefused, "0->1:c16", 0),
            FaultAction::TransientError
        );
        assert_eq!(
            set.decide(FaultSite::PartialFrame, "x", 0),
            FaultAction::None
        );
        assert_eq!(
            set.decide(FaultSite::Disconnect, "0->1:c16#3", 0),
            FaultAction::TransientError
        );
        // Budgets live in the members, shared with the caller's handles.
        assert_eq!((a.fired(), b.fired()), (1, 1));
        assert_eq!(
            set.decide(FaultSite::Disconnect, "0->1:c16#4", 0),
            FaultAction::None
        );
    }

    #[test]
    fn matching_fault_filters_on_detail() {
        let d = DirectedFault::matching(
            FaultSite::TwoPhaseDecide,
            FaultAction::CrashBefore,
            1,
            "txn7",
        );
        // Wrong site and non-matching details spend no budget.
        assert_eq!(d.decide(FaultSite::WalAppend, "txn7", 0), FaultAction::None);
        assert_eq!(
            d.decide(FaultSite::TwoPhaseDecide, "txn6", 0),
            FaultAction::None
        );
        assert_eq!(d.fired(), 0);
        // The aimed-at transaction takes the hit; the budget then protects
        // later matches.
        assert_eq!(
            d.decide(FaultSite::TwoPhaseDecide, "txn7", 0),
            FaultAction::CrashBefore
        );
        assert_eq!(
            d.decide(FaultSite::TwoPhaseDecide, "txn7", 0),
            FaultAction::None
        );
        assert_eq!(d.fired(), 1);
    }
}
