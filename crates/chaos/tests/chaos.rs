//! The chaos corpus: reproducible fault schedules over the full engine.
//!
//! Red runs print the failing seed; replay exactly that schedule with
//! `CHAOS_SEED=<seed> cargo test -p vectorh-chaos`.

use std::sync::atomic::{AtomicBool, Ordering};

use vectorh::{ClusterConfig, VectorH};
use vectorh_chaos::{
    corpus, corpus_from, enabled_phases, run_schedule, run_schedule_with_phases, ALL_PHASES,
    N_SITES,
};
use vectorh_common::fault::FaultSite;
use vectorh_tpch::baseline::{canonical, BaselineDb, BaselineKind};
use vectorh_tpch::queries::{build_query, run_with};

/// Every seed in the corpus must pass, and across the corpus every named
/// fault site must have fired at least once (coverage: no injection point
/// goes silently untested).
#[test]
fn seed_corpus_passes_and_covers_every_fault_site() {
    let seeds = corpus();
    let mut totals = [0u64; N_SITES];
    for &seed in &seeds {
        let report = run_schedule(seed).unwrap_or_else(|e| {
            panic!(
                "chaos schedule failed: {e}\n\
                 replay with: CHAOS_SEED={seed:#x} cargo test -p vectorh-chaos"
            )
        });
        for (total, fired) in totals.iter_mut().zip(report.fired) {
            *total += fired;
        }
    }
    // Coverage only holds over the full corpus with every phase enabled,
    // not a single replayed seed or a CI phase-split subset.
    if seeds.len() > 1 && enabled_phases().len() == ALL_PHASES.len() {
        for (i, site) in FaultSite::ALL.iter().enumerate() {
            assert!(
                totals[i] > 0,
                "fault site {site} never fired across the {}-seed corpus",
                seeds.len()
            );
        }
    }
}

/// Same seed → same schedule and same outcome, byte for byte.
#[test]
fn same_seed_same_schedule_and_outcome() {
    let seed = corpus()[0];
    let a =
        run_schedule(seed).unwrap_or_else(|e| panic!("first run of seed {seed:#x} failed: {e}"));
    let b =
        run_schedule(seed).unwrap_or_else(|e| panic!("second run of seed {seed:#x} failed: {e}"));
    assert_eq!(a, b, "seed {seed:#x} produced two different schedules");
}

#[test]
fn chaos_phases_env_selects_a_subset_in_execution_order() {
    assert_eq!(vectorh_chaos::phases_from(None), ALL_PHASES.to_vec());
    assert_eq!(
        vectorh_chaos::phases_from(Some("txn,io")),
        vec!["io", "txn"]
    );
    assert_eq!(vectorh_chaos::phases_from(Some(" rejoin ")), vec!["rejoin"]);
    assert_eq!(
        vectorh_chaos::phases_from(Some("master,kill")),
        vec!["kill", "master"]
    );
}

/// Election determinism across the whole corpus: replaying just the
/// `master` phase for every seed must reproduce the identical report —
/// including the epoch history (who won, at which epoch) and the
/// narration of detection timing. Elections must be a pure function of
/// the seed, never of wall-clock races.
#[test]
fn master_election_is_deterministic_across_the_corpus() {
    for seed in corpus_from(None) {
        let a = run_schedule_with_phases(seed, &["master"])
            .unwrap_or_else(|e| panic!("master phase failed for seed {seed:#x}: {e}"));
        let b = run_schedule_with_phases(seed, &["master"])
            .unwrap_or_else(|e| panic!("master phase replay failed for seed {seed:#x}: {e}"));
        assert_eq!(
            a, b,
            "seed {seed:#x}: two runs of the master phase diverged"
        );
        // The audit trail must show exactly one election on top of the
        // initial epoch, won by a node other than the initial master.
        assert_eq!(a.epochs.len(), 2, "seed {seed:#x}: epochs {:?}", a.epochs);
        assert_eq!(a.epochs[1].0, a.epochs[0].0 + 1);
        assert_ne!(a.epochs[0].1, a.epochs[1].1);
    }
}

#[test]
fn chaos_seed_env_selects_a_single_schedule() {
    assert_eq!(corpus_from(Some("42")), vec![42]);
    assert_eq!(corpus_from(Some("0x2A")), vec![0x2A]);
    assert_eq!(corpus_from(Some(" 7 ")), vec![7]);
    let default = corpus_from(None);
    assert_eq!(default.len(), vectorh_chaos::DEFAULT_CORPUS_LEN);
    assert!(default.windows(2).all(|w| w[0] != w[1]));
}

/// The headline acceptance scenario, standalone: a worker dies in the
/// middle of a distributed TPC-H join query. The query must return
/// baseline-verified results (no error, no hang), and afterwards scans
/// must again be fully short-circuit local.
#[test]
fn mid_query_node_kill_returns_correct_results_and_restores_locality() {
    let vh = VectorH::start(ClusterConfig {
        nodes: 4,
        rows_per_chunk: 256,
        hdfs_block_size: 32 * 1024,
        streams_per_node: 2,
        replication: 3,
        ..Default::default()
    })
    .unwrap();
    let data = vectorh_tpch::schema::setup(&vh, 0.002, 4, 20260807).unwrap();
    let db = BaselineDb::load(&data).unwrap();
    let victim = *vh
        .workers()
        .iter()
        .find(|w| **w != vh.session_master())
        .unwrap();

    // Q5: six-table join with repartitioning exchanges — plenty of reads
    // for the kill to land mid-flight.
    let q = build_query(5).unwrap();
    let want = canonical(
        db.run_query(&build_query(5).unwrap(), BaselineKind::RowStore)
            .unwrap(),
    );
    let threshold = vh.fs().stats().snapshot().read_bytes() + 1024;
    let done = AtomicBool::new(false);
    let (got, killed) = std::thread::scope(|s| {
        let killer = s.spawn(|| {
            while !done.load(Ordering::Acquire) {
                if vh.fs().stats().snapshot().read_bytes() >= threshold {
                    return vh.kill_node(victim).is_ok();
                }
                std::thread::yield_now();
            }
            false
        });
        let got = run_with(&q, |p| vh.query_logical(p));
        done.store(true, Ordering::Release);
        (got, killer.join().unwrap())
    });
    let got = canonical(got.expect("query must fail over, not error out"));
    assert_eq!(got, want, "Q5 answer diverged across the node kill");
    if !killed {
        vh.kill_node(victim).unwrap();
    }
    assert!(!vh.workers().contains(&victim));

    // Post-failure locality: re-replication + responsibility remap must
    // make table I/O fully local again.
    let before = vh.fs().stats().snapshot();
    let q6 = build_query(6).unwrap();
    let got6 = canonical(run_with(&q6, |p| vh.query_logical(p)).unwrap());
    let want6 = canonical(
        db.run_query(&build_query(6).unwrap(), BaselineKind::RowStore)
            .unwrap(),
    );
    assert_eq!(got6, want6);
    let delta = vh.fs().stats().snapshot().since(&before);
    assert_eq!(
        delta.remote_read_bytes, 0,
        "scans after failover must be fully short-circuited"
    );
    assert!(delta.local_read_bytes > 0);
}
