//! Two-phase commit between the session master and responsible nodes (§6).
//!
//! "VectorH introduces 2PC to ensure ACID properties for distributed
//! transactions, where a much-reduced global WAL is written to by the
//! session-master." The decision record in the global WAL is the commit
//! point: any worker can read it (HDFS is a shared filesystem), which is
//! also why "the role of session-master can be taken over by any other
//! worker in case of session-master failure". Crash points are injectable
//! so recovery semantics are testable: a transaction is committed iff its
//! `GlobalCommit` record reached the global WAL.

use vectorh_common::fault::{FaultAction, FaultSite};
use vectorh_common::{PartitionId, Result};

use crate::wal::{LogRecord, Wal};

/// Injectable crash points for failure testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    None,
    /// Coordinator dies after participants prepared, before the decision.
    AfterPrepare,
    /// Coordinator dies after logging the decision, before participant
    /// commit records.
    AfterGlobalCommit,
}

/// 2PC outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    Committed,
    /// Coordinator crashed; resolution deferred to recovery.
    InDoubt,
}

/// The session-master side of 2PC.
pub struct TwoPhaseCoordinator {
    global_wal: Wal,
}

impl TwoPhaseCoordinator {
    pub fn new(global_wal: Wal) -> TwoPhaseCoordinator {
        TwoPhaseCoordinator { global_wal }
    }

    pub fn global_wal(&self) -> &Wal {
        &self.global_wal
    }

    /// Run 2PC for `txn_id` across the participants' partition WALs.
    /// `records` holds each participant's already-resolved update records
    /// (from [`crate::manager::TransactionManager::commit`]'s persist hook).
    ///
    /// Besides the explicit `crash` parameter (kept for directed tests),
    /// the global WAL's fault hook is consulted at
    /// [`FaultSite::TwoPhasePrepare`] (per participant) and
    /// [`FaultSite::TwoPhaseDecide`]: any fault there stops the protocol at
    /// that point and reports `InDoubt`, exactly as a coordinator crash
    /// would. The commit point stays the `GlobalCommit` record — a
    /// `CrashAfter`/`CrashMid` at the decide site still durably logs it, so
    /// recovery resolves the transaction to committed.
    pub fn commit_distributed(
        &self,
        txn_id: u64,
        participants: &[(PartitionId, &Wal, &[LogRecord])],
        crash: CrashPoint,
    ) -> Result<Outcome> {
        let hook = self.global_wal.fs().fault_hook();
        // Phase 1: participants persist their updates + Prepare vote.
        for (pid, wal, recs) in participants {
            if let Some(h) = &hook {
                let detail = format!("txn{txn_id}:{pid:?}");
                if h.decide(FaultSite::TwoPhasePrepare, &detail, 0).is_error() {
                    // Coordinator dies before this participant prepares.
                    return Ok(Outcome::InDoubt);
                }
            }
            let mut batch = recs.to_vec();
            batch.push(LogRecord::Prepare { txn: txn_id });
            wal.append(&batch)?;
        }
        if crash == CrashPoint::AfterPrepare {
            return Ok(Outcome::InDoubt);
        }
        // Commit point: the decision in the global WAL.
        let decide_fault = hook
            .as_ref()
            .map(|h| h.decide(FaultSite::TwoPhaseDecide, &format!("txn{txn_id}"), 0))
            .unwrap_or(FaultAction::None);
        match decide_fault {
            FaultAction::CrashBefore
            | FaultAction::TransientError
            | FaultAction::PermanentError
            | FaultAction::Drop => {
                // Died before the decision reached the global WAL.
                return Ok(Outcome::InDoubt);
            }
            _ => {}
        }
        self.global_wal
            .append(&[LogRecord::GlobalCommit { txn: txn_id }])?;
        if matches!(
            decide_fault,
            FaultAction::CrashMid | FaultAction::CrashAfter
        ) {
            // Decision is durable but the coordinator died before phase 2.
            return Ok(Outcome::InDoubt);
        }
        if crash == CrashPoint::AfterGlobalCommit {
            return Ok(Outcome::InDoubt);
        }
        // Phase 2: participants acknowledge locally.
        for (_, wal, _) in participants {
            wal.append(&[LogRecord::Commit {
                txn: txn_id,
                seq: 0,
            }])?;
        }
        Ok(Outcome::Committed)
    }

    /// Recovery: resolve an in-doubt transaction by consulting the global
    /// WAL (readable by any worker).
    pub fn recover_decision(&self, txn_id: u64) -> Result<bool> {
        let records = self.global_wal.read_all()?;
        Ok(records
            .iter()
            .any(|r| matches!(r, LogRecord::GlobalCommit { txn } if *txn == txn_id)))
    }

    /// Participant-side recovery: which of the partition WAL's transactions
    /// must be replayed? Committed = local Commit record OR (Prepare present
    /// AND global decision present).
    pub fn committed_txns_of(&self, partition_wal: &Wal) -> Result<Vec<u64>> {
        let records = partition_wal.read_all()?;
        let mut committed = Vec::new();
        let mut prepared = Vec::new();
        for r in &records {
            match r {
                LogRecord::Commit { txn, .. } => committed.push(*txn),
                LogRecord::Prepare { txn } => prepared.push(*txn),
                _ => {}
            }
        }
        for txn in prepared {
            if !committed.contains(&txn) && self.recover_decision(txn)? {
                committed.push(txn);
            }
        }
        committed.sort_unstable();
        committed.dedup();
        Ok(committed)
    }

    /// Extract the replayable update records of a committed txn from a
    /// partition WAL, in order.
    pub fn records_of(partition_wal: &Wal, txn_id: u64) -> Result<Vec<LogRecord>> {
        let all = partition_wal.read_all()?;
        Ok(all
            .into_iter()
            .filter(|r| match r {
                LogRecord::Insert { txn, .. }
                | LogRecord::Delete { txn, .. }
                | LogRecord::Modify { txn, .. }
                | LogRecord::Append { txn, .. } => *txn == txn_id,
                _ => false,
            })
            .collect())
    }
}

/// Log shipping for replicated tables (§6): all workers keep replicated
/// PDTs in RAM, so commits broadcast the same on-disk-format log actions to
/// every worker. The simulation counts shipped bytes; receivers apply the
/// records through the ordinary replay path ("allowing reuse of existing
/// code and the testing infrastructure").
#[derive(Debug, Default)]
pub struct LogShipper {
    shipped_bytes: std::sync::atomic::AtomicU64,
    shipped_batches: std::sync::atomic::AtomicU64,
}

impl LogShipper {
    /// Ship `records` to `n_receivers` workers; returns the encoded size.
    pub fn broadcast(&self, records: &[LogRecord], n_receivers: usize) -> u64 {
        // Same format as the on-disk log: measure via a scratch WAL frame.
        let mut size = 0u64;
        for r in records {
            // Reuse the WAL encoding through a temporary buffer.
            let mut buf = Vec::new();
            crate::wal::encode_for_shipping(r, &mut buf);
            size += buf.len() as u64;
        }
        let total = size * n_receivers as u64;
        self.shipped_bytes
            .fetch_add(total, std::sync::atomic::Ordering::Relaxed);
        self.shipped_batches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        total
    }

    pub fn shipped_bytes(&self) -> u64 {
        self.shipped_bytes
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    pub fn shipped_batches(&self) -> u64 {
        self.shipped_batches
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vectorh_common::Value;
    use vectorh_simhdfs::{DefaultPolicy, SimHdfs, SimHdfsConfig};

    fn fs() -> SimHdfs {
        SimHdfs::new(
            3,
            SimHdfsConfig {
                block_size: 256,
                default_replication: 2,
            },
            Arc::new(DefaultPolicy::new(3)),
        )
    }

    fn setup() -> (TwoPhaseCoordinator, Wal, Wal) {
        let fs = fs();
        let coord = TwoPhaseCoordinator::new(Wal::new(fs.clone(), "/wal/global.wal", None));
        let w0 = Wal::new(fs.clone(), "/wal/p0.wal", None);
        let w1 = Wal::new(fs, "/wal/p1.wal", None);
        (coord, w0, w1)
    }

    fn recs(txn: u64) -> Vec<LogRecord> {
        vec![
            LogRecord::TxnBegin { txn },
            LogRecord::Insert {
                txn,
                rid: 0,
                tag: 1,
                values: vec![Value::I64(1)],
            },
        ]
    }

    #[test]
    fn clean_commit_everywhere() {
        let (coord, w0, w1) = setup();
        let r = recs(1);
        let out = coord
            .commit_distributed(
                1,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::None,
            )
            .unwrap();
        assert_eq!(out, Outcome::Committed);
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), vec![1]);
        assert_eq!(coord.committed_txns_of(&w1).unwrap(), vec![1]);
        assert!(coord.recover_decision(1).unwrap());
    }

    #[test]
    fn crash_after_prepare_resolves_to_abort() {
        let (coord, w0, w1) = setup();
        let r = recs(2);
        let out = coord
            .commit_distributed(
                2,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::AfterPrepare,
            )
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        // No global decision: recovery must NOT replay txn 2.
        assert!(!coord.recover_decision(2).unwrap());
        assert!(coord.committed_txns_of(&w0).unwrap().is_empty());
    }

    #[test]
    fn crash_after_global_commit_resolves_to_commit() {
        let (coord, w0, w1) = setup();
        let r = recs(3);
        let out = coord
            .commit_distributed(
                3,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::AfterGlobalCommit,
            )
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        // Decision exists: both participants resolve to commit on recovery.
        assert!(coord.recover_decision(3).unwrap());
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), vec![3]);
        assert_eq!(coord.committed_txns_of(&w1).unwrap(), vec![3]);
        // And the replayable records are recoverable.
        let replay = TwoPhaseCoordinator::records_of(&w0, 3).unwrap();
        assert_eq!(replay.len(), 1);
        assert!(matches!(replay[0], LogRecord::Insert { .. }));
    }

    #[test]
    fn mixed_history_resolves_per_txn() {
        let (coord, w0, _) = setup();
        let r1 = recs(10);
        let r2 = recs(11);
        coord
            .commit_distributed(10, &[(PartitionId(0), &w0, &r1)], CrashPoint::None)
            .unwrap();
        coord
            .commit_distributed(11, &[(PartitionId(0), &w0, &r2)], CrashPoint::AfterPrepare)
            .unwrap();
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), vec![10]);
    }

    /// Fires `action` once at `site`, then clears (crash-and-restart).
    #[derive(Debug)]
    struct OneShot {
        site: vectorh_common::fault::FaultSite,
        action: vectorh_common::fault::FaultAction,
        fired: std::sync::atomic::AtomicBool,
    }

    impl vectorh_common::fault::FaultHook for OneShot {
        fn decide(
            &self,
            site: vectorh_common::fault::FaultSite,
            _detail: &str,
            _attempt: u32,
        ) -> vectorh_common::fault::FaultAction {
            if site == self.site && !self.fired.swap(true, std::sync::atomic::Ordering::SeqCst) {
                self.action
            } else {
                vectorh_common::fault::FaultAction::None
            }
        }
    }

    fn arm(coord: &TwoPhaseCoordinator, site: FaultSite, action: FaultAction) {
        coord
            .global_wal()
            .fs()
            .set_fault_hook(Some(Arc::new(OneShot {
                site,
                action,
                fired: Default::default(),
            })));
    }

    #[test]
    fn prepare_fault_aborts_without_global_decision() {
        let (coord, w0, w1) = setup();
        let r = recs(20);
        arm(&coord, FaultSite::TwoPhasePrepare, FaultAction::CrashBefore);
        let out = coord
            .commit_distributed(
                20,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::None,
            )
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        // No decision reached the global WAL: recovery resolves to abort.
        assert!(!coord.recover_decision(20).unwrap());
        assert!(coord.committed_txns_of(&w0).unwrap().is_empty());
        assert!(coord.committed_txns_of(&w1).unwrap().is_empty());
    }

    #[test]
    fn decide_crash_before_leaves_no_decision() {
        let (coord, w0, _) = setup();
        let r = recs(21);
        arm(&coord, FaultSite::TwoPhaseDecide, FaultAction::CrashBefore);
        let out = coord
            .commit_distributed(21, &[(PartitionId(0), &w0, &r)], CrashPoint::None)
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        assert!(!coord.recover_decision(21).unwrap());
        assert!(coord.committed_txns_of(&w0).unwrap().is_empty());
    }

    #[test]
    fn decide_crash_after_has_durable_decision() {
        let (coord, w0, w1) = setup();
        let r = recs(22);
        arm(&coord, FaultSite::TwoPhaseDecide, FaultAction::CrashAfter);
        let out = coord
            .commit_distributed(
                22,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::None,
            )
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        // GlobalCommit is the commit point: both participants recover to
        // committed even though phase 2 never ran.
        assert!(coord.recover_decision(22).unwrap());
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), vec![22]);
        assert_eq!(coord.committed_txns_of(&w1).unwrap(), vec![22]);
    }

    #[test]
    fn log_shipping_counts_bytes() {
        let shipper = LogShipper::default();
        let r = recs(5);
        let shipped = shipper.broadcast(&r, 3);
        assert!(shipped > 0);
        assert_eq!(shipper.shipped_bytes(), shipped);
        assert_eq!(shipper.shipped_batches(), 1);
        shipper.broadcast(&r, 3);
        assert_eq!(shipper.shipped_batches(), 2);
        assert_eq!(shipper.shipped_bytes(), 2 * shipped);
    }
}
