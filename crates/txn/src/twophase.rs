//! Two-phase commit between the session master and responsible nodes (§6).
//!
//! "VectorH introduces 2PC to ensure ACID properties for distributed
//! transactions, where a much-reduced global WAL is written to by the
//! session-master." The decision record in the global WAL is the commit
//! point: any worker can read it (HDFS is a shared filesystem), which is
//! also why "the role of session-master can be taken over by any other
//! worker in case of session-master failure". Crash points are injectable
//! so recovery semantics are testable: a transaction is committed iff its
//! `GlobalCommit` record reached the global WAL.

use std::sync::atomic::{AtomicU64, Ordering};

use vectorh_common::fault::{FaultAction, FaultSite};
use vectorh_common::{NodeId, PartitionId, Result, VhError};

use crate::wal::{LogRecord, Wal};

/// Injectable crash points for failure testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    None,
    /// Coordinator dies after participants prepared, before the decision.
    AfterPrepare,
    /// Coordinator dies after logging the decision, before participant
    /// commit records.
    AfterGlobalCommit,
}

/// 2PC outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    Committed,
    /// Coordinator crashed; resolution deferred to recovery.
    InDoubt,
}

/// The session-master side of 2PC.
///
/// The coordinator is fenced by a *master epoch*: every commit presents the
/// epoch its sender believes is current, and the commit point rejects any
/// epoch older than the installed one with [`VhError::StaleMaster`]. An
/// election ([`install_epoch`](Self::install_epoch)) bumps the epoch
/// monotonically, so a deposed master that was only falsely declared dead
/// can never decide a transaction after its successor took over.
pub struct TwoPhaseCoordinator {
    global_wal: Wal,
    /// The current master epoch. Starts at 1; elections only raise it.
    epoch: AtomicU64,
}

impl TwoPhaseCoordinator {
    pub fn new(global_wal: Wal) -> TwoPhaseCoordinator {
        TwoPhaseCoordinator {
            global_wal,
            epoch: AtomicU64::new(1),
        }
    }

    pub fn global_wal(&self) -> &Wal {
        &self.global_wal
    }

    /// The currently installed master epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Install the epoch of a newly elected master. Monotonic (`fetch_max`):
    /// a racing stale installer can never roll the epoch back. Returns the
    /// epoch in force afterwards.
    pub fn install_epoch(&self, epoch: u64) -> u64 {
        self.epoch.fetch_max(epoch, Ordering::SeqCst).max(epoch)
    }

    /// Fencing check: `Err(StaleMaster)` iff `epoch` is older than the
    /// installed one.
    pub fn check_epoch(&self, epoch: u64) -> Result<()> {
        let current = self.epoch();
        if epoch < current {
            return Err(VhError::StaleMaster(format!(
                "commit at master epoch {epoch} rejected: epoch {current} is in force"
            )));
        }
        Ok(())
    }

    /// The 2PC commit point, fenced and fault-injectable: verify `epoch` is
    /// still current, consult [`FaultSite::TwoPhaseDecide`], then append the
    /// `GlobalCommit` decision to the global WAL. `Ok(Committed)` means the
    /// coordinator survived to run phase 2; `Ok(InDoubt)` means it "died" —
    /// before the decision (no record, presumed abort on recovery) or after
    /// (decision durable, recovery commits).
    pub fn decide(&self, epoch: u64, txn_id: u64) -> Result<Outcome> {
        self.check_epoch(epoch)?;
        let fault = self
            .global_wal
            .fs()
            .fault_hook()
            .map(|h| h.decide(FaultSite::TwoPhaseDecide, &format!("txn{txn_id}"), 0))
            .unwrap_or(FaultAction::None);
        match fault {
            FaultAction::CrashBefore
            | FaultAction::TransientError
            | FaultAction::PermanentError
            | FaultAction::Drop => {
                // Died before the decision reached the global WAL.
                return Ok(Outcome::InDoubt);
            }
            _ => {}
        }
        self.global_wal
            .append(&[LogRecord::GlobalCommit { txn: txn_id }])?;
        if matches!(fault, FaultAction::CrashMid | FaultAction::CrashAfter) {
            // Decision is durable but the coordinator died before phase 2.
            return Ok(Outcome::InDoubt);
        }
        Ok(Outcome::Committed)
    }

    /// Run 2PC for `txn_id` across the participants' partition WALs.
    /// `records` holds each participant's already-resolved update records
    /// (from [`crate::manager::TransactionManager::commit`]'s persist hook).
    ///
    /// Besides the explicit `crash` parameter (kept for directed tests),
    /// the global WAL's fault hook is consulted at
    /// [`FaultSite::TwoPhasePrepare`] (per participant) and
    /// [`FaultSite::TwoPhaseDecide`]: any fault there stops the protocol at
    /// that point and reports `InDoubt`, exactly as a coordinator crash
    /// would. The commit point stays the `GlobalCommit` record — a
    /// `CrashAfter`/`CrashMid` at the decide site still durably logs it, so
    /// recovery resolves the transaction to committed.
    pub fn commit_distributed(
        &self,
        txn_id: u64,
        participants: &[(PartitionId, &Wal, &[LogRecord])],
        crash: CrashPoint,
    ) -> Result<Outcome> {
        self.commit_at_epoch(self.epoch(), txn_id, participants, crash)
    }

    /// [`commit_distributed`](Self::commit_distributed) with the sender's
    /// believed master epoch made explicit. Fenced twice: at entry and again
    /// at the commit point ([`decide`](Self::decide)) — an election between
    /// the two leaves at most prepared participants behind, which the new
    /// master resolves to presumed abort (no decision record exists).
    pub fn commit_at_epoch(
        &self,
        epoch: u64,
        txn_id: u64,
        participants: &[(PartitionId, &Wal, &[LogRecord])],
        crash: CrashPoint,
    ) -> Result<Outcome> {
        self.check_epoch(epoch)?;
        let hook = self.global_wal.fs().fault_hook();
        // Phase 1: participants persist their updates + Prepare vote.
        for (pid, wal, recs) in participants {
            if let Some(h) = &hook {
                let detail = format!("txn{txn_id}:{pid:?}");
                if h.decide(FaultSite::TwoPhasePrepare, &detail, 0).is_error() {
                    // Coordinator dies before this participant prepares.
                    return Ok(Outcome::InDoubt);
                }
            }
            let mut batch = recs.to_vec();
            batch.push(LogRecord::Prepare { txn: txn_id });
            wal.append(&batch)?;
        }
        if crash == CrashPoint::AfterPrepare {
            return Ok(Outcome::InDoubt);
        }
        // Commit point: the fenced decision in the global WAL.
        match self.decide(epoch, txn_id)? {
            Outcome::InDoubt => return Ok(Outcome::InDoubt),
            Outcome::Committed => {}
        }
        if crash == CrashPoint::AfterGlobalCommit {
            return Ok(Outcome::InDoubt);
        }
        // Phase 2: participants acknowledge locally.
        for (_, wal, _) in participants {
            wal.append(&[LogRecord::Commit {
                txn: txn_id,
                seq: 0,
            }])?;
        }
        Ok(Outcome::Committed)
    }

    /// Recovery: resolve an in-doubt transaction by consulting the global
    /// WAL (readable by any worker).
    pub fn recover_decision(&self, txn_id: u64) -> Result<bool> {
        let records = self.global_wal.read_all()?;
        Ok(records
            .iter()
            .any(|r| matches!(r, LogRecord::GlobalCommit { txn } if *txn == txn_id)))
    }

    /// Participant-side recovery: which of the partition WAL's transactions
    /// must be replayed? Committed = local Commit record OR (Prepare present
    /// AND global decision present).
    pub fn committed_txns_of(&self, partition_wal: &Wal) -> Result<Vec<u64>> {
        let records = partition_wal.read_all()?;
        let mut committed = Vec::new();
        let mut prepared = Vec::new();
        for r in &records {
            match r {
                LogRecord::Commit { txn, .. } => committed.push(*txn),
                LogRecord::Prepare { txn } => prepared.push(*txn),
                _ => {}
            }
        }
        for txn in prepared {
            if !committed.contains(&txn) && self.recover_decision(txn)? {
                committed.push(txn);
            }
        }
        committed.sort_unstable();
        committed.dedup();
        Ok(committed)
    }

    /// Participant-side recovery, with the full per-transaction verdicts:
    /// every transaction that left a trace in the partition WAL, in log
    /// order, with how recovery resolves it. `committed_txns_of` is the
    /// committed-only projection of this.
    pub fn recoverable_txns(&self, partition_wal: &Wal) -> Result<Vec<RecoverableTxn>> {
        let records = partition_wal.read_all()?;
        let mut order: Vec<u64> = Vec::new();
        let mut committed = std::collections::BTreeSet::new();
        let mut prepared = std::collections::BTreeSet::new();
        let mut aborted = std::collections::BTreeSet::new();
        let seen = |order: &mut Vec<u64>, txn: u64| {
            if !order.contains(&txn) {
                order.push(txn);
            }
        };
        for r in &records {
            match r {
                LogRecord::TxnBegin { txn }
                | LogRecord::Insert { txn, .. }
                | LogRecord::Delete { txn, .. }
                | LogRecord::Modify { txn, .. }
                | LogRecord::Append { txn, .. } => seen(&mut order, *txn),
                LogRecord::Commit { txn, .. } => {
                    seen(&mut order, *txn);
                    committed.insert(*txn);
                }
                LogRecord::Prepare { txn } => {
                    seen(&mut order, *txn);
                    prepared.insert(*txn);
                }
                LogRecord::Abort { txn } => {
                    seen(&mut order, *txn);
                    aborted.insert(*txn);
                }
                _ => {}
            }
        }
        let mut out = Vec::with_capacity(order.len());
        for txn in order {
            let resolution = if committed.contains(&txn) {
                TxnResolution::CommittedLocally
            } else if aborted.contains(&txn) {
                TxnResolution::Aborted
            } else if prepared.contains(&txn) && self.recover_decision(txn)? {
                TxnResolution::CommittedByDecision
            } else {
                // Prepared without a global decision, or never even
                // prepared: presumed abort.
                TxnResolution::Aborted
            };
            out.push(RecoverableTxn { txn, resolution });
        }
        Ok(out)
    }

    /// Transactions in a partition WAL that prepared but never received a
    /// durable local verdict (no `Commit`, no `Abort`), paired with whether
    /// the global WAL holds their decision. These are exactly the
    /// transactions a newly elected master must finish: append the phase-2
    /// `Commit` where the decision exists, an explicit `Abort` otherwise.
    pub fn in_doubt_txns_of(&self, partition_wal: &Wal) -> Result<Vec<(u64, bool)>> {
        let records = partition_wal.read_all()?;
        let mut prepared: Vec<u64> = Vec::new();
        let mut settled = std::collections::BTreeSet::new();
        for r in &records {
            match r {
                LogRecord::Prepare { txn } if !prepared.contains(txn) => prepared.push(*txn),
                LogRecord::Commit { txn, .. } | LogRecord::Abort { txn } => {
                    settled.insert(*txn);
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        for txn in prepared {
            if !settled.contains(&txn) {
                out.push((txn, self.recover_decision(txn)?));
            }
        }
        Ok(out)
    }

    /// Extract the replayable update records of a committed txn from a
    /// partition WAL, in order.
    pub fn records_of(partition_wal: &Wal, txn_id: u64) -> Result<Vec<LogRecord>> {
        let all = partition_wal.read_all()?;
        Ok(all
            .into_iter()
            .filter(|r| match r {
                LogRecord::Insert { txn, .. }
                | LogRecord::Delete { txn, .. }
                | LogRecord::Modify { txn, .. }
                | LogRecord::Append { txn, .. } => *txn == txn_id,
                _ => false,
            })
            .collect())
    }
}

/// How recovery resolves one transaction found in a partition WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnResolution {
    /// A local `Commit` record is in the log: committed before the crash.
    CommittedLocally,
    /// Prepared, and the global WAL holds the decision: commits on recovery.
    CommittedByDecision,
    /// No commit evidence anywhere: presumed abort, never replayed.
    Aborted,
}

impl TxnResolution {
    pub fn is_committed(&self) -> bool {
        !matches!(self, TxnResolution::Aborted)
    }
}

/// One transaction's recovery verdict (see
/// [`TwoPhaseCoordinator::recoverable_txns`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverableTxn {
    pub txn: u64,
    pub resolution: TxnResolution,
}

/// Retention policy for the shipped log: how much un-checkpointed history
/// the shipper keeps per partition. `None` bounds are unbounded; the
/// default retains everything (truncation happens only at propagation
/// checkpoints, as before). When a bound is exceeded the oldest records are
/// truncated and the horizon advances — a receiver whose watermark falls
/// behind it must take a full-image bootstrap instead of a drain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShipRetention {
    /// Retain at most this many encoded bytes per partition log.
    pub max_bytes: Option<u64>,
    /// Retain at most this many records per partition log.
    pub max_records: Option<usize>,
}

impl ShipRetention {
    /// Policy from the environment: `VH_SHIP_RETAIN_BYTES` and
    /// `VH_SHIP_RETAIN_RECORDS` (unset or unparsable = unbounded).
    pub fn from_env() -> ShipRetention {
        ShipRetention::from_vars(
            std::env::var("VH_SHIP_RETAIN_BYTES").ok().as_deref(),
            std::env::var("VH_SHIP_RETAIN_RECORDS").ok().as_deref(),
        )
    }

    /// Testable core of [`from_env`](Self::from_env).
    pub fn from_vars(bytes: Option<&str>, records: Option<&str>) -> ShipRetention {
        let parse = |s: Option<&str>| s.and_then(|v| v.trim().parse::<u64>().ok());
        ShipRetention {
            max_bytes: parse(bytes),
            max_records: parse(records).map(|n| n as usize),
        }
    }

    pub fn is_unbounded(&self) -> bool {
        self.max_bytes.is_none() && self.max_records.is_none()
    }
}

/// What a receiver gets back from [`LogShipper::drain`].
#[derive(Debug, Clone, PartialEq)]
pub enum Drained {
    /// The records between the receiver's watermark and the head, in ship
    /// order; the watermark is advanced past them.
    Records(Vec<LogRecord>),
    /// The receiver's watermark fell behind the truncation horizon: the
    /// retained log can no longer catch it up. The receiver must take a
    /// full-image bootstrap (stable snapshot + committed WAL-tail replay)
    /// and then [`LogShipper::fast_forward`] its watermark to the head.
    BehindHorizon,
}

/// The shipped log of one replicated partition: retained records with their
/// encoded sizes, the absolute index of the oldest retained record (the
/// truncation horizon), and absolute per-receiver apply watermarks.
#[derive(Debug, Default)]
struct ShipLog {
    records: std::collections::VecDeque<(LogRecord, u32)>,
    /// Absolute index of `records.front()`; grows on truncation.
    base: u64,
    /// Encoded bytes currently retained.
    retained: u64,
    /// Absolute per-receiver watermarks (index of the next unapplied record).
    applied: std::collections::HashMap<NodeId, u64>,
}

impl ShipLog {
    fn head(&self) -> u64 {
        self.base + self.records.len() as u64
    }

    /// Drop records from the front until within `ret`'s bounds; returns the
    /// bytes reclaimed. Receivers left behind the new horizon will see
    /// [`Drained::BehindHorizon`] on their next drain.
    fn enforce(&mut self, ret: &ShipRetention) -> u64 {
        let mut reclaimed = 0u64;
        loop {
            let over_bytes = ret.max_bytes.map(|m| self.retained > m).unwrap_or(false);
            let over_records = ret
                .max_records
                .map(|m| self.records.len() > m)
                .unwrap_or(false);
            if !(over_bytes || over_records) {
                return reclaimed;
            }
            match self.records.pop_front() {
                Some((_, size)) => {
                    self.base += 1;
                    self.retained -= size as u64;
                    reclaimed += size as u64;
                }
                None => return reclaimed,
            }
        }
    }
}

/// Log shipping for replicated tables (§6): all workers keep replicated
/// PDTs in RAM, so commits broadcast the same on-disk-format log actions to
/// every worker, and receivers apply them through the ordinary replay path
/// ("allowing reuse of existing code and the testing infrastructure"). The
/// shipper is the pipe: senders [`ship`](Self::ship) a batch, each receiver
/// [`drain`](Self::drain)s its backlog and replays it. A node that was down
/// while batches shipped [`rewind`](Self::rewind)s and re-applies the
/// retained log on rejoin — unless the [`ShipRetention`] policy truncated
/// past its watermark, in which case the drain reports
/// [`Drained::BehindHorizon`] and the receiver bootstraps from the full
/// image instead. Propagation [`checkpoint`](Self::checkpoint)s the log
/// once the records are in stable storage.
#[derive(Debug, Default)]
pub struct LogShipper {
    inner: vectorh_common::sync::Mutex<std::collections::HashMap<PartitionId, ShipLog>>,
    retention: ShipRetention,
    shipped_bytes: std::sync::atomic::AtomicU64,
    shipped_batches: std::sync::atomic::AtomicU64,
    reclaimed_bytes: std::sync::atomic::AtomicU64,
}

impl LogShipper {
    /// A shipper with a bounded retention policy (the default retains
    /// everything until checkpoint).
    pub fn with_retention(retention: ShipRetention) -> LogShipper {
        LogShipper {
            retention,
            ..LogShipper::default()
        }
    }

    pub fn retention(&self) -> &ShipRetention {
        &self.retention
    }

    /// Ship `records` for `pid` to `n_receivers` workers; returns the total
    /// encoded bytes put on the wire (on-disk WAL format, per §6). Applies
    /// the retention policy after appending.
    pub fn ship(&self, pid: PartitionId, records: &[LogRecord], n_receivers: usize) -> u64 {
        if records.is_empty() {
            return 0;
        }
        let mut size = 0u64;
        let mut inner = self.inner.lock();
        let log = inner.entry(pid).or_default();
        for r in records {
            let mut buf = Vec::new();
            crate::wal::encode_for_shipping(r, &mut buf);
            size += buf.len() as u64;
            log.retained += buf.len() as u64;
            log.records.push_back((r.clone(), buf.len() as u32));
        }
        let reclaimed = log.enforce(&self.retention);
        drop(inner);
        if reclaimed > 0 {
            self.reclaimed_bytes
                .fetch_add(reclaimed, std::sync::atomic::Ordering::Relaxed);
        }
        let total = size * n_receivers as u64;
        self.shipped_bytes
            .fetch_add(total, std::sync::atomic::Ordering::Relaxed);
        self.shipped_batches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        total
    }

    /// Receiver side: everything shipped for `pid` that `node` has not yet
    /// applied. In the good case the node's watermark (or, for a receiver
    /// with no watermark, the start of an untruncated log) is within the
    /// horizon: the backlog comes back and the watermark advances to the
    /// head. A watermark behind the horizon gets [`Drained::BehindHorizon`].
    pub fn drain(&self, pid: PartitionId, node: NodeId) -> Drained {
        let mut inner = self.inner.lock();
        let Some(log) = inner.get_mut(&pid) else {
            return Drained::Records(vec![]);
        };
        let head = log.head();
        // No watermark: a fresh (or rewound) receiver starts from the
        // beginning of history — reachable only while nothing has been
        // truncated.
        let from = log.applied.get(&node).copied().unwrap_or(0);
        if from < log.base {
            return Drained::BehindHorizon;
        }
        let skip = (from - log.base) as usize;
        let out = log
            .records
            .iter()
            .skip(skip)
            .map(|(r, _)| r.clone())
            .collect();
        log.applied.insert(node, head);
        Drained::Records(out)
    }

    /// Retained records shipped for `pid` that `node` has not applied yet.
    pub fn backlog(&self, pid: PartitionId, node: NodeId) -> usize {
        let inner = self.inner.lock();
        inner
            .get(&pid)
            .map(|log| {
                let w = log.applied.get(&node).copied().unwrap_or(0);
                (log.head() - w.clamp(log.base, log.head())) as usize
            })
            .unwrap_or(0)
    }

    /// Forget `node`'s watermark for `pid`: a rejoining node lost its RAM
    /// state and must re-apply the whole retained log on top of stable data
    /// — or bootstrap, if the retained log no longer reaches back that far.
    pub fn rewind(&self, pid: PartitionId, node: NodeId) {
        if let Some(log) = self.inner.lock().get_mut(&pid) {
            log.applied.remove(&node);
        }
    }

    /// Set `node`'s watermark to the head of `pid`'s log: the receiver just
    /// completed a full-image bootstrap and is current as of now.
    pub fn fast_forward(&self, pid: PartitionId, node: NodeId) {
        let mut inner = self.inner.lock();
        let log = inner.entry(pid).or_default();
        let head = log.head();
        log.applied.insert(node, head);
    }

    /// Drop `pid`'s retained records: propagation flushed them to stable
    /// storage, so (like WAL records before a `Checkpoint`) they are
    /// obsolete for catch-up. Every known receiver's watermark moves to the
    /// new horizon — the caller re-bases replicas on the fresh stable image.
    /// Returns the bytes reclaimed.
    pub fn checkpoint(&self, pid: PartitionId) -> u64 {
        let mut inner = self.inner.lock();
        let Some(log) = inner.get_mut(&pid) else {
            return 0;
        };
        let reclaimed = log.retained;
        log.base = log.head();
        log.records.clear();
        log.retained = 0;
        let base = log.base;
        for w in log.applied.values_mut() {
            *w = base;
        }
        drop(inner);
        self.reclaimed_bytes
            .fetch_add(reclaimed, std::sync::atomic::Ordering::Relaxed);
        reclaimed
    }

    /// Encoded bytes currently retained for `pid`.
    pub fn retained_bytes(&self, pid: PartitionId) -> u64 {
        self.inner
            .lock()
            .get(&pid)
            .map(|log| log.retained)
            .unwrap_or(0)
    }

    /// The truncation horizon of `pid`: the absolute index of the oldest
    /// retained record. Receivers with watermarks below it must bootstrap.
    pub fn horizon(&self, pid: PartitionId) -> u64 {
        self.inner.lock().get(&pid).map(|log| log.base).unwrap_or(0)
    }

    /// Total bytes reclaimed so far, by retention truncation and
    /// checkpoints together.
    pub fn reclaimed_bytes(&self) -> u64 {
        self.reclaimed_bytes
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    pub fn shipped_bytes(&self) -> u64 {
        self.shipped_bytes
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    pub fn shipped_batches(&self) -> u64 {
        self.shipped_batches
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vectorh_common::Value;
    use vectorh_simhdfs::{DefaultPolicy, SimHdfs, SimHdfsConfig, StoreRef};

    fn fs() -> StoreRef {
        Arc::new(SimHdfs::new(
            3,
            SimHdfsConfig {
                block_size: 256,
                default_replication: 2,
            },
            Arc::new(DefaultPolicy::new(3)),
        ))
    }

    fn setup() -> (TwoPhaseCoordinator, Wal, Wal) {
        let fs = fs();
        let coord = TwoPhaseCoordinator::new(Wal::new(fs.clone(), "/wal/global.wal", None));
        let w0 = Wal::new(fs.clone(), "/wal/p0.wal", None);
        let w1 = Wal::new(fs, "/wal/p1.wal", None);
        (coord, w0, w1)
    }

    fn recs(txn: u64) -> Vec<LogRecord> {
        vec![
            LogRecord::TxnBegin { txn },
            LogRecord::Insert {
                txn,
                rid: 0,
                tag: 1,
                values: vec![Value::I64(1)],
            },
        ]
    }

    #[test]
    fn clean_commit_everywhere() {
        let (coord, w0, w1) = setup();
        let r = recs(1);
        let out = coord
            .commit_distributed(
                1,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::None,
            )
            .unwrap();
        assert_eq!(out, Outcome::Committed);
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), vec![1]);
        assert_eq!(coord.committed_txns_of(&w1).unwrap(), vec![1]);
        assert!(coord.recover_decision(1).unwrap());
    }

    #[test]
    fn crash_after_prepare_resolves_to_abort() {
        let (coord, w0, w1) = setup();
        let r = recs(2);
        let out = coord
            .commit_distributed(
                2,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::AfterPrepare,
            )
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        // No global decision: recovery must NOT replay txn 2.
        assert!(!coord.recover_decision(2).unwrap());
        assert!(coord.committed_txns_of(&w0).unwrap().is_empty());
    }

    #[test]
    fn crash_after_global_commit_resolves_to_commit() {
        let (coord, w0, w1) = setup();
        let r = recs(3);
        let out = coord
            .commit_distributed(
                3,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::AfterGlobalCommit,
            )
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        // Decision exists: both participants resolve to commit on recovery.
        assert!(coord.recover_decision(3).unwrap());
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), vec![3]);
        assert_eq!(coord.committed_txns_of(&w1).unwrap(), vec![3]);
        // And the replayable records are recoverable.
        let replay = TwoPhaseCoordinator::records_of(&w0, 3).unwrap();
        assert_eq!(replay.len(), 1);
        assert!(matches!(replay[0], LogRecord::Insert { .. }));
    }

    #[test]
    fn mixed_history_resolves_per_txn() {
        let (coord, w0, _) = setup();
        let r1 = recs(10);
        let r2 = recs(11);
        coord
            .commit_distributed(10, &[(PartitionId(0), &w0, &r1)], CrashPoint::None)
            .unwrap();
        coord
            .commit_distributed(11, &[(PartitionId(0), &w0, &r2)], CrashPoint::AfterPrepare)
            .unwrap();
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), vec![10]);
    }

    /// Fires `action` once at `site`, then clears (crash-and-restart).
    #[derive(Debug)]
    struct OneShot {
        site: vectorh_common::fault::FaultSite,
        action: vectorh_common::fault::FaultAction,
        fired: std::sync::atomic::AtomicBool,
    }

    impl vectorh_common::fault::FaultHook for OneShot {
        fn decide(
            &self,
            site: vectorh_common::fault::FaultSite,
            _detail: &str,
            _attempt: u32,
        ) -> vectorh_common::fault::FaultAction {
            if site == self.site && !self.fired.swap(true, std::sync::atomic::Ordering::SeqCst) {
                self.action
            } else {
                vectorh_common::fault::FaultAction::None
            }
        }
    }

    fn arm(coord: &TwoPhaseCoordinator, site: FaultSite, action: FaultAction) {
        coord
            .global_wal()
            .fs()
            .set_fault_hook(Some(Arc::new(OneShot {
                site,
                action,
                fired: Default::default(),
            })));
    }

    #[test]
    fn prepare_fault_aborts_without_global_decision() {
        let (coord, w0, w1) = setup();
        let r = recs(20);
        arm(&coord, FaultSite::TwoPhasePrepare, FaultAction::CrashBefore);
        let out = coord
            .commit_distributed(
                20,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::None,
            )
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        // No decision reached the global WAL: recovery resolves to abort.
        assert!(!coord.recover_decision(20).unwrap());
        assert!(coord.committed_txns_of(&w0).unwrap().is_empty());
        assert!(coord.committed_txns_of(&w1).unwrap().is_empty());
    }

    #[test]
    fn decide_crash_before_leaves_no_decision() {
        let (coord, w0, _) = setup();
        let r = recs(21);
        arm(&coord, FaultSite::TwoPhaseDecide, FaultAction::CrashBefore);
        let out = coord
            .commit_distributed(21, &[(PartitionId(0), &w0, &r)], CrashPoint::None)
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        assert!(!coord.recover_decision(21).unwrap());
        assert!(coord.committed_txns_of(&w0).unwrap().is_empty());
    }

    #[test]
    fn decide_crash_after_has_durable_decision() {
        let (coord, w0, w1) = setup();
        let r = recs(22);
        arm(&coord, FaultSite::TwoPhaseDecide, FaultAction::CrashAfter);
        let out = coord
            .commit_distributed(
                22,
                &[(PartitionId(0), &w0, &r), (PartitionId(1), &w1, &r)],
                CrashPoint::None,
            )
            .unwrap();
        assert_eq!(out, Outcome::InDoubt);
        // GlobalCommit is the commit point: both participants recover to
        // committed even though phase 2 never ran.
        assert!(coord.recover_decision(22).unwrap());
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), vec![22]);
        assert_eq!(coord.committed_txns_of(&w1).unwrap(), vec![22]);
    }

    #[test]
    fn log_shipping_counts_bytes() {
        let shipper = LogShipper::default();
        let r = recs(5);
        let shipped = shipper.ship(PartitionId(0), &r, 3);
        assert!(shipped > 0);
        assert_eq!(shipper.shipped_bytes(), shipped);
        assert_eq!(shipper.shipped_batches(), 1);
        shipper.ship(PartitionId(0), &r, 3);
        assert_eq!(shipper.shipped_batches(), 2);
        assert_eq!(shipper.shipped_bytes(), 2 * shipped);
    }

    #[test]
    fn log_shipping_is_a_pipe_with_per_receiver_watermarks() {
        let shipper = LogShipper::default();
        let pid = PartitionId(7);
        let (a, b) = (NodeId(1), NodeId(2));
        shipper.ship(pid, &recs(1), 2);
        // Receiver a applies immediately; b lags.
        assert_eq!(shipper.drain(pid, a), Drained::Records(recs(1)));
        assert_eq!(shipper.backlog(pid, a), 0);
        assert_eq!(shipper.backlog(pid, b), 2);
        shipper.ship(pid, &recs(2), 2);
        // a sees only the new batch; b catches up with both.
        assert_eq!(shipper.drain(pid, a), Drained::Records(recs(2)));
        let caught_up: Vec<_> = [recs(1), recs(2)].concat();
        assert_eq!(shipper.drain(pid, b), Drained::Records(caught_up.clone()));
        // Rewind models a rejoin after RAM loss: the whole log replays.
        shipper.rewind(pid, a);
        assert_eq!(shipper.drain(pid, a), Drained::Records(caught_up));
        // Checkpoint (propagation) empties the retained log for everyone.
        shipper.checkpoint(pid);
        assert_eq!(shipper.backlog(pid, b), 0);
        assert_eq!(shipper.drain(pid, b), Drained::Records(vec![]));
    }

    #[test]
    fn retention_truncates_and_reports_reclaimed_bytes() {
        // Keep at most 2 records: the third ship pushes the horizon forward.
        let shipper = LogShipper::with_retention(ShipRetention {
            max_bytes: None,
            max_records: Some(2),
        });
        let pid = PartitionId(3);
        let one = &recs(1)[..1];
        shipper.ship(pid, one, 1);
        shipper.ship(pid, one, 1);
        assert_eq!(shipper.horizon(pid), 0);
        assert_eq!(shipper.reclaimed_bytes(), 0);
        let before = shipper.retained_bytes(pid);
        shipper.ship(pid, one, 1);
        assert_eq!(shipper.horizon(pid), 1);
        assert!(shipper.reclaimed_bytes() > 0);
        assert_eq!(shipper.retained_bytes(pid), before);
    }

    #[test]
    fn byte_bounded_retention_respects_the_cap() {
        let shipper = LogShipper::with_retention(ShipRetention {
            max_bytes: Some(64),
            max_records: None,
        });
        let pid = PartitionId(4);
        for i in 0..20 {
            shipper.ship(pid, &recs(i), 1);
        }
        assert!(shipper.retained_bytes(pid) <= 64);
        assert!(shipper.horizon(pid) > 0);
        assert!(shipper.reclaimed_bytes() > 0);
    }

    #[test]
    fn receiver_behind_horizon_must_bootstrap() {
        let shipper = LogShipper::with_retention(ShipRetention {
            max_bytes: None,
            max_records: Some(2),
        });
        let pid = PartitionId(5);
        let (fresh, current) = (NodeId(1), NodeId(2));
        shipper.ship(pid, &recs(1), 2);
        assert_eq!(shipper.drain(pid, current), Drained::Records(recs(1)));
        // Truncate past record 0: the fresh receiver (watermark 0) is now
        // behind the horizon and must take a full-image bootstrap.
        shipper.ship(pid, &recs(2), 2);
        shipper.ship(pid, &recs(3), 2);
        assert!(shipper.horizon(pid) > 0);
        assert_eq!(shipper.drain(pid, fresh), Drained::BehindHorizon);
        // Bootstrap completes: fast-forward to head, after which drains work.
        shipper.fast_forward(pid, fresh);
        assert_eq!(shipper.backlog(pid, fresh), 0);
        shipper.ship(pid, &recs(4), 2);
        assert_eq!(shipper.drain(pid, fresh), Drained::Records(recs(4)));
        // A rewound current receiver is equally behind the horizon.
        shipper.rewind(pid, current);
        assert_eq!(shipper.drain(pid, current), Drained::BehindHorizon);
    }

    #[test]
    fn checkpoint_reclaims_retained_bytes() {
        let shipper = LogShipper::default();
        let pid = PartitionId(6);
        shipper.ship(pid, &recs(1), 2);
        shipper.ship(pid, &recs(2), 2);
        let retained = shipper.retained_bytes(pid);
        assert!(retained > 0);
        assert_eq!(shipper.checkpoint(pid), retained);
        assert_eq!(shipper.retained_bytes(pid), 0);
        assert_eq!(shipper.reclaimed_bytes(), retained);
        // Nothing retained, nothing to reclaim a second time.
        assert_eq!(shipper.checkpoint(pid), 0);
        // Checkpoint of an unknown partition is a no-op.
        assert_eq!(shipper.checkpoint(PartitionId(99)), 0);
    }

    #[test]
    fn retention_policy_parses_from_vars() {
        assert!(ShipRetention::from_vars(None, None).is_unbounded());
        assert_eq!(
            ShipRetention::from_vars(Some("4096"), None),
            ShipRetention {
                max_bytes: Some(4096),
                max_records: None,
            }
        );
        assert_eq!(
            ShipRetention::from_vars(Some(" 16 "), Some("8")),
            ShipRetention {
                max_bytes: Some(16),
                max_records: Some(8),
            }
        );
        // Unparsable values fall back to unbounded rather than panicking.
        assert!(ShipRetention::from_vars(Some("lots"), Some("")).is_unbounded());
    }

    #[test]
    fn epochs_are_monotonic_and_fence_stale_masters() {
        let (coord, w0, _) = setup();
        assert_eq!(coord.epoch(), 1);
        assert_eq!(coord.install_epoch(3), 3);
        // Installing an older epoch cannot roll back.
        assert_eq!(coord.install_epoch(2), 3);
        assert_eq!(coord.epoch(), 3);
        // A commit at the current epoch passes; a stale one is fenced.
        coord.check_epoch(3).unwrap();
        let err = coord.check_epoch(2).unwrap_err();
        assert!(matches!(err, vectorh_common::VhError::StaleMaster(_)));
        let r = recs(40);
        let err = coord
            .commit_at_epoch(2, 40, &[(PartitionId(0), &w0, &r)], CrashPoint::None)
            .unwrap_err();
        assert!(matches!(err, vectorh_common::VhError::StaleMaster(_)));
        // The fenced commit never reached the global WAL.
        assert!(!coord.recover_decision(40).unwrap());
        assert!(coord.committed_txns_of(&w0).unwrap().is_empty());
        // The same commit at the live epoch goes through.
        let out = coord
            .commit_at_epoch(3, 40, &[(PartitionId(0), &w0, &r)], CrashPoint::None)
            .unwrap();
        assert_eq!(out, Outcome::Committed);
    }

    #[test]
    fn in_doubt_txns_pair_with_global_decisions() {
        let (coord, w0, _) = setup();
        coord
            .commit_distributed(50, &[(PartitionId(0), &w0, &recs(50))], CrashPoint::None)
            .unwrap();
        coord
            .commit_distributed(
                51,
                &[(PartitionId(0), &w0, &recs(51))],
                CrashPoint::AfterGlobalCommit,
            )
            .unwrap();
        coord
            .commit_distributed(
                52,
                &[(PartitionId(0), &w0, &recs(52))],
                CrashPoint::AfterPrepare,
            )
            .unwrap();
        // 50 committed locally (not in doubt); 51 is in doubt with a global
        // decision; 52 is in doubt without one (presumed abort).
        assert_eq!(
            coord.in_doubt_txns_of(&w0).unwrap(),
            vec![(51, true), (52, false)]
        );
    }

    #[test]
    fn recoverable_txns_reports_per_txn_verdicts() {
        let (coord, w0, _) = setup();
        let committed = recs(30);
        let in_doubt_commit = recs(31);
        let in_doubt_abort = recs(32);
        coord
            .commit_distributed(30, &[(PartitionId(0), &w0, &committed)], CrashPoint::None)
            .unwrap();
        coord
            .commit_distributed(
                31,
                &[(PartitionId(0), &w0, &in_doubt_commit)],
                CrashPoint::AfterGlobalCommit,
            )
            .unwrap();
        coord
            .commit_distributed(
                32,
                &[(PartitionId(0), &w0, &in_doubt_abort)],
                CrashPoint::AfterPrepare,
            )
            .unwrap();
        let verdicts = coord.recoverable_txns(&w0).unwrap();
        assert_eq!(
            verdicts,
            vec![
                RecoverableTxn {
                    txn: 30,
                    resolution: TxnResolution::CommittedLocally,
                },
                RecoverableTxn {
                    txn: 31,
                    resolution: TxnResolution::CommittedByDecision,
                },
                RecoverableTxn {
                    txn: 32,
                    resolution: TxnResolution::Aborted,
                },
            ]
        );
        // The committed projection agrees.
        let committed_only: Vec<u64> = verdicts
            .iter()
            .filter(|v| v.resolution.is_committed())
            .map(|v| v.txn)
            .collect();
        assert_eq!(coord.committed_txns_of(&w0).unwrap(), committed_only);
    }
}
